// The paper's figures as executable artifacts.
//
//   Figure 1 — the worked example history of §2: m-operations α, β, δ, η,
//              μ with the stated process-order / reads-from / real-time /
//              object-order facts, plus §4's conflict and interference
//              claims about it.
//   Figure 2 — history H1 under WW-constraint (legal, hence admissible by
//              Theorem 7).
//   Figure 3 — the extension S1 of H1 that is sequential but NOT legal,
//              and why ~rw rules it out.
//   Figures 5 and 7 (protocol example executions) are replayed in
//   api_test.cpp on the real protocol stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/admissibility.hpp"
#include "core/constraints.hpp"
#include "core/fast_check.hpp"
#include "core/history.hpp"
#include "core/legality.hpp"
#include "core/relations.hpp"

namespace mocc::core {
namespace {

MOperation mop(ProcessId p, std::vector<Operation> ops, Time inv, Time resp,
               std::string label) {
  return MOperation(p, std::move(ops), inv, resp, std::move(label));
}

// --------------------------------------------------------------- Figure 1

class Figure1 : public ::testing::Test {
 protected:
  // Objects: x=0, y=1, z=2. Processes: P1=0, P2=1, P3=2.
  //   α on P1 [1,10]:  w(x)1 w(y)1 w(z)1      (objects(α) = {x,y,z})
  //   η on P2 [2,12]:  w(x)2 w(y)2
  //   β on P1 [13,14]: r(x)2   — reads from η
  //   μ on P2 [13,14]: r(y)2   — reads from η
  //   δ on P3 [15,16]: r(z)1 (from α), r(y)2 (from η)
  Figure1() : h(3, 3) {
    alpha = h.add(mop(0,
                      {Operation::write(0, 1), Operation::write(1, 1),
                       Operation::write(2, 1)},
                      1, 10, "alpha"));
    eta = h.add(mop(1, {Operation::write(0, 2), Operation::write(1, 2)}, 2, 12,
                    "eta"));
    beta = h.add(mop(0, {Operation::read(0, 2, eta)}, 13, 14, "beta"));
    mu = h.add(mop(1, {Operation::read(1, 2, eta)}, 13, 14, "mu"));
    delta = h.add(
        mop(2, {Operation::read(2, 1, alpha), Operation::read(1, 2, eta)}, 15, 16,
            "delta"));
  }
  History h;
  MOpId alpha, eta, beta, mu, delta;
};

TEST_F(Figure1, ProcessOrderAlphaBeta) {
  // "In Figure 1, α ~P1~> β."
  EXPECT_TRUE(process_order(h).has(alpha, beta));
  EXPECT_EQ(h.mop(alpha).process(), h.mop(beta).process());
}

TEST_F(Figure1, ProcAndObjectsOfAlpha) {
  // "proc(α) = P1 and objects(α) = {x, y, z}."
  EXPECT_EQ(h.mop(alpha).process(), 0u);
  EXPECT_EQ(h.mop(alpha).objects(), (std::vector<ObjectId>{0, 1, 2}));
}

TEST_F(Figure1, ReadsFromFacts) {
  // "α ~rf~> δ and η ~rf~> δ."
  const auto rf = reads_from_order(h);
  EXPECT_TRUE(rf.has(alpha, delta));
  EXPECT_TRUE(rf.has(eta, delta));
  EXPECT_FALSE(rf.has(delta, alpha));
}

TEST_F(Figure1, RealTimeAndObjectOrderFacts) {
  // "α ~t~> μ, η ~t~> β and η ~xo~> β."
  const auto rt = real_time_order(h);
  EXPECT_TRUE(rt.has(alpha, mu));
  EXPECT_TRUE(rt.has(eta, beta));
  const auto xo = object_order(h);
  EXPECT_TRUE(xo.has(eta, beta));
  // α and η overlap in real time: unordered.
  EXPECT_FALSE(rt.has(alpha, eta));
  EXPECT_FALSE(rt.has(eta, alpha));
}

TEST_F(Figure1, ConflictAndInterference) {
  // "In Figure 1, α conflicts with η, and m-operations δ, η and α
  // interfere."
  EXPECT_TRUE(h.conflict(alpha, eta));
  EXPECT_TRUE(h.interfere(delta, eta, alpha));  // α writes y; δ reads y from η
}

TEST_F(Figure1, InterferenceImpliesPairwiseConflict) {
  // P4.1: interfere => pairwise conflicts and a common object.
  EXPECT_TRUE(h.conflict(delta, eta));
  EXPECT_TRUE(h.conflict(eta, alpha));
  EXPECT_TRUE(h.conflict(alpha, delta));
}

TEST_F(Figure1, HistoryIsMLinearizable) {
  // The figure depicts a consistent execution: serialize α η β μ δ.
  const auto result = check_m_linearizable(h);
  EXPECT_TRUE(result.admissible);
  EXPECT_TRUE(is_legal_sequential_order(h, {alpha, eta, beta, mu, delta}));
}

// --------------------------------------------------------------- Figure 2

class Figure2 : public ::testing::Test {
 protected:
  // H1: P1: α = r(x)0 w(y)2 ; β = r(y)2.  P2: γ = w(x)1 ; δ = w(y)3.
  // WW-constraint synchronizes the updates as α ~ww~> γ ~ww~> δ.
  Figure2() : h(2, 2) {
    alpha = h.add(mop(0,
                      {Operation::read(0, 0, kInitialMOp), Operation::write(1, 2)},
                      1, 2, "alpha"));
    gamma = h.add(mop(1, {Operation::write(0, 1)}, 1, 4, "gamma"));
    beta = h.add(mop(0, {Operation::read(1, 2, alpha)}, 5, 6, "beta"));
    delta = h.add(mop(1, {Operation::write(1, 3)}, 5, 8, "delta"));

    base = base_order(h, Condition::kMSequentialConsistency);
    base.add(alpha, gamma);  // the figure's WW-constraint edges
    base.add(gamma, delta);
  }
  History h;
  MOpId alpha, beta, gamma, delta;
  util::BitRelation base;
};

TEST_F(Figure2, UnderWWConstraint) {
  const auto closed = base.transitive_closure();
  EXPECT_TRUE(satisfies(h, closed, Constraint::kWW));
}

TEST_F(Figure2, H1IsLegal) {
  const auto closed = base.transitive_closure();
  EXPECT_FALSE(find_legality_violation(h, closed).has_value());
}

TEST_F(Figure2, Theorem7MakesH1Admissible) {
  const auto result = fast_check(h, base, Constraint::kWW);
  EXPECT_TRUE(result.constraint_holds);
  EXPECT_TRUE(result.legal);
  EXPECT_TRUE(result.admissible);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(is_legal_sequential_order(h, *result.witness));
}

TEST_F(Figure2, ExactCheckerAgrees) {
  const auto result = check_admissible(h, base);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.admissible);
}

// --------------------------------------------------------------- Figure 3

class Figure3 : public Figure2 {};

TEST_F(Figure3, S1IsSequentialButNotLegal) {
  // "One of the possible extensions of ~H1 gives us the sequential
  // history S1 [= α γ δ β] which is not legal."
  // α γ δ β respects the base order (α→γ→δ from ~ww, α→β from process
  // order) yet β's read of y=2-from-α is overwritten by δ.
  const std::vector<MOpId> s1{alpha, gamma, delta, beta};
  // Respects base:
  const auto closed = base.transitive_closure();
  std::map<MOpId, std::size_t> pos;
  for (std::size_t i = 0; i < s1.size(); ++i) pos[s1[i]] = i;
  for (MOpId a = 0; a < h.size(); ++a) {
    for (MOpId b = 0; b < h.size(); ++b) {
      if (a != b && closed.has(a, b)) {
        EXPECT_LT(pos[a], pos[b]);
      }
    }
  }
  // ...but not legal:
  EXPECT_FALSE(is_legal_sequential_order(h, s1));
}

TEST_F(Figure3, RwPrecedenceForbidsS1) {
  // β ~rw~> δ (D4.11: interfere(β, α, δ) and α ~H~> δ), so any extension
  // of ~+ places β before δ — exactly what S1 violates.
  const auto closed = base.transitive_closure();
  const auto rw = rw_precedence(h, closed);
  EXPECT_TRUE(rw.has(beta, delta));
  const auto ext = extended_relation(h, closed);
  EXPECT_TRUE(ext.closed_is_irreflexive());  // Lemma 4
  EXPECT_TRUE(ext.has(beta, delta));
}

TEST_F(Figure3, EveryExtensionOfExtendedRelationIsLegal) {
  // P4.5 / Lemma 5 in miniature: enumerate ALL linear extensions of ~+
  // and replay each one (4! = 24 candidates, filter by the order).
  const auto ext = extended_relation(h, base.transitive_closure());
  std::vector<MOpId> perm{0, 1, 2, 3};
  std::sort(perm.begin(), perm.end());
  int extensions = 0;
  do {
    std::map<MOpId, std::size_t> pos;
    for (std::size_t i = 0; i < perm.size(); ++i) pos[perm[i]] = i;
    bool respects = true;
    for (MOpId a = 0; a < h.size() && respects; ++a) {
      for (MOpId b = 0; b < h.size(); ++b) {
        if (a != b && ext.has(a, b) && pos[a] > pos[b]) {
          respects = false;
          break;
        }
      }
    }
    if (!respects) continue;
    ++extensions;
    EXPECT_TRUE(is_legal_sequential_order(h, perm))
        << "extension not legal: " << perm[0] << perm[1] << perm[2] << perm[3];
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_GE(extensions, 1);
}

}  // namespace
}  // namespace mocc::core
