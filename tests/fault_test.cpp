// Fault-injection plan (src/fault/fault.{hpp,cpp}) and its simulator
// hook: deterministic per-link fault draws, partition schedules,
// crash-stop windows, and the metric/trace surfaces they feed.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/delay.hpp"
#include "sim/simulator.hpp"

namespace mocc::fault {
namespace {

/// Records every delivery with its arrival time.
class RecordingActor final : public sim::Actor {
 public:
  void on_message(sim::Context& ctx, const sim::Message& message) override {
    deliveries.push_back({ctx.now(), message.from, message.kind});
  }

  struct Delivery {
    sim::SimTime at;
    sim::NodeId from;
    std::uint32_t kind;
  };
  std::vector<Delivery> deliveries;
};

TEST(FaultPlanConfig, EnabledOnlyWhenSomethingCanPerturb) {
  FaultPlanConfig config;
  EXPECT_FALSE(config.enabled());

  config.default_link.drop_rate = 0.1;
  EXPECT_TRUE(config.enabled());
  config.default_link.drop_rate = 0.0;

  // A delay spike of zero ticks perturbs nothing even at rate 1.
  config.default_link.delay_spike_rate = 1.0;
  EXPECT_FALSE(config.enabled());
  config.default_link.delay_spike = 5;
  EXPECT_TRUE(config.enabled());
  config.default_link = LinkFaults{};

  config.partitions.push_back({10, 20, {0}});
  EXPECT_TRUE(config.enabled());
  config.partitions.clear();

  config.crashes.push_back({1, 5, 0});
  EXPECT_TRUE(config.enabled());
  config.crashes.clear();

  config.link_overrides.push_back({0, 1, LinkFaults{}});
  EXPECT_FALSE(config.enabled());  // override with no faults is inert
  config.link_overrides[0].faults.duplicate_rate = 0.5;
  EXPECT_TRUE(config.enabled());
}

TEST(FaultPlan, SameSeedSameDecisions) {
  FaultPlanConfig config;
  config.seed = 99;
  config.default_link.drop_rate = 0.3;
  config.default_link.duplicate_rate = 0.2;
  config.default_link.delay_spike_rate = 0.1;
  config.default_link.delay_spike = 40;

  FaultPlan a(config);
  FaultPlan b(config);
  for (int i = 0; i < 500; ++i) {
    const auto fa = a.on_send(0, 1, 200, static_cast<sim::SimTime>(i));
    const auto fb = b.on_send(0, 1, 200, static_cast<sim::SimTime>(i));
    EXPECT_EQ(fa.drop, fb.drop) << "send " << i;
    EXPECT_EQ(fa.duplicates, fb.duplicates) << "send " << i;
    EXPECT_EQ(fa.extra_delay, fb.extra_delay) << "send " << i;
  }
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_EQ(a.stats().duplicates, b.stats().duplicates);
  EXPECT_EQ(a.stats().delay_spikes, b.stats().delay_spikes);
  // The rates actually fired (probability of 500 misses at these rates
  // is astronomically small, and the stream is fixed by the seed anyway).
  EXPECT_GT(a.stats().drops, 0u);
  EXPECT_GT(a.stats().duplicates, 0u);
  EXPECT_GT(a.stats().delay_spikes, 0u);
}

TEST(FaultPlan, PartitionWindowCutsBothDirectionsAndHeals) {
  FaultPlanConfig config;
  config.partitions.push_back({10, 20, {0}});
  FaultPlan plan(config);

  EXPECT_FALSE(plan.partitioned(0, 1, 9));
  EXPECT_TRUE(plan.partitioned(0, 1, 10));   // start is inclusive
  EXPECT_TRUE(plan.partitioned(1, 0, 15));   // cut in both directions
  EXPECT_TRUE(plan.partitioned(0, 1, 19));
  EXPECT_FALSE(plan.partitioned(0, 1, 20));  // heal is exclusive
  // Nodes on the same side keep talking.
  EXPECT_FALSE(plan.partitioned(1, 2, 15));

  EXPECT_TRUE(plan.on_send(0, 1, 200, 15).drop);
  EXPECT_FALSE(plan.on_send(0, 1, 200, 25).drop);
  EXPECT_EQ(plan.stats().partition_drops, 1u);
  EXPECT_EQ(plan.stats().drops, 0u);  // partition drops are not random drops
}

TEST(FaultPlan, PartitionWithZeroHealNeverHeals) {
  FaultPlanConfig config;
  config.partitions.push_back({10, 0, {0}});
  FaultPlan plan(config);
  EXPECT_FALSE(plan.partitioned(0, 1, 9));
  EXPECT_TRUE(plan.partitioned(0, 1, 1u << 30));
}

TEST(FaultPlan, PartitionCheckDrawsNoRandomness) {
  // Two plans differing only in partition schedule must make identical
  // random drop decisions outside the partition window: the partition
  // path consumes no rng draws.
  FaultPlanConfig with_partition;
  with_partition.seed = 7;
  with_partition.default_link.drop_rate = 0.5;
  with_partition.partitions.push_back({0, 100, {0}});
  FaultPlanConfig without = with_partition;
  without.partitions.clear();

  FaultPlan a(with_partition);
  FaultPlan b(without);
  // During the window, a's sends 0->1 are partition drops (no draws);
  // its 1->2 sends draw from the same stream b draws from.
  for (int i = 0; i < 100; ++i) {
    a.on_send(0, 1, 200, 50);  // partitioned: no draw
    const auto fa = a.on_send(1, 2, 200, 50);
    const auto fb = b.on_send(1, 2, 200, 50);
    EXPECT_EQ(fa.drop, fb.drop) << "send " << i;
  }
}

TEST(FaultPlan, LinkOverrideReplacesDefaultPerDirection) {
  FaultPlanConfig config;
  config.link_overrides.push_back({0, 1, LinkFaults{1.0, 0.0, 0.0, 0}});
  FaultPlan plan(config);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(plan.on_send(0, 1, 200, 0).drop);   // overridden: always drop
    EXPECT_FALSE(plan.on_send(1, 0, 200, 0).drop);  // reverse uses default (none)
    EXPECT_FALSE(plan.on_send(0, 2, 200, 0).drop);
  }
  EXPECT_EQ(plan.stats().drops, 20u);
  EXPECT_EQ(plan.stats().sends_seen, 60u);
}

TEST(FaultPlan, CrashWindowBoundaries) {
  FaultPlanConfig config;
  config.crashes.push_back({1, 10, 20});
  config.crashes.push_back({2, 5, 0});  // restart == 0: down forever
  FaultPlan plan(config);

  EXPECT_FALSE(plan.is_down(1, 9));
  EXPECT_TRUE(plan.is_down(1, 10));
  EXPECT_TRUE(plan.is_down(1, 19));
  EXPECT_FALSE(plan.is_down(1, 20));  // restarted
  EXPECT_FALSE(plan.is_down(0, 15));  // other nodes unaffected
  EXPECT_TRUE(plan.is_down(2, 1u << 30));
  EXPECT_EQ(plan.stats().crash_discards, 3u);  // one per is_down() == true
}

TEST(FaultPlan, ExportMetricsSetsCounters) {
  FaultPlanConfig config;
  config.default_link.drop_rate = 1.0;
  FaultPlan plan(config);
  plan.on_send(0, 1, 200, 0);
  plan.on_send(0, 1, 200, 1);

  obs::Registry registry;
  plan.export_metrics(registry);
  EXPECT_EQ(registry.counter("fault_sends_seen").value(), 2u);
  EXPECT_EQ(registry.counter("fault_drops").value(), 2u);
  EXPECT_EQ(registry.counter("fault_duplicates").value(), 0u);
  // Idempotent: re-export does not double.
  plan.export_metrics(registry);
  EXPECT_EQ(registry.counter("fault_drops").value(), 2u);
}

// ------------------------------------------------- simulator integration

TEST(SimulatorFaults, DropDiscardsDeliveryButCountsTraffic) {
  sim::Simulator sim(sim::make_delay_model("constant"), 1);
  sim.add_node(std::make_unique<RecordingActor>());
  auto receiver = std::make_unique<RecordingActor>();
  auto* rx = receiver.get();
  sim.add_node(std::move(receiver));

  FaultPlanConfig config;
  config.default_link.drop_rate = 1.0;
  FaultPlan plan(config);
  sim.set_fault_injector(&plan);
  obs::RingBufferSink sink(64);
  sim.set_trace_sink(&sink);

  sim.schedule_call(0, [&] { sim.send(0, 1, 200, {1, 2, 3}); });
  sim.run();

  EXPECT_TRUE(rx->deliveries.empty());
  EXPECT_EQ(plan.stats().drops, 1u);
  // The sender paid for the message: traffic still counts it.
  EXPECT_EQ(sim.traffic().messages, 1u);
  EXPECT_EQ(sim.traffic().bytes, 3u);
  bool traced = false;
  for (const auto& event : sink.events()) {
    if (event.type == obs::TraceEventType::kFaultDrop) traced = true;
  }
  EXPECT_TRUE(traced);
}

TEST(SimulatorFaults, DuplicateDeliversExtraCopies) {
  sim::Simulator sim(sim::make_delay_model("constant"), 1);
  sim.add_node(std::make_unique<RecordingActor>());
  auto receiver = std::make_unique<RecordingActor>();
  auto* rx = receiver.get();
  sim.add_node(std::move(receiver));

  FaultPlanConfig config;
  config.default_link.duplicate_rate = 1.0;
  FaultPlan plan(config);
  sim.set_fault_injector(&plan);

  sim.schedule_call(0, [&] { sim.send(0, 1, 200, {42}); });
  sim.run();

  ASSERT_EQ(rx->deliveries.size(), 2u);  // original + one injected copy
  EXPECT_EQ(plan.stats().duplicates, 1u);
  EXPECT_EQ(rx->deliveries[0].kind, 200u);
  EXPECT_EQ(rx->deliveries[1].kind, 200u);
}

TEST(SimulatorFaults, DelaySpikeShiftsArrival) {
  sim::Simulator sim(sim::make_delay_model("constant"), 1);  // base delay 10
  sim.add_node(std::make_unique<RecordingActor>());
  auto receiver = std::make_unique<RecordingActor>();
  auto* rx = receiver.get();
  sim.add_node(std::move(receiver));

  FaultPlanConfig config;
  config.default_link.delay_spike_rate = 1.0;
  config.default_link.delay_spike = 100;
  FaultPlan plan(config);
  sim.set_fault_injector(&plan);

  sim.schedule_call(0, [&] { sim.send(0, 1, 200, {}); });
  sim.run();

  ASSERT_EQ(rx->deliveries.size(), 1u);
  EXPECT_EQ(rx->deliveries[0].at, 110u);  // 10 base + 100 spike
  EXPECT_EQ(plan.stats().delay_spikes, 1u);
}

TEST(SimulatorFaults, CrashedNodeDiscardsDeliveriesAndTimers) {
  /// Sets a timer at start that would fire inside the crash window.
  class TimerActor final : public sim::Actor {
   public:
    void on_start(sim::Context& ctx) override { ctx.set_timer(15, 7); }
    void on_message(sim::Context&, const sim::Message&) override { ++messages; }
    void on_timer(sim::Context&, std::uint64_t) override { ++timers; }
    int messages = 0;
    int timers = 0;
  };

  sim::Simulator sim(sim::make_delay_model("constant"), 1);
  sim.add_node(std::make_unique<RecordingActor>());
  auto crashed = std::make_unique<TimerActor>();
  auto* node1 = crashed.get();
  sim.add_node(std::move(crashed));

  FaultPlanConfig config;
  config.crashes.push_back({1, 5, 50});
  FaultPlan plan(config);
  sim.set_fault_injector(&plan);

  // Arrives at t=10+10=20: inside [5, 50), discarded. The t=15 timer too.
  sim.schedule_call(10, [&] { sim.send(0, 1, 200, {}); });
  // Arrives at t=60+10: after restart, delivered (state survived).
  sim.schedule_call(60, [&] { sim.send(0, 1, 200, {}); });
  sim.run();

  EXPECT_EQ(node1->messages, 1);
  EXPECT_EQ(node1->timers, 0);
  EXPECT_EQ(plan.stats().crash_discards, 2u);
}

TEST(SimulatorFaults, DetachedInjectorKeepsRunByteIdentical) {
  // A plan whose windows never overlap the run must not change anything:
  // the injector draws from its own rng, so the simulator's stream — and
  // therefore every delivery time — is untouched.
  auto run = [](bool with_inert_plan) {
    sim::Simulator sim(sim::make_delay_model("lan"), 42);
    sim.add_node(std::make_unique<RecordingActor>());
    auto receiver = std::make_unique<RecordingActor>();
    auto* rx = receiver.get();
    sim.add_node(std::move(receiver));
    FaultPlanConfig config;
    config.crashes.push_back({1, 1u << 20, 0});  // far beyond the run
    FaultPlan plan(config);
    if (with_inert_plan) sim.set_fault_injector(&plan);
    for (int i = 0; i < 10; ++i) {
      sim.schedule_call(i, [&sim, i] {
        sim.send(0, 1, 200, {static_cast<std::uint8_t>(i)});
      });
    }
    sim.run();
    std::vector<sim::SimTime> times;
    for (const auto& d : rx->deliveries) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run(false), run(true));
}

// ------------------------------------------- ring-buffer sink accounting

TEST(RingBufferSink, ExportsTotalAndDroppedCounters) {
  obs::RingBufferSink sink(2);
  for (int i = 0; i < 5; ++i) {
    sink.on_event({obs::TraceEventType::kMessageSend,
                   static_cast<std::uint64_t>(i), 0, 1, 200, 0, 0});
  }
  EXPECT_EQ(sink.total(), 5u);
  EXPECT_EQ(sink.dropped(), 3u);
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].time, 3u);  // newest two retained

  obs::Registry registry;
  sink.export_metrics(registry);
  EXPECT_EQ(registry.counter("trace_events_total").value(), 5u);
  EXPECT_EQ(registry.counter("trace_events_dropped").value(), 3u);
  // set(), not inc(): re-export stays idempotent.
  sink.export_metrics(registry);
  EXPECT_EQ(registry.counter("trace_events_total").value(), 5u);
}

TEST(RingBufferSink, ExportBeforeOverflowReportsZeroDropped) {
  obs::RingBufferSink sink(8);
  sink.on_event({obs::TraceEventType::kMessageSend, 1, 0, 1, 200, 0, 0});
  obs::Registry registry;
  sink.export_metrics(registry);
  EXPECT_EQ(registry.counter("trace_events_total").value(), 1u);
  EXPECT_EQ(registry.counter("trace_events_dropped").value(), 0u);
}

}  // namespace
}  // namespace mocc::fault
