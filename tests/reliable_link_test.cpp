// Reliable-delivery layer (src/fault/reliable_link.{hpp,cpp}):
// exactly-once delivery over a dropping/duplicating network, receiver
// dedup, the exponential backoff schedule, and bounded-retry exhaustion
// reporting.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "fault/reliable_link.hpp"
#include "obs/trace.hpp"
#include "sim/delay.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace mocc::fault {
namespace {

/// Hosts one ReliableLink endpoint; queues sends issued at start and
/// records upward deliveries.
class LinkHost final : public sim::Actor {
 public:
  explicit LinkHost(ReliableLink::Options options = {}) : link_(options) {
    link_.set_deliver([this](sim::Context&, const sim::Message& message) {
      delivered.push_back(message);
    });
  }

  void queue_send(sim::NodeId to, std::uint32_t kind,
                  std::vector<std::uint8_t> payload) {
    outbox_.push_back({to, kind, std::move(payload)});
  }

  void on_start(sim::Context& ctx) override {
    for (auto& out : outbox_) {
      link_.send(ctx, out.to, out.kind, std::move(out.payload));
    }
    outbox_.clear();
  }

  void on_message(sim::Context& ctx, const sim::Message& message) override {
    EXPECT_TRUE(link_.on_message(ctx, message))
        << "foreign kind " << message.kind;
  }

  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override {
    EXPECT_TRUE(link_.on_timer(ctx, timer_id));
  }

  ReliableLink& link() { return link_; }
  std::vector<sim::Message> delivered;

 private:
  struct Outbound {
    sim::NodeId to;
    std::uint32_t kind;
    std::vector<std::uint8_t> payload;
  };
  ReliableLink link_;
  std::vector<Outbound> outbox_;
};

std::vector<std::uint8_t> payload_of(std::uint64_t value) {
  util::ByteWriter w;
  w.put_u64(value);
  return w.take();
}

std::uint64_t value_of(const sim::Message& message) {
  util::ByteReader r(message.payload);
  return r.get_u64();
}

TEST(ReliableLink, ExactlyOnceUnderHeavyDrops) {
  sim::Simulator sim(sim::make_delay_model("lan"), 5);
  auto sender = std::make_unique<LinkHost>();
  auto receiver = std::make_unique<LinkHost>();
  auto* tx = sender.get();
  auto* rx = receiver.get();
  constexpr int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    tx->queue_send(1, 200, payload_of(static_cast<std::uint64_t>(i)));
  }
  sim.add_node(std::move(sender));
  sim.add_node(std::move(receiver));

  FaultPlanConfig config;
  config.seed = 5;
  config.default_link.drop_rate = 0.3;
  FaultPlan plan(config);
  sim.set_fault_injector(&plan);
  sim.run();

  // Every message arrives exactly once despite 30% loss in BOTH
  // directions (data and acks).
  ASSERT_EQ(rx->delivered.size(), static_cast<std::size_t>(kMessages));
  std::vector<bool> seen(kMessages, false);
  for (const auto& message : rx->delivered) {
    EXPECT_EQ(message.kind, 200u);
    EXPECT_EQ(message.from, 0u);
    const auto value = value_of(message);
    ASSERT_LT(value, static_cast<std::uint64_t>(kMessages));
    EXPECT_FALSE(seen[value]) << "value " << value << " delivered twice";
    seen[value] = true;
  }
  EXPECT_GT(plan.stats().drops, 0u);              // the network really dropped
  EXPECT_GT(tx->link().stats().retransmits, 0u);  // and the link recovered
  EXPECT_TRUE(tx->link().failed().empty());
  EXPECT_EQ(tx->link().in_flight(), 0u);  // everything acked by drain time
}

TEST(ReliableLink, NetworkDuplicatesAreSuppressed) {
  sim::Simulator sim(sim::make_delay_model("lan"), 3);
  auto sender = std::make_unique<LinkHost>();
  auto receiver = std::make_unique<LinkHost>();
  auto* tx = sender.get();
  auto* rx = receiver.get();
  constexpr int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    tx->queue_send(1, 201, payload_of(static_cast<std::uint64_t>(i)));
  }
  sim.add_node(std::move(sender));
  sim.add_node(std::move(receiver));

  FaultPlanConfig config;
  config.seed = 3;
  config.default_link.duplicate_rate = 1.0;  // every frame arrives twice
  FaultPlan plan(config);
  sim.set_fault_injector(&plan);
  sim.run();

  ASSERT_EQ(rx->delivered.size(), static_cast<std::size_t>(kMessages));
  EXPECT_GT(rx->link().stats().duplicates_suppressed, 0u);
  EXPECT_EQ(rx->link().stats().delivered,
            static_cast<std::uint64_t>(kMessages));
}

TEST(ReliableLink, BackoffScheduleDoublesAndCaps) {
  // Black-hole the data direction so no ack ever arrives; the
  // retransmit trace then exposes the full backoff schedule.
  ReliableLink::Options options;
  options.initial_rto = 16;
  options.backoff = 2.0;
  options.max_rto = 64;
  options.max_retransmits = 5;

  sim::Simulator sim(sim::make_delay_model("constant"), 1);
  auto sender = std::make_unique<LinkHost>(options);
  auto* tx = sender.get();
  tx->queue_send(1, 200, payload_of(7));
  sim.add_node(std::move(sender));
  sim.add_node(std::make_unique<LinkHost>(options));

  FaultPlanConfig config;
  config.link_overrides.push_back({0, 1, LinkFaults{1.0, 0.0, 0.0, 0}});
  FaultPlan plan(config);
  sim.set_fault_injector(&plan);
  obs::RingBufferSink sink(64);
  sim.set_trace_sink(&sink);
  sim.run();

  std::vector<std::uint64_t> retransmit_times;
  for (const auto& event : sink.events()) {
    if (event.type == obs::TraceEventType::kLinkRetransmit) {
      retransmit_times.push_back(event.time);
    }
  }
  // Send at t=0: resends at 16, then +32, +64, +64 (capped), +64.
  ASSERT_EQ(retransmit_times.size(), 5u);
  EXPECT_EQ(retransmit_times[0], 16u);
  EXPECT_EQ(retransmit_times[1] - retransmit_times[0], 32u);
  EXPECT_EQ(retransmit_times[2] - retransmit_times[1], 64u);
  EXPECT_EQ(retransmit_times[3] - retransmit_times[2], 64u);
  EXPECT_EQ(retransmit_times[4] - retransmit_times[3], 64u);
}

TEST(ReliableLink, RetryBudgetExhaustionIsReportedNeverSilent) {
  ReliableLink::Options options;
  options.initial_rto = 8;
  options.max_retransmits = 3;

  sim::Simulator sim(sim::make_delay_model("constant"), 1);
  auto sender = std::make_unique<LinkHost>(options);
  auto* tx = sender.get();
  tx->queue_send(1, 205, payload_of(9));
  sim.add_node(std::move(sender));
  sim.add_node(std::make_unique<LinkHost>(options));

  FaultPlanConfig config;
  config.default_link.drop_rate = 1.0;  // nothing ever gets through
  FaultPlan plan(config);
  sim.set_fault_injector(&plan);
  sim.run();

  ASSERT_EQ(tx->link().failed().size(), 1u);
  const FailedSend& failed = tx->link().failed()[0];
  EXPECT_EQ(failed.to, 1u);
  EXPECT_EQ(failed.seq, 1u);
  EXPECT_EQ(failed.kind, 205u);  // the inner kind, not kLinkData
  EXPECT_EQ(failed.attempts, options.max_retransmits + 1);
  EXPECT_EQ(tx->link().stats().exhausted, 1u);
  EXPECT_EQ(tx->link().stats().retransmits, options.max_retransmits);
  EXPECT_EQ(tx->link().in_flight(), 0u);  // gave up: no longer pending
}

TEST(ReliableLink, AckLossDoesNotCauseDuplicateDelivery) {
  // Black-hole only the ack direction: the receiver gets (and delivers)
  // the data, the sender never learns and exhausts its budget — but the
  // upper layer at the receiver still sees the message exactly once.
  ReliableLink::Options options;
  options.initial_rto = 8;
  options.max_retransmits = 4;

  sim::Simulator sim(sim::make_delay_model("constant"), 2);
  auto sender = std::make_unique<LinkHost>(options);
  auto receiver = std::make_unique<LinkHost>(options);
  auto* tx = sender.get();
  auto* rx = receiver.get();
  tx->queue_send(1, 210, payload_of(11));
  sim.add_node(std::move(sender));
  sim.add_node(std::move(receiver));

  FaultPlanConfig config;
  config.link_overrides.push_back({1, 0, LinkFaults{1.0, 0.0, 0.0, 0}});
  FaultPlan plan(config);
  sim.set_fault_injector(&plan);
  sim.run();

  ASSERT_EQ(rx->delivered.size(), 1u);
  EXPECT_EQ(value_of(rx->delivered[0]), 11u);
  // Every retransmit was received, acked (into the black hole), deduped.
  EXPECT_EQ(rx->link().stats().duplicates_suppressed,
            static_cast<std::uint64_t>(options.max_retransmits));
  EXPECT_EQ(rx->link().stats().acks_sent, options.max_retransmits + 1u);
  EXPECT_EQ(tx->link().stats().exhausted, 1u);
}

TEST(ReliableLink, SharedStatsAggregateAcrossEndpoints) {
  LinkStats shared;
  // rto above the constant-delay RTT (20) so the clean network truly
  // produces zero retransmits.
  ReliableLink::Options options;
  options.initial_rto = 64;
  sim::Simulator sim(sim::make_delay_model("constant"), 4);
  auto a = std::make_unique<LinkHost>(options);
  auto b = std::make_unique<LinkHost>(options);
  a->link().set_shared_stats(&shared);
  b->link().set_shared_stats(&shared);
  a->queue_send(1, 200, payload_of(1));
  b->queue_send(0, 200, payload_of(2));
  sim.add_node(std::move(a));
  sim.add_node(std::move(b));
  sim.run();

  EXPECT_EQ(shared.data_sent, 2u);
  EXPECT_EQ(shared.delivered, 2u);
  EXPECT_EQ(shared.acks_sent, 2u);
  EXPECT_EQ(shared.retransmits, 0u);  // clean network, rto never fires...
}

TEST(ReliableLink, ForeignKindsAndTimersAreNotConsumed) {
  ReliableLink link;
  sim::Simulator sim(sim::make_delay_model("constant"), 1);
  sim::Context ctx(sim, 0);
  sim::Message foreign;
  foreign.from = 1;
  foreign.to = 0;
  foreign.kind = 200;  // outside [kLinkKindFirst, kLinkKindLast]
  EXPECT_FALSE(link.on_message(ctx, foreign));
  EXPECT_FALSE(link.on_timer(ctx, 42));  // untagged timer id
}

TEST(ReliableLink, PerDestinationSequencesAreIndependent) {
  sim::Simulator sim(sim::make_delay_model("lan"), 6);
  auto sender = std::make_unique<LinkHost>();
  auto* tx = sender.get();
  for (int i = 0; i < 5; ++i) {
    tx->queue_send(1, 200, payload_of(static_cast<std::uint64_t>(i)));
    tx->queue_send(2, 200, payload_of(static_cast<std::uint64_t>(100 + i)));
  }
  sim.add_node(std::move(sender));
  auto rx1 = std::make_unique<LinkHost>();
  auto rx2 = std::make_unique<LinkHost>();
  auto* r1 = rx1.get();
  auto* r2 = rx2.get();
  sim.add_node(std::move(rx1));
  sim.add_node(std::move(rx2));
  sim.run();

  EXPECT_EQ(r1->delivered.size(), 5u);
  EXPECT_EQ(r2->delivered.size(), 5u);
  for (const auto& message : r1->delivered) EXPECT_LT(value_of(message), 5u);
  for (const auto& message : r2->delivered) EXPECT_GE(value_of(message), 100u);
}

}  // namespace
}  // namespace mocc::fault
