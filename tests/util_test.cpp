// Unit tests for src/util: rng, stats, timestamps, relations, bytes, cli,
// table.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "util/bytes.hpp"
#include "util/cli.hpp"
#include "util/relation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timestamp.hpp"

namespace mocc::util {
namespace {

// ------------------------------------------------------------------ Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyUnbiased) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.next_bool(0.5) ? 1 : 0;
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(17);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.next_exponential(10.0);
  EXPECT_NEAR(total / n, 10.0, 0.5);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Zipf, UniformWhenExponentZero) {
  Rng rng(3);
  ZipfGenerator zipf(10, 0.0);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[zipf.next(rng)];
  for (const auto& [k, c] : counts) {
    EXPECT_LT(k, 10u);
    EXPECT_NEAR(c, 1000, 200);
  }
}

TEST(Zipf, SkewFavorsSmallRanks) {
  Rng rng(3);
  ZipfGenerator zipf(100, 1.0);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.next(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(Zipf, SingleElementAlwaysZero) {
  Rng rng(1);
  ZipfGenerator zipf(1, 1.2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(zipf.next(rng), 0u);
}

TEST(RandomPermutation, IsPermutation) {
  Rng rng(31);
  const auto perm = random_permutation(20, rng);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

// ---------------------------------------------------------------- stats

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
}

TEST(Summary, MergeCombinesSamples) {
  Summary a;
  Summary b;
  a.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(42);
  EXPECT_DOUBLE_EQ(s.percentile(37), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, BriefMentionsCount) {
  Summary s;
  s.add(1);
  EXPECT_NE(s.brief().find("n=1"), std::string::npos);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0, 10, 5);
  h.add(-1);
  h.add(0);
  h.add(1.9);
  h.add(5);
  h.add(10);
  h.add(100);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0 and 1.9
  EXPECT_EQ(h.bucket(2), 1u);  // 5
}

TEST(Histogram, RenderIncludesBars) {
  Histogram h(0, 4, 2);
  h.add(1);
  h.add(1);
  h.add(3);
  const std::string render = h.render(10);
  EXPECT_NE(render.find("#"), std::string::npos);
}

// ----------------------------------------------------------- timestamps

TEST(VersionVector, IncrementAndIndex) {
  VersionVector ts(3);
  ts.increment(1);
  ts.increment(1);
  ts.increment(2);
  EXPECT_EQ(ts[0], 0u);
  EXPECT_EQ(ts[1], 2u);
  EXPECT_EQ(ts[2], 1u);
}

TEST(VersionVector, PointwiseOrders) {
  VersionVector a(2);
  VersionVector b(2);
  b.increment(0);
  EXPECT_TRUE(a.pointwise_leq(b));
  EXPECT_TRUE(a.pointwise_less(b));
  EXPECT_FALSE(b.pointwise_leq(a));
  EXPECT_TRUE(a.pointwise_leq(a));
  EXPECT_FALSE(a.pointwise_less(a));
}

TEST(VersionVector, IncomparableVectors) {
  VersionVector a(2);
  VersionVector b(2);
  a.increment(0);
  b.increment(1);
  EXPECT_FALSE(a.pointwise_leq(b));
  EXPECT_FALSE(b.pointwise_leq(a));
  EXPECT_FALSE(a.comparable(b));
}

TEST(VersionVector, LexCompare) {
  VersionVector a(2);
  VersionVector b(2);
  a.increment(0);
  b.increment(1);
  EXPECT_EQ(a.lex_compare(b), 1);   // (1,0) > (0,1)
  EXPECT_EQ(b.lex_compare(a), -1);
  EXPECT_EQ(a.lex_compare(a), 0);
}

TEST(VersionVector, MergeMaxIsJoin) {
  VersionVector a(2);
  VersionVector b(2);
  a.increment(0);
  b.increment(1);
  a.merge_max(b);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 1u);
}

TEST(VersionVector, FromEntriesRoundTrip) {
  const auto ts = VersionVector::from_entries({3, 0, 7});
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0], 3u);
  EXPECT_EQ(ts[2], 7u);
}

// ------------------------------------------------------------ relations

TEST(BitRelation, AddHas) {
  BitRelation r(70);  // cross the 64-bit word boundary
  r.add(0, 69);
  r.add(69, 1);
  EXPECT_TRUE(r.has(0, 69));
  EXPECT_TRUE(r.has(69, 1));
  EXPECT_FALSE(r.has(1, 69));
  EXPECT_EQ(r.pair_count(), 2u);
}

TEST(BitRelation, TransitiveClosure) {
  BitRelation r(4);
  r.add(0, 1);
  r.add(1, 2);
  r.add(2, 3);
  const auto closed = r.transitive_closure();
  EXPECT_TRUE(closed.has(0, 3));
  EXPECT_TRUE(closed.has(0, 2));
  EXPECT_FALSE(closed.has(3, 0));
}

TEST(BitRelation, AcyclicityDetection) {
  BitRelation r(3);
  r.add(0, 1);
  r.add(1, 2);
  EXPECT_TRUE(r.is_acyclic());
  r.add(2, 0);
  EXPECT_FALSE(r.is_acyclic());
}

TEST(BitRelation, SelfLoopIsCycle) {
  BitRelation r(2);
  r.add(1, 1);
  EXPECT_FALSE(r.is_acyclic());
}

TEST(BitRelation, TopologicalOrderRespectsEdges) {
  BitRelation r(5);
  r.add(3, 1);
  r.add(1, 4);
  r.add(0, 2);
  const auto order = r.topological_order();
  ASSERT_TRUE(order.has_value());
  std::map<std::size_t, std::size_t> pos;
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[3], pos[1]);
  EXPECT_LT(pos[1], pos[4]);
  EXPECT_LT(pos[0], pos[2]);
}

TEST(BitRelation, TopologicalOrderNulloptOnCycle) {
  BitRelation r(3);
  r.add(0, 1);
  r.add(1, 0);
  EXPECT_FALSE(r.topological_order().has_value());
}

TEST(BitRelation, TotalOrderCheck) {
  BitRelation r(3);
  r.add(0, 1);
  r.add(1, 2);
  EXPECT_FALSE(r.closed_is_total_order());  // (0,2) missing before closure
  const auto closed = r.transitive_closure();
  EXPECT_TRUE(closed.closed_is_total_order());
}

TEST(BitRelation, MergeUnions) {
  BitRelation a(3);
  BitRelation b(3);
  a.add(0, 1);
  b.add(1, 2);
  a.merge(b);
  EXPECT_TRUE(a.has(0, 1));
  EXPECT_TRUE(a.has(1, 2));
}

TEST(BitRelation, SuccessorsPredecessorsDegrees) {
  BitRelation r(4);
  r.add(0, 2);
  r.add(1, 2);
  r.add(2, 3);
  EXPECT_EQ(r.successors(2), (std::vector<std::size_t>{3}));
  EXPECT_EQ(r.predecessors(2), (std::vector<std::size_t>{0, 1}));
  const auto indeg = r.in_degrees();
  EXPECT_EQ(indeg[2], 2u);
  EXPECT_EQ(indeg[0], 0u);
}

TEST(BitRelation, EmptyUniverse) {
  BitRelation r(0);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.pair_count(), 0u);
  EXPECT_TRUE(r.is_acyclic());
  EXPECT_TRUE(r.closed_is_total_order());  // vacuously
  const auto order = r.topological_order();
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
  EXPECT_TRUE(r.in_degrees().empty());
  BitRelation other(0);
  r.merge(other);  // merging empty universes is a no-op, not a crash
  EXPECT_EQ(r.pair_count(), 0u);
  const auto closed = r.transitive_closure();
  EXPECT_EQ(closed.size(), 0u);
}

TEST(BitRelation, SelfLoopCycleDetectedBeyondFirstWord) {
  // The self-loop bit sits in the second 64-bit word of its row.
  BitRelation r(130);
  r.add(100, 100);
  EXPECT_FALSE(r.is_acyclic());
  EXPECT_FALSE(r.topological_order().has_value());
}

TEST(BitRelation, TransitiveClosureOnAlreadyClosedInputIsIdempotent) {
  BitRelation r(6);
  r.add(0, 1);
  r.add(1, 2);
  r.add(3, 4);
  const auto once = r.transitive_closure();
  const auto twice = once.transitive_closure();
  ASSERT_EQ(once.size(), twice.size());
  EXPECT_EQ(once.pair_count(), twice.pair_count());
  for (std::size_t i = 0; i < once.size(); ++i) {
    for (std::size_t j = 0; j < once.size(); ++j) {
      EXPECT_EQ(once.has(i, j), twice.has(i, j)) << i << "," << j;
    }
  }
}

TEST(BitRelation, LargeUniverseChainAcrossWordBoundary) {
  // A 130-element chain spans three 64-bit words per row; the closure
  // must carry bits across all word boundaries.
  constexpr std::size_t kN = 130;
  BitRelation r(kN);
  for (std::size_t i = 0; i + 1 < kN; ++i) r.add(i, i + 1);
  const auto closed = r.transitive_closure();
  EXPECT_TRUE(closed.has(0, kN - 1));
  EXPECT_TRUE(closed.has(63, 64));
  EXPECT_TRUE(closed.has(0, 127));
  EXPECT_FALSE(closed.has(kN - 1, 0));
  // i < j ordered for all pairs: n*(n-1)/2 pairs, and a total order.
  EXPECT_EQ(closed.pair_count(), kN * (kN - 1) / 2);
  EXPECT_TRUE(closed.closed_is_total_order());
  const auto order = r.topological_order();
  ASSERT_TRUE(order.has_value());
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ((*order)[i], i);
}

#if GTEST_HAS_DEATH_TEST
TEST(BitRelationDeath, AddOutOfRangeAborts) {
  BitRelation r(4);
  EXPECT_DEATH(r.add(4, 0), "outside the universe");
  EXPECT_DEATH(r.add(0, 4), "outside the universe");
}

TEST(BitRelationDeath, HasOutOfRangeAborts) {
  const BitRelation r(4);
  EXPECT_DEATH((void)r.has(0, 7), "outside the universe");
}

TEST(BitRelationDeath, MergeMismatchedUniversesAborts) {
  BitRelation a(4);
  const BitRelation b(5);
  EXPECT_DEATH(a.merge(b), "universe sizes disagree");
}

TEST(BitRelationDeath, SuccessorsPredecessorsOutOfRangeAbort) {
  const BitRelation r(3);
  EXPECT_DEATH((void)r.successors(3), "outside the universe");
  EXPECT_DEATH((void)r.predecessors(9), "outside the universe");
}
#endif  // GTEST_HAS_DEATH_TEST

// ---------------------------------------------------------------- bytes

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.put_u8(7);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_string("hello");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, RoundTripVectors) {
  ByteWriter w;
  w.put_u64_vector({1, 2, 3});
  w.put_i64_vector({-1, 0, 1});
  w.put_u32_vector({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u64_vector(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.get_i64_vector(), (std::vector<std::int64_t>{-1, 0, 1}));
  EXPECT_TRUE(r.get_u32_vector().empty());
}

TEST(Bytes, EmptyString) {
  ByteWriter w;
  w.put_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
}

// ------------------------------------------------------------------ cli

TEST(Cli, ParsesEqualsAndSpaceForms) {
  // Note: a bare boolean flag directly before a positional would be
  // ambiguous (`--flag pos1` reads as --flag=pos1); positionals come
  // first or booleans use --flag=true.
  const char* argv[] = {"prog", "--n=5", "--name", "alice", "pos1", "--flag"};
  CliArgs args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 0), 5);
  EXPECT_EQ(args.get_string("name", ""), "alice");
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, Fallbacks) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, UnusedDetection) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  CliArgs args(3, const_cast<char**>(argv));
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::uint64_t>(7)), "7");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-7)), "-7");
}

}  // namespace
}  // namespace mocc::util
