// Atomic broadcast properties: validity, agreement, total order —
// checked for both algorithms across delay models and seeds (the paper's
// §5 protocols inherit their correctness from these guarantees).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "abcast/abcast.hpp"
#include "abcast/isis.hpp"
#include "abcast/sequencer.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace mocc::abcast {
namespace {

/// Hosts an AtomicBroadcast instance and logs deliveries; broadcasts a
/// scripted number of its own messages at start.
class AbcastHarness final : public sim::Actor {
 public:
  AbcastHarness(std::unique_ptr<AtomicBroadcast> layer, int broadcasts)
      : layer_(std::move(layer)), broadcasts_(broadcasts) {
    layer_->set_deliver([this](sim::Context&, sim::NodeId origin,
                               const std::vector<std::uint8_t>& payload) {
      util::ByteReader r(payload);
      delivered.emplace_back(origin, r.get_u64());
    });
  }

  void on_start(sim::Context& ctx) override {
    layer_->on_start(ctx);
    for (int i = 0; i < broadcasts_; ++i) {
      util::ByteWriter w;
      w.put_u64(static_cast<std::uint64_t>(i));
      layer_->broadcast(ctx, w.take());
    }
  }

  void on_message(sim::Context& ctx, const sim::Message& message) override {
    ASSERT_TRUE(layer_->on_message(ctx, message));
  }

  std::vector<std::pair<sim::NodeId, std::uint64_t>> delivered;

 private:
  std::unique_ptr<AtomicBroadcast> layer_;
  int broadcasts_;
};

struct Params {
  std::string algorithm;
  std::string delay;
  std::uint64_t seed;
  std::size_t nodes;
  int broadcasts_per_node;
};

class AbcastProperties : public ::testing::TestWithParam<Params> {};

TEST_P(AbcastProperties, ValidityAgreementTotalOrder) {
  const Params& p = GetParam();
  sim::Simulator sim(sim::make_delay_model(p.delay), p.seed);
  std::vector<AbcastHarness*> harnesses;
  for (std::size_t i = 0; i < p.nodes; ++i) {
    auto harness = std::make_unique<AbcastHarness>(
        make_abcast_factory(p.algorithm)(), p.broadcasts_per_node);
    harnesses.push_back(harness.get());
    sim.add_node(std::move(harness));
  }
  sim.run();

  const std::size_t expected = p.nodes * p.broadcasts_per_node;
  // Validity + agreement: every node delivers every broadcast exactly once.
  for (const auto* h : harnesses) {
    ASSERT_EQ(h->delivered.size(), expected);
    std::map<std::pair<sim::NodeId, std::uint64_t>, int> counts;
    for (const auto& d : h->delivered) ++counts[d];
    for (const auto& [key, count] : counts) EXPECT_EQ(count, 1);
  }
  // Total order: identical delivery sequence everywhere.
  for (std::size_t i = 1; i < harnesses.size(); ++i) {
    EXPECT_EQ(harnesses[i]->delivered, harnesses[0]->delivered)
        << "node " << i << " diverged from node 0";
  }
  // Note: per-sender FIFO is deliberately NOT asserted — with reordering
  // channels neither algorithm provides it (two in-flight broadcasts from
  // one sender can be sequenced in either order), and the §5 protocols
  // never need it: a process has at most one update in flight.
}

std::vector<Params> make_params() {
  std::vector<Params> all;
  for (const char* algorithm : {"sequencer", "isis"}) {
    for (const char* delay : {"constant", "lan", "reorder", "exponential"}) {
      for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
        all.push_back(Params{algorithm, delay, seed, 4, 5});
      }
    }
    // Edge sizes.
    all.push_back(Params{algorithm, "reorder", 11, 1, 5});
    all.push_back(Params{algorithm, "reorder", 13, 2, 10});
    all.push_back(Params{algorithm, "lan", 17, 8, 3});
  }
  return all;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AbcastProperties, ::testing::ValuesIn(make_params()),
    [](const ::testing::TestParamInfo<Params>& info) {
      return info.param.algorithm + "_" + info.param.delay + "_s" +
             std::to_string(info.param.seed) + "_n" + std::to_string(info.param.nodes);
    });

// --------------------------------------------------------- specific cases

TEST(Sequencer, LocalSubmitCostsOnlyFanOut) {
  // A broadcast from the sequencer node itself: n-1 messages, no submit.
  sim::Simulator sim(sim::make_delay_model("constant"), 1);
  for (int i = 0; i < 3; ++i) {
    sim.add_node(std::make_unique<AbcastHarness>(
        std::make_unique<SequencerAbcast>(), i == 0 ? 1 : 0));
  }
  sim.run();
  EXPECT_EQ(sim.traffic().messages, 2u);  // fan-out only
}

TEST(Sequencer, RemoteSubmitAddsOneMessage) {
  sim::Simulator sim(sim::make_delay_model("constant"), 1);
  for (int i = 0; i < 3; ++i) {
    sim.add_node(std::make_unique<AbcastHarness>(
        std::make_unique<SequencerAbcast>(), i == 1 ? 1 : 0));
  }
  sim.run();
  EXPECT_EQ(sim.traffic().messages, 3u);  // submit + 2 fan-out
}

TEST(Isis, MessageComplexityThreePhases) {
  // One broadcast among n nodes: (n-1) proposes + (n-1) proposals +
  // (n-1) finals.
  constexpr std::size_t n = 5;
  sim::Simulator sim(sim::make_delay_model("constant"), 1);
  for (std::size_t i = 0; i < n; ++i) {
    sim.add_node(std::make_unique<AbcastHarness>(std::make_unique<IsisAbcast>(),
                                                 i == 0 ? 1 : 0));
  }
  sim.run();
  EXPECT_EQ(sim.traffic().messages, 3 * (n - 1));
}

TEST(Isis, SingleNodeDeliversImmediately) {
  sim::Simulator sim(sim::make_delay_model("constant"), 1);
  auto harness =
      std::make_unique<AbcastHarness>(std::make_unique<IsisAbcast>(), 3);
  auto* raw = harness.get();
  sim.add_node(std::move(harness));
  sim.run();
  ASSERT_EQ(raw->delivered.size(), 3u);
  EXPECT_EQ(sim.traffic().messages, 0u);
}

TEST(Isis, HeavyReorderStressManySeeds) {
  // The FINAL-overtakes-PROPOSE path and the minimal-pending delivery
  // rule under adversarial reordering, across many seeds.
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    sim::Simulator sim(sim::make_delay_model("reorder"), seed);
    std::vector<AbcastHarness*> harnesses;
    for (int i = 0; i < 3; ++i) {
      auto h = std::make_unique<AbcastHarness>(std::make_unique<IsisAbcast>(), 4);
      harnesses.push_back(h.get());
      sim.add_node(std::move(h));
    }
    sim.run();
    ASSERT_EQ(harnesses[0]->delivered.size(), 12u) << "seed " << seed;
    EXPECT_EQ(harnesses[1]->delivered, harnesses[0]->delivered) << "seed " << seed;
    EXPECT_EQ(harnesses[2]->delivered, harnesses[0]->delivered) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mocc::abcast
