// Golden-file and determinism tests for the BENCH_results.json artifact
// (bench/experiments.{hpp,cpp}).
//
// The golden file pins the byte-exact serialization of a fixed-seed E1
// smoke run: any change to the schema, the metric definitions, the JSON
// formatting, or the simulation's determinism shows up as a diff here.
// To regenerate after an INTENDED change:
//
//   MOCC_UPDATE_GOLDEN=1 build/tests/bench_report_test
//
// then review the diff of tests/golden/e1_smoke.json and bump
// kBenchSchemaVersion if the record shape changed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "experiments.hpp"

namespace mocc::bench {
namespace {

SuiteOptions smoke_options(const std::string& experiment) {
  SuiteOptions options;
  options.smoke = true;
  options.only = {experiment};
  return options;
}

std::string render_smoke(const std::string& experiment) {
  const SuiteOptions options = smoke_options(experiment);
  const auto records = run_suite(options);
  std::ostringstream out;
  write_records_json(out, records, options);
  return out.str();
}

std::string render_e1_smoke() { return render_smoke("E1"); }

/// Shared golden-file check: regenerates under MOCC_UPDATE_GOLDEN=1,
/// otherwise requires byte equality.
void expect_matches_golden(const std::string& rendered, const std::string& file) {
  const std::string golden_path = std::string(MOCC_GOLDEN_DIR) + "/" + file;

  if (std::getenv("MOCC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << rendered;
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " — regenerate with MOCC_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(rendered, golden.str())
      << "BENCH_results.json bytes drifted from the golden " << file
      << "; if intended, regenerate with MOCC_UPDATE_GOLDEN=1 and review "
         "the diff (bump kBenchSchemaVersion on shape changes)";
}

TEST(BenchReport, FixedSeedRerunIsByteIdentical) {
  EXPECT_EQ(render_e1_smoke(), render_e1_smoke());
}

TEST(BenchReport, MatchesGoldenE1Smoke) {
  expect_matches_golden(render_e1_smoke(), "e1_smoke.json");
}

/// Pins the E8 fault-sweep record bytes — including the conditional
/// "schema_minor" header that only E8-bearing artifacts carry.
TEST(BenchReport, MatchesGoldenE8Smoke) {
  expect_matches_golden(render_smoke("E8"), "e8_smoke.json");
}

TEST(BenchReport, SchemaMinorOnlyWithFaultRecords) {
  // Pre-fault artifacts (no E8 record) must serialize exactly as minor 0
  // did; E8-bearing artifacts declare the additive revision.
  EXPECT_EQ(render_e1_smoke().find("schema_minor"), std::string::npos);
  EXPECT_NE(render_smoke("E8").find("\"schema_minor\": 1"), std::string::npos);
}

/// Pins the E9 batching-sweep record bytes, including the minor-3
/// header its batch-size series declares.
TEST(BenchReport, MatchesGoldenE9Smoke) {
  expect_matches_golden(render_smoke("E9"), "e9_smoke.json");
}

TEST(BenchReport, E9DeclaresBatchingSchemaMinor) {
  EXPECT_NE(render_smoke("E9").find("\"schema_minor\": 3"), std::string::npos);
}

/// Pins the E11 streaming-audit record bytes, including the minor-5
/// header its audit_* counter series declares.
TEST(BenchReport, MatchesGoldenE11Smoke) {
  expect_matches_golden(render_smoke("E11"), "e11_smoke.json");
}

TEST(BenchReport, E11DeclaresStreamingSchemaMinor) {
  EXPECT_NE(render_smoke("E11").find("\"schema_minor\": 5"), std::string::npos);
}

/// E11 sanity: every mode of every shape runs the same virtual-time
/// workload (the sink is pure observation, never scheduling), stream
/// records carry live-audit progress counters, and posthoc records
/// carry a green trace audit.
TEST(BenchReport, E11StreamingModesAgreeOnVirtualTime) {
  const auto records = run_suite(smoke_options("E11"));
  ASSERT_FALSE(records.empty());
  std::map<std::string, double> shape_time;
  for (const auto& record : records) {
    EXPECT_EQ(record.audit, ExperimentRecord::Audit::kOk) << record.name;
    const std::string shape = record.config.at("faults");
    const double virtual_time =
        record.metrics.gauges().at("virtual_time").value();
    auto [it, inserted] = shape_time.emplace(shape, virtual_time);
    if (!inserted) {
      EXPECT_EQ(it->second, virtual_time) << record.name;
    }
    const auto& counters = record.metrics.counters();
    const std::string mode = record.config.at("audit_mode");
    if (mode == "stream") {
      ASSERT_TRUE(counters.contains("audit_mops")) << record.name;
      EXPECT_GT(counters.at("audit_mops").value(), 0u) << record.name;
      EXPECT_EQ(counters.at("audit_windows_failed").value(), 0u) << record.name;
      EXPECT_EQ(record.metrics.gauges().at("audit_verdict").value(), 0.0)
          << record.name;
    } else if (mode == "posthoc") {
      EXPECT_EQ(record.metrics.gauges().at("posthoc_audit_ok").value(), 1.0)
          << record.name;
      EXPECT_GT(counters.at("posthoc_audit_mops").value(), 0u) << record.name;
    }
  }
  EXPECT_EQ(shape_time.size(), 2u);
}

/// The E9 acceptance invariant: batched sequencer abcast at batch size
/// >= 8 cuts messages-per-update by at least 5x against the unbatched
/// baseline on the raw stack, with the audit green at every sweep point
/// and real group-commit accounting on the batched ones.
TEST(BenchReport, E9BatchingCutsMessagesPerUpdateFiveFold) {
  const auto records = run_suite(smoke_options("E9"));
  ASSERT_FALSE(records.empty());
  double raw_unbatched = 0.0;
  double raw_batched = 0.0;
  for (const auto& record : records) {
    EXPECT_EQ(record.audit, ExperimentRecord::Audit::kOk) << record.name;
    const auto& counters = record.metrics.counters();
    ASSERT_TRUE(counters.contains("batch_assigns")) << record.name;
    const bool batched = record.config.at("abcast_batch") != "1";
    if (batched) {
      EXPECT_GT(counters.at("batch_assigns").value(), 0u) << record.name;
      EXPECT_GT(counters.at("batch_flushes").value(), 0u) << record.name;
    } else {
      EXPECT_EQ(counters.at("batch_assigns").value(), 0u) << record.name;
    }
    if (record.config.at("link") == "off") {
      const double msg_per_op = record.metrics.gauges().at("msg_per_op").value();
      if (batched) {
        raw_batched = msg_per_op;
      } else {
        raw_unbatched = msg_per_op;
      }
    }
  }
  ASSERT_GT(raw_unbatched, 0.0);
  ASSERT_GT(raw_batched, 0.0);
  EXPECT_GE(raw_unbatched / raw_batched, 5.0)
      << "unbatched " << raw_unbatched << " vs batched " << raw_batched;
}

/// The E8 smoke sweep audits every point and must come back clean, with
/// the link-on points carrying real fault/link accounting.
TEST(BenchReport, E8SmokeAuditsPassAndCarryFaultMetrics) {
  const auto records = run_suite(smoke_options("E8"));
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    EXPECT_EQ(record.audit, ExperimentRecord::Audit::kOk) << record.name;
    const auto& counters = record.metrics.counters();
    ASSERT_TRUE(counters.contains("link_data")) << record.name;
    ASSERT_TRUE(counters.contains("fault_drops")) << record.name;
    EXPECT_EQ(counters.at("link_exhausted").value(), 0u) << record.name;
    if (record.config.at("link") == "on") {
      EXPECT_GT(counters.at("link_data").value(), 0u) << record.name;
    } else {
      EXPECT_EQ(counters.at("link_data").value(), 0u) << record.name;
    }
  }
}

TEST(BenchReport, SelectionFiltersExperiments) {
  SuiteOptions options;
  options.smoke = true;
  options.only = {"E4"};
  const auto records = run_suite(options);
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    EXPECT_EQ(record.experiment, "E4");
  }
  EXPECT_TRUE(experiment_selected(options, "E4"));
  EXPECT_FALSE(experiment_selected(options, "E1"));
}

/// The satellite fix for the old set_latency_counters bug: a run with an
/// empty latency class must still register that class's counters and
/// histogram with explicit zeros, so every record of an experiment has
/// the same keys.
TEST(BenchReport, EmptyLatencyClassKeepsSchemaStableZeros) {
  protocols::WorkloadReport update_only;
  update_only.updates = 5;
  update_only.update_latency.add(10.0);
  update_only.queries = 0;  // no query ever completed

  obs::Registry registry;
  register_latency_metrics(registry, update_only);

  EXPECT_EQ(registry.counter("queries").value(), 0u);
  EXPECT_EQ(registry.counter("updates").value(), 5u);
  const auto& histograms = registry.histograms();
  ASSERT_TRUE(histograms.contains("q"));
  ASSERT_TRUE(histograms.contains("u"));
  EXPECT_EQ(histograms.at("q").count(), 0u);
  EXPECT_EQ(histograms.at("q").mean(), 0.0);
  EXPECT_EQ(histograms.at("q").percentile(99.0), 0.0);
  EXPECT_EQ(histograms.at("u").count(), 1u);

  // And the JSON record therefore always carries both classes.
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  registry.write_json_fields(json);
  json.end_object();
  EXPECT_NE(out.str().find("\"q\":{\"count\":0"), std::string::npos);
}

/// Pins the E10 multicore-engine record bytes. Smoke E10 runs the
/// single-thread points only and zeroes the wall-clock gauge, so the
/// record is as deterministic as every simulator record despite the
/// engine using real threads in full mode.
TEST(BenchReport, MatchesGoldenE10Smoke) {
  expect_matches_golden(render_smoke("E10"), "e10_smoke.json");
}

TEST(BenchReport, E10DeclaresExecSchemaMinor) {
  EXPECT_NE(render_smoke("E10").find("\"schema_minor\": 4"), std::string::npos);
}

/// The E10 acceptance invariant at smoke scale: every point's merged
/// history passes the admissibility re-check (record.audit == kOk) and
/// carries the full exec counter set.
TEST(BenchReport, E10SmokeVerifiesAndCarriesExecMetrics) {
  const auto records = run_suite(smoke_options("E10"));
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    EXPECT_EQ(record.audit, ExperimentRecord::Audit::kOk) << record.name;
    const auto& counters = record.metrics.counters();
    ASSERT_TRUE(counters.contains("exec_committed")) << record.name;
    EXPECT_GT(counters.at("exec_committed").value(), 0u) << record.name;
    EXPECT_EQ(counters.at("exec_abandoned").value(), 0u) << record.name;
    EXPECT_GT(counters.at("exec_verify_windows").value(), 0u) << record.name;
    // Smoke records never carry wall clock — the gauge is pinned to 0.
    EXPECT_EQ(record.metrics.gauges().at("exec_tput_mops").value(), 0.0)
        << record.name;
  }
}

/// The zero-committed corner (e.g. an all-abort run under max_attempts):
/// register_exec_metrics must still register every counter, the
/// histogram, and both gauges with explicit zeros — same schema-stability
/// contract as register_latency_metrics above.
TEST(BenchReport, ZeroCommittedExecRunKeepsSchemaStableZeros) {
  exec::ExecResult empty;  // nothing attempted, nothing committed
  obs::Registry registry;
  register_exec_metrics(registry, empty, /*include_wallclock=*/true);

  EXPECT_EQ(registry.counter("exec_committed").value(), 0u);
  EXPECT_EQ(registry.counter("exec_abort_validation").value(), 0u);
  EXPECT_EQ(registry.counter("exec_abort_lock").value(), 0u);
  EXPECT_EQ(registry.counter("exec_abandoned").value(), 0u);
  const auto& histograms = registry.histograms();
  ASSERT_TRUE(histograms.contains("exec_retries"));
  EXPECT_EQ(histograms.at("exec_retries").count(), 0u);
  EXPECT_EQ(histograms.at("exec_retries").mean(), 0.0);
  const auto& gauges = registry.gauges();
  EXPECT_EQ(gauges.at("exec_abort_rate").value(), 0.0);  // 0/0 -> 0, not NaN
  EXPECT_EQ(gauges.at("exec_tput_mops").value(), 0.0);

  // And the keys serialize with explicit zeros rather than going absent.
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  registry.write_json_fields(json);
  json.end_object();
  EXPECT_NE(out.str().find("\"exec_retries\":{\"count\":0"), std::string::npos);
}

/// Audit verdicts surface in the records: the E7 smoke sweep audits
/// every run and must come back clean.
TEST(BenchReport, E7SmokeAuditsPass) {
  SuiteOptions options;
  options.smoke = true;
  options.only = {"E7"};
  const auto records = run_suite(options);
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    EXPECT_EQ(record.audit, ExperimentRecord::Audit::kOk) << record.name;
    const auto& gauges = record.metrics.gauges();
    ASSERT_TRUE(gauges.contains("audit_ok")) << record.name;
    EXPECT_EQ(gauges.at("audit_ok").value(), 1.0) << record.name;
  }
}

}  // namespace
}  // namespace mocc::bench
