// The concurrency boundary under real threads: sim::ParallelRunner,
// cross-thread Simulator::post injection, the internally synchronized
// ExecutionRecorder, and concurrent logging. These tests are what give
// the `tsan` preset (ThreadSanitizer) actual thread interleavings to
// examine — a single simulation is deliberately single-threaded.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/system.hpp"
#include "core/moperation.hpp"
#include "protocols/recorder.hpp"
#include "sim/delay.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace mocc {
namespace {

using api::System;
using api::SystemConfig;

// ------------------------------------------------------- ParallelRunner

TEST(ParallelRunner, RunsEveryJobExactlyOnce) {
  sim::ParallelRunner runner(4);
  constexpr std::size_t kJobs = 257;
  std::vector<std::atomic<int>> hits(kJobs);
  runner.run(kJobs, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelRunner, ZeroJobsIsANoop) {
  sim::ParallelRunner runner(4);
  runner.run(0, [](std::size_t) { FAIL() << "job ran"; });
}

TEST(ParallelRunner, SingleThreadPoolRunsInline) {
  sim::ParallelRunner runner(1);
  EXPECT_EQ(runner.threads(), 1u);
  const auto caller = std::this_thread::get_id();
  runner.run(3, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ParallelRunner, PropagatesFirstException) {
  sim::ParallelRunner runner(4);
  EXPECT_THROW(
      runner.run(64,
                 [](std::size_t i) {
                   if (i % 7 == 3) throw std::runtime_error("boom");
                 }),
      std::runtime_error);
  // The runner is reusable after a failed run.
  std::atomic<std::size_t> ran{0};
  runner.run(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8u);
}

// ------------------------------------- parallel end-to-end simulations

/// Redirects the logger to /dev/null and cranks the level to debug for
/// the test's lifetime, so concurrent simulations hammer the logging
/// mutex without spamming the terminal.
class NoisyLogCapture {
 public:
  NoisyLogCapture() : devnull_(std::fopen("/dev/null", "w")) {
    if (devnull_ != nullptr) util::Logger::set_stream(devnull_);
    previous_level_ = util::Logger::level();
    util::Logger::set_level(util::LogLevel::kDebug);
  }
  ~NoisyLogCapture() {
    util::Logger::set_level(previous_level_);
    util::Logger::set_stream(nullptr);
    if (devnull_ != nullptr) std::fclose(devnull_);
  }

 private:
  std::FILE* devnull_;
  util::LogLevel previous_level_ = util::LogLevel::kWarn;
};

TEST(ParallelSimulations, AuditStaysCleanAcrossProtocolsSeedsAndThreads) {
  NoisyLogCapture quiet;
  struct Point {
    const char* protocol;
    const char* broadcast;
    std::uint64_t seed;
  };
  std::vector<Point> grid;
  for (const char* protocol : {"mseq", "mlin", "mlin-narrow"}) {
    for (const char* broadcast : {"sequencer", "isis"}) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        grid.push_back({protocol, broadcast, seed});
      }
    }
  }

  sim::ParallelRunner runner(4);
  std::atomic<std::size_t> clean{0};
  runner.run(grid.size(), [&](std::size_t i) {
    SystemConfig config;
    config.num_processes = 3;
    config.num_objects = 4;
    config.protocol = grid[i].protocol;
    config.broadcast = grid[i].broadcast;
    config.delay = "reorder";
    config.seed = grid[i].seed;
    System system(config);
    protocols::WorkloadParams params;
    params.ops_per_process = 10;
    params.update_ratio = 0.5;
    system.run_workload(params);
    const auto audit = system.audit();
    EXPECT_TRUE(audit.ok) << grid[i].protocol << "/" << grid[i].broadcast << " seed "
                          << grid[i].seed << "\n"
                          << audit.to_string();
    if (audit.ok) clean.fetch_add(1);
  });
  EXPECT_EQ(clean.load(), grid.size());
}

// ------------------------------------------------- shared recorder

TEST(RecorderConcurrency, BeginAndCompleteFromManyThreads) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 200;
  protocols::ExecutionRecorder recorder(kThreads, /*num_objects=*/2);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t]() {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const auto id = recorder.begin(static_cast<core::ProcessId>(t), "op",
                                       /*invoke=*/core::Time{2 * i});
        std::vector<core::Operation> ops;
        ops.push_back(core::Operation::read(0, 0, core::kInitialMOp));
        recorder.complete(id, std::move(ops), /*response=*/core::Time{2 * i + 1},
                          util::VersionVector(2), std::nullopt);
        // The deque keeps references stable across concurrent begins.
        EXPECT_TRUE(recorder.record(id).completed);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(recorder.size(), kThreads * kOpsPerThread);
  EXPECT_TRUE(recorder.all_completed());
  EXPECT_EQ(recorder.build_history().size(), kThreads * kOpsPerThread);
}

// ------------------------------------------------- Simulator::post

class CountingActor final : public sim::Actor {
 public:
  void on_message(sim::Context&, const sim::Message&) override { ++messages_; }
  int messages() const { return messages_; }

 private:
  int messages_ = 0;
};

TEST(SimulatorPost, ClosuresPostedBeforeRunExecuteOnTheSimThread) {
  sim::Simulator sim(std::make_unique<sim::ConstantDelay>(1), /*seed=*/7);
  sim.add_node(std::make_unique<CountingActor>());
  int ran = 0;
  const auto sim_thread = std::this_thread::get_id();
  sim.post([&]() {
    ++ran;
    EXPECT_EQ(std::this_thread::get_id(), sim_thread);
  });
  sim.post([&]() { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorPost, InjectionRacesAgainstARunningSimulation) {
  sim::Simulator sim(std::make_unique<sim::ConstantDelay>(1), /*seed=*/11);
  const auto node = sim.add_node(std::make_unique<CountingActor>());

  constexpr std::size_t kPosters = 4;
  constexpr std::size_t kPostsEach = 50;
  // Non-atomic on purpose: posted closures run on the simulation thread
  // only, so this never races — ThreadSanitizer verifies that claim.
  std::size_t delivered = 0;
  std::vector<std::thread> posters;
  posters.reserve(kPosters);
  for (std::size_t t = 0; t < kPosters; ++t) {
    posters.emplace_back([&sim, &delivered, node]() {
      for (std::size_t i = 0; i < kPostsEach; ++i) {
        sim.post([&sim, &delivered, node]() {
          ++delivered;
          // Posted work may schedule follow-up events like any actor.
          sim.send(node, node, /*kind=*/1, {});
        });
        if (i % 16 == 0) std::this_thread::yield();
      }
    });
  }

  // Drive the simulation while the posters are still injecting; run()
  // returns whenever the queue momentarily drains, so spin until every
  // posted closure has been observed.
  while (true) {
    sim.run();
    if (delivered == kPosters * kPostsEach) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& poster : posters) poster.join();
  sim.run();  // drain the last self-sends

  EXPECT_EQ(delivered, kPosters * kPostsEach);
  auto& actor = static_cast<CountingActor&>(sim.actor(node));
  EXPECT_EQ(actor.messages(), static_cast<int>(kPosters * kPostsEach));
}

// ------------------------------------------------- concurrent logging

TEST(LoggerConcurrency, WritersOnManyThreadsSerializeThroughTheSink) {
  NoisyLogCapture quiet;
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t]() {
      for (int i = 0; i < 200; ++i) {
        MOCC_DEBUG() << "thread " << t << " line " << i;
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace mocc
