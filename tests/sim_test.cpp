// Tests for the discrete-event simulator and delay models.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/delay.hpp"
#include "sim/simulator.hpp"
#include "sim/wire_kinds.hpp"
#include "util/bytes.hpp"

namespace mocc::sim {
namespace {

/// Records everything it receives.
class Recorder final : public Actor {
 public:
  void on_message(Context&, const Message& message) override {
    received.push_back(message);
  }
  void on_timer(Context&, std::uint64_t timer_id) override {
    timers.push_back(timer_id);
  }
  std::vector<Message> received;
  std::vector<std::uint64_t> timers;
};

/// Sends a burst of numbered messages to node 1 at start.
class Burster final : public Actor {
 public:
  explicit Burster(int count) : count_(count) {}
  void on_start(Context& ctx) override {
    for (int i = 0; i < count_; ++i) {
      util::ByteWriter w;
      w.put_u32(static_cast<std::uint32_t>(i));
      ctx.send(1, /*kind=*/7, w.take());
    }
  }
  void on_message(Context&, const Message&) override {}

 private:
  int count_;
};

TEST(Simulator, DeliversMessages) {
  Simulator sim(std::make_unique<ConstantDelay>(5), 1);
  sim.add_node(std::make_unique<Burster>(3));
  const auto rx = sim.add_node(std::make_unique<Recorder>());
  sim.run();
  auto& recorder = dynamic_cast<Recorder&>(sim.actor(rx));
  EXPECT_EQ(recorder.received.size(), 3u);
  EXPECT_EQ(sim.now(), 5u);  // all delivered at t=5
}

TEST(Simulator, ConstantDelayPreservesFifo) {
  Simulator sim(std::make_unique<ConstantDelay>(5), 1);
  sim.add_node(std::make_unique<Burster>(10));
  const auto rx = sim.add_node(std::make_unique<Recorder>());
  sim.run();
  auto& recorder = dynamic_cast<Recorder&>(sim.actor(rx));
  for (std::size_t i = 0; i < recorder.received.size(); ++i) {
    util::ByteReader r(recorder.received[i].payload);
    EXPECT_EQ(r.get_u32(), i);  // same delay + seq tie-break = FIFO
  }
}

TEST(Simulator, ReorderDelayActuallyReorders) {
  Simulator sim(make_delay_model("reorder"), 12345);
  sim.add_node(std::make_unique<Burster>(50));
  const auto rx = sim.add_node(std::make_unique<Recorder>());
  sim.run();
  auto& recorder = dynamic_cast<Recorder&>(sim.actor(rx));
  ASSERT_EQ(recorder.received.size(), 50u);
  bool out_of_order = false;
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < recorder.received.size(); ++i) {
    util::ByteReader r(recorder.received[i].payload);
    const auto id = r.get_u32();
    if (i > 0 && id < prev) out_of_order = true;
    prev = id;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim(make_delay_model("uniform"), 777);
    sim.add_node(std::make_unique<Burster>(20));
    const auto rx = sim.add_node(std::make_unique<Recorder>());
    sim.run();
    auto& recorder = dynamic_cast<Recorder&>(sim.actor(rx));
    std::vector<std::uint32_t> order;
    for (const auto& m : recorder.received) {
      util::ByteReader r(m.payload);
      order.push_back(r.get_u32());
    }
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulator, TimersFire) {
  class TimerActor final : public Actor {
   public:
    void on_start(Context& ctx) override {
      ctx.set_timer(10, 1);
      ctx.set_timer(5, 2);
    }
    void on_message(Context&, const Message&) override {}
    void on_timer(Context& ctx, std::uint64_t id) override {
      fired.emplace_back(ctx.now(), id);
    }
    std::vector<std::pair<SimTime, std::uint64_t>> fired;
  };
  Simulator sim(std::make_unique<ConstantDelay>(1), 1);
  const auto node = sim.add_node(std::make_unique<TimerActor>());
  sim.run();
  auto& actor = dynamic_cast<TimerActor&>(sim.actor(node));
  ASSERT_EQ(actor.fired.size(), 2u);
  EXPECT_EQ(actor.fired[0], (std::pair<SimTime, std::uint64_t>{5, 2}));
  EXPECT_EQ(actor.fired[1], (std::pair<SimTime, std::uint64_t>{10, 1}));
}

TEST(Simulator, ScheduledCallsRunAtRequestedTime) {
  Simulator sim(std::make_unique<ConstantDelay>(1), 1);
  sim.add_node(std::make_unique<Recorder>());
  std::vector<SimTime> at;
  sim.schedule_call(30, [&] { at.push_back(sim.now()); });
  sim.schedule_call(10, [&] { at.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(at, (std::vector<SimTime>{10, 30}));
}

TEST(Simulator, MaxTimeStopsEarly) {
  Simulator sim(std::make_unique<ConstantDelay>(1), 1);
  sim.add_node(std::make_unique<Recorder>());
  bool ran = false;
  sim.schedule_call(100, [&] { ran = true; });
  sim.run(/*max_time=*/50);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, ResumesAfterMaxTimeWithoutLosingEvents) {
  Simulator sim(std::make_unique<ConstantDelay>(1), 1);
  sim.add_node(std::make_unique<Recorder>());
  bool ran = false;
  sim.schedule_call(100, [&] { ran = true; });
  sim.run(/*max_time=*/50);
  ASSERT_FALSE(ran);
  sim.run();  // resume: the event at t=100 must still fire
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, TrafficStatsCountMessagesAndBytes) {
  Simulator sim(std::make_unique<ConstantDelay>(2), 1);
  sim.add_node(std::make_unique<Burster>(4));
  sim.add_node(std::make_unique<Recorder>());
  sim.run();
  EXPECT_EQ(sim.traffic().messages, 4u);
  EXPECT_EQ(sim.traffic().bytes, 16u);  // 4 bytes each
  EXPECT_EQ(sim.traffic().messages_by_kind.at(7), 4u);
}

TEST(Simulator, SendToOthersSkipsSelf) {
  class Broadcaster final : public Actor {
   public:
    void on_start(Context& ctx) override { ctx.send_to_others(3, {}); }
    void on_message(Context&, const Message& m) override { received.push_back(m); }
    std::vector<Message> received;
  };
  Simulator sim(std::make_unique<ConstantDelay>(1), 1);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(sim.add_node(std::make_unique<Broadcaster>()));
  sim.run();
  for (const auto node : nodes) {
    auto& actor = dynamic_cast<Broadcaster&>(sim.actor(node));
    EXPECT_EQ(actor.received.size(), 3u);  // from every other node
    for (const auto& m : actor.received) EXPECT_NE(m.from, node);
  }
}

// ------------------------------------------------------------ wire kinds

TEST(WireKinds, RegistryPartitionsTheKindSpace) {
  EXPECT_TRUE(wire::kind_ranges_sorted_and_disjoint());
  // Historical values are load-bearing (golden bench artifacts key
  // traffic by numeric kind).
  EXPECT_EQ(wire::reliable_link_kind(0), 50u);
  EXPECT_EQ(wire::abcast_kind(0), 100u);
  EXPECT_EQ(wire::protocols_kind(0), 200u);
  EXPECT_EQ(wire::component_of(0), "app");
  EXPECT_EQ(wire::component_of(51), "reliable_link");
  EXPECT_EQ(wire::component_of(110), "abcast");
  EXPECT_EQ(wire::component_of(215), "protocols");
  EXPECT_EQ(wire::component_of(300), "unregistered");
  EXPECT_TRUE(wire::is_registered(wire::kProtocolsLast));
  EXPECT_FALSE(wire::is_registered(wire::kProtocolsLast + 1));
}

TEST(WireKinds, KindHelperAbortsOutsideTheRange) {
  // reliable_link owns [50, 99]: offset 50 would collide with abcast.
  EXPECT_DEATH((void)wire::reliable_link_kind(50), "outside the component");
}

/// Sends one message with an out-of-registry kind at start.
class RogueSender final : public Actor {
 public:
  void on_start(Context& ctx) override { ctx.send(1, /*kind=*/5000, {}); }
  void on_message(Context&, const Message&) override {}
};

TEST(WireKindsDeath, SimulatorRejectsUnregisteredKindInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "MOCC_DEBUG_ASSERT compiles away under NDEBUG";
#else
  EXPECT_DEATH(
      {
        Simulator sim(std::make_unique<ConstantDelay>(1), 1);
        sim.add_node(std::make_unique<RogueSender>());
        sim.add_node(std::make_unique<Recorder>());
        sim.run();
      },
      "is_registered");
#endif
}

// ---------------------------------------------------------------- delays

TEST(Delay, ConstantAlwaysSame) {
  util::Rng rng(1);
  ConstantDelay d(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(0, 1, rng), 9u);
}

TEST(Delay, ConstantClampsToOne) {
  util::Rng rng(1);
  ConstantDelay d(0);
  EXPECT_EQ(d.sample(0, 1, rng), 1u);
}

TEST(Delay, UniformWithinBounds) {
  util::Rng rng(2);
  UniformDelay d(5, 15);
  for (int i = 0; i < 500; ++i) {
    const auto v = d.sample(0, 1, rng);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 15u);
  }
}

TEST(Delay, ExponentialPositiveAndCapped) {
  util::Rng rng(3);
  ExponentialDelay d(10.0, 50);
  for (int i = 0; i < 500; ++i) {
    const auto v = d.sample(0, 1, rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 50u);
  }
}

TEST(Delay, FactoryKnowsAllNames) {
  for (const char* name :
       {"constant", "lan", "wan", "uniform", "reorder", "exponential"}) {
    EXPECT_NE(make_delay_model(name), nullptr) << name;
  }
}

TEST(DelayDeath, FactoryRejectsUnknown) {
  EXPECT_DEATH((void)make_delay_model("carrier-pigeon"), "unknown delay model");
}

}  // namespace
}  // namespace mocc::sim
