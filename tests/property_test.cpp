// Cross-cutting property tests: the condition hierarchy, parser
// robustness, equivalence-relation laws, and high-contention protocol
// stress (deadlock/livelock freedom).
#include <gtest/gtest.h>

#include <string>

#include "api/system.hpp"
#include "core/admissibility.hpp"
#include "core/generate.hpp"
#include "core/serialize.hpp"
#include "mscript/library.hpp"
#include "protocols/workload.hpp"
#include "util/rng.hpp"

namespace mocc {
namespace {

// ------------------------------------------------- condition hierarchy

class ConditionHierarchy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConditionHierarchy, MLinImpliesMNormalImpliesMSC) {
  // The base orders nest (rf∪P ⊆ rf∪P∪xo ⊆ rf∪P∪t), so admissibility is
  // antitone: on ANY history, m-lin admissible ⇒ m-normal admissible ⇒
  // m-SC admissible. Exercise with free (often inadmissible) histories.
  util::Rng rng(GetParam() * 6151 + 1);
  core::GeneratorParams params;
  params.num_mops = 10;
  params.num_processes = 3;
  params.num_objects = 2;
  params.write_probability = 0.6;
  for (int trial = 0; trial < 10; ++trial) {
    const auto h = core::generate_free_history(params, rng);
    const bool mlin = core::check_m_linearizable(h).admissible;
    const bool mnorm = core::check_m_normal(h).admissible;
    const bool msc = core::check_m_sequentially_consistent(h).admissible;
    if (mlin) {
      EXPECT_TRUE(mnorm) << "m-lin without m-normality";
    }
    if (mnorm) {
      EXPECT_TRUE(msc) << "m-normality without m-SC";
    }
  }
}

TEST_P(ConditionHierarchy, WitnessesReplayUnderTheirOwnCondition) {
  util::Rng rng(GetParam() * 24593 + 5);
  core::GeneratorParams params;
  params.num_mops = 12;
  for (int trial = 0; trial < 5; ++trial) {
    const auto h = core::generate_admissible_history(params, rng);
    for (const auto condition :
         {core::Condition::kMSequentialConsistency, core::Condition::kMNormality,
          core::Condition::kMLinearizability}) {
      const auto result = core::check_condition(h, condition);
      ASSERT_TRUE(result.admissible);
      // The witness respects the condition's closed base order.
      const auto closed = core::closed_base_order(h, condition);
      std::vector<std::size_t> position(h.size());
      for (std::size_t i = 0; i < result.witness->size(); ++i) {
        position[(*result.witness)[i]] = i;
      }
      for (core::MOpId a = 0; a < h.size(); ++a) {
        for (core::MOpId b = 0; b < h.size(); ++b) {
          if (a != b && closed.has(a, b)) {
            EXPECT_LT(position[a], position[b]) << core::condition_name(condition);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionHierarchy, ::testing::Values(1, 2, 3, 4, 5, 6));

// ----------------------------------------------------- equivalence laws

TEST(EquivalenceLaws, ReflexiveSymmetric) {
  util::Rng rng(77);
  core::GeneratorParams params;
  params.num_mops = 10;
  const auto h = core::generate_admissible_history(params, rng);
  EXPECT_TRUE(h.equivalent(h));
  auto h2 = core::generate_admissible_history(params, rng);
  EXPECT_EQ(h.equivalent(h2), h2.equivalent(h));
}

TEST(EquivalenceLaws, SerializationPreservesEquivalenceClass) {
  util::Rng rng(78);
  core::GeneratorParams params;
  params.num_mops = 12;
  for (int trial = 0; trial < 5; ++trial) {
    const auto h = core::generate_admissible_history(params, rng);
    const auto round_tripped = core::parse_history(core::serialize_history(h), nullptr);
    ASSERT_TRUE(round_tripped.has_value());
    EXPECT_TRUE(h.equivalent(*round_tripped));
  }
}

// ------------------------------------------------------- parser fuzzing

TEST(ParserFuzz, GarbageNeverCrashes) {
  util::Rng rng(4099);
  const std::string alphabet = "history mop 0123456789 :()@wr#\n\t-";
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t length = rng.next_below(200);
    for (std::size_t i = 0; i < length; ++i) {
      text.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    std::string error;
    (void)core::parse_history(text, &error);  // must not crash/abort
  }
}

TEST(ParserFuzz, TruncatedValidHistoriesNeverCrash) {
  util::Rng rng(4101);
  core::GeneratorParams params;
  params.num_mops = 8;
  const auto h = core::generate_admissible_history(params, rng);
  const std::string full = core::serialize_history(h);
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    std::string error;
    (void)core::parse_history(full.substr(0, cut), &error);
  }
}

// --------------------------------------------- high-contention protocols

class ContentionStress : public ::testing::TestWithParam<const char*> {};

TEST_P(ContentionStress, CompletesAndStaysConsistent) {
  // 6 processes hammering footprint-4 operations over only 4 objects:
  // every operation conflicts with every other. Completion proves
  // deadlock- and livelock-freedom; the checker proves consistency.
  api::SystemConfig config;
  config.protocol = GetParam();
  config.num_processes = 6;
  config.num_objects = 4;
  config.delay = "reorder";
  config.seed = 99;
  api::System system(config);
  protocols::WorkloadParams params;
  params.ops_per_process = 8;
  params.update_ratio = 0.7;
  params.footprint = 4;
  const auto report = system.run_workload(params);
  EXPECT_EQ(report.queries + report.updates, 48u);

  const auto claimed = std::string(GetParam()) == "mseq"
                           ? core::Condition::kMSequentialConsistency
                           : core::Condition::kMLinearizability;
  core::AdmissibilityOptions options;
  options.max_states = 10'000'000;
  const auto exact = system.check_exact(claimed, options);
  ASSERT_TRUE(exact.completed);
  EXPECT_TRUE(exact.admissible);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ContentionStress,
                         ::testing::Values("mseq", "mlin", "mlin-narrow",
                                           "mlin-bcastq", "locking", "aggregate"));

// ------------------------------------- cross-protocol result agreement

TEST(CrossProtocol, DeterministicOutcomeAgreementOnSerialWorkload) {
  // A strictly serial workload (each op waits for the previous, driven
  // from one process) must produce identical return values under every
  // protocol: they all implement the same sequential semantics.
  auto run_with = [](const std::string& protocol) {
    api::SystemConfig config;
    config.protocol = protocol;
    config.num_processes = 3;
    config.num_objects = 4;
    config.seed = 7;
    api::System system(config);
    std::vector<std::int64_t> results;
    const std::vector<mscript::ObjectId> all{0, 1, 2, 3};
    const std::vector<mscript::Value> values{5, 6, 7, 8};
    system.submit(0, 1, mscript::lib::make_m_assign(all, values),
                  [&](const protocols::InvocationOutcome& out) {
                    results.push_back(out.return_value);
                  });
    system.submit(0, 2, mscript::lib::make_dcas(0, 1, 5, 6, 50, 60),
                  [&](const protocols::InvocationOutcome& out) {
                    results.push_back(out.return_value);
                  });
    system.submit(0, 3, mscript::lib::make_transfer(2, 3, 3),
                  [&](const protocols::InvocationOutcome& out) {
                    results.push_back(out.return_value);
                  });
    system.submit(0, 4, mscript::lib::make_sum(all),
                  [&](const protocols::InvocationOutcome& out) {
                    results.push_back(out.return_value);
                  });
    system.run();
    return results;
  };
  const auto reference = run_with("mlin");
  ASSERT_EQ(reference.size(), 4u);
  EXPECT_EQ(reference[3], 50 + 60 + 7 + 8);
  for (const char* protocol :
       {"mseq", "mlin-narrow", "mlin-bcastq", "locking", "aggregate"}) {
    EXPECT_EQ(run_with(protocol), reference) << protocol;
  }
}

}  // namespace
}  // namespace mocc
