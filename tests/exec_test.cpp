// Multicore execution engine (src/exec): store primitives, OCC commit
// protocol invariants, deterministic log merge, and the end-to-end
// checker verdict on real multi-threaded runs.
//
// The big verified run shrinks under ThreadSanitizer (instrumentation
// slows the workers ~10x); CI's exec-stress step runs exactly these
// tests on the tsan preset at 8 threads.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "exec/engine.hpp"
#include "exec/store.hpp"
#include "exec/verify.hpp"
#include "obs/trace.hpp"

#if defined(__SANITIZE_THREAD__)
#define MOCC_EXEC_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MOCC_EXEC_TEST_TSAN 1
#endif
#endif
#ifndef MOCC_EXEC_TEST_TSAN
#define MOCC_EXEC_TEST_TSAN 0
#endif

namespace mocc::exec {
namespace {

TEST(ExecStoreTest, InitialStateAndStableRead) {
  ObjectStore store(4, /*initial_value=*/7);
  EXPECT_EQ(store.size(), 4u);
  for (core::ObjectId x = 0; x < 4; ++x) {
    const StableRead r = store.stable_read(x);
    EXPECT_EQ(r.value, 7);
    EXPECT_EQ(r.tid, kInitialTid);
    EXPECT_EQ(store.committed_value(x), 7);
    EXPECT_FALSE(is_locked(store.word(x)));
  }
}

TEST(ExecStoreTest, LockPublishUnlockRoundTrip) {
  ObjectStore store(2);
  std::uint64_t observed = ~0ull;
  ASSERT_TRUE(store.try_lock(0, observed));
  EXPECT_EQ(observed, kInitialTid);
  EXPECT_TRUE(is_locked(store.word(0)));
  // Second lock attempt on a held lock fails and reports the word.
  std::uint64_t observed2 = 0;
  EXPECT_FALSE(store.try_lock(0, observed2));
  EXPECT_TRUE(is_locked(observed2));
  store.write_and_unlock(0, 42, /*tid=*/9);
  EXPECT_FALSE(is_locked(store.word(0)));
  EXPECT_EQ(store.stable_read(0).value, 42);
  EXPECT_EQ(store.stable_read(0).tid, 9u);

  // Abort path restores the pre-lock word without touching the value.
  ASSERT_TRUE(store.try_lock(1, observed));
  store.unlock(1, observed);
  EXPECT_EQ(store.stable_read(1).value, 0);
  EXPECT_EQ(store.stable_read(1).tid, kInitialTid);
}

TEST(ExecStoreTest, VersionWordLayout) {
  EXPECT_FALSE(is_locked(0));
  EXPECT_TRUE(is_locked(kLockBit));
  EXPECT_EQ(tid_of(kLockBit | 17), 17u);
  EXPECT_EQ(tid_of(17), 17u);
}

ExecConfig small_config() {
  ExecConfig config;
  config.threads = 1;
  config.objects = 16;
  config.mops_per_thread = 500;
  config.footprint = 3;
  config.query_ratio = 0.4;
  config.rmw_ratio = 0.5;
  config.seed = 11;
  return config;
}

TEST(ExecEngineTest, SingleThreadCommitsEverythingFirstTry) {
  const ExecConfig config = small_config();
  const ExecResult result = run(config);
  EXPECT_EQ(result.stats.committed, config.mops_per_thread);
  EXPECT_EQ(result.stats.aborted_validation, 0u);
  EXPECT_EQ(result.stats.aborted_lock, 0u);
  EXPECT_EQ(result.stats.abandoned, 0u);
  ASSERT_EQ(result.logs.size(), 1u);
  for (const CommittedMop& mop : result.logs[0]) {
    EXPECT_EQ(mop.attempts, 1u);
    EXPECT_LT(mop.invoke, mop.response);
  }
  const VerifyReport report = verify_execution(result);
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_EQ(report.mops, config.mops_per_thread);
}

TEST(ExecEngineTest, SingleThreadRunsAreDeterministic) {
  const ExecConfig config = small_config();
  const ExecResult a = run(config);
  const ExecResult b = run(config);
  ASSERT_EQ(a.logs.size(), b.logs.size());
  ASSERT_EQ(a.logs[0].size(), b.logs[0].size());
  for (std::size_t i = 0; i < a.logs[0].size(); ++i) {
    const CommittedMop& x = a.logs[0][i];
    const CommittedMop& y = b.logs[0][i];
    EXPECT_EQ(x.tid, y.tid);
    EXPECT_EQ(x.invoke, y.invoke);
    EXPECT_EQ(x.response, y.response);
    EXPECT_EQ(x.is_update, y.is_update);
    ASSERT_EQ(x.ops.size(), y.ops.size());
    for (std::size_t k = 0; k < x.ops.size(); ++k) {
      EXPECT_EQ(x.ops[k].type, y.ops[k].type);
      EXPECT_EQ(x.ops[k].object, y.ops[k].object);
      EXPECT_EQ(x.ops[k].value, y.ops[k].value);
      EXPECT_EQ(x.ops[k].from_tid, y.ops[k].from_tid);
    }
  }
  EXPECT_EQ(a.final_values, b.final_values);
}

TEST(ExecEngineTest, MergeIsSortedByEpochThenTidAndTidsAreUnique) {
  ExecConfig config = small_config();
  config.threads = 4;
  config.mops_per_thread = 300;
  const ExecResult result = run(config);
  const std::vector<const CommittedMop*> merged = merge_logs(result);
  ASSERT_EQ(merged.size(), result.stats.committed);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LT(merged[i - 1]->tid, merged[i]->tid);
    EXPECT_LE(epoch_of(merged[i - 1]->tid), epoch_of(merged[i]->tid));
  }
  // Per-worker logs are in local commit order and per-process stamps are
  // sequential (response < next invoke), which is what makes the merged
  // history's program order consistent with tid order.
  for (const auto& log : result.logs) {
    for (std::size_t i = 1; i < log.size(); ++i) {
      EXPECT_LT(log[i - 1].tid, log[i].tid);
      EXPECT_LT(log[i - 1].response, log[i].invoke);
    }
  }
}

TEST(ExecEngineTest, EpochAdvancesWithTidDraws) {
  EXPECT_EQ(epoch_of(1), 0u);
  EXPECT_EQ(epoch_of((1ull << kEpochShift) - 1), 0u);
  EXPECT_EQ(epoch_of(1ull << kEpochShift), 1u);
  EXPECT_EQ(epoch_of(3ull << kEpochShift), 3u);
}

// Pure rmw single-object-footprint workload: every commit increments
// exactly one object by one, so — absent lost updates — the final values
// sum to the committed count. A direct, checker-independent witness that
// OCC validation kept every increment.
TEST(ExecEngineTest, ContendedIncrementsAreNeverLost) {
  ExecConfig config;
  config.threads = MOCC_EXEC_TEST_TSAN ? 4 : 8;
  config.objects = 4;  // heavy write contention
  config.mops_per_thread = MOCC_EXEC_TEST_TSAN ? 500 : 4000;
  config.footprint = 1;
  config.query_ratio = 0.0;
  config.rmw_ratio = 1.0;
  config.seed = 5;
  const ExecResult result = run(config);
  EXPECT_EQ(result.stats.committed, config.threads * config.mops_per_thread);
  core::Value sum = 0;
  for (const core::Value v : result.final_values) sum += v;
  EXPECT_EQ(static_cast<std::uint64_t>(sum), result.stats.committed);
  const VerifyReport report = verify_execution(result);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(ExecEngineTest, QueryOnlyWorkloadVerifies) {
  ExecConfig config = small_config();
  config.threads = 2;
  config.query_ratio = 1.0;
  const ExecResult result = run(config);
  for (const auto& log : result.logs) {
    for (const CommittedMop& mop : log) EXPECT_FALSE(mop.is_update);
  }
  const VerifyReport report = verify_execution(result);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(ExecEngineTest, TraceSinkSeesEveryCommit) {
  obs::RingBufferSink sink(4096);
  ExecConfig config = small_config();
  const ExecResult result = run(config, &sink);
  std::size_t commits = 0;
  for (const obs::TraceEvent& event : sink.events()) {
    if (event.type == obs::TraceEventType::kExecCommit) {
      ++commits;
      EXPECT_EQ(event.arg, 1u);  // single thread: first-try commits
    } else {
      EXPECT_EQ(event.type, obs::TraceEventType::kExecAbort);
    }
  }
  EXPECT_EQ(commits, result.stats.committed);
}

// The acceptance-scale run: >= 100k committed m-operations from 8 real
// threads, merged and passed through the full checker stack (fast check,
// P5.x audit, value coherence, replay invariants). Shrunk under TSan;
// the tsan leg's job is the race sweep, not the checker workout.
TEST(ExecEngineTest, VerifiedMultiThreadRun) {
  ExecConfig config;
  config.threads = 8;
  config.objects = MOCC_EXEC_TEST_TSAN ? 64 : 128;
  config.mops_per_thread = MOCC_EXEC_TEST_TSAN ? 1500 : 13000;
  config.footprint = 4;
  config.query_ratio = 0.4;
  config.rmw_ratio = 0.5;
  config.zipf_skew = 0.6;
  config.seed = 42;
  const ExecResult result = run(config);
  ASSERT_GE(result.stats.committed,
            MOCC_EXEC_TEST_TSAN ? 12000u : 104000u);
  VerifyOptions options;
  options.window = MOCC_EXEC_TEST_TSAN ? 256 : 512;
  const VerifyReport report = verify_execution(result, options);
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_EQ(report.mops, result.stats.committed);
  EXPECT_GT(report.windows, 1u);  // the windowed path actually windowed
}

// A deliberately corrupted "execution": two m-operations both read x's
// initial version and both write x — the classic OCC lost-update anomaly
// that read-set validation exists to prevent. The replay invariant and
// the checkers must reject it.
TEST(ExecVerifyTest, HandBuiltLostUpdateIsRejected) {
  ExecResult result;
  result.config.threads = 2;
  result.config.objects = 1;
  result.config.mops_per_thread = 1;
  result.stats.committed = 2;
  result.logs.resize(2);
  result.logs[0].push_back(
      {/*worker=*/0, /*tid=*/1, /*invoke=*/0, /*response=*/4, /*attempts=*/1,
       /*is_update=*/true,
       {{core::OpType::kRead, 0, 0, kInitialTid},
        {core::OpType::kWrite, 0, 1, kInitialTid}}});
  result.logs[1].push_back(
      {/*worker=*/1, /*tid=*/2, /*invoke=*/1, /*response=*/5, /*attempts=*/1,
       /*is_update=*/true,
       {{core::OpType::kRead, 0, 0, kInitialTid},  // lost update: stale read
        {core::OpType::kWrite, 0, 1, kInitialTid}}});
  result.final_values = {1};
  const VerifyReport report = verify_execution(result);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.violations.empty());
}

// Same shape but with the second read naming the first writer — the
// schedule OCC actually produces — must pass, pinning that the rejection
// above is the anomaly, not the harness.
TEST(ExecVerifyTest, HandBuiltSerializedPairIsAccepted) {
  ExecResult result;
  result.config.threads = 2;
  result.config.objects = 1;
  result.config.mops_per_thread = 1;
  result.stats.committed = 2;
  result.logs.resize(2);
  result.logs[0].push_back(
      {0, /*tid=*/1, /*invoke=*/0, /*response=*/4, 1, true,
       {{core::OpType::kRead, 0, 0, kInitialTid},
        {core::OpType::kWrite, 0, 1, kInitialTid}}});
  result.logs[1].push_back(
      {1, /*tid=*/2, /*invoke=*/5, /*response=*/6, 1, true,
       {{core::OpType::kRead, 0, 1, /*from_tid=*/1},
        {core::OpType::kWrite, 0, 2, kInitialTid}}});
  result.final_values = {2};
  const VerifyReport report = verify_execution(result);
  EXPECT_TRUE(report.ok) << report.to_string();
}

// Stale final state (e.g. a write published to the log but not the
// store) is caught by the final-state cross-check.
TEST(ExecVerifyTest, FinalStateMismatchIsRejected) {
  ExecResult result;
  result.config.threads = 1;
  result.config.objects = 1;
  result.config.mops_per_thread = 1;
  result.stats.committed = 1;
  result.logs.resize(1);
  result.logs[0].push_back(
      {0, /*tid=*/1, /*invoke=*/0, /*response=*/1, 1, true,
       {{core::OpType::kWrite, 0, 7, kInitialTid}}});
  result.final_values = {0};  // store says 0, log says 7
  const VerifyReport report = verify_execution(result);
  EXPECT_FALSE(report.ok);
}

TEST(ExecEngineTest, MaxAttemptsIsHonoredSingleThread) {
  ExecConfig config = small_config();
  config.max_attempts = 1;  // single thread never conflicts: all commit
  const ExecResult result = run(config);
  EXPECT_EQ(result.stats.committed, config.mops_per_thread);
  EXPECT_EQ(result.stats.abandoned, 0u);
}

}  // namespace
}  // namespace mocc::exec
