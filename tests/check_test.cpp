// mocc-check edge and contract tests: budget exhaustion, depth
// truncation, determinism of the exploration itself, naive-vs-reduced
// verdict agreement, mutation catching with counterexample round-trips,
// replay-divergence detection, masked-hash collision handling, the
// value-coherence check behind the skip-delivery catch, and the
// controlled-mode attachment preconditions.
#include <gtest/gtest.h>

#include <string>

#include "api/system.hpp"
#include "check/explore.hpp"
#include "check/replay.hpp"
#include "core/history.hpp"
#include "sim/simulator.hpp"

namespace mocc::check {
namespace {

bool same_stats(const ExploreStats& a, const ExploreStats& b) {
  return a.runs_total == b.runs_total &&
         a.schedules_checked == b.schedules_checked &&
         a.sleep_pruned == b.sleep_pruned && a.hash_pruned == b.hash_pruned &&
         a.choice_points == b.choice_points &&
         a.max_depth_seen == b.max_depth_seen &&
         a.depth_truncations == b.depth_truncations &&
         a.distinct_states == b.distinct_states &&
         a.hash_collisions == b.hash_collisions &&
         a.exact_undecided == b.exact_undecided &&
         a.audit_only_violations == b.audit_only_violations;
}

// --- budgets ----------------------------------------------------------

TEST(ExploreBudgetTest, ScheduleBudgetExhaustionReportsIncomplete) {
  ExploreConfig config;
  config.protocol = "mseq";
  config.num_processes = 3;
  config.max_schedules = 5;
  const ExploreResult result = explore(config);
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_EQ(result.stats.runs_total, 5u);
}

TEST(ExploreBudgetTest, DepthBudgetTruncatesWithoutViolations) {
  ExploreConfig config;
  config.protocol = "mseq";
  config.max_depth = 2;
  const ExploreResult result = explore(config);
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_GT(result.stats.depth_truncations, 0u);
  // The truncating choice point itself is counted before the cut.
  EXPECT_LE(result.stats.max_depth_seen, 3u);
}

TEST(ExploreBudgetTest, TinyExactBudgetIsUndecidedNotViolating) {
  ExploreConfig config;
  config.protocol = "locking";
  config.exact_states_budget = 1;
  const ExploreResult result = explore(config);
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_GT(result.stats.exact_undecided, 0u);
}

// --- determinism and reduction soundness ------------------------------

TEST(ExploreTest, ExplorationIsDeterministic) {
  ExploreConfig config;
  config.protocol = "mlin";
  const ExploreResult first = explore(config);
  const ExploreResult second = explore(config);
  EXPECT_EQ(first.complete, second.complete);
  EXPECT_EQ(first.violation.has_value(), second.violation.has_value());
  EXPECT_TRUE(same_stats(first.stats, second.stats));
}

/// The batched small scopes explore clean: sequencer group-commit and
/// mlin query rounds preserve admissibility on EVERY delivery
/// interleaving, not just the sampled ones. Batched counterexample
/// configs must also survive the replay-file round-trip so a violating
/// schedule found under batching stays reproducible.
TEST(ExploreTest, BatchedConfigsExploreCleanOnEverySchedule) {
  for (const char* protocol : {"mseq", "mlin"}) {
    ExploreConfig config;
    config.protocol = protocol;
    config.batching = true;
    const ExploreResult result = explore(config);
    EXPECT_TRUE(result.complete) << protocol;
    EXPECT_FALSE(result.violation.has_value()) << protocol;
    EXPECT_GT(result.stats.schedules_checked, 0u) << protocol;
  }
}

TEST(ExploreTest, BatchingFlagRoundTripsThroughTheReplayFile) {
  Counterexample original;
  original.config.protocol = "mseq";
  original.config.batching = true;
  original.reason = "synthetic";
  const std::string text = format_counterexample(original);
  EXPECT_NE(text.find("batching 1"), std::string::npos);
  Counterexample parsed;
  std::string error;
  ASSERT_TRUE(parse_counterexample(text, parsed, error)) << error;
  EXPECT_TRUE(parsed.config.batching);
  // Unbatched files carry no batching line at all — byte-compatible
  // with v1 readers — and parse back to the off default.
  original.config.batching = false;
  const std::string unbatched = format_counterexample(original);
  EXPECT_EQ(unbatched.find("batching"), std::string::npos);
  ASSERT_TRUE(parse_counterexample(unbatched, parsed, error)) << error;
  EXPECT_FALSE(parsed.config.batching);
}

TEST(ExploreTest, NaiveAndReducedExplorationAgreeOnTheVerdict) {
  for (const char* protocol : {"mseq", "locking"}) {
    ExploreConfig reduced;
    reduced.protocol = protocol;
    ExploreConfig naive = reduced;
    naive.use_sleep_sets = false;
    naive.use_state_hash = false;
    const ExploreResult r = explore(reduced);
    const ExploreResult n = explore(naive);
    EXPECT_TRUE(r.complete) << protocol;
    EXPECT_TRUE(n.complete) << protocol;
    EXPECT_EQ(r.violation.has_value(), n.violation.has_value()) << protocol;
    // Reduction only removes redundant schedules.
    EXPECT_LE(r.stats.schedules_checked, n.stats.schedules_checked) << protocol;
    EXPECT_GT(n.stats.schedules_checked, 0u) << protocol;
  }
}

TEST(ExploreTest, MaskedHashDetectsCollisionsWithoutChangingTheVerdict) {
  ExploreConfig full;
  full.protocol = "mseq";
  full.ops_per_process = 3;
  full.use_sleep_sets = false;  // hash pruning only, so the mask matters
  ExploreConfig masked = full;
  masked.hash_bits = 4;
  const ExploreResult f = explore(full);
  const ExploreResult m = explore(masked);
  EXPECT_TRUE(f.complete);
  EXPECT_TRUE(m.complete);
  EXPECT_FALSE(m.violation.has_value());
  EXPECT_GT(m.stats.hash_collisions, 0u);
  // The secondary full-width chain keeps masked pruning sound: the same
  // set of distinct states is interned either way.
  EXPECT_EQ(f.stats.distinct_states, m.stats.distinct_states);
  EXPECT_EQ(f.stats.schedules_checked, m.stats.schedules_checked);
}

// --- mutations and replay ---------------------------------------------

ExploreConfig skip_delivery_config() {
  ExploreConfig config;
  config.protocol = "mlin";
  config.mutation = "skip-delivery";
  config.num_objects = 1;  // see tools/mocc_check selftest: one object
                           // forces the victim's next update to read the
                           // lost write's object
  return config;
}

TEST(MutationTest, SkipDeliveryYieldsAHistoryLevelCounterexample) {
  const ExploreResult result = explore(skip_delivery_config());
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_NE(result.violation->reason.find("value-coherent"), std::string::npos);

  const std::string text = format_counterexample(*result.violation);
  Counterexample parsed;
  std::string error;
  ASSERT_TRUE(parse_counterexample(text, parsed, error)) << error;
  EXPECT_EQ(parsed.config.protocol, "mlin");
  EXPECT_EQ(parsed.config.mutation, "skip-delivery");
  EXPECT_EQ(parsed.choices.size(), result.violation->choices.size());

  const ReplayResult replayed = replay(parsed);
  EXPECT_TRUE(replayed.faithful) << replayed.divergence;
  EXPECT_EQ(replayed.violation, result.violation->reason);
  EXPECT_TRUE(replayed.history_level);
}

TEST(MutationTest, ReplayDetectsTamperedChoiceFiles) {
  const ExploreResult result = explore(skip_delivery_config());
  ASSERT_TRUE(result.violation.has_value());
  ASSERT_FALSE(result.violation->choices.empty());

  // Flip the recorded payload signature of the first choice: replay must
  // refuse to follow it and name the divergent step.
  Counterexample tampered = *result.violation;
  tampered.choices.front().payload_hash ^= 1;
  const ReplayResult replayed = replay(tampered);
  EXPECT_FALSE(replayed.faithful);
  EXPECT_NE(replayed.divergence.find("diverged at step 0"), std::string::npos)
      << replayed.divergence;

  // Truncating the sequence leaves the run unfinished relative to the
  // file's claim of quiescence-at-the-end.
  Counterexample truncated = *result.violation;
  truncated.choices.pop_back();
  const ReplayResult incomplete = replay(truncated);
  EXPECT_FALSE(incomplete.faithful);
}

TEST(MutationTest, ParserRejectsMalformedFiles) {
  const ExploreResult result = explore(skip_delivery_config());
  ASSERT_TRUE(result.violation.has_value());
  const std::string good = format_counterexample(*result.violation);

  Counterexample out;
  std::string error;
  std::string bad = good;
  bad.replace(0, bad.find('\n'), "mocc-check-replay v999");
  EXPECT_FALSE(parse_counterexample(bad, out, error));
  EXPECT_NE(error.find("unsupported replay file"), std::string::npos) << error;

  // Declared choice count disagreeing with the actual lines.
  const std::size_t choices_pos = good.find("choices ");
  ASSERT_NE(choices_pos, std::string::npos);
  std::string miscounted = good;
  miscounted.insert(choices_pos + 8, "9");
  EXPECT_FALSE(parse_counterexample(miscounted, out, error));
}

// --- value coherence (the history-level check behind skip-delivery) ---

core::MOperation coherent_writer() {
  return core::MOperation(0, {core::Operation::write(0, 7)}, 1, 2);
}

TEST(ValueCoherenceTest, AcceptsMatchingAndFlagsDivergentReads) {
  core::History good(2, 1);
  good.add(coherent_writer());
  good.add(core::MOperation(1, {core::Operation::read(0, 7, 0)}, 3, 4));
  EXPECT_TRUE(good.value_coherent());

  core::History stale(2, 1);
  stale.add(coherent_writer());
  stale.add(core::MOperation(1, {core::Operation::read(0, 6, 0)}, 3, 4));
  std::string why;
  EXPECT_FALSE(stale.value_coherent(&why));
  EXPECT_NE(why.find("final write stores 7"), std::string::npos) << why;

  core::History initial(1, 1);
  initial.add(core::MOperation(
      0, {core::Operation::read(0, 5, core::kInitialMOp)}, 1, 2));
  EXPECT_FALSE(initial.value_coherent(&why));
  EXPECT_NE(why.find("initial"), std::string::npos) << why;
}

// --- controlled-mode preconditions ------------------------------------

class NoopController final : public sim::ScheduleController {
 public:
  std::size_t choose(const std::vector<sim::ScheduleController::Choice>&) override {
    return 0;
  }
};

TEST(ControlledModeDeathTest, ControllerMustAttachBeforeTheFirstRun) {
  api::SystemConfig config;
  config.protocol = "mseq";
  config.num_processes = 2;
  config.num_objects = 1;
  api::System system(config);
  system.run(1);
  NoopController controller;
  EXPECT_DEATH(system.set_schedule_controller(&controller),
               "before the first run");
}

}  // namespace
}  // namespace mocc::check
