// core::History ingestion of EXTERNALLY-ordered histories.
//
// Every other checker test builds histories from the simulator or from
// compact sequential patterns. The multicore engine (src/exec) instead
// hands the checkers histories whose invoke/response stamps come from a
// real-thread logical clock and whose synchronization order is an
// external commit-tid order — genuinely concurrent, overlapping
// m-operations that no simulator schedule produced. These tests pin the
// contract that path relies on: hand-built concurrent histories with
// known WW/OO/WO verdicts agree between the Theorem-7 fast check and the
// exact checker, and the OCC lost-update anomaly is rejected by both.
#include <gtest/gtest.h>

#include "core/admissibility.hpp"
#include "core/constraints.hpp"
#include "core/fast_check.hpp"
#include "core/legality.hpp"
#include "core/relations.hpp"
#include "util/relation.hpp"

namespace mocc::core {
namespace {

MOperation mop(ProcessId p, std::vector<Operation> ops, Time inv, Time resp) {
  return MOperation(p, std::move(ops), inv, resp);
}

/// Commit-tid order the way the exec engine supplies it: update i
/// precedes update j for every i < j in tid order.
util::BitRelation tid_order(const History& h, const std::vector<MOpId>& updates) {
  util::BitRelation ww(h.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    for (std::size_t j = i + 1; j < updates.size(); ++j) {
      ww.add(updates[i], updates[j]);
    }
  }
  return ww;
}

// Two fully-overlapping updates on the same object plus a later read:
// the external tid order resolves the write-write race that real time
// leaves open. Both checkers must accept under the order that matches
// the read and reject under the opposite order.
TEST(HistoryIngestTest, ExternalOrderResolvesConcurrentWrites) {
  History h(3, 1);
  const MOpId w1 = h.add(mop(0, {Operation::write(0, 1)}, 1, 10));
  const MOpId w2 = h.add(mop(1, {Operation::write(0, 2)}, 2, 11));
  h.add(mop(2, {Operation::read(0, 2, w2)}, 20, 21));
  ASSERT_TRUE(h.well_formed());
  ASSERT_TRUE(h.value_coherent());

  const auto good = fast_check_condition(h, Condition::kMLinearizability,
                                         tid_order(h, {w1, w2}), Constraint::kWW);
  EXPECT_TRUE(good.constraint_holds);
  EXPECT_TRUE(good.admissible);
  ASSERT_TRUE(good.witness.has_value());
  EXPECT_TRUE(is_legal_sequential_order(h, *good.witness));

  // Opposite tid order: the read of value 2 would have to serialize
  // before its writer is overwritten by w1 — but w1 now follows w2, so
  // the read (after both in real time) observes an overwritten version.
  const auto bad = fast_check_condition(h, Condition::kMLinearizability,
                                        tid_order(h, {w2, w1}), Constraint::kWW);
  EXPECT_TRUE(bad.constraint_holds);
  EXPECT_FALSE(bad.admissible);

  // The exact checker agrees with both verdicts when handed the same
  // base orders.
  util::BitRelation base_good = base_order(h, Condition::kMLinearizability);
  base_good.merge(tid_order(h, {w1, w2}));
  EXPECT_TRUE(check_admissible(h, base_good).admissible);
  util::BitRelation base_bad = base_order(h, Condition::kMLinearizability);
  base_bad.merge(tid_order(h, {w2, w1}));
  EXPECT_FALSE(check_admissible(h, base_bad).admissible);
}

// WW-constraint detection on externally-ordered histories: with only one
// of the two concurrent update pairs ordered, the WW constraint fails
// and Theorem 7 does not apply; the OO constraint (conflicting pairs
// only) can still hold when the unordered updates touch disjoint objects.
TEST(HistoryIngestTest, ConstraintKindsDifferOnDisjointUpdates) {
  History h(3, 2);
  const MOpId a = h.add(mop(0, {Operation::write(0, 1)}, 1, 10));
  h.add(mop(1, {Operation::write(1, 2)}, 2, 11));  // disjoint object
  const MOpId c = h.add(mop(2, {Operation::write(0, 3)}, 3, 12));
  ASSERT_TRUE(h.well_formed());

  // Order only the conflicting pair (a,c); the object-1 write stays
  // unordered against both.
  util::BitRelation partial(h.size());
  partial.add(a, c);
  util::BitRelation base = base_order(h, Condition::kMSequentialConsistency);
  base.merge(partial);
  const auto closed = base.transitive_closure();
  EXPECT_TRUE(satisfies(h, closed, Constraint::kOO));
  EXPECT_FALSE(satisfies(h, closed, Constraint::kWW));
  EXPECT_TRUE(satisfies(h, closed, Constraint::kWO));

  const auto fast = fast_check_condition(h, Condition::kMSequentialConsistency,
                                         partial, Constraint::kWW);
  EXPECT_FALSE(fast.constraint_holds);  // Theorem 7 inapplicable as claimed

  const auto fast_oo = fast_check_condition(h, Condition::kMSequentialConsistency,
                                            partial, Constraint::kOO);
  EXPECT_TRUE(fast_oo.constraint_holds);
  EXPECT_TRUE(fast_oo.admissible);
}

// The OCC lost-update anomaly, exactly as a broken engine would log it:
// two overlapping rmw m-operations both read x's initial version, both
// write x, tid-ordered one after the other. Not admissible under any of
// the three conditions — the second rmw's read must see the first's
// write once the tid order places it second.
TEST(HistoryIngestTest, LostUpdateAnomalyRejectedByBothCheckers) {
  History h(2, 1);
  const MOpId a = h.add(
      mop(0, {Operation::read(0, 0, kInitialMOp), Operation::write(0, 1)}, 1, 10));
  const MOpId b = h.add(
      mop(1, {Operation::read(0, 0, kInitialMOp), Operation::write(0, 1)}, 2, 11));
  ASSERT_TRUE(h.well_formed());
  ASSERT_TRUE(h.value_coherent());  // values alone cannot expose it

  const auto fast = fast_check_condition(h, Condition::kMSequentialConsistency,
                                         tid_order(h, {a, b}), Constraint::kWW);
  EXPECT_TRUE(fast.constraint_holds);
  EXPECT_FALSE(fast.legal);
  EXPECT_FALSE(fast.admissible);

  util::BitRelation base =
      base_order(h, Condition::kMSequentialConsistency);
  base.merge(tid_order(h, {a, b}));
  EXPECT_FALSE(check_admissible(h, base).admissible);
  // And symmetrically under the other tid order.
  util::BitRelation rev =
      base_order(h, Condition::kMSequentialConsistency);
  rev.merge(tid_order(h, {b, a}));
  EXPECT_FALSE(check_admissible(h, rev).admissible);
}

// The correct interleaving of the same workload (second rmw reads the
// first) is admissible — the anomaly above is what is rejected, not the
// concurrency.
TEST(HistoryIngestTest, SerializedRmwPairAccepted) {
  History h(2, 1);
  const MOpId a = h.add(
      mop(0, {Operation::read(0, 0, kInitialMOp), Operation::write(0, 1)}, 1, 10));
  const MOpId b = h.add(
      mop(1, {Operation::read(0, 1, a), Operation::write(0, 2)}, 2, 11));
  const auto fast = fast_check_condition(h, Condition::kMLinearizability,
                                         tid_order(h, {a, b}), Constraint::kWW);
  EXPECT_TRUE(fast.constraint_holds);
  EXPECT_TRUE(fast.admissible);
  ASSERT_TRUE(fast.witness.has_value());
  EXPECT_TRUE(is_legal_sequential_order(h, *fast.witness));
}

// Overlap alone never rejects: a fully-concurrent batch of queries over
// one update's result is m-linearizable whatever the stamps, as long as
// reads-from is consistent with the tid order.
TEST(HistoryIngestTest, FullyOverlappingQueriesAccepted) {
  History h(4, 2);
  std::vector<MOpId> updates;
  updates.push_back(h.add(
      mop(0, {Operation::write(0, 5), Operation::write(1, 6)}, 1, 100)));
  h.add(mop(1, {Operation::read(0, 5, updates[0])}, 2, 99));
  h.add(mop(2, {Operation::read(1, 6, updates[0])}, 3, 98));
  h.add(mop(3,
            {Operation::read(0, 5, updates[0]),
             Operation::read(1, 6, updates[0])},
            4, 97));
  ASSERT_TRUE(h.well_formed());
  const auto fast = fast_check_condition(h, Condition::kMLinearizability,
                                         tid_order(h, updates), Constraint::kWW);
  EXPECT_TRUE(fast.constraint_holds);
  EXPECT_TRUE(fast.admissible);
  EXPECT_TRUE(check_m_linearizable(h).admissible);
}

// Real-time edges from external stamps are load-bearing: a query that
// STARTS after an update's response cannot read the overwritten initial
// value under m-linearizability, but the same history with overlapping
// stamps is accepted. This is the property the engine's logical clock
// must get right (response stamp drawn after publication).
TEST(HistoryIngestTest, ExternalStampsCarryRealTime) {
  const auto build = [](Time query_invoke, Time query_response) {
    History h(2, 1);
    h.add(mop(0, {Operation::write(0, 9)}, 1, 10));
    h.add(mop(1, {Operation::read(0, 0, kInitialMOp)}, query_invoke,
              query_response));
    return h;
  };
  const History separated = build(20, 21);  // read after the write's resp
  const auto sep = fast_check_condition(separated, Condition::kMLinearizability,
                                        util::BitRelation(2), Constraint::kWW);
  EXPECT_FALSE(sep.admissible);
  EXPECT_FALSE(check_m_linearizable(separated).admissible);

  const History overlapping = build(2, 21);  // concurrent with the write
  const auto ovl = fast_check_condition(overlapping, Condition::kMLinearizability,
                                        util::BitRelation(2), Constraint::kWW);
  EXPECT_TRUE(ovl.admissible);
  EXPECT_TRUE(check_m_linearizable(overlapping).admissible);
}

}  // namespace
}  // namespace mocc::core
