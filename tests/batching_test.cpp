// Hot-path batching layer (docs/batching.md): sequencer group-commit,
// reliable-link message coalescing, and mlin query rounds.
//
// Flush-trigger edge cases are covered at both layers — an age timer
// must flush a single pending item, a size trigger at the exact boundary
// must not leave a stale-timer double flush behind, and a flush finding
// an empty queue must be a no-op. The framing round-trip sweep pushes
// coalesced frames through a dropping + duplicating network across 100
// seeds and asserts exactly-once, per-sender-FIFO delivery. End-to-end
// sweeps assert the acceptance invariants: the P5.x audit stays clean
// with every batching knob on, the span forest stays well-formed with
// exact phase attribution, and batching actually removes messages.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/system.hpp"
#include "fault/fault.hpp"
#include "fault/reliable_link.hpp"
#include "mscript/library.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "protocols/workload.hpp"
#include "sim/delay.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace mocc {
namespace {

using core::Condition;
using protocols::InvocationOutcome;

std::size_t count_events(const std::vector<obs::TraceEvent>& events,
                         obs::TraceEventType type) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [type](const obs::TraceEvent& e) { return e.type == type; }));
}

// ------------------------------------------------- sequencer group-commit

/// All submitters hand their update to the sequencer in the same tick
/// ("constant" delay): the batch fills to the exact size boundary and
/// flushes by size, assigning one contiguous position block.
TEST(SequencerBatching, SizeTriggerAssignsContiguousBlockAtExactBoundary) {
  api::SystemConfig config;
  config.num_processes = 5;
  config.num_objects = 4;
  config.protocol = "mseq";
  config.broadcast = "sequencer";
  config.delay = "constant";
  config.batching.abcast_batch_max = 4;
  config.batching.abcast_batch_age = 1000;  // age must never fire here
  obs::RingBufferSink sink(std::size_t{1} << 14);
  api::System system(config);
  system.set_trace_sink(&sink);

  // Four non-sequencer processes submit at the same instant; constant
  // delay lands all four submissions at node 0 in one tick.
  for (core::ProcessId p = 1; p <= 4; ++p) {
    system.submit(p, 1, mscript::lib::make_write(p % config.num_objects, 7));
  }
  system.run();

  const auto events = sink.events();
  std::vector<obs::TraceEvent> assigns;
  for (const auto& e : events) {
    if (e.type == obs::TraceEventType::kBatchAssign) assigns.push_back(e);
  }
  ASSERT_EQ(assigns.size(), 1u);
  EXPECT_EQ(assigns[0].node, 0u);
  EXPECT_EQ(assigns[0].kind, 0u);  // size trigger
  EXPECT_EQ(assigns[0].id, 0u);    // first position of the block
  EXPECT_EQ(assigns[0].arg, 4u);   // block size
  EXPECT_TRUE(system.audit().ok);
  EXPECT_TRUE(system.check_fast(Condition::kMSequentialConsistency).admissible);
}

/// One lone update must not wait forever: the age deadline flushes a
/// partial batch of one.
TEST(SequencerBatching, AgeTriggerFlushesSinglePendingUpdate) {
  api::SystemConfig config;
  config.num_processes = 3;
  config.num_objects = 2;
  config.protocol = "mseq";
  config.broadcast = "sequencer";
  config.delay = "constant";
  config.batching.abcast_batch_max = 8;
  config.batching.abcast_batch_age = 5;
  obs::RingBufferSink sink(std::size_t{1} << 14);
  api::System system(config);
  system.set_trace_sink(&sink);

  std::int64_t read_value = -1;
  system.submit(1, 1, mscript::lib::make_write(0, 9));
  system.submit(2, 10'000, mscript::lib::make_read(0),
                [&](const InvocationOutcome& out) { read_value = out.return_value; });
  system.run();

  EXPECT_EQ(read_value, 9);  // the lone update delivered everywhere
  const auto events = sink.events();
  std::vector<obs::TraceEvent> assigns;
  for (const auto& e : events) {
    if (e.type == obs::TraceEventType::kBatchAssign) assigns.push_back(e);
  }
  ASSERT_EQ(assigns.size(), 1u);
  EXPECT_EQ(assigns[0].kind, 1u);  // age trigger
  EXPECT_EQ(assigns[0].arg, 1u);   // batch of one
  EXPECT_TRUE(system.audit().ok);
}

/// A size flush empties the batch while the age timer armed at first
/// enqueue is still in flight; when it fires it must find the queue
/// empty (or refilled with a fresh deadline) and not double-flush.
TEST(SequencerBatching, StaleAgeTimerAfterSizeFlushIsNoOp) {
  api::SystemConfig config;
  config.num_processes = 3;
  config.num_objects = 2;
  config.protocol = "mseq";
  config.broadcast = "sequencer";
  config.delay = "constant";
  config.batching.abcast_batch_max = 2;
  config.batching.abcast_batch_age = 3;
  obs::RingBufferSink sink(std::size_t{1} << 14);
  api::System system(config);
  system.set_trace_sink(&sink);

  system.submit(1, 1, mscript::lib::make_write(0, 1));
  system.submit(2, 1, mscript::lib::make_write(1, 2));
  system.run();

  const auto events = sink.events();
  EXPECT_EQ(count_events(events, obs::TraceEventType::kBatchAssign), 1u);
  EXPECT_TRUE(system.audit().ok);
}

// ------------------------------------------------- link-level coalescing

/// Hosts one ReliableLink endpoint; queues sends issued at start and
/// records upward deliveries (same shape as reliable_link_test.cpp).
class LinkHost final : public sim::Actor {
 public:
  explicit LinkHost(fault::ReliableLink::Options options = {}) : link_(options) {
    link_.set_deliver([this](sim::Context&, const sim::Message& message) {
      delivered.push_back(message);
      delivered_frame.push_back(frame_counter_);
    });
  }

  void queue_send(sim::NodeId to, std::uint32_t kind,
                  std::vector<std::uint8_t> payload) {
    outbox_.push_back({to, kind, std::move(payload)});
  }
  void flush_on_start(sim::NodeId to) { flush_target_ = to; }

  void on_start(sim::Context& ctx) override {
    for (auto& out : outbox_) {
      link_.send(ctx, out.to, out.kind, std::move(out.payload));
    }
    outbox_.clear();
    if (flush_target_ >= 0) {
      link_.flush(ctx, static_cast<sim::NodeId>(flush_target_));
    }
  }

  void on_message(sim::Context& ctx, const sim::Message& message) override {
    ++frame_counter_;  // deliveries below share this wire frame
    EXPECT_TRUE(link_.on_message(ctx, message)) << "foreign kind " << message.kind;
  }

  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override {
    EXPECT_TRUE(link_.on_timer(ctx, timer_id));
  }

  fault::ReliableLink& link() { return link_; }
  std::vector<sim::Message> delivered;
  /// delivered_frame[i] identifies the wire frame delivered[i] came from.
  std::vector<std::uint64_t> delivered_frame;

 private:
  struct Outbound {
    sim::NodeId to;
    std::uint32_t kind;
    std::vector<std::uint8_t> payload;
  };
  fault::ReliableLink link_;
  std::vector<Outbound> outbox_;
  int flush_target_ = -1;
  std::uint64_t frame_counter_ = 0;
};

std::vector<std::uint8_t> payload_of(std::uint64_t value) {
  util::ByteWriter w;
  w.put_u64(value);
  return w.take();
}

std::uint64_t value_of(const sim::Message& message) {
  util::ByteReader r(message.payload);
  return r.get_u64();
}

TEST(LinkCoalescing, SizeTriggerEmitsOneFrameAtExactBoundary) {
  sim::Simulator sim(sim::make_delay_model("lan"), 11);
  fault::ReliableLink::Options options;
  options.coalesce_max_items = 4;
  options.coalesce_max_age = 1000;  // age must never fire here
  options.initial_rto = 100;        // ack wins: exactly one wire frame
  auto sender = std::make_unique<LinkHost>(options);
  auto receiver = std::make_unique<LinkHost>();
  auto* tx = sender.get();
  auto* rx = receiver.get();
  for (std::uint64_t i = 0; i < 4; ++i) tx->queue_send(1, 200, payload_of(i));
  sim.add_node(std::move(sender));
  sim.add_node(std::move(receiver));
  obs::RingBufferSink sink(1 << 12);
  sim.set_trace_sink(&sink);
  sim.run();

  ASSERT_EQ(rx->delivered.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rx->delivered[i].kind, 200u);
    EXPECT_EQ(value_of(rx->delivered[i]), i);  // enqueue order preserved
  }
  // One kLinkBatchData frame on the wire (plus its ack), not four.
  EXPECT_EQ(sim.traffic().messages_by_kind.count(fault::kLinkData), 0u);
  EXPECT_EQ(sim.traffic().messages_by_kind.at(fault::kLinkBatchData), 1u);
  const auto events = sink.events();
  std::vector<obs::TraceEvent> flushes;
  for (const auto& e : events) {
    if (e.type == obs::TraceEventType::kBatchFlush) flushes.push_back(e);
  }
  ASSERT_EQ(flushes.size(), 1u);
  EXPECT_EQ(flushes[0].kind, 0u);  // size trigger
  EXPECT_EQ(flushes[0].arg, 4u);
  EXPECT_EQ(flushes[0].peer, 1u);
}

TEST(LinkCoalescing, AgeTriggerFlushesSingleItem) {
  sim::Simulator sim(sim::make_delay_model("lan"), 12);
  fault::ReliableLink::Options options;
  options.coalesce_max_items = 8;
  options.coalesce_max_age = 6;
  auto sender = std::make_unique<LinkHost>(options);
  auto receiver = std::make_unique<LinkHost>();
  auto* tx = sender.get();
  auto* rx = receiver.get();
  tx->queue_send(1, 201, payload_of(42));
  sim.add_node(std::move(sender));
  sim.add_node(std::move(receiver));
  obs::RingBufferSink sink(1 << 12);
  sim.set_trace_sink(&sink);
  sim.run();

  ASSERT_EQ(rx->delivered.size(), 1u);
  EXPECT_EQ(value_of(rx->delivered[0]), 42u);
  const auto events = sink.events();
  std::vector<obs::TraceEvent> flushes;
  for (const auto& e : events) {
    if (e.type == obs::TraceEventType::kBatchFlush) flushes.push_back(e);
  }
  ASSERT_EQ(flushes.size(), 1u);
  EXPECT_EQ(flushes[0].kind, 1u);  // age trigger
  EXPECT_EQ(flushes[0].arg, 1u);
}

TEST(LinkCoalescing, ByteThresholdTriggersBeforeItemCount) {
  sim::Simulator sim(sim::make_delay_model("lan"), 13);
  fault::ReliableLink::Options options;
  options.coalesce_max_items = 100;
  options.coalesce_max_bytes = 16;  // two 8-byte payloads cross it
  options.coalesce_max_age = 1000;
  auto sender = std::make_unique<LinkHost>(options);
  auto receiver = std::make_unique<LinkHost>();
  auto* rx = receiver.get();
  sender->queue_send(1, 202, payload_of(1));
  sender->queue_send(1, 202, payload_of(2));
  sim.add_node(std::move(sender));
  sim.add_node(std::move(receiver));
  obs::RingBufferSink sink(1 << 12);
  sim.set_trace_sink(&sink);
  sim.run();

  ASSERT_EQ(rx->delivered.size(), 2u);
  const auto events = sink.events();
  std::vector<obs::TraceEvent> flushes;
  for (const auto& e : events) {
    if (e.type == obs::TraceEventType::kBatchFlush) flushes.push_back(e);
  }
  ASSERT_EQ(flushes.size(), 1u);
  EXPECT_EQ(flushes[0].kind, 0u);  // size/bytes trigger
  EXPECT_EQ(flushes[0].arg, 2u);
}

TEST(LinkCoalescing, ExplicitFlushOfEmptyQueueIsNoOp) {
  sim::Simulator sim(sim::make_delay_model("lan"), 14);
  fault::ReliableLink::Options options;
  options.coalesce_max_items = 4;
  auto sender = std::make_unique<LinkHost>(options);
  auto receiver = std::make_unique<LinkHost>();
  auto* rx = receiver.get();
  sender->flush_on_start(1);  // nothing queued: must emit nothing
  sim.add_node(std::move(sender));
  sim.add_node(std::move(receiver));
  obs::RingBufferSink sink(1 << 12);
  sim.set_trace_sink(&sink);
  sim.run();

  EXPECT_TRUE(rx->delivered.empty());
  EXPECT_EQ(sim.traffic().messages, 0u);
  EXPECT_EQ(count_events(sink.events(), obs::TraceEventType::kBatchFlush), 0u);
}

/// Acceptance sweep: coalesced frames through a dropping + duplicating
/// network, 100 seeds. Batch framing must survive retransmission and
/// receiver dedup with the link's delivery contract intact: every
/// payload arrives EXACTLY ONCE, and items of one frame unwrap in
/// enqueue order. Frames themselves deliver in network-arrival order
/// (the link never reordered; see the header comment) — end-to-end
/// per-sender FIFO is the abcast layer's job and is covered by the
/// BatchingEndToEnd audit sweeps below.
TEST(LinkCoalescing, FramingRoundTripsUnderDropAndDuplicateAcross100Seeds) {
  constexpr int kMessages = 40;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    sim::Simulator sim(sim::make_delay_model("lan"), seed);
    fault::ReliableLink::Options options;
    options.coalesce_max_items = 4;
    options.coalesce_max_age = 3;
    options.initial_rto = 40;
    auto sender = std::make_unique<LinkHost>(options);
    auto receiver = std::make_unique<LinkHost>();
    auto* tx = sender.get();
    auto* rx = receiver.get();
    for (int i = 0; i < kMessages; ++i) {
      tx->queue_send(1, 210, payload_of(static_cast<std::uint64_t>(i)));
    }
    sim.add_node(std::move(sender));
    sim.add_node(std::move(receiver));

    fault::FaultPlanConfig fault_config;
    fault_config.seed = seed * 977;
    fault_config.default_link.drop_rate = 0.2;
    fault_config.default_link.duplicate_rate = 0.1;
    fault::FaultPlan plan(fault_config);
    sim.set_fault_injector(&plan);
    sim.run();

    ASSERT_EQ(rx->delivered.size(), static_cast<std::size_t>(kMessages));
    std::vector<bool> seen(kMessages, false);
    for (std::size_t i = 0; i < rx->delivered.size(); ++i) {
      const auto value = value_of(rx->delivered[i]);
      ASSERT_LT(value, static_cast<std::uint64_t>(kMessages));
      EXPECT_FALSE(seen[value]) << "value " << value << " delivered twice";
      seen[value] = true;
      // Intra-frame order: consecutive deliveries from the same wire
      // frame carry strictly increasing enqueue ranks.
      if (i > 0 && rx->delivered_frame[i] == rx->delivered_frame[i - 1]) {
        EXPECT_GT(value, value_of(rx->delivered[i - 1]))
            << "frame items unwrapped out of enqueue order at index " << i;
      }
    }
    EXPECT_TRUE(tx->link().failed().empty());
    EXPECT_EQ(tx->link().in_flight(), 0u);
    EXPECT_EQ(tx->link().queued(1), 0u);  // everything flushed by drain
  }
}

// ------------------------------------------------------- mlin query rounds

/// Query batching serializes each process's queries into shared rounds;
/// the merged copy must stay fresh enough that the P5.x audit and the
/// m-linearizability fast check remain clean across seeds and both reply
/// modes.
TEST(QueryBatching, MLinRoundsStayMLinearizableAcrossSeeds) {
  for (const char* protocol : {"mlin", "mlin-narrow"}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      SCOPED_TRACE(std::string(protocol) + "/seed" + std::to_string(seed));
      api::SystemConfig config;
      config.num_processes = 3;
      config.num_objects = 8;
      config.protocol = protocol;
      config.delay = "lan";
      config.seed = seed;
      config.batching.batch_queries = true;
      api::System system(config);
      protocols::WorkloadParams params;
      params.ops_per_process = 8;
      params.update_ratio = 0.4;
      const auto report = system.run_workload(params);
      EXPECT_EQ(report.queries + report.updates, 24u);
      EXPECT_TRUE(system.audit().ok);
      EXPECT_TRUE(system.check_fast(Condition::kMLinearizability).admissible);
    }
  }
}

// ----------------------------------------------------------- end to end

api::SystemConfig batched_config(const std::string& protocol, std::uint64_t seed,
                                 bool faults) {
  api::SystemConfig config;
  config.protocol = protocol;
  config.num_processes = 3;
  config.num_objects = 8;
  config.delay = "lan";
  config.seed = seed;
  config.reliable_link = true;
  config.link.initial_rto = 40;
  if (protocol != "locking") {
    config.batching.abcast_batch_max = 4;
    config.batching.abcast_batch_age = 6;
  }
  config.batching.link_batch_items = 3;
  config.batching.link_batch_age = 3;
  config.batching.batch_queries = protocol == "mlin";
  if (faults) {
    config.faults.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    config.faults.default_link.drop_rate = 0.05;
    config.faults.default_link.duplicate_rate = 0.05;
  }
  return config;
}

/// Acceptance: with every batching knob on — group-commit, coalescing,
/// query rounds — over clean and faulty networks, the audit stays green,
/// the trace round-trips into a well-formed forest, and phase
/// attribution still sums exactly to end-to-end latency.
TEST(BatchingEndToEnd, AuditCleanAndForestWellFormedWithAllKnobsOn) {
  for (const char* protocol : {"mseq", "mlin"}) {
    for (const bool faults : {false, true}) {
      for (std::uint64_t seed = 1; seed <= 15; ++seed) {
        SCOPED_TRACE(std::string(protocol) + (faults ? "/faults" : "/clean") +
                     "/seed" + std::to_string(seed));
        const api::SystemConfig config = batched_config(protocol, seed, faults);
        obs::RingBufferSink sink(std::size_t{1} << 18);
        api::System system(config);
        system.set_trace_sink(&sink);
        protocols::WorkloadParams params;
        params.ops_per_process = 6;
        params.update_ratio = 0.5;
        system.run_workload(params);

        EXPECT_TRUE(system.audit().ok);
        const core::Condition condition =
            std::string(protocol) == "mseq" ? Condition::kMSequentialConsistency
                                            : Condition::kMLinearizability;
        EXPECT_TRUE(system.check_fast(condition).admissible);

        std::stringstream jsonl;
        obs::write_trace_jsonl(jsonl, sink);
        obs::TraceFile trace;
        std::string error;
        ASSERT_TRUE(obs::load_trace_jsonl(jsonl, &trace, &error)) << error;
        obs::Forest forest;
        ASSERT_TRUE(obs::build_forest(trace, &forest, &error)) << error;
        const auto mops = obs::attribute_latency(forest);
        EXPECT_EQ(mops.size(), system.history().size());
        for (const obs::MOpLatency& mop : mops) {
          EXPECT_EQ(mop.phases.total(), mop.respond - mop.invoke)
              << "m-operation " << mop.mop_id << " lost ticks in attribution";
        }
      }
    }
  }
}

/// Batching must actually remove messages: the same seeded workload with
/// group-commit + coalescing on produces strictly fewer wire messages
/// than with the defaults.
TEST(BatchingEndToEnd, BatchedRunSendsFewerMessagesThanUnbatched) {
  const auto run_messages = [](bool batched) {
    api::SystemConfig config;
    config.protocol = "mseq";
    config.num_processes = 6;
    config.num_objects = 8;
    config.delay = "constant";
    config.seed = 9;
    config.reliable_link = true;  // both sides pay ack overhead — fair
    if (batched) {
      config.batching.abcast_batch_max = 8;
      config.batching.abcast_batch_age = 6;
      config.batching.link_batch_items = 4;
      config.batching.link_batch_age = 3;
    }
    api::System system(config);
    protocols::WorkloadParams params;
    params.ops_per_process = 10;
    params.update_ratio = 1.0;
    system.run_workload(params);
    EXPECT_TRUE(system.audit().ok);
    return system.traffic().messages;
  };

  const std::uint64_t unbatched = run_messages(false);
  const std::uint64_t batched = run_messages(true);
  EXPECT_LT(batched, unbatched);
}

}  // namespace
}  // namespace mocc
