// Unit tests for legality (D4.6), read-write precedence ~rw (D4.11), the
// extended relation ~+ (D4.12), and the execution constraints (D4.8-10).
#include <gtest/gtest.h>

#include "core/constraints.hpp"
#include "core/history.hpp"
#include "core/legality.hpp"
#include "core/relations.hpp"

namespace mocc::core {
namespace {

MOperation mop(ProcessId p, std::vector<Operation> ops, Time inv, Time resp) {
  return MOperation(p, std::move(ops), inv, resp);
}

// -------------------------------------------------------------- legality

TEST(Legality, LegalWhenNoInterposedWriter) {
  History h(2, 1);
  const auto w = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  h.add(mop(1, {Operation::read(0, 1, w)}, 3, 4));
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  EXPECT_TRUE(legal(h, order));
}

TEST(Legality, ViolationWhenWriterInterposed) {
  // β=w(x)1 ~> γ=w(x)2 ~> α=r(x)1-from-β : illegal.
  History h(3, 1);
  const auto beta = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  const auto gamma = h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  const auto alpha = h.add(mop(2, {Operation::read(0, 1, beta)}, 5, 6));
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  const auto violation = find_legality_violation(h, order);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->alpha, alpha);
  EXPECT_EQ(violation->beta, beta);
  EXPECT_EQ(violation->gamma, gamma);
  EXPECT_EQ(violation->object, 0u);
  EXPECT_FALSE(violation->to_string().empty());
}

TEST(Legality, SameHistoryLegalUnderWeakerCondition) {
  // The Legality.ViolationWhenWriterInterposed history is illegal only
  // because of real-time edges; under m-SC (process+rf only) the order
  // leaves γ unordered w.r.t. β and α, so no violation exists.
  History h(3, 1);
  const auto beta = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  h.add(mop(2, {Operation::read(0, 1, beta)}, 5, 6));
  const auto order = closed_base_order(h, Condition::kMSequentialConsistency);
  EXPECT_TRUE(legal(h, order));
}

TEST(Legality, InitialReadOverwrittenIsViolation) {
  // α reads x from the initializing write but a writer of x precedes α.
  History h(2, 1);
  const auto gamma = h.add(mop(0, {Operation::write(0, 5)}, 1, 2));
  const auto alpha = h.add(mop(1, {Operation::read(0, 0, kInitialMOp)}, 3, 4));
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  const auto violation = find_legality_violation(h, order);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->alpha, alpha);
  EXPECT_EQ(violation->beta, kInitialMOp);
  EXPECT_EQ(violation->gamma, gamma);
}

TEST(Legality, InitialReadFineWhenWriterUnordered) {
  History h(2, 1);
  h.add(mop(0, {Operation::write(0, 5)}, 1, 10));
  h.add(mop(1, {Operation::read(0, 0, kInitialMOp)}, 2, 9));  // overlaps
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  EXPECT_TRUE(legal(h, order));
}

// ------------------------------------------------------ ~rw / extended

TEST(RwPrecedence, ForcesReaderBeforeOverwriter) {
  // β=w(x)1 ; α=r(x)1-from-β ; γ=w(x)2 with β ~> γ known:
  // D4.11 gives α ~rw~> γ.
  History h(3, 1);
  const auto beta = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  const auto gamma = h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  const auto alpha = h.add(mop(2, {Operation::read(0, 1, beta)}, 3, 4));  // overlaps γ
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  // β ~t~> γ (resp 2 < inv 3) so the interference triggers.
  const auto rw = rw_precedence(h, order);
  EXPECT_TRUE(rw.has(alpha, gamma));
  EXPECT_FALSE(rw.has(gamma, alpha));
}

TEST(RwPrecedence, InitialWriterAlwaysPrecedes) {
  // α reads from init; any writer γ of the object gets α ~rw~> γ.
  History h(2, 1);
  const auto gamma = h.add(mop(0, {Operation::write(0, 5)}, 1, 10));
  const auto alpha = h.add(mop(1, {Operation::read(0, 0, kInitialMOp)}, 2, 9));
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  const auto rw = rw_precedence(h, order);
  EXPECT_TRUE(rw.has(alpha, gamma));
}

TEST(RwPrecedence, NoEdgeWithoutOrderBetaGamma) {
  // β and γ unordered: D4.11 does not apply.
  History h(3, 1);
  const auto beta = h.add(mop(0, {Operation::write(0, 1)}, 1, 10));
  h.add(mop(1, {Operation::write(0, 2)}, 2, 9));  // overlaps β
  const auto alpha = h.add(mop(2, {Operation::read(0, 1, beta)}, 11, 12));
  const auto order = closed_base_order(h, Condition::kMSequentialConsistency);
  const auto rw = rw_precedence(h, order);
  EXPECT_FALSE(rw.has(alpha, 1));
}

TEST(ExtendedRelation, ContainsBaseAndRw) {
  History h(3, 1);
  const auto beta = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  const auto gamma = h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  const auto alpha = h.add(mop(2, {Operation::read(0, 1, beta)}, 3, 4));
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  const auto ext = extended_relation(h, order);
  EXPECT_TRUE(ext.has(beta, gamma));   // from base
  EXPECT_TRUE(ext.has(alpha, gamma));  // from ~rw
  EXPECT_TRUE(ext.has(beta, alpha));   // rf edge
  EXPECT_TRUE(ext.closed_is_irreflexive());
}

// --------------------------------------------------- sequential replay

TEST(LegalSequentialOrder, AcceptsConsistentOrder) {
  History h(2, 1);
  const auto w = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  const auto r = h.add(mop(1, {Operation::read(0, 1, w)}, 3, 4));
  EXPECT_TRUE(is_legal_sequential_order(h, {w, r}));
  EXPECT_FALSE(is_legal_sequential_order(h, {r, w}));  // read before write
}

TEST(LegalSequentialOrder, DetectsInterposedWriter) {
  History h(3, 1);
  const auto b = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  const auto g = h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  const auto a = h.add(mop(2, {Operation::read(0, 1, b)}, 5, 6));
  EXPECT_TRUE(is_legal_sequential_order(h, {b, a, g}));
  EXPECT_FALSE(is_legal_sequential_order(h, {b, g, a}));
}

TEST(LegalSequentialOrder, RejectsWrongLengthAndDuplicates) {
  History h(1, 1);
  h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  EXPECT_FALSE(is_legal_sequential_order(h, {}));
  EXPECT_FALSE(is_legal_sequential_order(h, {0, 0}));
}

TEST(LegalSequentialOrder, ReadOwnWriteThenOthersRead) {
  // m-op writes x then (internally) reads it; another m-op reads from it.
  History h(2, 1);
  const auto a =
      h.add(mop(0, {Operation::write(0, 5), Operation::read(0, 5, 0)}, 1, 2));
  const auto b = h.add(mop(1, {Operation::read(0, 5, a)}, 3, 4));
  EXPECT_TRUE(is_legal_sequential_order(h, {a, b}));
}

// ------------------------------------------------------------ constraints

class ConstraintFixture : public ::testing::Test {
 protected:
  // Two updates on disjoint objects, real-time overlapping; one query.
  ConstraintFixture() : h(3, 2) {
    u1 = h.add(mop(0, {Operation::write(0, 1)}, 1, 10));
    u2 = h.add(mop(1, {Operation::write(1, 2)}, 2, 9));
    q = h.add(mop(2, {Operation::read(0, 1, u1)}, 11, 12));
  }
  History h;
  MOpId u1, u2, q;
};

TEST_F(ConstraintFixture, WWRequiresAllUpdatePairsOrdered) {
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  // u1, u2 overlap and touch disjoint objects: unordered => WW violated.
  const auto violation = find_constraint_violation(h, order, Constraint::kWW);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->constraint, Constraint::kWW);
  EXPECT_FALSE(violation->to_string().empty());
}

TEST_F(ConstraintFixture, OOAndWOHoldWithDisjointWrites) {
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  // u1 and u2 do not conflict (disjoint objects): OO satisfied.
  EXPECT_TRUE(satisfies(h, order, Constraint::kOO));
  EXPECT_TRUE(satisfies(h, order, Constraint::kWO));
}

TEST(Constraints, OOViolatedByUnorderedConflict) {
  History h(2, 1);
  h.add(mop(0, {Operation::write(0, 1)}, 1, 10));
  h.add(mop(1, {Operation::read(0, 0, kInitialMOp)}, 2, 9));  // overlap, conflict
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  EXPECT_FALSE(satisfies(h, order, Constraint::kOO));
  // WO only cares about write-write on a common object: satisfied.
  EXPECT_TRUE(satisfies(h, order, Constraint::kWO));
}

TEST(Constraints, WOViolatedByUnorderedCoWriters) {
  History h(2, 1);
  h.add(mop(0, {Operation::write(0, 1)}, 1, 10));
  h.add(mop(1, {Operation::write(0, 2)}, 2, 9));
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  EXPECT_FALSE(satisfies(h, order, Constraint::kWO));
  EXPECT_FALSE(satisfies(h, order, Constraint::kOO));
  EXPECT_FALSE(satisfies(h, order, Constraint::kWW));
}

TEST(Constraints, AllHoldWhenEverythingOrdered) {
  History h(1, 1);  // single process: process order totally orders
  h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  h.add(mop(0, {Operation::write(0, 2)}, 3, 4));
  h.add(mop(0, {Operation::read(0, 2, 1)}, 5, 6));
  const auto order = closed_base_order(h, Condition::kMSequentialConsistency);
  EXPECT_TRUE(satisfies(h, order, Constraint::kWW));
  EXPECT_TRUE(satisfies(h, order, Constraint::kOO));
  EXPECT_TRUE(satisfies(h, order, Constraint::kWO));
}

TEST(Constraints, QueriesExemptFromWW) {
  History h(2, 1);
  h.add(mop(0, {Operation::read(0, 0, kInitialMOp)}, 1, 10));
  h.add(mop(1, {Operation::read(0, 0, kInitialMOp)}, 2, 9));
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  EXPECT_TRUE(satisfies(h, order, Constraint::kWW));
}

TEST(Constraints, Names) {
  EXPECT_STREQ(constraint_name(Constraint::kOO), "OO");
  EXPECT_STREQ(constraint_name(Constraint::kWW), "WW");
  EXPECT_STREQ(constraint_name(Constraint::kWO), "WO");
}

}  // namespace
}  // namespace mocc::core
