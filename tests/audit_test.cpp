// Mutation tests for the P5.1–P5.8 protocol audit: a trustworthy oracle
// must not only pass on correct runs (covered by the protocol tests) but
// FAIL on each class of corruption Theorem 10's properties rule out.
// Each test takes a genuine recorded execution, corrupts one aspect of
// the trace or history, and asserts the audit names the right property.
#include <gtest/gtest.h>

#include <string>

#include "api/system.hpp"
#include "core/audit.hpp"
#include "mscript/library.hpp"

namespace mocc::core {
namespace {

/// A small genuine m-lin execution plus its trace.
struct Recorded {
  History history;
  ProtocolTrace trace;
};

Recorded record() {
  api::SystemConfig config;
  config.num_processes = 3;
  config.num_objects = 2;
  config.protocol = "mlin";
  config.seed = 123;
  api::System system(config);
  system.submit(0, 1, mscript::lib::make_write(0, 5));
  system.submit(1, 2, mscript::lib::make_write(1, 6));
  system.submit(2, 30'000, mscript::lib::make_sum(std::vector<mscript::ObjectId>{0, 1}));
  system.submit(0, 30'001, mscript::lib::make_fetch_add(0, 1));
  system.run();
  const auto h = system.history();
  return Recorded{h, system.recorder().build_trace(h, /*include_process_order=*/false)};
}

bool audit_mentions(const AuditReport& report, const std::string& needle) {
  for (const auto& violation : report.violations) {
    if (violation.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(AuditMutation, CleanTracePasses) {
  const Recorded r = record();
  EXPECT_TRUE(audit_protocol_execution(r.history, r.trace).ok);
}

TEST(AuditMutation, P52CatchesMissingWwEdge) {
  Recorded r = record();
  // Drop the ~ww ordering between the two updates by rebuilding the sync
  // order without it: rebuild from rf + rt only.
  ProtocolTrace trace = r.trace;
  trace.sync_order = reads_from_order(r.history);
  trace.sync_order.merge(real_time_order(r.history));
  // Make the two writes real-time concurrent so neither rt nor rf orders
  // them: rebuild the history with overlapping intervals.
  History h(3, 2);
  h.add(MOperation(0, {Operation::write(0, 5)}, 1, 100, "w0"));
  h.add(MOperation(1, {Operation::write(1, 6)}, 2, 99, "w1"));
  h.add(MOperation(2,
                   {Operation::read(0, 5, 0), Operation::read(1, 6, 1)},
                   200, 210, "sum"));
  h.add(MOperation(0,
                   {Operation::read(0, 5, 0), Operation::write(0, 6)},
                   220, 230, "fa"));
  ProtocolTrace t2;
  t2.sync_order = reads_from_order(h);
  t2.sync_order.merge(real_time_order(h));
  t2.timestamps = {util::VersionVector::from_entries({1, 0}),
                   util::VersionVector::from_entries({0, 1}),
                   util::VersionVector::from_entries({1, 1}),
                   util::VersionVector::from_entries({2, 1})};
  t2.is_update = {true, true, false, true};
  const auto report = audit_protocol_execution(h, t2);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(audit_mentions(report, "P5.2")) << report.to_string();
}

TEST(AuditMutation, P53CatchesNonMonotonicTimestamps) {
  Recorded r = record();
  // Swap two timestamps so ts decreases along the sync order.
  // Find an ordered pair (b, a) with b an update.
  for (MOpId b = 0; b < r.history.size(); ++b) {
    for (MOpId a = 0; a < r.history.size(); ++a) {
      if (a != b && r.trace.sync_order.has(b, a) &&
          r.trace.timestamps[b].pointwise_less(r.trace.timestamps[a])) {
        std::swap(r.trace.timestamps[b], r.trace.timestamps[a]);
        const auto report = audit_protocol_execution(r.history, r.trace);
        EXPECT_FALSE(report.ok);
        EXPECT_TRUE(audit_mentions(report, "P5.3") ||
                    audit_mentions(report, "P5.4"))
            << report.to_string();
        return;
      }
    }
  }
  FAIL() << "no ordered timestamp pair found to corrupt";
}

TEST(AuditMutation, P54CatchesMissingVersionBump) {
  Recorded r = record();
  // Zero out an updater's own written component: P5.4 (strict increase
  // on written objects) must fire.
  for (MOpId id = 0; id < r.history.size(); ++id) {
    const auto& wobjects = r.history.mop(id).wobjects();
    if (!wobjects.empty()) {
      auto entries = r.trace.timestamps[id].entries();
      entries[wobjects[0]] = 0;
      r.trace.timestamps[id] = util::VersionVector::from_entries(entries);
      const auto report = audit_protocol_execution(r.history, r.trace);
      EXPECT_FALSE(report.ok);
      // Zeroing may trip P5.3 (monotonicity) and/or P5.4/P5.7/P5.8.
      EXPECT_TRUE(audit_mentions(report, "P5.")) << report.to_string();
      return;
    }
  }
  FAIL() << "no update found";
}

TEST(AuditMutation, P57CatchesVersionMismatchOnRead) {
  Recorded r = record();
  // Bump a pure reader's version past its writer: P5.7 equality breaks.
  for (MOpId id = 0; id < r.history.size(); ++id) {
    const auto& m = r.history.mop(id);
    if (m.is_query() && !m.external_reads().empty() &&
        m.external_reads()[0].reads_from != kInitialMOp) {
      auto entries = r.trace.timestamps[id].entries();
      entries[m.external_reads()[0].object] += 3;
      r.trace.timestamps[id] = util::VersionVector::from_entries(entries);
      const auto report = audit_protocol_execution(r.history, r.trace);
      EXPECT_FALSE(report.ok);
      EXPECT_TRUE(audit_mentions(report, "P5.7")) << report.to_string();
      return;
    }
  }
  FAIL() << "no suitable reader found";
}

TEST(AuditMutation, LegalityCatchesRewiredRead) {
  Recorded r = record();
  // Rewire the sum's read of x0 to the LATER writer while keeping the
  // earlier timestamp: an overwritten-read (Lemma 9 consequence) or a
  // P5.7 mismatch must surface.
  History h(3, 2);
  h.add(MOperation(0, {Operation::write(0, 5)}, 1, 2, "w0"));
  h.add(MOperation(1, {Operation::write(1, 6)}, 3, 4, "w1"));
  // fetch_add writes x0 := 6 (reads 5 from m0).
  h.add(MOperation(0, {Operation::read(0, 5, 0), Operation::write(0, 6)}, 5, 6,
                   "fa"));
  // The sum CLAIMS to read x0 from m0 although fa overwrote it and is
  // ordered before the sum by real time.
  h.add(MOperation(2, {Operation::read(0, 5, 0), Operation::read(1, 6, 1)}, 10, 11,
                   "sum"));
  ProtocolTrace trace;
  trace.sync_order = reads_from_order(h);
  trace.sync_order.merge(real_time_order(h));
  trace.timestamps = {util::VersionVector::from_entries({1, 0}),
                      util::VersionVector::from_entries({1, 1}),
                      util::VersionVector::from_entries({2, 1}),
                      util::VersionVector::from_entries({2, 1})};
  trace.is_update = {true, true, true, false};
  const auto report = audit_protocol_execution(h, trace);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(audit_mentions(report, "Lemma 9") || audit_mentions(report, "P5.7"))
      << report.to_string();
}

TEST(AuditMutation, CyclicSyncOrderReported) {
  Recorded r = record();
  // Add a back edge to create a cycle.
  for (MOpId b = 0; b < r.history.size(); ++b) {
    for (MOpId a = 0; a < r.history.size(); ++a) {
      if (a != b && r.trace.sync_order.has(b, a)) {
        r.trace.sync_order.add(a, b);
        const auto report = audit_protocol_execution(r.history, r.trace);
        EXPECT_FALSE(report.ok);
        EXPECT_TRUE(audit_mentions(report, "cyclic")) << report.to_string();
        return;
      }
    }
  }
  FAIL() << "no edge found";
}

TEST(AuditMutation, CorruptedSyncOrderRejected) {
  // Deliberately corrupt the recorded synchronization order wholesale:
  // replace ~>H− with its converse (every edge reversed). The converse
  // still relates the same pairs, so this models a protocol whose
  // bookkeeping is systematically wrong rather than merely incomplete.
  // The audit must reject it — the reversed ~ww contradicts the recorded
  // timestamps (P5.2/P5.3) and reads-from legality.
  Recorded r = record();
  const std::size_t n = r.history.size();
  util::BitRelation reversed(n);
  for (MOpId a = 0; a < n; ++a) {
    for (MOpId b = 0; b < n; ++b) {
      if (r.trace.sync_order.has(a, b)) reversed.add(b, a);
    }
  }
  ASSERT_EQ(reversed.pair_count(), r.trace.sync_order.pair_count());
  r.trace.sync_order = reversed;
  const auto report = audit_protocol_execution(r.history, r.trace);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.violations.empty());
}

TEST(AuditMutation, EmptiedSyncOrderRejected) {
  // The other direction of corruption: drop every recorded edge. The
  // required ~ww edges between broadcast updates are then missing, which
  // P5.2 pins down by name.
  Recorded r = record();
  r.trace.sync_order = util::BitRelation(r.history.size());
  const auto report = audit_protocol_execution(r.history, r.trace);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(audit_mentions(report, "P5.2")) << report.to_string();
}

TEST(AuditMutation, P51CatchesFabricatedQueryOrder) {
  // Two real-time-overlapping queries ordered in the sync relation: the
  // protocols never do this (queries are ordered only by ~t), so the
  // audit must flag it.
  History h(2, 1);
  h.add(MOperation(0, {Operation::read(0, 0, kInitialMOp)}, 1, 10, "q1"));
  h.add(MOperation(1, {Operation::read(0, 0, kInitialMOp)}, 2, 9, "q2"));
  ProtocolTrace trace;
  trace.sync_order = util::BitRelation(2);
  trace.sync_order.add(0, 1);  // fabricated
  trace.timestamps = {util::VersionVector(1), util::VersionVector(1)};
  trace.is_update = {false, false};
  const auto report = audit_protocol_execution(h, trace);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(audit_mentions(report, "P5.1")) << report.to_string();
}

}  // namespace
}  // namespace mocc::core
