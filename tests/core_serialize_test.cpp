// Tests for the plain-text history format (core/serialize.hpp).
#include <gtest/gtest.h>

#include "core/generate.hpp"
#include "core/serialize.hpp"
#include "util/rng.hpp"

namespace mocc::core {
namespace {

TEST(Serialize, RoundTripSimpleHistory) {
  History h(2, 2);
  const auto w = h.add(MOperation(
      0, {Operation::write(0, 5), Operation::write(1, 6)}, 1, 2, "init"));
  h.add(MOperation(1,
                   {Operation::read(0, 5, w), Operation::read(1, 0, kInitialMOp)},
                   3, 4, "reader"));
  const std::string text = serialize_history(h);
  std::string error;
  const auto parsed = parse_history(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->equivalent(h));
  EXPECT_EQ(parsed->mop(0).label(), "init");
  EXPECT_EQ(parsed->mop(1).invoke(), 3u);
}

TEST(Serialize, RoundTripSelfReads) {
  History h(1, 1);
  h.add(MOperation(0, {Operation::write(0, 5), Operation::read(0, 5, 0)}, 1, 2));
  const auto parsed = parse_history(serialize_history(h), nullptr);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->equivalent(h));
}

TEST(Serialize, RoundTripForwardReference) {
  History h(2, 1);
  h.add(MOperation(0, {Operation{OpType::kRead, 0, 7, 1}}, 1, 2));
  h.add(MOperation(1, {Operation::write(0, 7)}, 1, 2));
  const auto parsed = parse_history(serialize_history(h), nullptr);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->equivalent(h));
}

TEST(Serialize, RoundTripNegativeValues) {
  History h(1, 1);
  h.add(MOperation(0, {Operation::write(0, -42)}, 1, 2));
  const auto parsed = parse_history(serialize_history(h), nullptr);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mop(0).final_write_value(0), -42);
}

class SerializeRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeRandom, RoundTripGeneratedHistories) {
  util::Rng rng(GetParam());
  GeneratorParams params;
  params.num_mops = 15;
  params.num_processes = 4;
  params.num_objects = 3;
  const History h = generate_admissible_history(params, rng);
  std::string error;
  const auto parsed = parse_history(serialize_history(h), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->equivalent(h));
  // Times survive too (equivalence ignores them; check directly).
  for (MOpId id = 0; id < h.size(); ++id) {
    EXPECT_EQ(parsed->mop(id).invoke(), h.mop(id).invoke());
    EXPECT_EQ(parsed->mop(id).response(), h.mop(id).response());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRandom, ::testing::Values(1, 2, 3, 4, 5));

TEST(Parse, CommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "\n"
      "history 1 1\n"
      "# another\n"
      "mop 0 1 2 : w(0)5\n";
  const auto parsed = parse_history(text, nullptr);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(Parse, LabelIsOptional) {
  const auto parsed = parse_history("history 1 1\nmop 0 1 2 : w(0)5\n", nullptr);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->mop(0).label().empty());
}

TEST(Parse, ErrorsCarryLineNumbers) {
  std::string error;
  EXPECT_FALSE(parse_history("history 1 1\nmop 0 1 2 : q(0)5\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(Parse, RejectsMissingHeader) {
  std::string error;
  EXPECT_FALSE(parse_history("mop 0 1 2 : w(0)5\n", &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(Parse, RejectsDuplicateHeader) {
  std::string error;
  EXPECT_FALSE(
      parse_history("history 1 1\nhistory 1 1\n", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(Parse, RejectsProcessOutOfRange) {
  std::string error;
  EXPECT_FALSE(
      parse_history("history 1 1\nmop 7 1 2 : w(0)5\n", &error).has_value());
  EXPECT_NE(error.find("process"), std::string::npos);
}

TEST(Parse, RejectsObjectOutOfRange) {
  std::string error;
  EXPECT_FALSE(
      parse_history("history 1 1\nmop 0 1 2 : w(9)5\n", &error).has_value());
  EXPECT_NE(error.find("object"), std::string::npos);
}

TEST(Parse, RejectsInvokeAfterResponse) {
  std::string error;
  EXPECT_FALSE(
      parse_history("history 1 1\nmop 0 9 2 : w(0)5\n", &error).has_value());
  EXPECT_NE(error.find("invoke"), std::string::npos);
}

TEST(Parse, RejectsDanglingReadsFrom) {
  std::string error;
  EXPECT_FALSE(
      parse_history("history 1 1\nmop 0 1 2 : r(0)5@17\n", &error).has_value());
  EXPECT_NE(error.find("out-of-range"), std::string::npos);
}

TEST(Parse, RejectsMalformedOps) {
  for (const char* bad : {"w(0)", "r(0)5", "w(x)5", "r(0)5@bob", "write(0)5"}) {
    std::string error;
    const std::string text = std::string("history 1 1\nmop 0 1 2 : ") + bad + "\n";
    EXPECT_FALSE(parse_history(text, &error).has_value()) << bad;
  }
}

TEST(SaveLoad, FileRoundTrip) {
  History h(1, 1);
  h.add(MOperation(0, {Operation::write(0, 5)}, 1, 2, "only"));
  const std::string path = ::testing::TempDir() + "/mocc_serialize_test.txt";
  std::string error;
  ASSERT_TRUE(save_history(h, path, &error)) << error;
  const auto loaded = load_history(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->equivalent(h));
}

TEST(SaveLoad, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(load_history("/nonexistent/nope.txt", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace mocc::core
