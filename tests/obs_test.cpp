// Observability layer: JSON writer determinism, histogram percentile
// edge cases, registry behavior, the ring-buffer trace sink (including
// concurrent emission under sim::ParallelRunner — the tsan preset's
// coverage of the sink mutex), and end-to-end trace capture from a
// System run.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "api/system.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/parallel.hpp"

namespace mocc {
namespace {

// --- JsonWriter -------------------------------------------------------

TEST(JsonWriter, CompactObject) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.field("a", std::uint64_t{1});
  json.field("b", "x\"y\n");
  json.key("c");
  json.begin_array();
  json.value(true);
  json.value(std::int64_t{-2});
  json.end_array();
  json.end_object();
  EXPECT_TRUE(json.done());
  EXPECT_EQ(out.str(), R"({"a":1,"b":"x\"y\n","c":[true,-2]})");
}

TEST(JsonWriter, PrettyIndentation) {
  std::ostringstream out;
  obs::JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.field("k", std::uint64_t{7});
  json.end_object();
  EXPECT_EQ(out.str(), "{\n  \"k\": 7\n}");
}

TEST(JsonWriter, DoublesAreShortestRoundTrip) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_array();
  json.value(0.5);
  json.value(1.0);
  json.value(175.43859649122808);
  json.end_array();
  EXPECT_EQ(out.str(), "[0.5,1,175.43859649122808]");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

// --- FixedHistogram ---------------------------------------------------

TEST(FixedHistogram, EmptyReportsSchemaStableZeros) {
  obs::FixedHistogram h(0.0, 100.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(0.0), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.percentile(99.0), 0.0);
  EXPECT_EQ(h.percentile(100.0), 0.0);
}

TEST(FixedHistogram, SingleSampleIsExactAtEveryPercentile) {
  obs::FixedHistogram h(0.0, 100.0, 10);
  h.add(37.0);  // interior of bucket [30, 40): midpoint would be 35
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.mean(), 37.0);
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), 37.0) << "p=" << p;
  }
}

TEST(FixedHistogram, AllEqualSamplesAreExact) {
  obs::FixedHistogram h(0.0, 100.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(42.0);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.percentile(50.0), 42.0);
  EXPECT_EQ(h.percentile(99.0), 42.0);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
}

TEST(FixedHistogram, PercentilesLandInTheRightBucket) {
  obs::FixedHistogram h(0.0, 100.0, 100);  // 1-wide buckets
  for (int v = 0; v < 100; ++v) h.add(v + 0.5);  // one sample per bucket
  EXPECT_EQ(h.count(), 100u);
  // Nearest-rank: p50 -> rank 50 -> 50th bucket [49, 50), midpoint 49.5.
  EXPECT_EQ(h.percentile(50.0), 49.5);
  EXPECT_EQ(h.percentile(99.0), 98.5);
  EXPECT_EQ(h.percentile(100.0), 99.5);
  EXPECT_EQ(h.percentile(0.0), 0.5);  // rank clamps to 1
}

TEST(FixedHistogram, OverflowAndUnderflowAreCountedAndClamped) {
  obs::FixedHistogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(5.0);
  h.add(1e9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.max(), 1e9);
  // The p100 rank lands in the overflow bucket; its "midpoint" is the
  // exact observed max (clamping), not an invented value past hi.
  EXPECT_EQ(h.percentile(100.0), 1e9);
  EXPECT_EQ(h.percentile(0.0), -5.0);
}

TEST(FixedHistogram, SummaryJsonShape) {
  obs::FixedHistogram h(0.0, 10.0, 10);
  h.add(2.0);
  h.add(2.0);
  std::ostringstream out;
  obs::JsonWriter json(out);
  h.write_summary_json(json);
  EXPECT_EQ(out.str(),
            R"({"count":2,"mean":2,"p50":2,"p99":2,"min":2,"max":2})");
}

// --- Registry ---------------------------------------------------------

TEST(Registry, InstrumentsAreCreatedOnceAndStable) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("msgs");
  c.inc(3);
  registry.counter("msgs").inc();
  EXPECT_EQ(registry.counter("msgs").value(), 4u);
  EXPECT_EQ(&registry.counter("msgs"), &c);

  registry.gauge("tput").set(1.5);
  EXPECT_EQ(registry.gauge("tput").value(), 1.5);

  obs::FixedHistogram& h = registry.histogram("q", 0.0, 10.0, 10);
  h.add(1.0);
  EXPECT_EQ(&registry.histogram("q", 0.0, 10.0, 10), &h);
  EXPECT_EQ(registry.histogram("q", 0.0, 10.0, 10).count(), 1u);
}

TEST(Registry, JsonFieldsAreSortedByName) {
  obs::Registry registry;
  registry.counter("zeta").set(1);
  registry.counter("alpha").set(2);
  registry.gauge("g").set(0.25);
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  registry.write_json_fields(json);
  json.end_object();
  EXPECT_EQ(out.str(),
            R"({"counters":{"alpha":2,"zeta":1},"gauges":{"g":0.25},"histograms":{}})");
}

// --- RingBufferSink ---------------------------------------------------

obs::TraceEvent event_with_id(std::uint64_t id) {
  obs::TraceEvent event;
  event.type = obs::TraceEventType::kMessageSend;
  event.id = id;
  return event;
}

TEST(RingBufferSink, KeepsNewestEventsWhenFull) {
  obs::RingBufferSink sink(4);
  for (std::uint64_t i = 0; i < 10; ++i) sink.on_event(event_with_id(i));
  EXPECT_EQ(sink.total(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].id, 6 + i) << "oldest-first order after wrap";
  }
  sink.clear();
  EXPECT_EQ(sink.total(), 0u);
  EXPECT_TRUE(sink.events().empty());
}

TEST(RingBufferSink, JsonlExport) {
  obs::RingBufferSink sink(8);
  obs::TraceEvent event;
  event.type = obs::TraceEventType::kAbcastSequence;
  event.time = 9;
  event.node = 1;
  event.peer = 2;
  event.id = 5;
  event.arg = 17;
  sink.on_event(event);
  std::ostringstream out;
  obs::write_jsonl(out, sink.events());
  EXPECT_EQ(out.str(),
            "{\"type\":\"abcast_sequence\",\"t\":9,\"node\":1,\"peer\":2,"
            "\"kind\":0,\"id\":5,\"arg\":17}\n");
}

/// The concurrency contract (trace.hpp): many simulators running under a
/// ParallelRunner may share one sink; every event must be counted and
/// each emitter's own order preserved. TSan (the tsan preset) checks the
/// synchronization; the assertions check the accounting.
TEST(RingBufferSink, ConcurrentEmittersLoseNothing) {
  constexpr std::size_t kJobs = 8;
  constexpr std::uint64_t kEventsPerJob = 1000;
  obs::RingBufferSink sink(kJobs * kEventsPerJob);
  sim::ParallelRunner runner(4);
  runner.run(kJobs, [&](std::size_t job) {
    for (std::uint64_t i = 0; i < kEventsPerJob; ++i) {
      obs::TraceEvent event;
      event.node = static_cast<std::uint32_t>(job);
      event.id = i;  // per-emitter sequence number
      sink.on_event(event);
    }
  });
  EXPECT_EQ(sink.total(), kJobs * kEventsPerJob);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), kJobs * kEventsPerJob);
  std::vector<std::uint64_t> next_id(kJobs, 0);
  for (const auto& event : events) {
    EXPECT_EQ(event.id, next_id[event.node]++) << "per-emitter order broken";
  }
}

/// Whole-system capture: a real workload on the mlin protocol must emit
/// a consistent event stream — sends pair with deliveries, every m-op
/// invocation gets a response, abcast positions are gapless, and virtual
/// time never runs backwards.
TEST(TraceCapture, SystemRunEmitsConsistentStream) {
  obs::RingBufferSink sink(1 << 16);
  api::SystemConfig config;
  config.protocol = "mlin";
  config.num_processes = 3;
  config.num_objects = 4;
  config.seed = 42;
  api::System system(config);
  system.set_trace_sink(&sink);
  protocols::WorkloadParams params;
  params.ops_per_process = 5;
  params.update_ratio = 0.5;
  system.run_workload(params);

  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.events();
  ASSERT_FALSE(events.empty());

  std::uint64_t sends = 0, delivers = 0, invokes = 0, responds = 0;
  std::vector<std::uint64_t> abcast_next(config.num_processes, 0);
  std::uint64_t last_time = 0;
  for (const auto& event : events) {
    EXPECT_GE(event.time, last_time) << "virtual time ran backwards";
    last_time = event.time;
    switch (event.type) {
      case obs::TraceEventType::kMessageSend:
        ++sends;
        break;
      case obs::TraceEventType::kMessageDeliver:
        ++delivers;
        break;
      case obs::TraceEventType::kMOpInvoke:
        ++invokes;
        break;
      case obs::TraceEventType::kMOpRespond:
        ++responds;
        break;
      case obs::TraceEventType::kAbcastSequence:
        // Each replica sees the agreed positions 0, 1, 2, ... gaplessly.
        EXPECT_EQ(event.id, abcast_next[event.node]++);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(sends, system.traffic().messages);
  EXPECT_EQ(delivers, sends) << "every sent message is delivered";
  EXPECT_EQ(invokes, config.num_processes * params.ops_per_process);
  EXPECT_EQ(responds, invokes) << "every invocation responded";
  // Every replica delivered every update: positions advanced in lockstep.
  for (std::size_t node = 1; node < config.num_processes; ++node) {
    EXPECT_EQ(abcast_next[node], abcast_next[0]);
  }
}

/// Detaching the sink stops emission (the null-sink fast path).
TEST(TraceCapture, DetachedSinkReceivesNothing) {
  obs::RingBufferSink sink(64);
  api::SystemConfig config;
  config.protocol = "mseq";
  config.num_processes = 2;
  config.num_objects = 2;
  api::System system(config);
  system.set_trace_sink(&sink);
  system.set_trace_sink(nullptr);
  protocols::WorkloadParams params;
  params.ops_per_process = 3;
  system.run_workload(params);
  EXPECT_EQ(sink.total(), 0u);
}

/// Lock events appear only for the 2PL protocols and balance exactly.
TEST(TraceCapture, LockingProtocolEmitsBalancedLockEvents) {
  obs::RingBufferSink sink(1 << 16);
  api::SystemConfig config;
  config.protocol = "locking";
  config.num_processes = 3;
  config.num_objects = 4;
  config.seed = 7;
  api::System system(config);
  system.set_trace_sink(&sink);
  protocols::WorkloadParams params;
  params.ops_per_process = 5;
  params.update_ratio = 0.5;
  system.run_workload(params);

  std::uint64_t acquires = 0, releases = 0;
  for (const auto& event : sink.events()) {
    if (event.type == obs::TraceEventType::kLockAcquire) ++acquires;
    if (event.type == obs::TraceEventType::kLockRelease) ++releases;
  }
  EXPECT_GT(acquires, 0u);
  EXPECT_EQ(acquires, releases) << "every granted lock is released";
}

}  // namespace
}  // namespace mocc
