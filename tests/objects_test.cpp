// Tests for the typed concurrent objects (src/objects): registers,
// counters, bounded FIFO queues, and stacks built from m-operations.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "objects/objects.hpp"

namespace mocc::objects {
namespace {

api::SystemConfig config_for(const std::string& protocol, std::size_t processes,
                             std::size_t objects, std::uint64_t seed = 5) {
  api::SystemConfig config;
  config.protocol = protocol;
  config.num_processes = processes;
  config.num_objects = objects;
  config.delay = "lan";
  config.seed = seed;
  return config;
}

// -------------------------------------------------------------- Register

TEST(RegisterObject, WriteThenRead) {
  api::System system(config_for("mlin", 2, 1));
  Register reg(system, 0);
  std::int64_t seen = -1;
  reg.write(0, 42, [&] {
    reg.read(1, [&](Value v) { seen = v; });
  });
  system.run();
  EXPECT_EQ(seen, 42);
}

TEST(RegisterObject, LastWriterWinsUnderMLin) {
  api::System system(config_for("mlin", 2, 1));
  Register reg(system, 0);
  std::int64_t seen = -1;
  reg.write(0, 1, [&] {
    reg.write(1, 2, [&] {
      reg.read(0, [&](Value v) { seen = v; });
    });
  });
  system.run();
  EXPECT_EQ(seen, 2);
}

// --------------------------------------------------------------- Counter

TEST(CounterObject, FetchAddReturnsOldValues) {
  api::System system(config_for("mlin", 3, 1));
  Counter counter(system, 0);
  std::vector<Value> olds;
  for (int i = 0; i < 9; ++i) {
    counter.fetch_add(i % 3, 1, [&](Value old) { olds.push_back(old); });
  }
  system.run();
  std::set<Value> unique(olds.begin(), olds.end());
  EXPECT_EQ(unique.size(), 9u);  // every increment saw a distinct old value
  Value final_value = -1;
  counter.get(0, [&](Value v) { final_value = v; });
  system.run();
  EXPECT_EQ(final_value, 9);
}

// ----------------------------------------------------------- BoundedQueue

TEST(QueueObject, FifoSingleProcess) {
  api::System system(config_for("mlin", 1, BoundedQueue::objects_needed(4)));
  BoundedQueue queue(system, 0, 4);
  for (Value v : {10, 20, 30}) queue.enqueue(0, v);
  std::vector<Value> out;
  for (int i = 0; i < 3; ++i) {
    queue.dequeue(0, [&](std::optional<Value> v) {
      ASSERT_TRUE(v.has_value());
      out.push_back(*v);
    });
  }
  system.run();
  EXPECT_EQ(out, (std::vector<Value>{10, 20, 30}));
}

TEST(QueueObject, EmptyDequeueReturnsNullopt) {
  api::System system(config_for("mlin", 1, BoundedQueue::objects_needed(2)));
  BoundedQueue queue(system, 0, 2);
  bool got_empty = false;
  queue.dequeue(0, [&](std::optional<Value> v) { got_empty = !v.has_value(); });
  system.run();
  EXPECT_TRUE(got_empty);
}

TEST(QueueObject, FullEnqueueFails) {
  api::System system(config_for("mlin", 1, BoundedQueue::objects_needed(2)));
  BoundedQueue queue(system, 0, 2);
  std::vector<bool> results;
  for (Value v : {1, 2, 3}) {
    queue.enqueue(0, v, [&](bool ok) { results.push_back(ok); });
  }
  system.run();
  EXPECT_EQ(results, (std::vector<bool>{true, true, false}));
}

TEST(QueueObject, WrapAroundReusesCells) {
  api::System system(config_for("mlin", 1, BoundedQueue::objects_needed(2)));
  BoundedQueue queue(system, 0, 2);
  std::vector<Value> out;
  auto dequeue_into = [&] {
    queue.dequeue(0, [&](std::optional<Value> v) {
      ASSERT_TRUE(v.has_value());
      out.push_back(*v);
    });
  };
  for (int round = 0; round < 4; ++round) {
    queue.enqueue(0, 100 + round);
    dequeue_into();
  }
  system.run();
  EXPECT_EQ(out, (std::vector<Value>{100, 101, 102, 103}));
}

TEST(QueueObject, ConcurrentProducersConsumersLoseNothing) {
  // 2 producers enqueue tagged values; 2 consumers drain. Every enqueued
  // value is dequeued exactly once and per-producer order is FIFO.
  constexpr std::size_t kCapacity = 32;
  constexpr int kPerProducer = 8;
  api::System system(config_for("mlin", 4, BoundedQueue::objects_needed(kCapacity), 9));
  BoundedQueue queue(system, 0, kCapacity);

  // Chain each producer's enqueues (issue the next only after the
  // previous completed): per-producer FIFO is a property of *completed*
  // operations; pipelined optimistic attempts may commit out of issue
  // order.
  std::function<void(ProcessId, int)> produce = [&](ProcessId p, int i) {
    if (i == kPerProducer) return;
    queue.enqueue(p, static_cast<Value>(p) * 1000 + i,
                  [&, p, i](bool ok) {
                    ASSERT_TRUE(ok);
                    produce(p, i + 1);
                  });
  };
  produce(0, 0);
  produce(1, 0);
  system.run();  // all enqueued (capacity suffices)

  std::vector<Value> drained;
  std::function<void(ProcessId)> drain = [&](ProcessId p) {
    queue.dequeue(p, [&, p](std::optional<Value> v) {
      if (!v.has_value()) return;
      drained.push_back(*v);
      drain(p);
    });
  };
  drain(2);
  drain(3);
  system.run();

  ASSERT_EQ(drained.size(), 2u * kPerProducer);
  std::map<Value, int> counts;
  for (const Value v : drained) ++counts[v];
  for (ProcessId p : {0u, 1u}) {
    Value prev = -1;
    for (const Value v : drained) {
      if (v / 1000 != static_cast<Value>(p)) continue;
      EXPECT_GT(v, prev) << "per-producer FIFO broken";
      prev = v;
    }
    for (int i = 0; i < kPerProducer; ++i) {
      EXPECT_EQ(counts[static_cast<Value>(p) * 1000 + i], 1);
    }
  }
}

TEST(QueueObject, HistoryIsMLinearizable) {
  api::System system(config_for("mlin", 2, BoundedQueue::objects_needed(4), 13));
  BoundedQueue queue(system, 0, 4);
  queue.enqueue(0, 7);
  queue.enqueue(1, 8);
  std::vector<std::optional<Value>> popped;
  queue.dequeue(0, [&](std::optional<Value> v) { popped.push_back(v); });
  queue.dequeue(1, [&](std::optional<Value> v) { popped.push_back(v); });
  system.run();
  const auto exact = system.check_exact(core::Condition::kMLinearizability);
  ASSERT_TRUE(exact.completed);
  EXPECT_TRUE(exact.admissible);
  EXPECT_TRUE(system.audit().ok);
}

// ----------------------------------------------------------------- Stack

TEST(StackObject, LifoSingleProcess) {
  api::System system(config_for("mlin", 1, Stack::objects_needed(4)));
  Stack stack(system, 0, 4);
  for (Value v : {1, 2, 3}) stack.push(0, v);
  std::vector<Value> out;
  for (int i = 0; i < 3; ++i) {
    stack.pop(0, [&](std::optional<Value> v) {
      ASSERT_TRUE(v.has_value());
      out.push_back(*v);
    });
  }
  system.run();
  EXPECT_EQ(out, (std::vector<Value>{3, 2, 1}));
}

TEST(StackObject, EmptyPopReturnsNullopt) {
  api::System system(config_for("mlin", 1, Stack::objects_needed(2)));
  Stack stack(system, 0, 2);
  bool empty = false;
  stack.pop(0, [&](std::optional<Value> v) { empty = !v.has_value(); });
  system.run();
  EXPECT_TRUE(empty);
}

TEST(StackObject, FullPushFails) {
  api::System system(config_for("mlin", 1, Stack::objects_needed(1)));
  Stack stack(system, 0, 1);
  std::vector<bool> results;
  stack.push(0, 5, [&](bool ok) { results.push_back(ok); });
  stack.push(0, 6, [&](bool ok) { results.push_back(ok); });
  system.run();
  EXPECT_EQ(results, (std::vector<bool>{true, false}));
}

TEST(StackObject, ConcurrentPushersMultisetPreserved) {
  api::System system(config_for("mlin", 3, Stack::objects_needed(32), 17));
  Stack stack(system, 0, 32);
  for (ProcessId p = 0; p < 3; ++p) {
    for (int i = 0; i < 5; ++i) {
      stack.push(p, static_cast<Value>(p) * 100 + i);
    }
  }
  system.run();
  std::multiset<Value> drained;
  std::function<void()> drain = [&] {
    stack.pop(0, [&](std::optional<Value> v) {
      if (!v.has_value()) return;
      drained.insert(*v);
      drain();
    });
  };
  drain();
  system.run();
  ASSERT_EQ(drained.size(), 15u);
  for (ProcessId p = 0; p < 3; ++p) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(drained.count(static_cast<Value>(p) * 100 + i), 1u);
    }
  }
}

// Objects work under every protocol that provides m-linearizability;
// under plain m-seq the structures stay *coherent* (conditional updates
// validate atomically) though reads may be stale.
class ObjectsAcrossProtocols : public ::testing::TestWithParam<const char*> {};

TEST_P(ObjectsAcrossProtocols, QueueNeverLosesOrDuplicates) {
  api::System system(config_for(GetParam(), 3, BoundedQueue::objects_needed(16), 23));
  BoundedQueue queue(system, 0, 16);
  for (ProcessId p = 0; p < 2; ++p) {
    for (int i = 0; i < 4; ++i) queue.enqueue(p, static_cast<Value>(p) * 10 + i);
  }
  system.run();
  std::multiset<Value> drained;
  std::function<void()> drain = [&] {
    queue.dequeue(2, [&](std::optional<Value> v) {
      if (!v.has_value()) return;
      drained.insert(*v);
      drain();
    });
  };
  drain();
  system.run();
  EXPECT_EQ(drained.size(), 8u);
  for (ProcessId p = 0; p < 2; ++p) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(drained.count(static_cast<Value>(p) * 10 + i), 1u) << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, ObjectsAcrossProtocols,
                         ::testing::Values("mlin", "mlin-narrow", "mlin-bcastq",
                                           "mseq", "locking"));

}  // namespace
}  // namespace mocc::objects
