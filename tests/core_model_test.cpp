// Unit tests for the history model: m-operations, histories, and the
// order-relation builders (§2).
#include <gtest/gtest.h>

#include "core/history.hpp"
#include "core/moperation.hpp"
#include "core/relations.hpp"

namespace mocc::core {
namespace {

MOperation mop(ProcessId p, std::vector<Operation> ops, Time inv, Time resp) {
  return MOperation(p, std::move(ops), inv, resp);
}

// ------------------------------------------------------------ MOperation

TEST(MOperation, DerivesObjectSets) {
  const MOperation m = mop(0,
                           {Operation::read(0, 0, kInitialMOp),
                            Operation::write(1, 5), Operation::write(2, 6)},
                           1, 2);
  EXPECT_EQ(m.objects(), (std::vector<ObjectId>{0, 1, 2}));
  EXPECT_EQ(m.robjects(), (std::vector<ObjectId>{0}));
  EXPECT_EQ(m.wobjects(), (std::vector<ObjectId>{1, 2}));
  EXPECT_TRUE(m.is_update());
  EXPECT_TRUE(m.writes(1));
  EXPECT_FALSE(m.writes(0));
  EXPECT_TRUE(m.reads(0));
  EXPECT_TRUE(m.touches(2));
}

TEST(MOperation, QueryDetection) {
  const MOperation m = mop(0, {Operation::read(0, 0, kInitialMOp)}, 1, 2);
  EXPECT_TRUE(m.is_query());
  EXPECT_FALSE(m.is_update());
}

TEST(MOperation, InternalReadsExcluded) {
  // w(x)5 then r(x)5: the read is satisfied internally — no external
  // constraint (paper §2.2: "we ignore such read operations").
  const MOperation m = mop(0,
                           {Operation::write(0, 5), Operation::read(0, 5, 0),
                            Operation::read(1, 0, kInitialMOp)},
                           1, 2);
  ASSERT_EQ(m.external_reads().size(), 1u);
  EXPECT_EQ(m.external_reads()[0].object, 1u);
}

TEST(MOperation, ReadBeforeOwnWriteIsExternal) {
  // r(x) then w(x): the read happened before the write — external.
  const MOperation m = mop(0,
                           {Operation::read(0, 0, kInitialMOp), Operation::write(0, 5)},
                           1, 2);
  ASSERT_EQ(m.external_reads().size(), 1u);
  EXPECT_EQ(m.external_reads()[0].object, 0u);
}

TEST(MOperation, FinalWritesKeepLastPerObject) {
  // Overwritten internal writes are discarded (paper §2.2).
  const MOperation m = mop(0,
                           {Operation::write(0, 1), Operation::write(0, 2),
                            Operation::write(1, 3)},
                           1, 2);
  ASSERT_EQ(m.final_writes().size(), 2u);
  EXPECT_EQ(m.final_write_value(0), 2);
  EXPECT_EQ(m.final_write_value(1), 3);
}

TEST(MOperationDeath, RespondBeforeInvokeAborts) {
  EXPECT_DEATH(mop(0, {}, 5, 2), "responds before");
}

// --------------------------------------------------------------- History

TEST(History, AddAssignsSequentialIds) {
  History h(2, 2);
  EXPECT_EQ(h.add(mop(0, {Operation::write(0, 1)}, 1, 2)), 0u);
  EXPECT_EQ(h.add(mop(1, {Operation::write(1, 2)}, 1, 2)), 1u);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.process_ops(0), (std::vector<MOpId>{0}));
  EXPECT_EQ(h.process_ops(1), (std::vector<MOpId>{1}));
}

TEST(HistoryDeath, OverlappingSameProcessAborts) {
  History h(1, 1);
  h.add(mop(0, {Operation::write(0, 1)}, 1, 10));
  EXPECT_DEATH(h.add(mop(0, {Operation::write(0, 2)}, 5, 20)), "sequential");
}

TEST(History, WellFormedAfterConstruction) {
  History h(2, 1);
  h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  h.add(mop(0, {Operation::write(0, 2)}, 3, 4));
  h.add(mop(1, {Operation::read(0, 1, 0)}, 2, 3));
  EXPECT_TRUE(h.well_formed());
}

TEST(History, RfObjects) {
  History h(2, 2);
  const auto w = h.add(mop(0, {Operation::write(0, 1), Operation::write(1, 2)}, 1, 2));
  const auto r = h.add(
      mop(1, {Operation::read(0, 1, w), Operation::read(1, 2, w)}, 3, 4));
  EXPECT_EQ(h.rfobjects(r, w), (std::vector<ObjectId>{0, 1}));
  EXPECT_TRUE(h.reads_from(w, r));
  EXPECT_FALSE(h.reads_from(r, w));
}

TEST(History, ConflictRequiresSharedObjectWithWrite) {
  History h(3, 3);
  const auto a = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  const auto b = h.add(mop(1, {Operation::read(0, 1, a)}, 3, 4));
  const auto c = h.add(mop(2, {Operation::read(1, 0, kInitialMOp)}, 3, 4));
  EXPECT_TRUE(h.conflict(a, b));   // write-read on x0
  EXPECT_FALSE(h.conflict(b, c));  // disjoint objects
  EXPECT_FALSE(h.conflict(a, a));  // never self-conflicting
}

TEST(History, ReadersDoNotConflict) {
  History h(2, 1);
  const auto a = h.add(mop(0, {Operation::read(0, 0, kInitialMOp)}, 1, 2));
  const auto b = h.add(mop(1, {Operation::read(0, 0, kInitialMOp)}, 1, 2));
  EXPECT_FALSE(h.conflict(a, b));
}

TEST(History, InterfereTriple) {
  // δ writes x; α reads x from δ; η writes x  =>  interfere(α, δ, η).
  History h(3, 1);
  const auto delta = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  const auto eta = h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  const auto alpha = h.add(mop(2, {Operation::read(0, 1, delta)}, 5, 6));
  EXPECT_TRUE(h.interfere(alpha, delta, eta));
  EXPECT_FALSE(h.interfere(alpha, eta, delta));  // α does not read from η
  EXPECT_FALSE(h.interfere(delta, alpha, eta));  // δ does not read at all
}

TEST(History, EquivalenceSamePerProcessContent) {
  History h1(2, 1);
  const auto w1 = h1.add(mop(0, {Operation::write(0, 7)}, 1, 2));
  h1.add(mop(1, {Operation::read(0, 7, w1)}, 3, 4));

  // Same content, different times, different addition order.
  History h2(2, 1);
  h2.add(mop(1, {Operation::read(0, 7, 1)}, 30, 40));
  h2.add(mop(0, {Operation::write(0, 7)}, 10, 20));

  EXPECT_TRUE(h1.equivalent(h2));
  EXPECT_TRUE(h2.equivalent(h1));
}

TEST(History, EquivalenceBrokenByDifferentReadsFrom) {
  History h1(3, 1);
  const auto a = h1.add(mop(0, {Operation::write(0, 7)}, 1, 2));
  h1.add(mop(1, {Operation::write(0, 7)}, 1, 2));
  h1.add(mop(2, {Operation::read(0, 7, a)}, 3, 4));

  History h2(3, 1);
  h2.add(mop(0, {Operation::write(0, 7)}, 1, 2));
  const auto b2 = h2.add(mop(1, {Operation::write(0, 7)}, 1, 2));
  h2.add(mop(2, {Operation::read(0, 7, b2)}, 3, 4));

  EXPECT_FALSE(h1.equivalent(h2));
}

TEST(History, EquivalenceBrokenByDifferentValues) {
  History h1(1, 1);
  h1.add(mop(0, {Operation::write(0, 7)}, 1, 2));
  History h2(1, 1);
  h2.add(mop(0, {Operation::write(0, 8)}, 1, 2));
  EXPECT_FALSE(h1.equivalent(h2));
}

TEST(History, DeriveReadsFromUniqueValues) {
  History h(2, 1);
  h.add(mop(0, {Operation::write(0, 7)}, 1, 2));
  // Read with an unresolved link (kInitialMOp placeholder, value 7).
  h.add(MOperation(1, {Operation{OpType::kRead, 0, 7, kInitialMOp}}, 3, 4));
  ASSERT_TRUE(h.derive_reads_from());
  EXPECT_TRUE(h.reads_from(0, 1));
}

TEST(History, DeriveReadsFromInitialValue) {
  History h(1, 1);
  h.add(MOperation(0, {Operation{OpType::kRead, 0, 0, 99}}, 1, 2));
  ASSERT_TRUE(h.derive_reads_from());
  EXPECT_EQ(h.mop(0).external_reads()[0].reads_from, kInitialMOp);
}

TEST(History, DeriveReadsFromFailsOnAmbiguousWrites) {
  History h(2, 1);
  h.add(mop(0, {Operation::write(0, 7)}, 1, 2));
  h.add(mop(1, {Operation::write(0, 7)}, 3, 4));
  EXPECT_FALSE(h.derive_reads_from());
}

TEST(History, DeriveReadsFromFailsOnOrphanValue) {
  History h(1, 1);
  h.add(MOperation(0, {Operation{OpType::kRead, 0, 42, kInitialMOp}}, 1, 2));
  EXPECT_FALSE(h.derive_reads_from());
}

// -------------------------------------------------------------- relations

class RelationsFixture : public ::testing::Test {
 protected:
  // P0: α = w(x0)1        [1, 2]
  //     β = r(x0)1 (α)    [5, 6]
  // P1: γ = w(x1)2        [3, 4]
  //     δ = r(x0)1 (α)    [7, 8]
  RelationsFixture() : h(2, 2) {
    alpha = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
    gamma = h.add(mop(1, {Operation::write(1, 2)}, 3, 4));
    beta = h.add(mop(0, {Operation::read(0, 1, alpha)}, 5, 6));
    delta = h.add(mop(1, {Operation::read(0, 1, alpha)}, 7, 8));
  }
  History h;
  MOpId alpha, beta, gamma, delta;
};

TEST_F(RelationsFixture, ProcessOrder) {
  const auto po = process_order(h);
  EXPECT_TRUE(po.has(alpha, beta));
  EXPECT_TRUE(po.has(gamma, delta));
  EXPECT_FALSE(po.has(alpha, gamma));
  EXPECT_FALSE(po.has(beta, alpha));
  EXPECT_EQ(po.pair_count(), 2u);
}

TEST_F(RelationsFixture, ReadsFromOrder) {
  const auto rf = reads_from_order(h);
  EXPECT_TRUE(rf.has(alpha, beta));
  EXPECT_TRUE(rf.has(alpha, delta));
  EXPECT_EQ(rf.pair_count(), 2u);
}

TEST_F(RelationsFixture, RealTimeOrder) {
  const auto rt = real_time_order(h);
  EXPECT_TRUE(rt.has(alpha, gamma));  // resp 2 < inv 3
  EXPECT_TRUE(rt.has(alpha, beta));
  EXPECT_TRUE(rt.has(gamma, beta));   // resp 4 < inv 5
  EXPECT_TRUE(rt.has(beta, delta));
  EXPECT_FALSE(rt.has(beta, gamma));
}

TEST_F(RelationsFixture, ObjectOrderRequiresSharedObject) {
  const auto oo = object_order(h);
  EXPECT_TRUE(oo.has(alpha, beta));    // share x0, real-time ordered
  EXPECT_FALSE(oo.has(alpha, gamma));  // disjoint objects
  EXPECT_FALSE(oo.has(gamma, beta));   // disjoint objects
  EXPECT_TRUE(oo.has(alpha, delta));
}

TEST_F(RelationsFixture, BaseOrderPerCondition) {
  const auto msc = base_order(h, Condition::kMSequentialConsistency);
  EXPECT_TRUE(msc.has(alpha, beta));
  EXPECT_FALSE(msc.has(alpha, gamma));  // no real-time in m-SC

  const auto mlin = base_order(h, Condition::kMLinearizability);
  EXPECT_TRUE(mlin.has(alpha, gamma));

  const auto mnorm = base_order(h, Condition::kMNormality);
  EXPECT_FALSE(mnorm.has(alpha, gamma));  // disjoint objects: not ordered
  EXPECT_TRUE(mnorm.has(alpha, delta));
}

TEST_F(RelationsFixture, ConditionNames) {
  EXPECT_STREQ(condition_name(Condition::kMSequentialConsistency),
               "m-sequential-consistency");
  EXPECT_STREQ(condition_name(Condition::kMLinearizability), "m-linearizability");
  EXPECT_STREQ(condition_name(Condition::kMNormality), "m-normality");
}

TEST(Relations, OverlappingOpsNotRealTimeOrdered) {
  History h(2, 1);
  const auto a = h.add(mop(0, {Operation::write(0, 1)}, 1, 10));
  const auto b = h.add(mop(1, {Operation::write(0, 2)}, 5, 15));
  const auto rt = real_time_order(h);
  EXPECT_FALSE(rt.has(a, b));
  EXPECT_FALSE(rt.has(b, a));
}

TEST(Relations, TouchingIntervalsNotOrdered) {
  // resp(α) == inv(β): NOT ordered (strict <).
  History h(2, 1);
  const auto a = h.add(mop(0, {Operation::write(0, 1)}, 1, 5));
  const auto b = h.add(mop(1, {Operation::write(0, 2)}, 5, 9));
  EXPECT_FALSE(real_time_order(h).has(a, b));
}

}  // namespace
}  // namespace mocc::core
