// Streaming-auditor tests (src/obs/live.hpp): the truncation gate
// (drops force `inconclusive`, never a silent pass), clean-run agreement
// with the post-hoc trace audit, window-boundary behavior under
// deliberate protocol mutations across seeds, the exec-engine streaming
// path, and byte-level determinism of the report.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "api/system.hpp"
#include "exec/engine.hpp"
#include "exec/verify.hpp"
#include "obs/analysis.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/workload.hpp"

namespace mocc::obs {
namespace {

core::Condition condition_for(const std::string& protocol) {
  return protocol == "mseq" ? core::Condition::kMSequentialConsistency
                            : core::Condition::kMLinearizability;
}

protocols::WorkloadParams small_workload() {
  protocols::WorkloadParams params;
  params.ops_per_process = 8;
  params.update_ratio = 0.6;
  params.footprint = 2;
  return params;
}

struct StreamedRun {
  StreamingReport live;
  TraceAudit posthoc;
  std::size_t audit_window_events = 0;
};

/// Runs `config`'s workload with a StreamingAuditor tapped into the
/// trace path and a ring sink downstream of it, then audits the very
/// same trace post-hoc — the cross-check chaos --stream performs.
StreamedRun run_with_streaming(const api::SystemConfig& config,
                               std::size_t window,
                               bool stop_on_violation = false) {
  StreamingAuditorOptions options;
  options.condition = condition_for(config.protocol);
  options.window = window;
  StreamingAuditor auditor(options);
  RingBufferSink ring(1 << 18);
  auditor.set_downstream(&ring);

  api::System system(config);
  if (stop_on_violation) {
    auditor.set_violation_callback(
        [&system](const StreamingReport&) { system.request_stop(); });
  }
  system.set_trace_sink(&auditor);
  system.run_workload(small_workload());

  StreamedRun out;
  out.live = auditor.finish();

  TraceFile trace;
  trace.has_header = true;
  trace.events = ring.events();
  trace.spans = ring.spans();
  out.posthoc = audit_from_trace(trace, options.condition);
  for (const TraceEvent& event : trace.events) {
    if (event.type == TraceEventType::kAuditWindow) ++out.audit_window_events;
  }
  return out;
}

api::SystemConfig base_config(const std::string& protocol, std::uint64_t seed) {
  api::SystemConfig config;
  config.protocol = protocol;
  config.num_processes = 3;
  config.num_objects = 6;
  config.seed = seed;
  return config;
}

// ---------------------------------------------------------------------
// Clean runs: live verdict and post-hoc trace audit agree, across
// protocols, seeds, and window sizes (including windows small enough to
// cut mid-history many times).

TEST(StreamingAuditor, CleanRunsAgreeWithPosthocAudit) {
  for (const std::string protocol : {"mseq", "mlin", "locking"}) {
    for (const std::uint64_t seed : {1u, 7u, 13u}) {
      for (const std::size_t window : {2u, 8u, 512u}) {
        const StreamedRun run =
            run_with_streaming(base_config(protocol, seed), window);
        EXPECT_TRUE(run.live.ok())
            << protocol << " seed " << seed << " window " << window << ": "
            << run.live.to_string();
        EXPECT_TRUE(run.posthoc.ok)
            << protocol << " seed " << seed << ": " << run.posthoc.detail;
        EXPECT_EQ(run.live.mops, run.posthoc.mops) << protocol << " " << seed;
        EXPECT_EQ(run.live.windows_failed, 0u);
        // Every cut is announced downstream as a kAuditWindow event.
        EXPECT_EQ(run.audit_window_events, run.live.windows)
            << protocol << " seed " << seed << " window " << window;
      }
    }
  }
}

// ---------------------------------------------------------------------
// The truncation gate: upstream loss can only move the verdict UP the
// lattice to `inconclusive` — a dropped event must never let a run pass
// silently.

TEST(StreamingAuditor, ReportedDropsForceInconclusive) {
  StreamingAuditorOptions options;
  options.condition = core::Condition::kMLinearizability;
  StreamingAuditor auditor(options);
  api::System system(base_config("mlin", 3));
  system.set_trace_sink(&auditor);
  system.run_workload(small_workload());

  // The stream itself is complete and clean — only the loss report
  // differs from a passing run.
  auditor.note_drops(1, 0);
  auditor.note_drops(1, 0);  // idempotent: same cumulative totals
  const StreamingReport& report = auditor.finish();
  EXPECT_EQ(report.verdict, StreamVerdict::kInconclusive);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.detail.empty());
}

TEST(StreamingAuditor, TruncatedRingReplayIsInconclusive) {
  // Capture a run into a ring far too small for it, then feed the
  // retained suffix through the auditor the way a post-hoc consumer
  // would — note_sink carries the ring's drop accounting across.
  RingBufferSink ring(16);
  api::System system(base_config("mlin", 5));
  system.set_trace_sink(&ring);
  system.run_workload(small_workload());
  ASSERT_GT(ring.dropped() + ring.spans_dropped(), 0u)
      << "ring sized to overflow for this test";

  StreamingAuditorOptions options;
  options.condition = core::Condition::kMLinearizability;
  StreamingAuditor auditor(options);
  for (const TraceEvent& event : ring.events()) auditor.on_event(event);
  for (const Span& span : ring.spans()) auditor.on_span(span);
  auditor.note_sink(ring);
  const StreamingReport& report = auditor.finish();
  EXPECT_EQ(report.verdict, StreamVerdict::kInconclusive) << report.to_string();
}

TEST(StreamingAuditor, ViolationIsStickyAgainstLaterDrops) {
  // Lattice is one-way: once a run is known-bad, loss reports must not
  // soften the verdict back to inconclusive.
  api::SystemConfig config = base_config("mlin", 2);
  config.broadcast = "isis";
  config.num_objects = 1;
  config.mutation = "skip-delivery";
  StreamingAuditorOptions options;
  options.condition = core::Condition::kMLinearizability;
  options.window = 8;
  StreamingAuditor auditor(options);
  api::System system(config);
  system.set_trace_sink(&auditor);
  system.run_workload(small_workload());
  auditor.finish();
  ASSERT_TRUE(auditor.violated()) << auditor.report().to_string();

  auditor.note_drops(100, 100);
  EXPECT_EQ(auditor.verdict(), StreamVerdict::kViolation);
}

// ---------------------------------------------------------------------
// Window-boundary behavior under deliberate mutations: across seeds and
// small windows, a live violation must always be confirmed by the
// post-hoc audit of the same trace (the window projection never invents
// violations), and each mutation must actually be caught live on a
// non-trivial fraction of seeds — the negative control proving the
// windows do not wave broken runs through.
//
// seq-swap is deliberately absent: its damage surfaces as P5.3/P5.4
// protocol-internal timestamp violations that are invisible at the
// history level both the streaming conditions and audit_from_trace
// check (mocc-check finds its schedules only by exhaustive search).

struct MutationCase {
  const char* protocol;
  const char* mutation;
  std::size_t objects;
  /// early-release only manifests when the unlock-only message can
  /// overtake the write-only one — a reordering network.
  const char* delay = "lan";
};

TEST(StreamingAuditor, MutationsCaughtAcrossSeedsAndWindows) {
  const MutationCase cases[] = {
      {"mseq", "skip-delivery", 1},
      {"mlin", "skip-delivery", 1},
      {"locking", "early-release", 1, "reorder"},
  };
  for (const MutationCase& c : cases) {
    std::size_t caught_live = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      api::SystemConfig config = base_config(c.protocol, seed);
      config.num_objects = c.objects;
      config.mutation = c.mutation;
      config.delay = c.delay;
      if (std::string(c.protocol) != "locking") {
        config.broadcast = seed % 2 == 1 ? "sequencer" : "isis";
      }
      for (const std::size_t window : {2u, 8u}) {
        const StreamedRun run = run_with_streaming(config, window);
        if (run.live.verdict == StreamVerdict::kViolation) {
          if (window == 8) ++caught_live;
          // Soundness: a live violation is a violation of the full
          // history too.
          EXPECT_FALSE(run.posthoc.ok)
              << c.protocol << "/" << c.mutation << " seed " << seed
              << " window " << window
              << ": live flagged but post-hoc passed: " << run.live.detail;
          EXPECT_NE(run.live.first_violation_window, kNoWindow);
          EXPECT_FALSE(run.live.detail.empty());
        }
      }
    }
    EXPECT_GE(caught_live, 1u)
        << c.protocol << "/" << c.mutation
        << ": mutation never caught live across 20 seeds";
  }
}

TEST(StreamingAuditor, ViolationCallbackStopsRunMidway) {
  api::SystemConfig config = base_config("mlin", 2);
  config.broadcast = "isis";
  config.num_objects = 1;
  config.mutation = "skip-delivery";
  const StreamedRun run = run_with_streaming(config, 8,
                                             /*stop_on_violation=*/true);
  ASSERT_EQ(run.live.verdict, StreamVerdict::kViolation)
      << run.live.to_string();
  // The callback's request_stop() aborts the simulation before the
  // workload completes: fewer m-operations observed than the full run
  // issues (3 processes x 8 ops).
  EXPECT_LT(run.live.mops, 24u) << "run was not stopped mid-way";
}

// ---------------------------------------------------------------------
// The exec engine's trace-free path: the merged commit log streamed
// through the same auditor agrees with verify_execution.

TEST(StreamingAuditor, ExecStreamingMatchesVerify) {
  exec::ExecConfig config;
  config.threads = 2;
  config.objects = 16;
  config.mops_per_thread = 200;
  config.footprint = 3;
  config.seed = 11;
  const exec::ExecResult result = exec::run(config);
  ASSERT_EQ(result.stats.committed, config.threads * config.mops_per_thread);
  ASSERT_TRUE(verify_execution(result).ok);

  StreamingAuditor auditor(exec::stream_options(config));
  const StreamingReport& report = exec::stream_execution(result, auditor);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.mops, result.stats.committed);
  EXPECT_EQ(report.windows_failed, 0u);
  EXPECT_EQ(report.windows_undecided, 0u);
}

// ---------------------------------------------------------------------
// Determinism: the report (every counter and the rendered string) is a
// pure function of config + seed.

TEST(StreamingAuditor, ReportIsDeterministic) {
  const api::SystemConfig config = base_config("mseq", 9);
  const StreamedRun a = run_with_streaming(config, 4);
  const StreamedRun b = run_with_streaming(config, 4);
  EXPECT_EQ(a.live.to_string(), b.live.to_string());
  EXPECT_EQ(a.live.mops, b.live.mops);
  EXPECT_EQ(a.live.windows, b.live.windows);
  EXPECT_EQ(a.live.windows_passed, b.live.windows_passed);
  EXPECT_EQ(a.posthoc.ok, b.posthoc.ok);
}

TEST(StreamingAuditor, ExportMetricsIsIdempotent) {
  StreamingAuditorOptions options;
  options.window = 4;
  StreamingAuditor auditor(options);
  api::System system(base_config("mlin", 4));
  system.set_trace_sink(&auditor);
  system.run_workload(small_workload());
  const StreamingReport& report = auditor.finish();

  Registry registry;
  auditor.export_metrics(registry);
  auditor.export_metrics(registry);  // set, not incremented
  EXPECT_EQ(registry.counters().at("audit_mops").value(), report.mops);
  EXPECT_EQ(registry.counters().at("audit_windows").value(), report.windows);
  EXPECT_EQ(registry.counters().at("audit_windows_passed").value(),
            report.windows_passed);
  EXPECT_EQ(registry.gauges().at("audit_verdict").value(),
            static_cast<double>(report.verdict));
}

}  // namespace
}  // namespace mocc::obs
