// Integration tests through the public System API: the paper's example
// executions (Figures 5 and 7) replayed on the real stack, plus
// cross-protocol consistency sweeps (every protocol × broadcast × delay ×
// seed combination must produce histories satisfying its claimed
// condition, audited and checked).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "api/system.hpp"
#include "mscript/library.hpp"

namespace mocc::api {
namespace {

using core::Condition;
using protocols::InvocationOutcome;

// --------------------------------------------------------------- Figure 5

TEST(Figure5, MSeqExampleExecution) {
  // Two processes, objects (x, y) = (x0, x1), initial 0. P1 and P2 both
  // write x; a later query at P1 reads the value fixed by the abcast
  // order; the per-object versions advance once per write.
  SystemConfig config;
  config.num_processes = 2;
  config.num_objects = 2;
  config.protocol = "mseq";
  config.delay = "lan";
  System system(config);

  system.submit(0, 1, mscript::lib::make_write(0, 1));   // α = w(x)1
  system.submit(1, 1, mscript::lib::make_write(0, 3));   // β = w(x)3
  std::int64_t read_value = -1;
  system.submit(0, 10'000, mscript::lib::make_read(0),
                [&](const InvocationOutcome& out) { read_value = out.return_value; });
  system.run();

  // After both updates deliver everywhere, x holds the abcast-later
  // write; the query (local read at P1) sees it.
  EXPECT_TRUE(read_value == 1 || read_value == 3);
  const auto h = system.history();
  // Versions: x written twice => ts[x] = 2 on the update that delivered
  // second; the query's timestamp matches the final version.
  const auto& trace_recorder = system.recorder();
  const auto query_ts = trace_recorder.record(2).timestamp;
  EXPECT_EQ(query_ts[0], 2u);
  EXPECT_EQ(query_ts[1], 0u);

  EXPECT_TRUE(system.audit().ok);
  EXPECT_TRUE(system.check_fast(Condition::kMSequentialConsistency).admissible);
  EXPECT_EQ(h.size(), 3u);
}

TEST(Figure5, MSeqQueryMayReadStaleButMSCHolds) {
  // The hallmark of Figure 4's protocol: a query can return a value that
  // is stale in real time (another process' update already responded),
  // yet the history stays m-sequentially consistent. With a WAN delay
  // and an immediate local query, P1 reads x=0 after P0's write
  // completed.
  SystemConfig config;
  config.num_processes = 3;
  config.num_objects = 1;
  config.protocol = "mseq";
  config.delay = "wan";
  config.seed = 7;
  System system(config);

  // Chain the query off the write's response so it runs while the
  // fan-out is still in flight (a separate run() would drain it first).
  std::int64_t seen = -1;
  system.submit(0, 1, mscript::lib::make_write(0, 5),
                [&](const InvocationOutcome& out) {
                  system.submit(2, out.response + 1, mscript::lib::make_read(0),
                                [&](const InvocationOutcome& q) {
                                  seen = q.return_value;
                                });
                });
  system.run();

  // P2's replica has not heard the abcast yet (WAN delays are longer
  // than one tick): stale read.
  EXPECT_EQ(seen, 0);
  // Not m-linearizable…
  EXPECT_FALSE(system.check_exact(Condition::kMLinearizability).admissible);
  // …and not m-normal either (writer and reader share x0, so m-normality
  // also enforces their real-time order)…
  EXPECT_FALSE(system.check_exact(Condition::kMNormality).admissible);
  // …but m-sequentially consistent (Theorem 15).
  EXPECT_TRUE(system.check_exact(Condition::kMSequentialConsistency).admissible);
  EXPECT_TRUE(system.audit().ok);
}

// --------------------------------------------------------------- Figure 7

TEST(Figure7, MLinExampleExecution) {
  // P1: α = w(x)1 w(y)3 ; P2: β = w(x)4 ; P3: γ = r(x) query.
  // The query gathers ⟨copy, ts⟩ from every process and reads from the
  // freshest: it must return the value of the LAST x-write in abcast
  // order, never a stale one.
  SystemConfig config;
  config.num_processes = 3;
  config.num_objects = 2;
  config.protocol = "mlin";
  config.delay = "lan";
  System system(config);

  core::Time updates_done = 0;
  system.submit(0, 1,
                mscript::lib::make_m_assign(std::vector<mscript::ObjectId>{0, 1},
                                            std::vector<mscript::Value>{1, 3}),
                [&](const InvocationOutcome& out) {
                  updates_done = std::max(updates_done, out.response);
                });
  system.submit(1, 1, mscript::lib::make_write(0, 4),
                [&](const InvocationOutcome& out) {
                  updates_done = std::max(updates_done, out.response);
                });
  system.run();

  std::int64_t x = -1;
  system.submit(2, updates_done + 1, mscript::lib::make_read(0),
                [&](const InvocationOutcome& out) { x = out.return_value; });
  system.run();

  // Both updates responded before the query was invoked: whatever the
  // abcast order, x is the later write's value — 1 or 4 — and the
  // history must be m-linearizable either way.
  EXPECT_TRUE(x == 1 || x == 4);
  EXPECT_TRUE(system.audit().ok);
  EXPECT_TRUE(system.check_fast(Condition::kMLinearizability).admissible);
  EXPECT_TRUE(system.check_exact(Condition::kMLinearizability).admissible);
}

TEST(Figure7, QueryPicksMaxTimestampCopy) {
  // Force staleness at one replica: with WAN delays P2's copy lags, but
  // the query's ⟨othX, othts⟩ selection must still return the fresh
  // value from a replica that has it.
  SystemConfig config;
  config.num_processes = 3;
  config.num_objects = 1;
  config.protocol = "mlin";
  config.delay = "wan";
  config.seed = 3;
  System system(config);

  std::int64_t seen = -1;
  system.submit(0, 1, mscript::lib::make_write(0, 5),
                [&](const InvocationOutcome& out) {
                  // Query invoked right after the write responds, while
                  // P2's own copy is still stale (fan-out in flight).
                  system.submit(2, out.response + 1, mscript::lib::make_read(0),
                                [&](const InvocationOutcome& q) {
                                  seen = q.return_value;
                                });
                });
  system.run();

  // Unlike the m-seq counterpart of this exact scenario (Figure5 test
  // above), m-lin must NOT return the stale 0.
  EXPECT_EQ(seen, 5);
  EXPECT_TRUE(system.check_exact(Condition::kMLinearizability).admissible);
}

// -------------------------------------------------------------- sweeps

struct SweepParams {
  std::string protocol;
  std::string broadcast;
  std::string delay;
  std::uint64_t seed;
};

class ConsistencySweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(ConsistencySweep, EveryProtocolMeetsItsClaimedCondition) {
  const SweepParams& p = GetParam();
  SystemConfig config;
  config.num_processes = 3;
  config.num_objects = 3;
  config.protocol = p.protocol;
  config.broadcast = p.broadcast;
  config.delay = p.delay;
  config.seed = p.seed;
  System system(config);

  protocols::WorkloadParams params;
  params.ops_per_process = 10;
  params.update_ratio = 0.5;
  params.footprint = 2;
  const auto report = system.run_workload(params);
  EXPECT_EQ(report.queries + report.updates, 30u);

  // Everything except the literal Figure 4 claims m-linearizability
  // (the broadcast-queries variant included).
  const Condition claimed = p.protocol == "mseq"
                                ? Condition::kMSequentialConsistency
                                : Condition::kMLinearizability;

  // Exact checker (budgeted; these histories are small).
  core::AdmissibilityOptions options;
  options.max_states = 5'000'000;
  const auto exact = system.check_exact(claimed, options);
  ASSERT_TRUE(exact.completed);
  EXPECT_TRUE(exact.admissible)
      << p.protocol << "/" << p.broadcast << "/" << p.delay << " seed " << p.seed;

  if (system.supports_audit()) {
    EXPECT_TRUE(system.audit().ok);
    EXPECT_TRUE(system.check_fast(claimed).admissible);
    // m-linearizability implies m-normality and m-SC for these histories.
    if (claimed == Condition::kMLinearizability) {
      EXPECT_TRUE(system.check_fast(Condition::kMNormality).admissible);
      EXPECT_TRUE(system.check_fast(Condition::kMSequentialConsistency).admissible);
    }
  }
}

std::vector<SweepParams> sweep_params() {
  std::vector<SweepParams> all;
  for (const char* protocol : {"mseq", "mlin", "mlin-narrow", "mlin-bcastq"}) {
    for (const char* broadcast : {"sequencer", "isis"}) {
      for (const char* delay : {"lan", "reorder"}) {
        for (std::uint64_t seed : {1ULL, 2ULL}) {
          all.push_back(SweepParams{protocol, broadcast, delay, seed});
        }
      }
    }
  }
  for (const char* protocol : {"locking", "aggregate"}) {
    for (const char* delay : {"lan", "reorder"}) {
      for (std::uint64_t seed : {1ULL, 2ULL}) {
        all.push_back(SweepParams{protocol, "sequencer", delay, seed});
      }
    }
  }
  return all;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ConsistencySweep, ::testing::ValuesIn(sweep_params()),
    [](const ::testing::TestParamInfo<SweepParams>& info) {
      std::string name = info.param.protocol + "_" + info.param.broadcast + "_" +
                         info.param.delay + "_s" + std::to_string(info.param.seed);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ----------------------------------------------------------- system misc

TEST(System, SubmitRespectsRequestedTime) {
  SystemConfig config;
  config.protocol = "mseq";
  System system(config);
  core::Time invoked = 0;
  system.submit(0, 500, mscript::lib::make_read(0),
                [&](const InvocationOutcome& out) { invoked = out.invoke; });
  system.run();
  EXPECT_EQ(invoked, 500u);
}

TEST(System, SubmitQueueSerializesPerProcess) {
  SystemConfig config;
  config.protocol = "mlin";
  config.num_processes = 2;
  System system(config);
  std::vector<std::pair<core::Time, core::Time>> spans;
  for (int i = 0; i < 5; ++i) {
    system.submit(0, 1, mscript::lib::make_read(0),
                  [&](const InvocationOutcome& out) {
                    spans.emplace_back(out.invoke, out.response);
                  });
  }
  system.run();
  ASSERT_EQ(spans.size(), 5u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].second, spans[i].first);  // no overlap
  }
}

TEST(System, HistorySizeMatchesSubmissions) {
  SystemConfig config;
  config.protocol = "locking";
  System system(config);
  for (int i = 0; i < 7; ++i) {
    system.submit(i % 3, 1 + i, mscript::lib::make_fetch_add(0, 1));
  }
  system.run();
  EXPECT_EQ(system.history().size(), 7u);
}

TEST(System, FetchAddChainYieldsSequentialValues) {
  SystemConfig config;
  config.protocol = "mlin";
  config.num_processes = 3;
  System system(config);
  std::vector<std::int64_t> olds;
  for (int i = 0; i < 9; ++i) {
    system.submit(i % 3, 1, mscript::lib::make_fetch_add(0, 1),
                  [&](const InvocationOutcome& out) {
                    olds.push_back(out.return_value);
                  });
  }
  system.run();
  // 9 atomic increments: the multiset of old values is {0..8}.
  std::sort(olds.begin(), olds.end());
  for (int i = 0; i < 9; ++i) EXPECT_EQ(olds[i], i);
}

TEST(System, DcasAtomicityUnderContention) {
  // Two DCAS race on (x0, x1) from state (0,0): exactly one wins.
  SystemConfig config;
  config.protocol = "mlin";
  config.num_processes = 2;
  config.num_objects = 2;
  System system(config);
  std::vector<std::int64_t> results;
  system.submit(0, 1, mscript::lib::make_dcas(0, 1, 0, 0, 1, 1),
                [&](const InvocationOutcome& out) {
                  results.push_back(out.return_value);
                });
  system.submit(1, 1, mscript::lib::make_dcas(0, 1, 0, 0, 2, 2),
                [&](const InvocationOutcome& out) {
                  results.push_back(out.return_value);
                });
  system.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0] + results[1], 1);  // exactly one succeeded
}

TEST(System, BoundedRunPausesAndResumes) {
  SystemConfig config;
  config.protocol = "mlin";
  config.delay = "wan";  // query round trip far exceeds the bound below
  System system(config);
  bool responded = false;
  system.submit(0, 1, mscript::lib::make_read(0),
                [&](const InvocationOutcome&) { responded = true; });
  system.run(/*max_time=*/5);
  EXPECT_FALSE(responded);
  EXPECT_EQ(system.now(), 5u);
  system.run();  // resume to quiescence
  EXPECT_TRUE(responded);
}

TEST(System, NowAdvancesMonotonically) {
  SystemConfig config;
  config.protocol = "mseq";
  System system(config);
  std::vector<sim::SimTime> stamps;
  for (int i = 0; i < 4; ++i) {
    system.submit(0, 1, mscript::lib::make_fetch_add(0, 1),
                  [&](const InvocationOutcome&) { stamps.push_back(system.now()); });
  }
  system.run();
  ASSERT_EQ(stamps.size(), 4u);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LT(stamps[i - 1], stamps[i]);  // ≥1 tick of local step time
  }
}

TEST(SystemDeath, UnknownProtocolAborts) {
  SystemConfig config;
  config.protocol = "quantum";
  EXPECT_DEATH(System{config}, "unknown protocol");
}

}  // namespace
}  // namespace mocc::api
