// Protocol-level behaviour: Figure-4 (m-seq) and Figure-6 (m-lin)
// replicas, the locking/aggregate baselines, the execution recorder, and
// the workload driver — all through the public System façade plus
// targeted scenarios.
#include <gtest/gtest.h>

#include <memory>

#include "api/system.hpp"
#include "mscript/library.hpp"

namespace mocc::protocols {
namespace {

using api::System;
using api::SystemConfig;
using core::Condition;

SystemConfig config_for(const std::string& protocol, std::size_t n = 3,
                        std::size_t objects = 4, const std::string& delay = "lan") {
  SystemConfig config;
  config.num_processes = n;
  config.num_objects = objects;
  config.protocol = protocol;
  config.delay = delay;
  config.seed = 2024;
  return config;
}

// --------------------------------------------------------------- m-seq

TEST(MSeq, QueryCostsNoMessages) {
  System system(config_for("mseq", 4));
  std::int64_t result = -1;
  system.submit(1, 1, mscript::lib::make_read(0),
                [&](const InvocationOutcome& out) { result = out.return_value; });
  system.run();
  EXPECT_EQ(result, 0);
  EXPECT_EQ(system.traffic().messages, 0u);  // A3: purely local
}

TEST(MSeq, QueryRespondsInstantly) {
  System system(config_for("mseq", 4));
  InvocationOutcome outcome;
  system.submit(2, 5, mscript::lib::make_read(1),
                [&](const InvocationOutcome& out) { outcome = out; });
  system.run();
  EXPECT_EQ(outcome.invoke, outcome.response);  // zero virtual latency
}

TEST(MSeq, UpdatePropagatesToAllReplicas) {
  System system(config_for("mseq", 3));
  system.submit(0, 1, mscript::lib::make_write(2, 77));
  std::int64_t seen = -1;
  // A later query at ANOTHER process: m-seq gives no recency guarantee,
  // but once the simulation drains, every replica has applied the write.
  system.submit(1, 10'000, mscript::lib::make_read(2),
                [&](const InvocationOutcome& out) { seen = out.return_value; });
  system.run();
  EXPECT_EQ(seen, 77);
}

TEST(MSeq, HistoryIsMSequentiallyConsistent) {
  System system(config_for("mseq", 3));
  system.submit(0, 1, mscript::lib::make_write(0, 1));
  system.submit(1, 1, mscript::lib::make_write(0, 2));
  system.submit(2, 2, mscript::lib::make_read(0));
  system.submit(0, 3, mscript::lib::make_fetch_add(1, 5));
  system.run();
  const auto result = system.check_exact(Condition::kMSequentialConsistency);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.admissible);
}

TEST(MSeq, AuditPassesAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto config = config_for("mseq", 3, 4, "reorder");
    config.seed = seed;
    System system(config);
    WorkloadParams params;
    params.ops_per_process = 15;
    params.update_ratio = 0.6;
    system.run_workload(params);
    const auto audit = system.audit();
    EXPECT_TRUE(audit.ok) << "seed " << seed << "\n" << audit.to_string();
  }
}

// --------------------------------------------------------------- m-lin

TEST(MLin, QueryObservesCompletedUpdateElsewhere) {
  // The recency m-seq lacks: P0's update completes, then P1 queries.
  // m-linearizability REQUIRES the query to see it.
  auto config = config_for("mlin", 3, 2, "wan");  // slow network
  System system(config);
  std::int64_t seen = -1;
  system.submit(0, 1, mscript::lib::make_write(0, 9),
                [&](const InvocationOutcome& out) {
                  // Query at another process immediately after the update
                  // responds, while replicas may still be stale.
                  system.submit(1, out.response + 1, mscript::lib::make_read(0),
                                [&](const InvocationOutcome& q) {
                                  seen = q.return_value;
                                });
                });
  system.run();
  EXPECT_EQ(seen, 9);
}

TEST(MLin, QueryCostsTwoRoundTripsToAll) {
  constexpr std::size_t n = 5;
  System system(config_for("mlin", n));
  system.submit(0, 1, mscript::lib::make_read(0));
  system.run();
  EXPECT_EQ(system.traffic().messages, 2 * (n - 1));  // query + replies
}

TEST(MLin, HistoryIsMLinearizable) {
  System system(config_for("mlin", 3));
  system.submit(0, 1, mscript::lib::make_write(0, 1));
  system.submit(1, 1, mscript::lib::make_dcas(0, 1, 0, 0, 5, 6));
  system.submit(2, 2, mscript::lib::make_sum(std::vector<mscript::ObjectId>{0, 1}));
  system.submit(0, 3, mscript::lib::make_read(1));
  system.run();
  const auto exact = system.check_exact(Condition::kMLinearizability);
  ASSERT_TRUE(exact.completed);
  EXPECT_TRUE(exact.admissible);
  // Theorem-7 fast check agrees.
  const auto fast = system.check_fast(Condition::kMLinearizability);
  EXPECT_TRUE(fast.constraint_holds);
  EXPECT_TRUE(fast.admissible);
}

TEST(MLin, AuditPassesUnderHeavyReorder) {
  for (std::uint64_t seed = 11; seed <= 15; ++seed) {
    auto config = config_for("mlin", 4, 3, "reorder");
    config.seed = seed;
    System system(config);
    WorkloadParams params;
    params.ops_per_process = 12;
    params.update_ratio = 0.5;
    system.run_workload(params);
    const auto audit = system.audit();
    EXPECT_TRUE(audit.ok) << "seed " << seed << "\n" << audit.to_string();
  }
}

TEST(MLin, NarrowRepliesProduceEquivalentResults) {
  // §5.2's optimization must not change any outcome: run the same
  // scripted workload on both variants and compare histories.
  auto run_variant = [](const std::string& protocol) {
    System system(config_for(protocol, 3, 4, "lan"));
    system.submit(0, 1, mscript::lib::make_write(0, 5));
    system.submit(1, 2, mscript::lib::make_m_assign(
                            std::vector<mscript::ObjectId>{1, 2},
                            std::vector<mscript::Value>{7, 8}));
    system.submit(2, 3, mscript::lib::make_sum(std::vector<mscript::ObjectId>{0, 1}));
    system.submit(0, 4, mscript::lib::make_read(2));
    system.run();
    return system.history();
  };
  const auto full = run_variant("mlin");
  const auto narrow = run_variant("mlin-narrow");
  EXPECT_TRUE(full.equivalent(narrow));
}

TEST(MLin, NarrowRepliesShrinkQueryBytes) {
  auto bytes_for = [](const std::string& protocol) {
    // Many objects, tiny query footprint: narrowing should pay off.
    System system(config_for(protocol, 3, 64, "lan"));
    system.submit(0, 1, mscript::lib::make_read(0));
    system.run();
    return system.traffic().bytes;
  };
  // Narrow replies drop the copies/writers of unrelated objects but keep
  // the full version vector (8B/object) so the recorded trace still
  // satisfies P5.3 verbatim — hence ~2x, not ~footprint/n.
  EXPECT_LT(bytes_for("mlin-narrow"), bytes_for("mlin") / 2);
}

TEST(MLin, NarrowAuditStillPasses) {
  auto config = config_for("mlin-narrow", 3, 4, "reorder");
  System system(config);
  WorkloadParams params;
  params.ops_per_process = 10;
  system.run_workload(params);
  EXPECT_TRUE(system.audit().ok);
}

// ---------------------------------------------------------- mlin-bcastq

TEST(MLinBcastQ, QueryObservesCompletedUpdateElsewhere) {
  // The broadcast-queries ablation must give the same recency guarantee
  // as Figure 6, through a different mechanism (total-order placement
  // instead of fresh-copy construction).
  auto config = config_for("mlin-bcastq", 3, 2, "wan");
  System system(config);
  std::int64_t seen = -1;
  system.submit(0, 1, mscript::lib::make_write(0, 9),
                [&](const InvocationOutcome& out) {
                  system.submit(1, out.response + 1, mscript::lib::make_read(0),
                                [&](const InvocationOutcome& q) {
                                  seen = q.return_value;
                                });
                });
  system.run();
  EXPECT_EQ(seen, 9);
}

TEST(MLinBcastQ, QueryPaysBroadcastNotRoundTrips) {
  // Cost profile differs from Figure 6: one abcast (n-1 fan-out +
  // submit) instead of 2(n-1) query/reply messages.
  constexpr std::size_t n = 5;
  System system(config_for("mlin-bcastq", n));
  system.submit(1, 1, mscript::lib::make_read(0));  // non-sequencer origin
  system.run();
  EXPECT_EQ(system.traffic().messages, n);  // submit + (n-1) fan-out
}

TEST(MLinBcastQ, HistoryIsMLinearizableAndAudited) {
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    auto config = config_for("mlin-bcastq", 3, 3, "reorder");
    config.seed = seed;
    System system(config);
    WorkloadParams params;
    params.ops_per_process = 10;
    params.update_ratio = 0.4;
    system.run_workload(params);
    EXPECT_TRUE(system.audit().ok) << "seed " << seed;
    EXPECT_TRUE(system.check_fast(Condition::kMLinearizability).admissible)
        << "seed " << seed;
    const auto exact = system.check_exact(Condition::kMLinearizability);
    ASSERT_TRUE(exact.completed);
    EXPECT_TRUE(exact.admissible) << "seed " << seed;
  }
}

// ------------------------------------------------------------- locking

TEST(Locking, BasicReadWrite) {
  System system(config_for("locking", 3));
  system.submit(0, 1, mscript::lib::make_write(1, 42));
  std::int64_t seen = -1;
  system.submit(1, 10'000, mscript::lib::make_read(1),
                [&](const InvocationOutcome& out) { seen = out.return_value; });
  system.run();
  EXPECT_EQ(seen, 42);
}

TEST(Locking, TransfersConserveTotal) {
  auto config = config_for("locking", 4, 4);
  System system(config);
  // Seed balances.
  for (mscript::ObjectId x = 0; x < 4; ++x) {
    system.submit(0, 1, mscript::lib::make_write(x, 100));
  }
  system.run();
  // Concurrent transfers from every process.
  for (core::ProcessId p = 0; p < 4; ++p) {
    for (int i = 0; i < 5; ++i) {
      system.submit(p, 10 + i, mscript::lib::make_transfer(p % 4, (p + 1) % 4, 10));
    }
  }
  system.run();
  std::int64_t total = -1;
  system.submit(0, 1'000'000,
                mscript::lib::make_sum(std::vector<mscript::ObjectId>{0, 1, 2, 3}),
                [&](const InvocationOutcome& out) { total = out.return_value; });
  system.run();
  EXPECT_EQ(total, 400);
}

TEST(Locking, HistoryIsMLinearizable) {
  auto config = config_for("locking", 3, 3);
  System system(config);
  system.submit(0, 1, mscript::lib::make_write(0, 1));
  system.submit(1, 1, mscript::lib::make_transfer(0, 1, 1));
  system.submit(2, 1, mscript::lib::make_dcas(1, 2, 0, 0, 3, 4));
  system.submit(0, 2, mscript::lib::make_sum(std::vector<mscript::ObjectId>{0, 1, 2}));
  system.run();
  const auto exact = system.check_exact(Condition::kMLinearizability);
  ASSERT_TRUE(exact.completed);
  EXPECT_TRUE(exact.admissible);
}

TEST(Locking, MLinearizableAcrossSeedsAndDelays) {
  for (const char* delay : {"lan", "reorder"}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto config = config_for("locking", 3, 3, delay);
      config.seed = seed;
      System system(config);
      WorkloadParams params;
      params.ops_per_process = 8;
      params.update_ratio = 0.5;
      system.run_workload(params);
      const auto exact = system.check_exact(Condition::kMLinearizability);
      ASSERT_TRUE(exact.completed) << delay << " seed " << seed;
      EXPECT_TRUE(exact.admissible) << delay << " seed " << seed;
    }
  }
}

TEST(Locking, NoAuditSupport) {
  System system(config_for("locking"));
  EXPECT_FALSE(system.supports_audit());
}

// ------------------------------------------------------------ aggregate

TEST(Aggregate, StillCorrectJustSlower) {
  auto config = config_for("aggregate", 3, 4);
  System system(config);
  system.submit(0, 1, mscript::lib::make_write(0, 1));
  system.submit(1, 1, mscript::lib::make_write(1, 2));
  system.submit(2, 2, mscript::lib::make_sum(std::vector<mscript::ObjectId>{0, 1}));
  system.run();
  const auto exact = system.check_exact(Condition::kMLinearizability);
  ASSERT_TRUE(exact.completed);
  EXPECT_TRUE(exact.admissible);
}

TEST(Aggregate, SerializesDisjointOperations) {
  // Two updates on DISJOINT objects: under per-object locking they
  // proceed in parallel; under the aggregate lock they queue. Compare
  // virtual completion times.
  auto run_with = [](const std::string& protocol) {
    auto config = config_for(protocol, 2, 2, "constant");
    System system(config);
    core::Time t0 = 0;
    core::Time t1 = 0;
    system.submit(0, 1, mscript::lib::make_write(0, 1),
                  [&](const InvocationOutcome& out) { t0 = out.response; });
    system.submit(1, 1, mscript::lib::make_write(1, 2),
                  [&](const InvocationOutcome& out) { t1 = out.response; });
    system.run();
    return std::max(t0, t1);
  };
  EXPECT_LT(run_with("locking"), run_with("aggregate"));
}

// -------------------------------------------------------------- recorder

TEST(Recorder, AssignsIdsAtInvocation) {
  ExecutionRecorder recorder(2, 2);
  const auto a = recorder.begin(0, "a", 1);
  const auto b = recorder.begin(1, "b", 2);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_FALSE(recorder.all_completed());
  recorder.complete(a, {core::Operation::write(0, 1)}, 3, util::VersionVector(2),
                    std::nullopt);
  recorder.complete(b, {core::Operation::read(0, 1, a)}, 4, util::VersionVector(2),
                    std::nullopt);
  EXPECT_TRUE(recorder.all_completed());
  const auto h = recorder.build_history();
  EXPECT_EQ(h.size(), 2u);
  EXPECT_TRUE(h.reads_from(a, b));
}

TEST(RecorderDeath, DoubleCompleteAborts) {
  ExecutionRecorder recorder(1, 1);
  const auto a = recorder.begin(0, "a", 1);
  recorder.complete(a, {}, 2, util::VersionVector(1), std::nullopt);
  EXPECT_DEATH(recorder.complete(a, {}, 3, util::VersionVector(1), std::nullopt),
               "double completion");
}

TEST(RecorderDeath, BuildWithOutstandingAborts) {
  ExecutionRecorder recorder(1, 1);
  recorder.begin(0, "a", 1);
  EXPECT_DEATH((void)recorder.build_history(), "outstanding");
}

TEST(Recorder, WwOrderFollowsSequenceNumbers) {
  ExecutionRecorder recorder(2, 1);
  const auto a = recorder.begin(0, "a", 1);
  const auto b = recorder.begin(1, "b", 1);
  // b delivered first in the abcast order.
  recorder.complete(b, {core::Operation::write(0, 1)}, 5,
                    util::VersionVector::from_entries({1}), 0);
  recorder.complete(a, {core::Operation::write(0, 2)}, 6,
                    util::VersionVector::from_entries({2}), 1);
  const auto ww = recorder.build_ww_order();
  EXPECT_TRUE(ww.has(b, a));
  EXPECT_FALSE(ww.has(a, b));
}

// -------------------------------------------------------------- workload

TEST(Workload, DrivesAllProcessesToCompletion) {
  System system(config_for("mseq", 3, 4));
  WorkloadParams params;
  params.ops_per_process = 10;
  params.update_ratio = 0.5;
  const auto report = system.run_workload(params);
  EXPECT_EQ(report.queries + report.updates, 30u);
  EXPECT_EQ(system.history().size(), 30u);
}

TEST(Workload, UpdateRatioRespectedApproximately) {
  System system(config_for("mseq", 4, 8));
  WorkloadParams params;
  params.ops_per_process = 50;
  params.update_ratio = 0.2;
  const auto report = system.run_workload(params);
  const double ratio =
      static_cast<double>(report.updates) / (report.updates + report.queries);
  EXPECT_NEAR(ratio, 0.2, 0.1);
}

TEST(Workload, ZipfSkewStillCompletes) {
  System system(config_for("mlin", 3, 8));
  WorkloadParams params;
  params.ops_per_process = 10;
  params.zipf_skew = 1.2;
  const auto report = system.run_workload(params);
  EXPECT_EQ(report.queries + report.updates, 30u);
  EXPECT_TRUE(system.audit().ok);
}

}  // namespace
}  // namespace mocc::protocols
