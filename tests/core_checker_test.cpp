// Tests for the exact admissibility checker (NP-complete in general,
// Theorems 1-2) and the Theorem-7 polynomial checker, including
// property-style agreement sweeps over random histories.
#include <gtest/gtest.h>

#include "core/admissibility.hpp"
#include "core/fast_check.hpp"
#include "core/generate.hpp"
#include "core/legality.hpp"
#include "core/relations.hpp"
#include "util/rng.hpp"

namespace mocc::core {
namespace {

MOperation mop(ProcessId p, std::vector<Operation> ops, Time inv, Time resp) {
  return MOperation(p, std::move(ops), inv, resp);
}

// ------------------------------------------------- exact checker, basics

TEST(ExactChecker, TrivialHistoryAdmissible) {
  History h(1, 1);
  h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  const auto result = check_m_linearizable(h);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.admissible);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(is_legal_sequential_order(h, *result.witness));
}

TEST(ExactChecker, EmptyHistoryAdmissible) {
  History h(1, 1);
  EXPECT_TRUE(check_m_linearizable(h).admissible);
}

TEST(ExactChecker, StaleReadNotMLinearizable) {
  // w(x)1 completes; later w(x)2 completes; later still a read returns 1.
  History h(3, 1);
  const auto w1 = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  h.add(mop(2, {Operation::read(0, 1, w1)}, 5, 6));
  EXPECT_FALSE(check_m_linearizable(h).admissible);
}

TEST(ExactChecker, StaleReadStillMSequentiallyConsistent) {
  // Same history: without real-time order the read can serialize before
  // the second write.
  History h(3, 1);
  const auto w1 = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  h.add(mop(2, {Operation::read(0, 1, w1)}, 5, 6));
  const auto result = check_m_sequentially_consistent(h);
  EXPECT_TRUE(result.admissible);
  EXPECT_TRUE(is_legal_sequential_order(h, *result.witness));
}

TEST(ExactChecker, StaleReadNotMNormal) {
  // m-normality orders the ops because they share object x: same verdict
  // as m-linearizability here.
  History h(3, 1);
  const auto w1 = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  h.add(mop(2, {Operation::read(0, 1, w1)}, 5, 6));
  EXPECT_FALSE(check_m_normal(h).admissible);
}

TEST(ExactChecker, MNormalityWeakerThanMLinearizability) {
  // Two m-operations on disjoint objects, real-time ordered, but the
  // later one reads a value consistent only with executing first. Under
  // m-linearizability the real-time edge forbids it; m-normality does not
  // order disjoint-object m-operations, so the history is m-normal.
  History h(2, 2);
  // P0: writes x0:=1 at [1,2] then reads x1=0-from-init at [3,4].
  h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  // P1: writes x1:=5 at [5,6] ... and P0's read happened before it: fine.
  // Build the interesting case instead: P1 writes x1 BEFORE P0 reads it,
  // in real time, yet P0 reads the initial value.
  History h2(2, 2);
  h2.add(mop(1, {Operation::write(1, 5)}, 1, 2));
  const auto r = h2.add(mop(0, {Operation::read(1, 0, kInitialMOp)}, 3, 4));
  (void)r;
  EXPECT_FALSE(check_m_linearizable(h2).admissible);
  // m-normality orders them too (they share x1), so also inadmissible:
  EXPECT_FALSE(check_m_normal(h2).admissible);
  // but m-sequential consistency allows the read to serialize first:
  EXPECT_TRUE(check_m_sequentially_consistent(h2).admissible);
}

TEST(ExactChecker, MNormalityAllowsDisjointRealTimeReordering) {
  // The defining gap between m-normality and m-linearizability: two
  // non-overlapping m-operations on disjoint objects whose only
  // consistent serialization inverts real time.
  History h(2, 2);
  // P0: q1 = r(x0)0-init r(x1)5-from-u  — reads u's write BEFORE u runs
  //     in real time? Build: u = w(x1)5 on P1 at [5,6]; q1 at [1,2] would
  //     read from the future. Instead use the classic: u at [1,2],
  //     q at [3,4] reading x0 initial while someone wrote x0 at [1,2]…
  // Simplest concrete witness:
  //   P0: a = w(x0)1        [1,2]
  //   P1: b = r(x1)0-init   [3,4]   (disjoint from a)
  // plus P1: c = w(x1)2     [5,6]
  // and P0: d = r(x0)1-from-a, r(x1)2-from-c at [7,8].
  const auto a = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  h.add(mop(1, {Operation::read(1, 0, kInitialMOp)}, 3, 4));
  const auto c = h.add(mop(1, {Operation::write(1, 2)}, 5, 6));
  h.add(mop(0, {Operation::read(0, 1, a), Operation::read(1, 2, c)}, 7, 8));
  EXPECT_TRUE(check_m_normal(h).admissible);
  EXPECT_TRUE(check_m_linearizable(h).admissible);
}

TEST(ExactChecker, CyclicBaseOrderInadmissible) {
  // Two m-operations reading from each other (possible in a recorded
  // history with forward references) make ~H cyclic.
  History h(2, 2);
  h.add(MOperation(0, {Operation::write(0, 1), Operation{OpType::kRead, 1, 2, 1}},
                   1, 2));
  h.add(MOperation(1, {Operation::write(1, 2), Operation{OpType::kRead, 0, 1, 0}},
                   1, 2));
  const auto result = check_m_sequentially_consistent(h);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.admissible);
}

TEST(ExactChecker, DcasStyleInterleavingAdmissible) {
  // Two DCAS-like m-operations on {x0,x1}, second reads first's writes.
  History h(2, 2);
  const auto d1 = h.add(mop(0,
                            {Operation::read(0, 0, kInitialMOp),
                             Operation::read(1, 0, kInitialMOp),
                             Operation::write(0, 1), Operation::write(1, 1)},
                            1, 2));
  h.add(mop(1,
            {Operation::read(0, 1, d1), Operation::read(1, 1, d1),
             Operation::write(0, 2), Operation::write(1, 2)},
            3, 4));
  EXPECT_TRUE(check_m_linearizable(h).admissible);
}

TEST(ExactChecker, TornDcasNotAdmissible) {
  // A reader sees x0 from d1 but x1 from d2 where d1, d2 both write both:
  // no serialization explains it under any of the three conditions (the
  // atomicity the paper's model is for).
  History h(3, 2);
  const auto d1 = h.add(mop(0, {Operation::write(0, 1), Operation::write(1, 1)}, 1, 2));
  const auto d2 = h.add(mop(1, {Operation::write(0, 2), Operation::write(1, 2)}, 3, 4));
  h.add(mop(2, {Operation::read(0, 1, d1), Operation::read(1, 2, d2)}, 5, 6));
  EXPECT_FALSE(check_m_sequentially_consistent(h).admissible);
  EXPECT_FALSE(check_m_linearizable(h).admissible);
  EXPECT_FALSE(check_m_normal(h).admissible);
}

TEST(ExactChecker, ReversedTornDcasAlsoInadmissible) {
  History h(3, 2);
  const auto d1 = h.add(mop(0, {Operation::write(0, 1), Operation::write(1, 1)}, 1, 2));
  const auto d2 = h.add(mop(1, {Operation::write(0, 2), Operation::write(1, 2)}, 3, 4));
  h.add(mop(2, {Operation::read(0, 2, d2), Operation::read(1, 1, d1)}, 5, 6));
  EXPECT_FALSE(check_m_sequentially_consistent(h).admissible);
}

TEST(ExactChecker, BudgetExhaustionReportsIncomplete) {
  util::Rng rng(5);
  GeneratorParams params;
  params.num_mops = 14;
  params.num_processes = 7;
  History h = generate_admissible_history(params, rng);
  AdmissibilityOptions options;
  options.max_states = 2;
  options.use_rw_pruning = false;
  const auto result = check_m_sequentially_consistent(h, options);
  EXPECT_FALSE(result.completed);
}

TEST(ExactChecker, OptionsVariantsAgree) {
  // With/without memoization and rw-pruning must return the same verdict.
  util::Rng rng(99);
  GeneratorParams params;
  params.num_mops = 8;
  params.num_processes = 3;
  params.num_objects = 2;
  for (int trial = 0; trial < 20; ++trial) {
    History h = generate_free_history(params, rng);
    AdmissibilityOptions plain;
    plain.use_rw_pruning = false;
    plain.use_memoization = false;
    AdmissibilityOptions pruned;  // defaults: both on
    const bool verdict_plain = check_m_linearizable(h, plain).admissible;
    const bool verdict_pruned = check_m_linearizable(h, pruned).admissible;
    EXPECT_EQ(verdict_plain, verdict_pruned) << "trial " << trial;
  }
}

// ------------------------------------------------ generated populations

class GeneratedAdmissible : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratedAdmissible, AdmissibleByConstructionUnderAllConditions) {
  util::Rng rng(GetParam());
  GeneratorParams params;
  params.num_mops = 12;
  params.num_processes = 4;
  params.num_objects = 3;
  History h = generate_admissible_history(params, rng);
  ASSERT_TRUE(h.well_formed());
  for (const Condition c : {Condition::kMSequentialConsistency,
                            Condition::kMLinearizability, Condition::kMNormality}) {
    const auto result = check_condition(h, c);
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(result.admissible) << condition_name(c);
    EXPECT_TRUE(is_legal_sequential_order(h, *result.witness));
  }
}

TEST_P(GeneratedAdmissible, Lemma6AdmissibleImpliesLegal) {
  util::Rng rng(GetParam() * 31 + 7);
  GeneratorParams params;
  params.num_mops = 10;
  History h = generate_admissible_history(params, rng);
  const auto order = closed_base_order(h, Condition::kMLinearizability);
  EXPECT_TRUE(legal(h, order));
}

TEST_P(GeneratedAdmissible, PerturbationUsuallyDetected) {
  // Rewired reads must never crash the checker, and the checker verdict
  // must equal brute-force agreement between conditions' monotonicity:
  // m-lin admissible => m-normal admissible => m-SC admissible.
  util::Rng rng(GetParam() * 1337 + 11);
  GeneratorParams params;
  params.num_mops = 9;
  params.num_processes = 3;
  params.num_objects = 2;
  History h = generate_admissible_history(params, rng);
  perturb_reads_from(h, rng, 2);
  const bool mlin = check_m_linearizable(h).admissible;
  const bool mnorm = check_m_normal(h).admissible;
  const bool msc = check_m_sequentially_consistent(h).admissible;
  if (mlin) {
    EXPECT_TRUE(mnorm);
  }
  if (mnorm) {
    EXPECT_TRUE(msc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedAdmissible,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

// ------------------------------------------------------- Theorem 7 check

TEST(FastCheck, ReportsConstraintViolation) {
  // Two unordered updates: not under WW-constraint.
  History h(2, 2);
  h.add(mop(0, {Operation::write(0, 1)}, 1, 10));
  h.add(mop(1, {Operation::write(1, 2)}, 2, 9));
  const auto result =
      fast_check(h, base_order(h, Condition::kMLinearizability), Constraint::kWW);
  EXPECT_FALSE(result.constraint_holds);
  EXPECT_FALSE(result.admissible);
  EXPECT_FALSE(result.detail.empty());
}

TEST(FastCheck, LegalConstrainedHistoryAdmissibleWithWitness) {
  // Serial execution: WW holds trivially, legality holds, witness valid.
  History h(2, 1);
  const auto w1 = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  const auto w2 = h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  h.add(mop(0, {Operation::read(0, 2, w2)}, 5, 6));
  (void)w1;
  const auto result =
      fast_check(h, base_order(h, Condition::kMLinearizability), Constraint::kWW);
  EXPECT_TRUE(result.constraint_holds);
  EXPECT_TRUE(result.legal);
  EXPECT_TRUE(result.admissible);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(is_legal_sequential_order(h, *result.witness));
}

TEST(FastCheck, IllegalConstrainedHistoryRejected) {
  // β ~> γ ~> α with α reading from β: WW holds (all updates ordered by
  // real time), legality fails => Lemma 6 says inadmissible.
  History h(3, 1);
  const auto beta = h.add(mop(0, {Operation::write(0, 1)}, 1, 2));
  h.add(mop(1, {Operation::write(0, 2)}, 3, 4));
  h.add(mop(2, {Operation::read(0, 1, beta)}, 5, 6));
  const auto result =
      fast_check(h, base_order(h, Condition::kMLinearizability), Constraint::kWW);
  EXPECT_TRUE(result.constraint_holds);
  EXPECT_FALSE(result.legal);
  EXPECT_FALSE(result.admissible);
}

TEST(FastCheck, CyclicBaseOrderReported) {
  History h(2, 2);
  h.add(MOperation(0, {Operation::write(0, 1), Operation{OpType::kRead, 1, 2, 1}},
                   1, 2));
  h.add(MOperation(1, {Operation::write(1, 2), Operation{OpType::kRead, 0, 1, 0}},
                   1, 2));
  const auto result =
      fast_check(h, base_order(h, Condition::kMSequentialConsistency),
                 Constraint::kWW);
  EXPECT_FALSE(result.admissible);
  EXPECT_NE(result.detail.find("cyclic"), std::string::npos);
}

class FastExactAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastExactAgreement, Theorem7MatchesExactOnWWConstrainedHistories) {
  // Build WW-constrained histories by adding a total order over updates
  // (mimicking the protocols' ~ww): generate a single-process history —
  // process order is total — then compare verdicts.
  util::Rng rng(GetParam() * 7919);
  GeneratorParams params;
  params.num_processes = 1;  // total process order => WW-constrained
  params.num_mops = 9;
  params.num_objects = 3;
  params.write_probability = 0.7;
  History h = generate_free_history(params, rng);

  const auto base = base_order(h, Condition::kMSequentialConsistency);
  const auto fast = fast_check(h, base, Constraint::kWW);
  const auto exact = check_admissible(h, base);
  ASSERT_TRUE(exact.completed);
  if (fast.constraint_holds) {
    EXPECT_EQ(fast.admissible, exact.admissible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastExactAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                           14, 15, 16));

}  // namespace
}  // namespace mocc::core
