// Atomic broadcast invariants over a FAULTY network: validity,
// agreement, total order, and per-sender FIFO for both algorithms, with
// every frame carried by the reliable link (fault/reliable_link.hpp)
// while the fault plan drops and duplicates beneath it.
//
// The fault-free sweep lives in abcast_test.cpp; this file is the
// discharge of the reliable-channel assumption those tests rely on: the
// same guarantees must survive 10% loss and 5% duplication. Per-sender
// FIFO is asserted here (unlike the fault-free sweep) because each host
// broadcasts sequentially — message i+1 only after its own delivery of
// message i — which is exactly the §5 protocols' usage pattern: a
// process has at most one update in flight.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "abcast/abcast.hpp"
#include "fault/fault.hpp"
#include "fault/reliable_link.hpp"
#include "sim/delay.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace mocc::abcast {
namespace {

/// Hosts an AtomicBroadcast over a ReliableLink; broadcasts `count`
/// messages sequentially (next one only after delivering its own
/// previous one).
class FaultyAbcastHost final : public sim::Actor {
 public:
  FaultyAbcastHost(std::unique_ptr<AtomicBroadcast> layer, int count)
      : layer_(std::move(layer)), remaining_(count) {
    link_.set_deliver([this](sim::Context& ctx, const sim::Message& message) {
      EXPECT_TRUE(layer_->on_message(ctx, message))
          << "inner kind " << message.kind << " not consumed";
    });
    layer_->set_reliable_link(&link_);
    layer_->set_deliver([this](sim::Context& ctx, sim::NodeId origin,
                               const std::vector<std::uint8_t>& payload) {
      util::ByteReader r(payload);
      delivered.emplace_back(origin, r.get_u64());
      if (origin == ctx.self() && remaining_ > 0) broadcast_next(ctx);
    });
  }

  void on_start(sim::Context& ctx) override {
    layer_->on_start(ctx);
    if (remaining_ > 0) broadcast_next(ctx);
  }

  void on_message(sim::Context& ctx, const sim::Message& message) override {
    // Every network frame is a link frame: the layer above sends
    // exclusively through the reliable link.
    EXPECT_TRUE(link_.on_message(ctx, message))
        << "raw kind " << message.kind << " bypassed the link";
  }

  void on_timer(sim::Context& ctx, std::uint64_t timer_id) override {
    EXPECT_TRUE(link_.on_timer(ctx, timer_id));
  }

  const fault::ReliableLink& link() const { return link_; }
  std::vector<std::pair<sim::NodeId, std::uint64_t>> delivered;

 private:
  void broadcast_next(sim::Context& ctx) {
    --remaining_;
    util::ByteWriter w;
    w.put_u64(next_value_++);
    layer_->broadcast(ctx, w.take());
  }

  std::unique_ptr<AtomicBroadcast> layer_;
  fault::ReliableLink link_;
  int remaining_;
  std::uint64_t next_value_ = 0;
};

void run_one_seed(const std::string& algorithm, std::uint64_t seed) {
  constexpr std::size_t kNodes = 3;
  constexpr int kBroadcastsPerNode = 3;

  sim::Simulator sim(sim::make_delay_model("lan"), seed);
  std::vector<FaultyAbcastHost*> hosts;
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto host = std::make_unique<FaultyAbcastHost>(
        make_abcast_factory(algorithm)(), kBroadcastsPerNode);
    hosts.push_back(host.get());
    sim.add_node(std::move(host));
  }

  fault::FaultPlanConfig config;
  config.seed = seed * 2654435761u + 1;
  config.default_link.drop_rate = 0.10;
  config.default_link.duplicate_rate = 0.05;
  fault::FaultPlan plan(config);
  sim.set_fault_injector(&plan);
  sim.run();

  const std::size_t expected = kNodes * kBroadcastsPerNode;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    // No send may run out of retries at these fault rates: a lost
    // broadcast would turn an ordering theorem into a liveness bug.
    EXPECT_TRUE(hosts[i]->link().failed().empty())
        << algorithm << " seed " << seed << " node " << i;
    // Validity + agreement: everyone delivers all broadcasts, once each.
    ASSERT_EQ(hosts[i]->delivered.size(), expected)
        << algorithm << " seed " << seed << " node " << i;
    std::map<std::pair<sim::NodeId, std::uint64_t>, int> counts;
    for (const auto& d : hosts[i]->delivered) ++counts[d];
    for (const auto& [key, count] : counts) {
      EXPECT_EQ(count, 1) << algorithm << " seed " << seed << " node " << i
                          << " delivered (" << key.first << "," << key.second
                          << ") " << count << " times";
    }
  }
  // Total order: identical delivery sequence everywhere.
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    EXPECT_EQ(hosts[i]->delivered, hosts[0]->delivered)
        << algorithm << " seed " << seed << ": node " << i
        << " diverged from node 0";
  }
  // Per-sender FIFO: with sequential broadcasting, each origin's values
  // must appear in increasing order in the agreed sequence.
  std::map<sim::NodeId, std::uint64_t> next_from;
  for (const auto& [origin, value] : hosts[0]->delivered) {
    EXPECT_EQ(value, next_from[origin])
        << algorithm << " seed " << seed << ": origin " << origin
        << " out of FIFO order";
    next_from[origin] = value + 1;
  }
}

TEST(AbcastUnderFaults, SequencerInvariantsAcross100Seeds) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    run_one_seed("sequencer", seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(AbcastUnderFaults, IsisInvariantsAcross100Seeds) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    run_one_seed("isis", seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(AbcastUnderFaults, SurvivesAPartitionHealCycle) {
  // One partition/heal cycle on top of loss: node 0 is isolated during
  // [100, 400); the retransmit budget must carry every frame across.
  for (const char* algorithm : {"sequencer", "isis"}) {
    sim::Simulator sim(sim::make_delay_model("lan"), 21);
    std::vector<FaultyAbcastHost*> hosts;
    for (std::size_t i = 0; i < 3; ++i) {
      auto host = std::make_unique<FaultyAbcastHost>(
          make_abcast_factory(algorithm)(), 3);
      hosts.push_back(host.get());
      sim.add_node(std::move(host));
    }
    fault::FaultPlanConfig config;
    config.seed = 1234;
    config.default_link.drop_rate = 0.05;
    config.partitions.push_back({100, 400, {0}});
    fault::FaultPlan plan(config);
    sim.set_fault_injector(&plan);
    sim.run();

    ASSERT_EQ(hosts[0]->delivered.size(), 9u) << algorithm;
    for (std::size_t i = 1; i < hosts.size(); ++i) {
      EXPECT_EQ(hosts[i]->delivered, hosts[0]->delivered) << algorithm;
      EXPECT_TRUE(hosts[i]->link().failed().empty()) << algorithm;
    }
  }
}

}  // namespace
}  // namespace mocc::abcast
