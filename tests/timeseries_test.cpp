// Time-series tests (src/obs/timeseries.hpp): writer/loader round-trip,
// the header-on-first-sample contract, collector freshening, malformed
// input rejection, simulator-driven determinism, and the acceptance
// invariant that a long run's FINAL sample carries byte-identical
// cumulative values to a fresh end-of-run export of the same registry.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "api/system.hpp"
#include "exec/engine.hpp"
#include "exec/verify.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "protocols/workload.hpp"

#if defined(__SANITIZE_THREAD__)
#define MOCC_TS_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MOCC_TS_TEST_TSAN 1
#endif
#endif
#ifndef MOCC_TS_TEST_TSAN
#define MOCC_TS_TEST_TSAN 0
#endif

namespace mocc::obs {
namespace {

/// Last "ts_sample" line of a JSONL stream.
std::string last_sample_line(const std::string& stream) {
  std::istringstream in(stream);
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"ts_sample\"") != std::string::npos) last = line;
  }
  return last;
}

TEST(TimeSeries, RoundTripPreservesValuesAndOrder) {
  Registry registry;
  std::ostringstream out;
  TimeSeriesWriter writer(out);
  for (std::uint64_t t = 10; t <= 30; t += 10) {
    registry.counter("mops").inc(3);
    registry.gauge("depth").set(static_cast<double>(t));
    writer.sample(registry, t);
  }
  EXPECT_EQ(writer.samples(), 3u);

  std::istringstream in(out.str());
  TimeSeriesFile file;
  std::string error;
  ASSERT_TRUE(load_timeseries_jsonl(in, &file, &error)) << error;
  EXPECT_TRUE(file.has_header);
  EXPECT_EQ(file.schema_version, kTimeSeriesSchemaVersion);
  ASSERT_EQ(file.points.size(), 3u);
  for (std::size_t i = 0; i < file.points.size(); ++i) {
    const TimeSeriesPoint& point = file.points[i];
    EXPECT_EQ(point.seq, i);
    EXPECT_EQ(point.t, 10 * (i + 1));
    EXPECT_EQ(point.value("counters/mops"), 3.0 * static_cast<double>(i + 1));
    EXPECT_EQ(point.value("gauges/depth"), static_cast<double>(point.t));
    EXPECT_EQ(point.value("gauges/absent", -1.0), -1.0);
  }
}

TEST(TimeSeries, WriterThatNeverFiresLeavesStreamEmpty) {
  std::ostringstream out;
  TimeSeriesWriter writer(out);
  EXPECT_TRUE(out.str().empty());
  EXPECT_EQ(writer.samples(), 0u);
}

TEST(TimeSeries, CollectorsFreshenRegistryBeforeEachSample) {
  Registry registry;
  std::ostringstream out;
  TimeSeriesWriter writer(out);
  std::uint64_t pulls = 0;
  writer.add_collector([&pulls](Registry& r) {
    r.counter("pulled").set(++pulls);
  });
  writer.sample(registry, 1);
  writer.sample(registry, 2);

  std::istringstream in(out.str());
  TimeSeriesFile file;
  std::string error;
  ASSERT_TRUE(load_timeseries_jsonl(in, &file, &error)) << error;
  ASSERT_EQ(file.points.size(), 2u);
  EXPECT_EQ(file.points[0].value("counters/pulled"), 1.0);
  EXPECT_EQ(file.points[1].value("counters/pulled"), 2.0);
}

TEST(TimeSeries, UnknownLineTypesSkippedMalformedLinesRejected) {
  {
    std::istringstream in(
        "{\"type\":\"ts_header\",\"schema_version\":1}\n"
        "{\"type\":\"future_annotation\",\"x\":1}\n"
        "{\"type\":\"ts_sample\",\"t\":5,\"seq\":0,\"counters\":{},"
        "\"gauges\":{},\"histograms\":{}}\n");
    TimeSeriesFile file;
    std::string error;
    ASSERT_TRUE(load_timeseries_jsonl(in, &file, &error)) << error;
    EXPECT_EQ(file.points.size(), 1u);
  }
  {
    std::istringstream in("{\"type\":\"ts_sample\",\"t\":5,");
    TimeSeriesFile file;
    std::string error;
    EXPECT_FALSE(load_timeseries_jsonl(in, &file, &error));
    EXPECT_FALSE(error.empty());
  }
}

// ---------------------------------------------------------------------
// Simulator-driven streams are stamped with virtual time and are
// therefore byte-deterministic: same config, same stream.

std::string run_system_stream(std::uint64_t seed) {
  api::SystemConfig config;
  config.protocol = "mlin";
  config.num_processes = 3;
  config.num_objects = 6;
  config.seed = seed;
  config.backlog_sample_interval = 16;

  std::ostringstream out;
  Registry registry;
  TimeSeriesWriter writer(out);
  api::System system(config);
  system.set_metrics_registry(&registry);
  system.set_timeseries(&writer);
  protocols::WorkloadParams params;
  params.ops_per_process = 8;
  system.run_workload(params);
  return out.str();
}

TEST(TimeSeries, SimulatorStreamIsByteDeterministic) {
  const std::string a = run_system_stream(21);
  const std::string b = run_system_stream(21);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  std::istringstream in(a);
  TimeSeriesFile file;
  std::string error;
  ASSERT_TRUE(load_timeseries_jsonl(in, &file, &error)) << error;
  ASSERT_GT(file.points.size(), 1u);
  for (std::size_t i = 1; i < file.points.size(); ++i) {
    EXPECT_GE(file.points[i].t, file.points[i - 1].t);
    EXPECT_EQ(file.points[i].seq, file.points[i - 1].seq + 1);
  }
}

// ---------------------------------------------------------------------
// The acceptance invariant behind tools/mocc_live: on a clean 100k+
// m-operation exec run, the final time-series sample's cumulative
// values byte-match a fresh end-of-run export of the same registry —
// the stream's tail IS the run's summary, not an approximation of it.

TEST(TimeSeries, FinalSampleByteMatchesEndOfRunExport) {
  exec::ExecConfig config;
  config.threads = MOCC_TS_TEST_TSAN ? 4 : 8;
  config.objects = 256;
  config.mops_per_thread =
      MOCC_TS_TEST_TSAN ? 3'000 : 13'000;  // >= 100k committed when clean
  config.footprint = 3;
  config.seed = 31;
  const exec::ExecResult result = exec::run(config);
  ASSERT_EQ(result.stats.committed, config.threads * config.mops_per_thread);

  std::ostringstream out;
  Registry registry;
  TimeSeriesWriter writer(out);
  StreamingAuditor auditor(exec::stream_options(config));
  const StreamingReport& report =
      exec::stream_execution(result, auditor, &writer, &registry,
                             /*sample_every=*/4096);
  ASSERT_TRUE(report.ok()) << report.to_string();
  ASSERT_EQ(report.mops, result.stats.committed);
  ASSERT_GT(writer.samples(), 1u);

  const std::string last = last_sample_line(out.str());
  ASSERT_FALSE(last.empty());
  const std::string fields = registry_fields_json(registry);
  EXPECT_NE(last.find(fields), std::string::npos)
      << "final sample does not embed the end-of-run export:\n"
      << last << "\nvs\n"
      << fields;
}

}  // namespace
}  // namespace mocc::obs
