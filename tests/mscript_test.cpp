// Unit tests for the MScript bytecode: builder, validation,
// serialization, VM semantics, the canonical operation library, and
// determinism properties.
#include <gtest/gtest.h>

#include "mscript/builder.hpp"
#include "mscript/library.hpp"
#include "mscript/program.hpp"
#include "mscript/vm.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mocc::mscript {
namespace {

ExecutionResult run_on(const Program& program, std::vector<Value> initial) {
  VectorStore store(initial.size());
  store.values() = std::move(initial);
  return Vm::run(program, store);
}

// -------------------------------------------------------------- builder

TEST(Builder, EmitsValidatedProgram) {
  Builder b("t");
  const auto r = b.reg();
  b.load_const(r, 5).ret(r);
  const Program p = b.build();
  EXPECT_TRUE(p.validate().empty());
  EXPECT_EQ(p.name(), "t");
  EXPECT_TRUE(p.is_query());
}

TEST(Builder, FootprintDerivedFromCode) {
  Builder b("t");
  const auto r = b.reg();
  b.read(r, 3).write(5, r).ret(r);
  const Program p = b.build();
  EXPECT_EQ(p.may_read(), (std::vector<ObjectId>{3}));
  EXPECT_EQ(p.may_write(), (std::vector<ObjectId>{5}));
  EXPECT_TRUE(p.is_update());
}

TEST(Builder, DeclareWidensFootprint) {
  Builder b("t");
  b.declare_read(1).declare_write(2);
  b.ret_const(0);
  const Program p = b.build();
  EXPECT_EQ(p.may_read(), (std::vector<ObjectId>{1}));
  EXPECT_EQ(p.may_write(), (std::vector<ObjectId>{2}));
  EXPECT_TRUE(p.is_update());  // conservative: may write even if it never does
}

TEST(Builder, ForwardLabelsResolve) {
  Builder b("t");
  const auto r = b.reg();
  b.load_const(r, 0)
      .jump("end")
      .load_const(r, 99)  // skipped
      .label("end")
      .ret(r);
  const auto result = run_on(b.build(), {});
  EXPECT_EQ(result.return_value, 0);
}

// ----------------------------------------------------------- validation

TEST(Validate, RejectsReadOutsideFootprint) {
  Instruction read;
  read.op = OpCode::kReadObj;
  read.a = 0;
  read.obj = 7;
  Instruction ret;
  ret.op = OpCode::kReturn;
  Program p({read, ret}, 1, /*may_read=*/{}, /*may_write=*/{}, "bad");
  EXPECT_NE(p.validate().find("may_read"), std::string::npos);
}

TEST(Validate, RejectsBadRegister) {
  Instruction ins;
  ins.op = OpCode::kMove;
  ins.a = 5;  // only 1 register
  ins.b = 0;
  Instruction ret;
  ret.op = OpCode::kReturn;
  Program p({ins, ret}, 1, {}, {}, "bad");
  EXPECT_NE(p.validate().find("register"), std::string::npos);
}

TEST(Validate, RejectsJumpOutOfRange) {
  Instruction jmp;
  jmp.op = OpCode::kJump;
  jmp.target = 9;
  Program p({jmp}, 1, {}, {}, "bad");
  EXPECT_NE(p.validate().find("target"), std::string::npos);
}

TEST(Validate, RejectsFallOffEnd) {
  Instruction ins;
  ins.op = OpCode::kLoadConst;
  Program p({ins}, 1, {}, {}, "bad");
  EXPECT_NE(p.validate().find("fall off"), std::string::npos);
}

TEST(Validate, RejectsEmptyProgram) {
  Program p({}, 1, {}, {}, "bad");
  EXPECT_FALSE(p.validate().empty());
}

// ---------------------------------------------------------------- codec

TEST(Codec, RoundTripPreservesProgram) {
  const Program original = lib::make_dcas(1, 2, 10, 20, 11, 21);
  util::ByteWriter w;
  original.encode(w);
  util::ByteReader r(w.bytes());
  const Program decoded = Program::decode(r);
  EXPECT_TRUE(decoded == original);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, RoundTripAllLibraryPrograms) {
  const std::vector<ObjectId> objs{0, 2, 4};
  const std::vector<Value> vals{5, 6, 7};
  const std::vector<Program> programs = {
      lib::make_read(1),
      lib::make_write(1, 9),
      lib::make_read_all(objs),
      lib::make_m_assign(objs, vals),
      lib::make_cas(0, 1, 2),
      lib::make_dcas(0, 1, 0, 0, 1, 1),
      lib::make_sum(objs),
      lib::make_transfer(0, 1, 5),
      lib::make_fetch_add(2, 3),
      lib::make_multi_add(objs, vals),
  };
  for (const Program& p : programs) {
    util::ByteWriter w;
    p.encode(w);
    util::ByteReader r(w.bytes());
    EXPECT_TRUE(Program::decode(r) == p) << p.name();
  }
}

// ------------------------------------------------------------------- vm

TEST(Vm, Arithmetic) {
  Builder b("t");
  const auto x = b.reg();
  const auto y = b.reg();
  const auto z = b.reg();
  b.load_const(x, 6).load_const(y, 7).mul(z, x, y).ret(z);
  EXPECT_EQ(run_on(b.build(), {}).return_value, 42);
}

TEST(Vm, SubAndCompare) {
  Builder b("t");
  const auto x = b.reg();
  const auto y = b.reg();
  const auto z = b.reg();
  b.load_const(x, 5)
      .load_const(y, 3)
      .sub(z, x, y)   // 2
      .cmp_lt(z, y, x)  // 1
      .ret(z);
  EXPECT_EQ(run_on(b.build(), {}).return_value, 1);
}

TEST(Vm, SignedOverflowWraps) {
  Builder b("t");
  const auto x = b.reg();
  const auto one = b.reg();
  const auto r = b.reg();
  b.load_const(x, std::numeric_limits<Value>::max())
      .load_const(one, 1)
      .add(r, x, one)
      .ret(r);
  EXPECT_EQ(run_on(b.build(), {}).return_value, std::numeric_limits<Value>::min());
}

TEST(Vm, RecordsAccessesInProgramOrder) {
  Builder b("t");
  const auto r = b.reg();
  b.read(r, 0).write(1, r).read(r, 1).ret(r);
  const auto result = run_on(b.build(), {5, 0});
  ASSERT_EQ(result.accesses.size(), 3u);
  EXPECT_FALSE(result.accesses[0].is_write);
  EXPECT_EQ(result.accesses[0].object, 0u);
  EXPECT_EQ(result.accesses[0].value, 5);
  EXPECT_TRUE(result.accesses[1].is_write);
  EXPECT_EQ(result.accesses[1].value, 5);
  EXPECT_EQ(result.accesses[2].value, 5);  // read-own-write
  EXPECT_EQ(result.objects_read(), (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(result.objects_written(), (std::vector<ObjectId>{1}));
}

TEST(Vm, LoopTerminates) {
  // Count down from 5.
  Builder b("loop");
  const auto i = b.reg();
  const auto one = b.reg();
  b.load_const(i, 5)
      .load_const(one, 1)
      .label("top")
      .jump_if_zero(i, "done")
      .sub(i, i, one)
      .jump("top")
      .label("done")
      .ret(i);
  const auto result = run_on(b.build(), {});
  EXPECT_EQ(result.return_value, 0);
  EXPECT_GT(result.steps, 10u);
}

// -------------------------------------------------------------- library

TEST(Library, ReadReturnsValue) {
  EXPECT_EQ(run_on(lib::make_read(1), {7, 9}).return_value, 9);
}

TEST(Library, WriteStores) {
  VectorStore store(2);
  Vm::run(lib::make_write(1, 33), store);
  EXPECT_EQ(store.values()[1], 33);
}

TEST(Library, ReadAllTouchesEverything) {
  const std::vector<ObjectId> objs{0, 1, 2};
  const auto result = run_on(lib::make_read_all(objs), {4, 5, 6});
  EXPECT_EQ(result.return_value, 6);  // last listed
  EXPECT_EQ(result.objects_read(), objs);
}

TEST(Library, MAssignWritesAll) {
  const std::vector<ObjectId> objs{0, 2};
  const std::vector<Value> vals{11, 22};
  VectorStore store(3);
  const auto result = Vm::run(lib::make_m_assign(objs, vals), store);
  EXPECT_EQ(result.return_value, 1);
  EXPECT_EQ(store.values(), (std::vector<Value>{11, 0, 22}));
}

TEST(Library, CasSucceedsOnMatch) {
  VectorStore store(1);
  store.values()[0] = 5;
  EXPECT_EQ(Vm::run(lib::make_cas(0, 5, 9), store).return_value, 1);
  EXPECT_EQ(store.values()[0], 9);
}

TEST(Library, CasFailsOnMismatch) {
  VectorStore store(1);
  store.values()[0] = 4;
  EXPECT_EQ(Vm::run(lib::make_cas(0, 5, 9), store).return_value, 0);
  EXPECT_EQ(store.values()[0], 4);
}

TEST(Library, DcasSucceedsWhenBothMatch) {
  VectorStore store(2);
  store.values() = {1, 2};
  const auto result = Vm::run(lib::make_dcas(0, 1, 1, 2, 10, 20), store);
  EXPECT_EQ(result.return_value, 1);
  EXPECT_EQ(store.values(), (std::vector<Value>{10, 20}));
  EXPECT_EQ(result.objects_written(), (std::vector<ObjectId>{0, 1}));
}

TEST(Library, DcasFailsWhenFirstMismatches) {
  VectorStore store(2);
  store.values() = {0, 2};
  const auto result = Vm::run(lib::make_dcas(0, 1, 1, 2, 10, 20), store);
  EXPECT_EQ(result.return_value, 0);
  EXPECT_EQ(store.values(), (std::vector<Value>{0, 2}));
  EXPECT_TRUE(result.objects_written().empty());
  // Still statically an update: the conservative rule in action.
  EXPECT_TRUE(lib::make_dcas(0, 1, 1, 2, 10, 20).is_update());
}

TEST(Library, DcasFailsWhenSecondMismatches) {
  VectorStore store(2);
  store.values() = {1, 0};
  const auto result = Vm::run(lib::make_dcas(0, 1, 1, 2, 10, 20), store);
  EXPECT_EQ(result.return_value, 0);
  EXPECT_EQ(store.values(), (std::vector<Value>{1, 0}));
}

TEST(Library, DcasShortCircuitSkipsSecondReadNever) {
  // Both reads always happen (footprint honesty): check the access record.
  VectorStore store(2);
  store.values() = {99, 0};
  const auto result = Vm::run(lib::make_dcas(0, 1, 1, 2, 10, 20), store);
  EXPECT_EQ(result.objects_read(), (std::vector<ObjectId>{0, 1}));
}

TEST(Library, SumAddsUp) {
  const std::vector<ObjectId> objs{0, 1, 2};
  EXPECT_EQ(run_on(lib::make_sum(objs), {1, 2, 3}).return_value, 6);
  EXPECT_TRUE(lib::make_sum(objs).is_query());
}

TEST(Library, TransferMovesFundsWhenSufficient) {
  VectorStore store(2);
  store.values() = {10, 1};
  EXPECT_EQ(Vm::run(lib::make_transfer(0, 1, 4), store).return_value, 1);
  EXPECT_EQ(store.values(), (std::vector<Value>{6, 5}));
}

TEST(Library, TransferRefusesOverdraft) {
  VectorStore store(2);
  store.values() = {3, 1};
  EXPECT_EQ(Vm::run(lib::make_transfer(0, 1, 4), store).return_value, 0);
  EXPECT_EQ(store.values(), (std::vector<Value>{3, 1}));
}

TEST(Library, FetchAddReturnsOldValue) {
  VectorStore store(1);
  store.values()[0] = 40;
  EXPECT_EQ(Vm::run(lib::make_fetch_add(0, 2), store).return_value, 40);
  EXPECT_EQ(store.values()[0], 42);
}

TEST(Library, MultiAddAppliesDeltas) {
  const std::vector<ObjectId> objs{0, 1};
  const std::vector<Value> deltas{5, -2};
  VectorStore store(2);
  store.values() = {1, 10};
  Vm::run(lib::make_multi_add(objs, deltas), store);
  EXPECT_EQ(store.values(), (std::vector<Value>{6, 8}));
}

// ----------------------------------------------------- determinism prop

TEST(Determinism, SameProgramSameStoreSameOutcome) {
  // The replay property both protocols rely on: any program, run twice
  // against equal stores, produces identical stores, accesses, returns.
  util::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x1 = static_cast<ObjectId>(rng.next_below(4));
    const auto x2 = static_cast<ObjectId>(rng.next_below(4));
    const Program p =
        x1 == x2 ? lib::make_cas(x1, rng.next_in(0, 2), rng.next_in(0, 9))
                 : lib::make_dcas(x1, x2, rng.next_in(0, 2), rng.next_in(0, 2),
                                  rng.next_in(0, 9), rng.next_in(0, 9));
    std::vector<Value> initial;
    for (int i = 0; i < 4; ++i) initial.push_back(rng.next_in(0, 2));

    VectorStore s1(4);
    VectorStore s2(4);
    s1.values() = initial;
    s2.values() = initial;
    const auto r1 = Vm::run(p, s1);
    const auto r2 = Vm::run(p, s2);
    EXPECT_EQ(r1.return_value, r2.return_value);
    EXPECT_EQ(s1.values(), s2.values());
    EXPECT_EQ(r1.accesses.size(), r2.accesses.size());
  }
}

TEST(Determinism, SerializedProgramReplaysIdentically) {
  util::Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const Program p = lib::make_transfer(0, 1, rng.next_in(1, 10));
    util::ByteWriter w;
    p.encode(w);
    util::ByteReader r(w.bytes());
    const Program q = Program::decode(r);

    std::vector<Value> initial{rng.next_in(0, 20), rng.next_in(0, 20)};
    VectorStore s1(2);
    VectorStore s2(2);
    s1.values() = initial;
    s2.values() = initial;
    EXPECT_EQ(Vm::run(p, s1).return_value, Vm::run(q, s2).return_value);
    EXPECT_EQ(s1.values(), s2.values());
  }
}

}  // namespace
}  // namespace mocc::mscript
