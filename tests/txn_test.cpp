// Tests for database schedules, the serializability checkers, and the
// Theorem-2 reduction (schedule strict-view-serializable ⟺ reduced
// history m-linearizable; plain view serializability ⟺ m-sequential
// consistency of the same history).
#include <gtest/gtest.h>

#include "core/admissibility.hpp"
#include "txn/generate.hpp"
#include "txn/reduction.hpp"
#include "txn/schedule.hpp"
#include "txn/serializability.hpp"
#include "util/rng.hpp"

namespace mocc::txn {
namespace {

// ---------------------------------------------------------------- schedule

TEST(Schedule, ReadsFromLatestPrecedingWrite) {
  Schedule s(2, 1);
  s.append(0, true, 0);   // w0(e0)
  s.append(1, true, 0);   // w1(e0)
  s.append(0, false, 0);  // r0(e0) — reads T1's write
  EXPECT_EQ(s.reads_from(2), 1u);
}

TEST(Schedule, ReadsFromInitialWhenNoWrite) {
  Schedule s(1, 1);
  s.append(0, false, 0);
  EXPECT_EQ(s.reads_from(0), kInitialTxn);
}

TEST(Schedule, FirstLastActionPositions) {
  Schedule s(2, 2);
  s.append(0, true, 0);
  s.append(1, true, 1);
  s.append(0, false, 1);
  EXPECT_EQ(s.first_action(0), std::size_t{0});
  EXPECT_EQ(s.last_action(0), std::size_t{2});
  EXPECT_EQ(s.first_action(1), std::size_t{1});
  EXPECT_FALSE(s.first_action(5).has_value());
}

TEST(Schedule, NonOverlappingBefore) {
  Schedule s(2, 1);
  s.append(0, true, 0);
  s.append(0, false, 0);
  s.append(1, true, 0);
  EXPECT_TRUE(s.non_overlapping_before(0, 1));
  EXPECT_FALSE(s.non_overlapping_before(1, 0));
}

TEST(Schedule, ExternalReadsSkipOwnWrittenEntities) {
  Schedule s(1, 2);
  s.append(0, true, 0);   // w(e0)
  s.append(0, false, 0);  // internal read
  s.append(0, false, 1);  // external read from initial
  const auto reads = s.external_reads(0);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].entity, 1u);
  EXPECT_EQ(reads[0].from, kInitialTxn);
}

TEST(Schedule, WriteSetAndFinalWriter) {
  Schedule s(2, 2);
  s.append(0, true, 0);
  s.append(1, true, 0);
  s.append(0, true, 1);
  EXPECT_EQ(s.write_set(0), (std::vector<EntityId>{0, 1}));
  EXPECT_EQ(s.final_writer(0), 1u);
  EXPECT_EQ(s.final_writer(1), 0u);
}

TEST(Schedule, AugmentAddsInitialAndFinalTxns) {
  Schedule s(1, 2);
  s.append(0, false, 0);
  const auto aug = s.augment();
  EXPECT_EQ(aug.schedule.num_txns(), 3u);
  // T0's writes come first; T-infinity's reads last.
  EXPECT_EQ(aug.schedule.actions().front().txn, aug.t0);
  EXPECT_TRUE(aug.schedule.actions().front().is_write);
  EXPECT_EQ(aug.schedule.actions().back().txn, aug.t_inf);
  EXPECT_FALSE(aug.schedule.actions().back().is_write);
  // The original read now reads from T0.
  EXPECT_EQ(aug.schedule.reads_from(2), aug.t0);
}

TEST(Schedule, SeriallyRealizableDetectsStaleInternalRead) {
  // T0 writes e0, T1 writes e0, then T0 reads e0 -> sees T1's value
  // although it wrote e0 itself: impossible serially.
  Schedule s(2, 1);
  s.append(0, true, 0);
  s.append(1, true, 0);
  s.append(0, false, 0);
  EXPECT_FALSE(s.reads_are_serially_realizable());
}

TEST(Schedule, SeriallyRealizableDetectsNonFinalWriteRead) {
  // T1 writes e0 twice with T0 reading in between: T0 reads T1's
  // non-final write — impossible serially.
  Schedule s(2, 1);
  s.append(1, true, 0);
  s.append(0, false, 0);
  s.append(1, true, 0);
  EXPECT_FALSE(s.reads_are_serially_realizable());
}

TEST(Schedule, SeriallyRealizableAcceptsCleanSchedules) {
  Schedule s(2, 2);
  s.append(0, true, 0);
  s.append(1, false, 0);
  s.append(1, true, 1);
  s.append(0, false, 1);
  EXPECT_TRUE(s.reads_are_serially_realizable());
}

// --------------------------------------------------------- serializability

TEST(ViewSerializable, SerialScheduleAlwaysSerializable) {
  util::Rng rng(1);
  ScheduleParams params;
  for (int trial = 0; trial < 10; ++trial) {
    const Schedule s = generate_serial_schedule(params, rng);
    const auto result = view_serializable(s);
    EXPECT_TRUE(result.serializable);
    ASSERT_TRUE(result.witness.has_value());
    EXPECT_TRUE(is_view_equivalent_serial_order(s, *result.witness));
  }
}

TEST(ViewSerializable, ClassicNonSerializableInterleaving) {
  // Lost update: r0(e) r1(e) w0(e) w1(e) with final read seeing w1 but
  // both reads seeing the initial value.
  Schedule s(2, 1);
  s.append(0, false, 0);
  s.append(1, false, 0);
  s.append(0, true, 0);
  s.append(1, true, 0);
  EXPECT_FALSE(view_serializable(s).serializable);
}

TEST(ViewSerializable, WriteOnlyBlindWritesSerializable) {
  // Blind writes: w0(e) w1(e): final writer is T1 => order T0 T1 works.
  Schedule s(2, 1);
  s.append(0, true, 0);
  s.append(1, true, 0);
  const auto result = view_serializable(s);
  EXPECT_TRUE(result.serializable);
  EXPECT_EQ(*result.witness, (std::vector<TxnId>{0, 1}));
}

TEST(ViewSerializable, FamousViewButNotConflictSerializable) {
  // The textbook example: blind writes make it view serializable while
  // the precedence graph is cyclic.
  //   w0(e) ; r1(e)?? — classic: T1: r(x) w(x); T2: w(x); T3: w(x)
  //   schedule: r1(x) w2(x) w1(x) w3(x)
  Schedule s(3, 1);
  s.append(0, false, 0);  // r1(x) reads initial
  s.append(1, true, 0);   // w2(x)
  s.append(0, true, 0);   // w1(x)
  s.append(2, true, 0);   // w3(x)  (final)
  EXPECT_TRUE(view_serializable(s).serializable);   // T1 T2 T3
  EXPECT_FALSE(conflict_serializable(s));           // cycle T1<->T2
}

TEST(ConflictSerializable, SerialIsConflictSerializable) {
  util::Rng rng(2);
  ScheduleParams params;
  for (int trial = 0; trial < 10; ++trial) {
    EXPECT_TRUE(conflict_serializable(generate_serial_schedule(params, rng)));
  }
}

TEST(ConflictSerializable, ImpliesViewSerializable) {
  util::Rng rng(3);
  ScheduleParams params;
  params.num_txns = 4;
  params.num_entities = 2;
  int conflict_count = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Schedule s = generate_interleaved_schedule(params, rng);
    if (!s.reads_are_serially_realizable()) continue;
    if (conflict_serializable(s)) {
      ++conflict_count;
      EXPECT_TRUE(view_serializable(s).serializable) << s.to_string();
    }
  }
  EXPECT_GT(conflict_count, 5);  // the sweep actually exercised the property
}

TEST(StrictViewSerializable, ImpliesViewSerializable) {
  util::Rng rng(4);
  ScheduleParams params;
  params.num_txns = 4;
  for (int trial = 0; trial < 40; ++trial) {
    const Schedule s = generate_interleaved_schedule(params, rng);
    if (strict_view_serializable(s).serializable) {
      EXPECT_TRUE(view_serializable(s).serializable) << s.to_string();
    }
  }
}

TEST(StrictViewSerializable, SeparatedFromViewSerializable) {
  // A = T0 = w(x), B = T1 = w(y), C = T2 = r(x) … r(y).
  // Schedule:  r_C(x)[init]  w_A(x)  w_B(y)  r_C(y)[from B]
  // A occupies position 1 only and B position 2 only: A completes before
  // B starts. Yet every view-equivalent serial order must put C before A
  // (C read x before A's write) and B before C (C reads y from B), i.e.
  // B C A — which inverts the non-overlapping pair (A, B). So: view
  // serializable, NOT strict view serializable.
  Schedule s(3, 2);
  s.append(2, false, 0);  // r_C(x) -> initial
  s.append(0, true, 0);   // w_A(x)
  s.append(1, true, 1);   // w_B(y)
  s.append(2, false, 1);  // r_C(y) -> B
  ASSERT_TRUE(s.non_overlapping_before(0, 1));

  const auto view = view_serializable(s);
  EXPECT_TRUE(view.serializable);
  ASSERT_TRUE(view.witness.has_value());
  EXPECT_EQ(*view.witness, (std::vector<TxnId>{1, 2, 0}));

  EXPECT_FALSE(strict_view_serializable(s).serializable);
}

TEST(Reduction, SeparatorScheduleSeparatesConditionsToo) {
  // The same schedule through the Theorem-2 reduction: the history is
  // m-sequentially consistent but not m-linearizable.
  Schedule s(3, 2);
  s.append(2, false, 0);
  s.append(0, true, 0);
  s.append(1, true, 1);
  s.append(2, false, 1);
  const auto red = reduce_to_history(s);
  ASSERT_TRUE(red.feasible);
  EXPECT_FALSE(core::check_m_linearizable(red.history).admissible);

  auto base = core::base_order(red.history, core::Condition::kMSequentialConsistency);
  for (core::MOpId id = 0; id < red.history.size(); ++id) {
    if (id != red.t_inf_mop) base.add(id, red.t_inf_mop);
  }
  EXPECT_TRUE(core::check_admissible(red.history, base).admissible);
}

TEST(StrictViewSerializable, RejectsNotSeriallyRealizable) {
  Schedule s(2, 1);
  s.append(0, true, 0);
  s.append(1, true, 0);
  s.append(0, false, 0);  // T0 reads T1's value after own write
  EXPECT_FALSE(strict_view_serializable(s).serializable);
  EXPECT_FALSE(view_serializable(s).serializable);
}

// ------------------------------------------------------------- reduction

TEST(Reduction, BuildsOneMopPerTxnPlusReader) {
  Schedule s(2, 2);
  s.append(0, true, 0);
  s.append(1, false, 0);
  s.append(1, true, 1);
  const auto red = reduce_to_history(s);
  ASSERT_TRUE(red.feasible);
  EXPECT_EQ(red.history.size(), 3u);  // T0, T1, T-infinity
  EXPECT_EQ(red.history.mop(red.t_inf_mop).external_reads().size(), 2u);
}

TEST(Reduction, NonOverlapMapsToRealTime) {
  Schedule s(2, 1);
  s.append(0, true, 0);
  s.append(1, true, 0);
  const auto red = reduce_to_history(s);
  ASSERT_TRUE(red.feasible);
  const auto& h = red.history;
  EXPECT_LT(h.mop(red.txn_to_mop[0]).response(), h.mop(red.txn_to_mop[1]).invoke());
}

TEST(Reduction, OverlapMapsToOverlap) {
  // T0 = w(e0) … r(e1) spans T1 = w(e1): overlapping transactions map to
  // overlapping m-operations.
  Schedule s(2, 2);
  s.append(0, true, 0);
  s.append(1, true, 1);
  s.append(0, false, 1);  // T0 reads e1 from T1 (its final write)
  const auto red = reduce_to_history(s);
  ASSERT_TRUE(red.feasible);
  const auto& h = red.history;
  const auto& t0 = h.mop(red.txn_to_mop[0]);
  const auto& t1 = h.mop(red.txn_to_mop[1]);
  EXPECT_LT(t0.invoke(), t1.invoke());
  EXPECT_LT(t1.response(), t0.response());  // T1 nested inside T0
}

TEST(Reduction, InfeasibleScheduleReported) {
  Schedule s(2, 1);
  s.append(1, true, 0);
  s.append(0, false, 0);
  s.append(1, true, 0);  // read of non-final write
  EXPECT_FALSE(reduce_to_history(s).feasible);
}

class ReductionAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReductionAgreement, Theorem2StrictViewIffMLinearizable) {
  util::Rng rng(GetParam() * 104729);
  ScheduleParams params;
  params.num_txns = 4;
  params.num_entities = 3;
  params.max_actions_per_txn = 3;
  for (int trial = 0; trial < 15; ++trial) {
    const Schedule s = generate_interleaved_schedule(params, rng);
    const bool strict = strict_view_serializable(s).serializable;
    const auto red = reduce_to_history(s);
    if (!red.feasible) {
      EXPECT_FALSE(strict) << s.to_string();
      continue;
    }
    const auto mlin = core::check_m_linearizable(red.history);
    ASSERT_TRUE(mlin.completed);
    EXPECT_EQ(strict, mlin.admissible) << s.to_string();
  }
}

TEST_P(ReductionAgreement, ViewSerializableIffMSequentiallyConsistent) {
  util::Rng rng(GetParam() * 7907 + 3);
  ScheduleParams params;
  params.num_txns = 4;
  params.num_entities = 2;
  params.max_actions_per_txn = 3;
  for (int trial = 0; trial < 15; ++trial) {
    const Schedule s = generate_interleaved_schedule(params, rng);
    const bool view = view_serializable(s).serializable;
    const auto red = reduce_to_history(s);
    if (!red.feasible) {
      EXPECT_FALSE(view) << s.to_string();
      continue;
    }
    // m-SC drops real-time order, so the T-infinity reader must be pinned
    // last explicitly (its reads encode the schedule's final writes).
    auto base =
        core::base_order(red.history, core::Condition::kMSequentialConsistency);
    for (core::MOpId id = 0; id < red.history.size(); ++id) {
      if (id != red.t_inf_mop) base.add(id, red.t_inf_mop);
    }
    const auto msc = core::check_admissible(red.history, base);
    ASSERT_TRUE(msc.completed);
    EXPECT_EQ(view, msc.admissible) << s.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mocc::txn
