// Causal-span layer integration tests (src/obs/analysis.{hpp,cpp} over
// the instrumentation in sim/abcast/protocols/fault).
//
// The heart is a 50-seed x 3-protocol x faults-on/off sweep asserting
// the two load-bearing invariants end to end: every trace round-tripped
// through write_trace_jsonl parses back into a well-formed span forest,
// and every completed m-operation's critical-path phase breakdown sums
// EXACTLY to its end-to-end virtual latency. A second sweep checks the
// strongest property — the history rebuilt purely from the trace is
// equivalent to the ExecutionRecorder's and yields the same fast-check
// verdict. The Perfetto export is golden-tested byte-for-byte; to
// regenerate after an intended change:
//
//   MOCC_UPDATE_GOLDEN=1 build/tests/trace_span_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "api/system.hpp"
#include "experiments.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "protocols/workload.hpp"

namespace mocc {
namespace {

api::SystemConfig sweep_config(const std::string& protocol, std::uint64_t seed,
                               bool faults) {
  api::SystemConfig config;
  config.protocol = protocol;
  config.num_processes = 3;
  config.num_objects = 8;
  config.delay = "lan";
  config.seed = seed;
  config.backlog_sample_interval = 64;
  if (faults) {
    config.reliable_link = true;
    config.link.initial_rto = 40;
    config.faults.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    config.faults.default_link.drop_rate = 0.05;
    config.faults.default_link.duplicate_rate = 0.05;
  }
  return config;
}

/// Runs one traced workload and round-trips the trace through the JSONL
/// writer and parser (so every sweep also exercises the serialization).
struct TracedRun {
  obs::TraceFile trace;
  core::History history{1, 1};
  bool supports_audit = false;
  bool fast_ok = false;  ///< meaningful only when supports_audit
};

TracedRun run_traced(const api::SystemConfig& config, core::Condition condition) {
  obs::RingBufferSink sink(std::size_t{1} << 18);
  api::System system(config);
  system.set_trace_sink(&sink);
  protocols::WorkloadParams params;
  params.ops_per_process = 4;
  params.update_ratio = 0.5;
  params.footprint = 2;
  system.run_workload(params);

  std::stringstream jsonl;
  obs::write_trace_jsonl(jsonl, sink);
  TracedRun run;
  std::string error;
  EXPECT_TRUE(obs::load_trace_jsonl(jsonl, &run.trace, &error)) << error;
  run.history = system.history();
  run.supports_audit = system.supports_audit();
  if (run.supports_audit) {
    const core::FastCheckResult fast = system.check_fast(condition);
    run.fast_ok = fast.constraint_holds && fast.legal && fast.admissible;
  }
  return run;
}

core::Condition condition_for(const std::string& protocol) {
  return protocol == "mseq" ? core::Condition::kMSequentialConsistency
                            : core::Condition::kMLinearizability;
}

constexpr const char* kProtocols[] = {"mseq", "mlin", "locking"};

/// The tentpole invariant sweep: 50 seeds x 3 protocols x faults on/off.
/// Every trace must round-trip into a complete, well-formed forest whose
/// per-m-operation phase attribution sums exactly to the end-to-end
/// virtual latency — no rounding, no unattributed ticks.
TEST(TraceSpan, ForestWellFormedAndPhasesSumExactlyAcrossSweep) {
  for (const char* protocol : kProtocols) {
    for (const bool faults : {false, true}) {
      for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        SCOPED_TRACE(std::string(protocol) + (faults ? "/faults" : "/clean") +
                     "/seed" + std::to_string(seed));
        const TracedRun run = run_traced(sweep_config(protocol, seed, faults),
                                         condition_for(protocol));
        EXPECT_EQ(obs::truncation_reason(run.trace, /*require_header=*/true), "");
        obs::Forest forest;
        std::string error;
        ASSERT_TRUE(obs::build_forest(run.trace, &forest, &error)) << error;
        const auto mops = obs::attribute_latency(forest);
        EXPECT_EQ(mops.size(), run.history.size());
        for (const obs::MOpLatency& mop : mops) {
          EXPECT_EQ(mop.phases.total(), mop.respond - mop.invoke)
              << "m-operation " << mop.mop_id << " lost ticks in attribution";
        }
      }
    }
  }
}

/// Audit-from-trace equals the recorder: the history rebuilt from
/// op_read/op_write events and mop spans alone is equivalent (same
/// per-process subhistories, same reads-from) to the one the
/// ExecutionRecorder kept, and the ww order recovered from the span args
/// reproduces the recorder's fast-check verdict.
TEST(TraceSpan, AuditFromTraceMatchesRecorder) {
  for (const char* protocol : kProtocols) {
    for (const bool faults : {false, true}) {
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        SCOPED_TRACE(std::string(protocol) + (faults ? "/faults" : "/clean") +
                     "/seed" + std::to_string(seed));
        const api::SystemConfig config = sweep_config(protocol, seed, faults);
        const core::Condition condition = condition_for(protocol);
        const TracedRun run = run_traced(config, condition);
        const obs::RebuiltExecution rebuilt = obs::rebuild_execution(
            run.trace, config.num_processes, config.num_objects);
        ASSERT_TRUE(rebuilt.history.has_value()) << rebuilt.error;
        EXPECT_TRUE(rebuilt.history->equivalent(run.history));
        const obs::TraceAudit audit = obs::audit_from_trace(run.trace, condition);
        EXPECT_EQ(audit.mops, run.history.size());
        if (run.supports_audit) {
          ASSERT_TRUE(audit.fast.has_value()) << audit.detail;
          EXPECT_EQ(audit.ok, run.fast_ok) << audit.detail;
          EXPECT_TRUE(audit.ok) << audit.detail;
        } else {
          EXPECT_FALSE(rebuilt.has_ww);
          EXPECT_TRUE(audit.ok) << audit.detail;  // structural checks only
        }
      }
    }
  }
}

/// Satellite: the deterministic backlog probe fires at the configured
/// virtual-time interval, lands in the trace as backlog_sample events,
/// and publishes both gauges into an attached registry.
TEST(TraceSpan, BacklogProbeSamplesQueueDepthAndLinkBytes) {
  api::SystemConfig config = sweep_config("mlin", 3, /*faults=*/true);
  obs::RingBufferSink sink(std::size_t{1} << 18);
  obs::Registry registry;
  api::System system(config);
  system.set_trace_sink(&sink);
  system.set_metrics_registry(&registry);
  protocols::WorkloadParams params;
  params.ops_per_process = 4;
  system.run_workload(params);

  std::size_t samples = 0;
  for (const obs::TraceEvent& event : sink.events()) {
    if (event.type != obs::TraceEventType::kBacklogSample) continue;
    ++samples;
    EXPECT_EQ(event.time % config.backlog_sample_interval, 0u);
  }
  EXPECT_GT(samples, 0u);
  ASSERT_TRUE(registry.gauges().contains("sim_event_queue_depth"));
  ASSERT_TRUE(registry.gauges().contains("link_retransmit_buffer_bytes"));
  EXPECT_EQ(registry.gauge("sim_event_queue_depth").value(),
            static_cast<double>(system.backlog().queue_depth));
}

/// Satellite: a sink too small for the run reports drops, and the loader
/// + truncation gate refuse the trace instead of attributing a lie.
TEST(TraceSpan, TruncatedTraceIsDetected) {
  obs::RingBufferSink sink(4);  // far below the run's event volume
  api::System system(sweep_config("mlin", 5, /*faults=*/false));
  system.set_trace_sink(&sink);
  protocols::WorkloadParams params;
  params.ops_per_process = 4;
  system.run_workload(params);
  ASSERT_GT(sink.dropped(), 0u);

  std::stringstream jsonl;
  obs::write_trace_jsonl(jsonl, sink);
  obs::TraceFile trace;
  std::string error;
  ASSERT_TRUE(obs::load_trace_jsonl(jsonl, &trace, &error)) << error;
  EXPECT_NE(obs::truncation_reason(trace, /*require_header=*/false), "");

  // An event-only dump has no header: fine for casual reports, refused
  // when completeness must be proven (the audit path).
  obs::TraceFile headerless;
  std::stringstream events_only;
  obs::write_jsonl(events_only, sink.events());
  ASSERT_TRUE(obs::load_trace_jsonl(events_only, &headerless, &error)) << error;
  EXPECT_EQ(obs::truncation_reason(headerless, /*require_header=*/false), "");
  EXPECT_NE(obs::truncation_reason(headerless, /*require_header=*/true), "");
}

/// Shared golden-file check (same mechanism as bench_report_test):
/// regenerates under MOCC_UPDATE_GOLDEN=1, otherwise byte equality.
void expect_matches_golden(const std::string& rendered, const std::string& file) {
  const std::string golden_path = std::string(MOCC_GOLDEN_DIR) + "/" + file;

  if (std::getenv("MOCC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << rendered;
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " — regenerate with MOCC_UPDATE_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(rendered, golden.str())
      << "Perfetto export bytes drifted from the golden " << file
      << "; if intended, regenerate with MOCC_UPDATE_GOLDEN=1 and review "
         "the diff";
}

/// Byte-pins the Perfetto export of the first E1 smoke point's trace.
/// Catches schema drift in the span layer, the JSONL round trip, and the
/// trace_event serialization all at once.
TEST(TraceSpan, PerfettoExportMatchesGolden) {
  api::SystemConfig config;
  config.protocol = "mseq";
  config.num_processes = 2;
  config.num_objects = 16;
  config.delay = "lan";
  config.seed = 42;
  protocols::WorkloadParams params;
  params.ops_per_process = 10;
  params.update_ratio = 0.2;
  params.footprint = 2;
  obs::RingBufferSink sink(std::size_t{1} << 18);
  bench::run_experiment(config, params, /*run_audit=*/false, &sink);

  std::stringstream jsonl;
  obs::write_trace_jsonl(jsonl, sink);
  obs::TraceFile trace;
  std::string error;
  ASSERT_TRUE(obs::load_trace_jsonl(jsonl, &trace, &error)) << error;
  ASSERT_EQ(obs::truncation_reason(trace, /*require_header=*/true), "");

  std::ostringstream perfetto;
  obs::write_perfetto_json(perfetto, trace);
  expect_matches_golden(perfetto.str(), "trace_e1_smoke.json");
}

}  // namespace
}  // namespace mocc
