// Deterministic, seed-driven fault injection.
//
// The simulator models the paper's assumed network: reliable channels
// with unbounded reordering. FaultPlan breaks that assumption on
// purpose — dropping, duplicating, and delay-spiking individual links,
// partitioning node groups on a schedule, and crash-stopping actors — so
// that the reliable-delivery layer (fault/reliable_link.hpp) and the
// protocols above it can be shown to restore the paper's consistency
// guarantees over a faulty network.
//
// Determinism: the plan owns its own util::Rng, seeded independently of
// the simulator's. The simulator consults the plan once per send in send
// order, so the fault sequence is a pure function of (plan seed, send
// sequence) and a detached simulator's RNG stream is untouched — runs
// with faults disabled stay byte-identical to a build without the hook.
//
// Precedence per send: partition check first (deterministic, no rng
// draw), then the link's random drop / duplicate / delay-spike draws.
// Partitioned sends therefore cost zero rng draws, keeping the random
// fault stream aligned across runs that differ only in partition
// schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace mocc::obs {
class Registry;
}

namespace mocc::fault {

/// Per-link random fault rates. All probabilities in [0, 1].
struct LinkFaults {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;  ///< chance of one extra copy
  double delay_spike_rate = 0.0;
  sim::SimTime delay_spike = 0;  ///< extra ticks when a spike fires

  bool any() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 ||
           (delay_spike_rate > 0.0 && delay_spike > 0);
  }
};

/// Directed link override: faults for messages from `from` to `to`.
struct LinkOverride {
  sim::NodeId from = 0;
  sim::NodeId to = 0;
  LinkFaults faults;
};

/// One partition episode: during [start, heal), nodes inside `group`
/// cannot exchange messages with nodes outside it (both directions are
/// cut; delivery inside the group and inside its complement continues).
/// heal == 0 means the partition never heals.
struct PartitionEpisode {
  sim::SimTime start = 0;
  sim::SimTime heal = 0;
  std::vector<sim::NodeId> group;
};

/// One crash-stop episode: `node` is down during [at, restart) —
/// deliveries and timers dispatched to it are silently discarded by the
/// simulator. restart == 0 means crash forever. The actor's in-memory
/// state survives (checkpoint-recovery model); lost events stay lost.
struct CrashEpisode {
  sim::NodeId node = 0;
  sim::SimTime at = 0;
  sim::SimTime restart = 0;
};

struct FaultPlanConfig {
  std::uint64_t seed = 1;
  /// Applied to every directed link without an explicit override.
  LinkFaults default_link;
  std::vector<LinkOverride> link_overrides;
  std::vector<PartitionEpisode> partitions;
  std::vector<CrashEpisode> crashes;

  /// True when the plan can perturb anything; System only attaches the
  /// injector (and pays its branch) when this holds.
  bool enabled() const {
    if (default_link.any() || !partitions.empty() || !crashes.empty()) return true;
    for (const LinkOverride& link : link_overrides) {
      if (link.faults.any()) return true;
    }
    return false;
  }
};

/// What the plan actually did, for reports and assertions.
struct FaultStats {
  std::uint64_t sends_seen = 0;
  std::uint64_t drops = 0;  ///< random link drops (excludes partition drops)
  std::uint64_t duplicates = 0;
  std::uint64_t delay_spikes = 0;
  std::uint64_t partition_drops = 0;
  std::uint64_t crash_discards = 0;  ///< deliveries + timers discarded while down
};

/// Concrete sim::FaultInjector driven by a FaultPlanConfig.
class FaultPlan final : public sim::FaultInjector {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  SendAction on_send(sim::NodeId from, sim::NodeId to, std::uint32_t kind,
                     sim::SimTime now) override;
  bool is_down(sim::NodeId node, sim::SimTime now) override;

  const FaultPlanConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  /// True when `from` and `to` are separated by an active partition at
  /// `now`. Pure — no rng draw, no stats update.
  bool partitioned(sim::NodeId from, sim::NodeId to, sim::SimTime now) const;

  /// Counters "fault_drops", "fault_duplicates", "fault_delay_spikes",
  /// "fault_partition_drops", "fault_crash_discards", "fault_sends_seen"
  /// (set, not incremented — idempotent re-export).
  void export_metrics(obs::Registry& registry) const;

 private:
  const LinkFaults& faults_for(sim::NodeId from, sim::NodeId to) const;

  FaultPlanConfig config_;
  util::Rng rng_;
  FaultStats stats_;
};

}  // namespace mocc::fault
