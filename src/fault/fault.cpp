#include "fault/fault.hpp"

#include "obs/metrics.hpp"

namespace mocc::fault {

namespace {

bool contains(const std::vector<sim::NodeId>& group, sim::NodeId node) {
  for (sim::NodeId member : group) {
    if (member == node) return true;
  }
  return false;
}

bool active(sim::SimTime start, sim::SimTime end, sim::SimTime now) {
  return now >= start && (end == 0 || now < end);
}

}  // namespace

FaultPlan::FaultPlan(FaultPlanConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

const LinkFaults& FaultPlan::faults_for(sim::NodeId from, sim::NodeId to) const {
  for (const LinkOverride& link : config_.link_overrides) {
    if (link.from == from && link.to == to) return link.faults;
  }
  return config_.default_link;
}

bool FaultPlan::partitioned(sim::NodeId from, sim::NodeId to,
                            sim::SimTime now) const {
  for (const PartitionEpisode& episode : config_.partitions) {
    if (!active(episode.start, episode.heal, now)) continue;
    if (contains(episode.group, from) != contains(episode.group, to)) return true;
  }
  return false;
}

FaultPlan::SendAction FaultPlan::on_send(sim::NodeId from, sim::NodeId to,
                                         std::uint32_t kind, sim::SimTime now) {
  (void)kind;
  ++stats_.sends_seen;
  SendAction action;

  // Partition cut comes first and draws no randomness, so the random
  // fault stream stays aligned across runs that vary only the schedule.
  if (partitioned(from, to, now)) {
    ++stats_.partition_drops;
    action.drop = true;
    return action;
  }

  const LinkFaults& faults = faults_for(from, to);
  if (faults.drop_rate > 0.0 && rng_.next_double() < faults.drop_rate) {
    ++stats_.drops;
    action.drop = true;
    return action;
  }
  if (faults.duplicate_rate > 0.0 && rng_.next_double() < faults.duplicate_rate) {
    ++stats_.duplicates;
    action.duplicates = 1;
  }
  if (faults.delay_spike_rate > 0.0 && faults.delay_spike > 0 &&
      rng_.next_double() < faults.delay_spike_rate) {
    ++stats_.delay_spikes;
    action.extra_delay = faults.delay_spike;
  }
  return action;
}

bool FaultPlan::is_down(sim::NodeId node, sim::SimTime now) {
  for (const CrashEpisode& episode : config_.crashes) {
    if (episode.node == node && active(episode.at, episode.restart, now)) {
      ++stats_.crash_discards;
      return true;
    }
  }
  return false;
}

void FaultPlan::export_metrics(obs::Registry& registry) const {
  registry.counter("fault_sends_seen").set(stats_.sends_seen);
  registry.counter("fault_drops").set(stats_.drops);
  registry.counter("fault_duplicates").set(stats_.duplicates);
  registry.counter("fault_delay_spikes").set(stats_.delay_spikes);
  registry.counter("fault_partition_drops").set(stats_.partition_drops);
  registry.counter("fault_crash_discards").set(stats_.crash_discards);
}

}  // namespace mocc::fault
