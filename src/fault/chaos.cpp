#include "fault/chaos.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "api/system.hpp"
#include "obs/live.hpp"

namespace mocc::chaos {

namespace {

struct CellOutcome {
  std::size_t runs = 0;
  std::size_t passed = 0;
};

void accumulate(fault::FaultStats& into, const fault::FaultStats& from) {
  into.sends_seen += from.sends_seen;
  into.drops += from.drops;
  into.duplicates += from.duplicates;
  into.delay_spikes += from.delay_spikes;
  into.partition_drops += from.partition_drops;
  into.crash_discards += from.crash_discards;
}

void accumulate(fault::LinkStats& into, const fault::LinkStats& from) {
  into.data_sent += from.data_sent;
  into.retransmits += from.retransmits;
  into.acks_sent += from.acks_sent;
  into.delivered += from.delivered;
  into.duplicates_suppressed += from.duplicates_suppressed;
  into.exhausted += from.exhausted;
}

/// One execution. Returns an empty string on pass, a reason on failure.
std::string run_one(const ChaosParams& params, const std::string& protocol,
                    const std::string& broadcast, double drop_rate,
                    std::uint64_t seed, ChaosReport& report) {
  api::SystemConfig config;
  config.num_processes = params.num_processes;
  config.num_objects = params.num_objects;
  config.protocol = protocol;
  config.broadcast = broadcast;
  config.delay = "lan";
  config.seed = seed;
  config.reliable_link = true;
  config.faults.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  config.faults.default_link.drop_rate = drop_rate;
  config.faults.default_link.duplicate_rate = params.duplicate_rate;
  config.faults.default_link.delay_spike_rate = params.delay_spike_rate;
  config.faults.default_link.delay_spike = params.delay_spike;
  if (params.batching) {
    // Group-commit is a sequencer-only feature; coalescing and query
    // rounds apply wherever the layer below exists. Small thresholds and
    // short ages so both size and age flushes fire under faults.
    if (broadcast == "sequencer" && protocol != "locking" &&
        protocol != "aggregate") {
      config.batching.abcast_batch_max = 4;
      config.batching.abcast_batch_age = 6;
    }
    config.batching.link_batch_items = 3;
    config.batching.link_batch_age = 3;
    if (protocol == "mlin" || protocol == "mlin-narrow") {
      config.batching.batch_queries = true;
    }
  }
  if (params.partition && params.num_processes >= 2) {
    // One partition/heal cycle isolating node 0. The reliable link's
    // backoff horizon (sum of the retransmit schedule) comfortably
    // exceeds the outage, so healed traffic recovers.
    config.faults.partitions.push_back(
        {params.partition_start, params.partition_heal, {0}});
  }

  const bool exact = protocol == "locking" || protocol == "aggregate";
  // Apply the requested mutation only to cells it is defined for
  // (System asserts otherwise); incompatible cells run unmutated.
  if (!params.mutation.empty()) {
    const bool mutated =
        (params.mutation == "seq-swap" && !exact &&
         broadcast == "sequencer" && config.batching.abcast_batch_max <= 1) ||
        (params.mutation == "skip-delivery" && !exact &&
         params.num_processes >= 2) ||
        (params.mutation == "early-release" && exact);
    if (mutated) config.mutation = params.mutation;
  }
  protocols::WorkloadParams workload;
  // The exponential checker is the only oracle for the locking baseline:
  // keep those histories small.
  workload.ops_per_process =
      exact ? std::min<std::size_t>(params.ops_per_process, 4)
            : params.ops_per_process;
  workload.update_ratio = 0.5;
  workload.footprint = 2;

  api::System system(config);
  std::optional<obs::StreamingAuditor> auditor;
  if (params.stream) {
    obs::StreamingAuditorOptions live_options;
    live_options.condition = protocol == "mseq"
                                 ? core::Condition::kMSequentialConsistency
                                 : core::Condition::kMLinearizability;
    if (params.stream_window != 0) live_options.window = params.stream_window;
    auditor.emplace(live_options);
    auditor->set_violation_callback(
        [&system](const obs::StreamingReport&) { system.request_stop(); });
    system.set_trace_sink(&*auditor);
  }
  const protocols::WorkloadReport run = system.run_workload(workload);

  if (const fault::FaultPlan* plan = system.fault_plan()) {
    accumulate(report.faults, plan->stats());
  }
  accumulate(report.link, system.link_stats());

  const std::size_t expected = workload.ops_per_process * params.num_processes;
  const std::size_t responded = run.queries + run.updates;
  if (params.stream) {
    // The streaming verdict goes first: a mid-run abort also leaves the
    // workload incomplete, and the violation is the interesting reason.
    const obs::StreamingReport& live = auditor->finish();
    report.stream_windows += live.windows;
    if (live.verdict == obs::StreamVerdict::kViolation) {
      std::ostringstream reason;
      reason << "streaming auditor violation";
      if (responded < expected) {
        ++report.mid_run_aborts;
        reason << " mid-run (run stopped after " << responded << "/"
               << expected << " m-operations)";
      }
      reason << ": " << live.detail;
      return reason.str();
    }
  }
  if (responded != expected) {
    std::ostringstream reason;
    reason << "incomplete workload: " << responded << "/" << expected
           << " m-operations responded";
    return reason.str();
  }
  if (!system.link_failures().empty()) {
    std::ostringstream reason;
    reason << system.link_failures().size() << " reliable-link sends exhausted "
           << "their retry budget";
    return reason.str();
  }

  std::string posthoc;
  if (system.supports_audit()) {
    const core::AuditReport audit = system.audit();
    if (!audit.ok) {
      posthoc = "audit violation";
      if (!audit.violations.empty()) posthoc += ": " + audit.violations.front();
    }
  } else {
    core::AdmissibilityOptions options;
    options.max_states = 5'000'000;
    const core::AdmissibilityResult result =
        system.check_exact(core::Condition::kMLinearizability, options);
    if (!result.completed) {
      posthoc = "admissibility search exceeded the state budget";
    } else if (!result.admissible) {
      posthoc = "history not m-linearizable";
    }
  }
  if (params.stream) {
    // Live/post-hoc cross-check: the drops-to-inconclusive contract
    // means the auditor never silently passes a run it couldn't see all
    // of, and a clean live verdict must agree with the offline oracle.
    const obs::StreamingReport& live = auditor->report();
    if (live.verdict == obs::StreamVerdict::kInconclusive) {
      return "streaming verdict inconclusive: " + live.detail;
    }
    if (!posthoc.empty()) {
      // Not necessarily an auditor bug: the P5.x audit also enforces
      // protocol-internal timestamp obligations that are invisible at
      // the history level the streaming conditions check.
      return posthoc + " [not caught live: streaming verdict ok]";
    }
  }
  return posthoc;
}

}  // namespace

ChaosReport run_chaos(const ChaosParams& params, std::ostream* progress) {
  ChaosReport report;
  for (const std::string& protocol : params.protocols) {
    const bool uses_abcast = protocol != "locking" && protocol != "aggregate";
    for (const double drop_rate : params.drop_rates) {
      CellOutcome cell;
      for (std::size_t i = 0; i < params.seeds_per_cell; ++i) {
        const std::uint64_t seed = params.base_seed + i;
        // Alternate broadcast algorithms so both see faults.
        const std::string broadcast =
            uses_abcast && (i % 2 == 1) ? "isis" : "sequencer";
        const std::string reason =
            run_one(params, protocol, broadcast, drop_rate, seed, report);
        ++report.runs;
        ++cell.runs;
        if (reason.empty()) {
          ++report.passed;
          ++cell.passed;
        } else {
          report.failures.push_back(
              {protocol, uses_abcast ? broadcast : "", drop_rate, seed, reason});
        }
      }
      if (progress != nullptr) {
        *progress << "chaos " << protocol << " drop=" << drop_rate << " seeds="
                  << cell.runs << " passed=" << cell.passed << "\n";
      }
    }
  }
  return report;
}

ChaosParams smoke_params() {
  ChaosParams params;
  params.protocols = {"mseq", "mlin", "locking"};
  params.drop_rates = {0.10};
  params.seeds_per_cell = 4;
  params.ops_per_process = 6;
  return params;
}

void write_report(std::ostream& out, const ChaosParams& params,
                  const ChaosReport& report) {
  out << "chaos sweep" << (params.batching ? " (batching on)" : "")
      << (params.stream ? " (streaming audit)" : "") << ": " << report.runs
      << " executions, " << report.passed << " passed, "
      << report.failures.size() << " failed\n";
  if (params.stream) {
    out << "  stream: windows=" << report.stream_windows
        << " mid_run_aborts=" << report.mid_run_aborts << "\n";
  }
  out << "  faults: drops=" << report.faults.drops
      << " duplicates=" << report.faults.duplicates
      << " delay_spikes=" << report.faults.delay_spikes
      << " partition_drops=" << report.faults.partition_drops << "\n";
  out << "  link: data=" << report.link.data_sent
      << " retransmits=" << report.link.retransmits
      << " acks=" << report.link.acks_sent
      << " dedup=" << report.link.duplicates_suppressed
      << " exhausted=" << report.link.exhausted << "\n";
  for (const ChaosFailure& failure : report.failures) {
    out << "  FAIL " << failure.protocol;
    if (!failure.broadcast.empty()) out << "/" << failure.broadcast;
    out << " drop=" << failure.drop_rate << " seed=" << failure.seed << ": "
        << failure.reason << "\n";
  }
}

}  // namespace mocc::chaos
