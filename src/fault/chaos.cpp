#include "fault/chaos.hpp"

#include <algorithm>
#include <sstream>

#include "api/system.hpp"

namespace mocc::chaos {

namespace {

struct CellOutcome {
  std::size_t runs = 0;
  std::size_t passed = 0;
};

void accumulate(fault::FaultStats& into, const fault::FaultStats& from) {
  into.sends_seen += from.sends_seen;
  into.drops += from.drops;
  into.duplicates += from.duplicates;
  into.delay_spikes += from.delay_spikes;
  into.partition_drops += from.partition_drops;
  into.crash_discards += from.crash_discards;
}

void accumulate(fault::LinkStats& into, const fault::LinkStats& from) {
  into.data_sent += from.data_sent;
  into.retransmits += from.retransmits;
  into.acks_sent += from.acks_sent;
  into.delivered += from.delivered;
  into.duplicates_suppressed += from.duplicates_suppressed;
  into.exhausted += from.exhausted;
}

/// One execution. Returns an empty string on pass, a reason on failure.
std::string run_one(const ChaosParams& params, const std::string& protocol,
                    const std::string& broadcast, double drop_rate,
                    std::uint64_t seed, ChaosReport& report) {
  api::SystemConfig config;
  config.num_processes = params.num_processes;
  config.num_objects = params.num_objects;
  config.protocol = protocol;
  config.broadcast = broadcast;
  config.delay = "lan";
  config.seed = seed;
  config.reliable_link = true;
  config.faults.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  config.faults.default_link.drop_rate = drop_rate;
  config.faults.default_link.duplicate_rate = params.duplicate_rate;
  config.faults.default_link.delay_spike_rate = params.delay_spike_rate;
  config.faults.default_link.delay_spike = params.delay_spike;
  if (params.batching) {
    // Group-commit is a sequencer-only feature; coalescing and query
    // rounds apply wherever the layer below exists. Small thresholds and
    // short ages so both size and age flushes fire under faults.
    if (broadcast == "sequencer" && protocol != "locking" &&
        protocol != "aggregate") {
      config.batching.abcast_batch_max = 4;
      config.batching.abcast_batch_age = 6;
    }
    config.batching.link_batch_items = 3;
    config.batching.link_batch_age = 3;
    if (protocol == "mlin" || protocol == "mlin-narrow") {
      config.batching.batch_queries = true;
    }
  }
  if (params.partition && params.num_processes >= 2) {
    // One partition/heal cycle isolating node 0. The reliable link's
    // backoff horizon (sum of the retransmit schedule) comfortably
    // exceeds the outage, so healed traffic recovers.
    config.faults.partitions.push_back(
        {params.partition_start, params.partition_heal, {0}});
  }

  const bool exact = protocol == "locking" || protocol == "aggregate";
  protocols::WorkloadParams workload;
  // The exponential checker is the only oracle for the locking baseline:
  // keep those histories small.
  workload.ops_per_process =
      exact ? std::min<std::size_t>(params.ops_per_process, 4)
            : params.ops_per_process;
  workload.update_ratio = 0.5;
  workload.footprint = 2;

  api::System system(config);
  const protocols::WorkloadReport run = system.run_workload(workload);

  if (const fault::FaultPlan* plan = system.fault_plan()) {
    accumulate(report.faults, plan->stats());
  }
  accumulate(report.link, system.link_stats());

  const std::size_t expected = workload.ops_per_process * params.num_processes;
  if (run.queries + run.updates != expected) {
    std::ostringstream reason;
    reason << "incomplete workload: " << (run.queries + run.updates) << "/"
           << expected << " m-operations responded";
    return reason.str();
  }
  if (!system.link_failures().empty()) {
    std::ostringstream reason;
    reason << system.link_failures().size() << " reliable-link sends exhausted "
           << "their retry budget";
    return reason.str();
  }

  if (system.supports_audit()) {
    const core::AuditReport audit = system.audit();
    if (!audit.ok) {
      std::string reason = "audit violation";
      if (!audit.violations.empty()) reason += ": " + audit.violations.front();
      return reason;
    }
    return {};
  }
  core::AdmissibilityOptions options;
  options.max_states = 5'000'000;
  const core::AdmissibilityResult result =
      system.check_exact(core::Condition::kMLinearizability, options);
  if (!result.completed) return "admissibility search exceeded the state budget";
  if (!result.admissible) return "history not m-linearizable";
  return {};
}

}  // namespace

ChaosReport run_chaos(const ChaosParams& params, std::ostream* progress) {
  ChaosReport report;
  for (const std::string& protocol : params.protocols) {
    const bool uses_abcast = protocol != "locking" && protocol != "aggregate";
    for (const double drop_rate : params.drop_rates) {
      CellOutcome cell;
      for (std::size_t i = 0; i < params.seeds_per_cell; ++i) {
        const std::uint64_t seed = params.base_seed + i;
        // Alternate broadcast algorithms so both see faults.
        const std::string broadcast =
            uses_abcast && (i % 2 == 1) ? "isis" : "sequencer";
        const std::string reason =
            run_one(params, protocol, broadcast, drop_rate, seed, report);
        ++report.runs;
        ++cell.runs;
        if (reason.empty()) {
          ++report.passed;
          ++cell.passed;
        } else {
          report.failures.push_back(
              {protocol, uses_abcast ? broadcast : "", drop_rate, seed, reason});
        }
      }
      if (progress != nullptr) {
        *progress << "chaos " << protocol << " drop=" << drop_rate << " seeds="
                  << cell.runs << " passed=" << cell.passed << "\n";
      }
    }
  }
  return report;
}

ChaosParams smoke_params() {
  ChaosParams params;
  params.protocols = {"mseq", "mlin", "locking"};
  params.drop_rates = {0.10};
  params.seeds_per_cell = 4;
  params.ops_per_process = 6;
  return params;
}

void write_report(std::ostream& out, const ChaosParams& params,
                  const ChaosReport& report) {
  out << "chaos sweep" << (params.batching ? " (batching on)" : "") << ": "
      << report.runs << " executions, " << report.passed << " passed, "
      << report.failures.size() << " failed\n";
  out << "  faults: drops=" << report.faults.drops
      << " duplicates=" << report.faults.duplicates
      << " delay_spikes=" << report.faults.delay_spikes
      << " partition_drops=" << report.faults.partition_drops << "\n";
  out << "  link: data=" << report.link.data_sent
      << " retransmits=" << report.link.retransmits
      << " acks=" << report.link.acks_sent
      << " dedup=" << report.link.duplicates_suppressed
      << " exhausted=" << report.link.exhausted << "\n";
  for (const ChaosFailure& failure : report.failures) {
    out << "  FAIL " << failure.protocol;
    if (!failure.broadcast.empty()) out << "/" << failure.broadcast;
    out << " drop=" << failure.drop_rate << " seed=" << failure.seed << ": "
        << failure.reason << "\n";
  }
}

}  // namespace mocc::chaos
