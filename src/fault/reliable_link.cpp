#include "fault/reliable_link.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mocc::fault {

namespace {

/// kLinkData frame: u64 seq | u32 inner kind | raw inner payload.
constexpr std::size_t kDataHeaderBytes = 12;

std::vector<std::uint8_t> encode_data(std::uint64_t seq, std::uint32_t kind,
                                      const std::vector<std::uint8_t>& payload) {
  util::ByteWriter writer;
  writer.put_u64(seq);
  writer.put_u32(kind);
  std::vector<std::uint8_t> frame = writer.take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace

ReliableLink::ReliableLink(Options options) : options_(options) {
  MOCC_ASSERT(options_.initial_rto >= 1);
  MOCC_ASSERT(options_.backoff >= 1.0);
  MOCC_ASSERT(options_.max_rto >= options_.initial_rto);
}

void ReliableLink::bump(std::uint64_t LinkStats::* field) {
  ++(stats_.*field);
  if (shared_ != nullptr) ++(shared_->*field);
}

void ReliableLink::send(sim::Context& ctx, sim::NodeId to, std::uint32_t kind,
                        std::vector<std::uint8_t> payload) {
  MOCC_ASSERT_MSG(to != ctx.self(), "reliable link never loops back to self");
  const std::uint64_t seq = ++next_seq_[to];
  const std::uint64_t token = next_token_++;

  Pending pending;
  pending.to = to;
  pending.seq = seq;
  pending.kind = kind;
  pending.frame = encode_data(seq, kind, payload);
  pending.rto = options_.initial_rto;
  pending.attempts = 1;
  pending.trace = ctx.trace_context();
  pending.last_sent = ctx.now();

  ctx.send(to, kLinkData, pending.frame);
  ctx.set_timer(pending.rto, kLinkTimerTag | token);
  token_by_dest_[{to, seq}] = token;
  buffer_bytes_ += pending.frame.size();
  pending_.emplace(token, std::move(pending));
  bump(&LinkStats::data_sent);
}

bool ReliableLink::on_message(sim::Context& ctx, const sim::Message& message) {
  if (message.kind == kLinkAck) {
    util::ByteReader reader(message.payload);
    const std::uint64_t seq = reader.get_u64();
    const auto key = std::make_pair(message.from, seq);
    auto token_it = token_by_dest_.find(key);
    if (token_it != token_by_dest_.end()) {
      const auto pending_it = pending_.find(token_it->second);
      if (pending_it != pending_.end()) {
        buffer_bytes_ -= pending_it->second.frame.size();
        pending_.erase(pending_it);
      }
      token_by_dest_.erase(token_it);
    }
    // Acks for already-settled seqs (duplicated ack, or ack after
    // exhaustion) are ignored; retransmit timers for erased entries
    // no-op when they fire.
    return true;
  }
  if (message.kind != kLinkData) return false;

  util::ByteReader reader(message.payload);
  const std::uint64_t seq = reader.get_u64();
  const std::uint32_t inner_kind = reader.get_u32();

  // Ack every data frame, duplicates included: a duplicate usually means
  // the previous ack was lost.
  util::ByteWriter ack;
  ack.put_u64(seq);
  ctx.send(message.from, kLinkAck, ack.take());
  bump(&LinkStats::acks_sent);

  Inbound& inbound = inbound_[message.from];
  const bool duplicate =
      seq <= inbound.floor || inbound.above.count(seq) != 0;
  if (duplicate) {
    bump(&LinkStats::duplicates_suppressed);
    if (auto* sink = ctx.trace_sink()) {
      sink->on_event({obs::TraceEventType::kLinkDuplicate, ctx.now(), ctx.self(),
                      message.from, inner_kind, seq, 0});
    }
    return true;
  }
  inbound.above.insert(seq);
  while (inbound.above.erase(inbound.floor + 1) != 0) ++inbound.floor;

  bump(&LinkStats::delivered);
  if (deliver_) {
    sim::Message inner;
    inner.from = message.from;
    inner.to = message.to;
    inner.kind = inner_kind;
    inner.payload.assign(message.payload.begin() + kDataHeaderBytes,
                         message.payload.end());
    deliver_(ctx, inner);
  }
  return true;
}

bool ReliableLink::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  if ((timer_id & kLinkTimerTag) == 0) return false;
  const std::uint64_t token = timer_id & ~kLinkTimerTag;
  auto it = pending_.find(token);
  if (it == pending_.end()) return true;  // acked since; stale timer

  Pending& pending = it->second;
  if (pending.attempts > options_.max_retransmits) {
    bump(&LinkStats::exhausted);
    if (auto* sink = ctx.trace_sink()) {
      sink->on_event({obs::TraceEventType::kLinkExhausted, ctx.now(), ctx.self(),
                      pending.to, pending.kind, pending.seq, pending.attempts});
    }
    failed_.push_back({pending.to, pending.seq, pending.kind, pending.attempts});
    token_by_dest_.erase({pending.to, pending.seq});
    buffer_bytes_ -= pending.frame.size();
    pending_.erase(it);
    return true;
  }

  ++pending.attempts;
  bump(&LinkStats::retransmits);
  if (auto* sink = ctx.trace_sink()) {
    sink->on_event({obs::TraceEventType::kLinkRetransmit, ctx.now(), ctx.self(),
                    pending.to, pending.kind, pending.seq, pending.attempts});
    if (pending.trace.valid()) {
      // One retransmit span per resend, chained: each parents at the
      // previous transmission's context, and the resent frame rides the
      // new span so its net_hop lands underneath it.
      obs::Span rt;
      rt.type = obs::SpanType::kRetransmit;
      rt.trace_id = pending.trace.trace_id;
      rt.span_id = ctx.new_span_id();
      rt.parent_span = pending.trace.span_id;
      rt.begin = pending.last_sent;
      rt.end = ctx.now();
      rt.node = ctx.self();
      rt.peer = pending.to;
      rt.kind = pending.kind;
      rt.id = pending.seq;
      rt.arg = pending.attempts;
      sink->on_span(rt);
      pending.trace.span_id = rt.span_id;
    }
  }
  pending.last_sent = ctx.now();
  ctx.set_trace_context(pending.trace);
  ctx.send(pending.to, kLinkData, pending.frame);
  const double next_rto = static_cast<double>(pending.rto) * options_.backoff;
  pending.rto = next_rto >= static_cast<double>(options_.max_rto)
                    ? options_.max_rto
                    : static_cast<sim::SimTime>(next_rto);
  ctx.set_timer(pending.rto, kLinkTimerTag | token);
  return true;
}

}  // namespace mocc::fault
