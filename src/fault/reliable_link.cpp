#include "fault/reliable_link.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mocc::fault {

namespace {

/// kLinkData frame: u64 seq | u32 inner kind | raw inner payload.
constexpr std::size_t kDataHeaderBytes = 12;

std::vector<std::uint8_t> encode_data(std::uint64_t seq, std::uint32_t kind,
                                      const std::vector<std::uint8_t>& payload) {
  util::ByteWriter writer;
  writer.put_u64(seq);
  writer.put_u32(kind);
  std::vector<std::uint8_t> frame = writer.take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace

ReliableLink::ReliableLink(Options options) : options_(options) {
  MOCC_ASSERT(options_.initial_rto >= 1);
  MOCC_ASSERT(options_.backoff >= 1.0);
  MOCC_ASSERT(options_.max_rto >= options_.initial_rto);
  MOCC_ASSERT_MSG(options_.coalesce_max_items >= 1,
                  "coalesce_max_items 0 makes no frames");
  MOCC_ASSERT_MSG(
      options_.coalesce_max_items == 1 || options_.coalesce_max_age >= 1,
      "coalescing needs an age trigger to keep partial queues live");
}

void ReliableLink::bump(std::uint64_t LinkStats::* field) {
  ++(stats_.*field);
  if (shared_ != nullptr) ++(shared_->*field);
}

void ReliableLink::send(sim::Context& ctx, sim::NodeId to, std::uint32_t kind,
                        std::vector<std::uint8_t> payload) {
  MOCC_ASSERT_MSG(to != ctx.self(), "reliable link never loops back to self");
  if (options_.coalesce_max_items > 1) {
    // Coalescing path: park the message; a size, byte, or age trigger
    // frames the whole queue under one link seq.
    CoalesceQueue& queue = coalesce_[to];
    const bool was_empty = queue.items.empty();
    queue.payload_bytes += payload.size();
    queue.items.push_back(QueuedItem{kind, std::move(payload), ctx.trace_context()});
    const bool size_hit =
        queue.items.size() >= options_.coalesce_max_items ||
        (options_.coalesce_max_bytes != 0 &&
         queue.payload_bytes >= options_.coalesce_max_bytes);
    if (size_hit) {
      flush_queue(ctx, to, /*trigger=*/0);
    } else if (was_empty) {
      queue.deadline = ctx.now() + options_.coalesce_max_age;
      ctx.set_timer(options_.coalesce_max_age,
                    kLinkTimerTag | kLinkFlushTimerBit | to);
    }
    return;
  }
  const std::uint64_t seq = ++next_seq_[to];
  transmit_frame(ctx, to, kLinkData, kind, seq, encode_data(seq, kind, payload));
}

void ReliableLink::transmit_frame(sim::Context& ctx, sim::NodeId to,
                                  std::uint32_t wire_kind, std::uint32_t inner_kind,
                                  std::uint64_t seq,
                                  std::vector<std::uint8_t> frame) {
  const std::uint64_t token = next_token_++;

  Pending pending;
  pending.to = to;
  pending.seq = seq;
  pending.kind = inner_kind;
  pending.wire_kind = wire_kind;
  pending.frame = std::move(frame);
  pending.rto = options_.initial_rto;
  pending.attempts = 1;
  pending.trace = ctx.trace_context();
  pending.last_sent = ctx.now();

  ctx.send(to, wire_kind, pending.frame);
  ctx.set_timer(pending.rto, kLinkTimerTag | token);
  token_by_dest_[{to, seq}] = token;
  buffer_bytes_ += pending.frame.size();
  pending_.emplace(token, std::move(pending));
  bump(&LinkStats::data_sent);
}

void ReliableLink::flush_queue(sim::Context& ctx, sim::NodeId to,
                               std::uint32_t trigger) {
  const auto queue_it = coalesce_.find(to);
  if (queue_it == coalesce_.end() || queue_it->second.items.empty()) return;
  // Swap out before transmitting: upper-layer reactions must enqueue
  // into a fresh queue, not the one being framed.
  CoalesceQueue queue;
  std::swap(queue, queue_it->second);

  const std::uint64_t seq = ++next_seq_[to];
  util::ByteWriter out;
  out.put_u64(seq);
  out.put_u32(static_cast<std::uint32_t>(queue.items.size()));
  for (const QueuedItem& item : queue.items) {
    out.put_u32(item.kind);
    out.put_string(std::string(item.payload.begin(), item.payload.end()));
  }
  std::vector<std::uint8_t> frame = out.take();
  if (auto* sink = ctx.trace_sink()) {
    sink->on_event({obs::TraceEventType::kBatchFlush, ctx.now(), ctx.self(), to,
                    trigger, frame.size(), queue.items.size()});
  }
  // The frame rides the first queued item's context (the batch carrier;
  // docs/batching.md) — restore the caller's context afterwards.
  const obs::SpanContext saved = ctx.trace_context();
  ctx.set_trace_context(queue.items.front().trace);
  transmit_frame(ctx, to, kLinkBatchData, kLinkBatchData, seq, std::move(frame));
  ctx.set_trace_context(saved);
}

void ReliableLink::flush(sim::Context& ctx, sim::NodeId to) {
  flush_queue(ctx, to, /*trigger=*/2);
}

void ReliableLink::flush_all(sim::Context& ctx) {
  for (auto& [to, queue] : coalesce_) {
    (void)queue;
    flush_queue(ctx, to, /*trigger=*/2);
  }
}

std::size_t ReliableLink::queued(sim::NodeId to) const {
  const auto it = coalesce_.find(to);
  return it == coalesce_.end() ? 0 : it->second.items.size();
}

bool ReliableLink::on_message(sim::Context& ctx, const sim::Message& message) {
  if (message.kind == kLinkAck) {
    util::ByteReader reader(message.payload);
    const std::uint64_t seq = reader.get_u64();
    const auto key = std::make_pair(message.from, seq);
    auto token_it = token_by_dest_.find(key);
    if (token_it != token_by_dest_.end()) {
      const auto pending_it = pending_.find(token_it->second);
      if (pending_it != pending_.end()) {
        buffer_bytes_ -= pending_it->second.frame.size();
        pending_.erase(pending_it);
      }
      token_by_dest_.erase(token_it);
    }
    // Acks for already-settled seqs (duplicated ack, or ack after
    // exhaustion) are ignored; retransmit timers for erased entries
    // no-op when they fire.
    return true;
  }
  if (message.kind == kLinkBatchData) {
    util::ByteReader reader(message.payload);
    const std::uint64_t seq = reader.get_u64();
    const std::uint32_t count = reader.get_u32();

    util::ByteWriter ack;
    ack.put_u64(seq);
    ctx.send(message.from, kLinkAck, ack.take());
    bump(&LinkStats::acks_sent);

    Inbound& inbound = inbound_[message.from];
    const bool duplicate =
        seq <= inbound.floor || inbound.above.count(seq) != 0;
    if (duplicate) {
      bump(&LinkStats::duplicates_suppressed);
      if (auto* sink = ctx.trace_sink()) {
        sink->on_event({obs::TraceEventType::kLinkDuplicate, ctx.now(),
                        ctx.self(), message.from, kLinkBatchData, seq, count});
      }
      return true;
    }
    inbound.above.insert(seq);
    while (inbound.above.erase(inbound.floor + 1) != 0) ++inbound.floor;

    bump(&LinkStats::delivered);
    // Unpack in enqueue order: within one frame, per-sender FIFO is the
    // sender's queue order by construction.
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t inner_kind = reader.get_u32();
      const std::string payload = reader.get_string();
      if (deliver_) {
        sim::Message inner;
        inner.from = message.from;
        inner.to = message.to;
        inner.kind = inner_kind;
        inner.payload.assign(payload.begin(), payload.end());
        deliver_(ctx, inner);
      }
    }
    return true;
  }
  if (message.kind != kLinkData) return false;

  util::ByteReader reader(message.payload);
  const std::uint64_t seq = reader.get_u64();
  const std::uint32_t inner_kind = reader.get_u32();

  // Ack every data frame, duplicates included: a duplicate usually means
  // the previous ack was lost.
  util::ByteWriter ack;
  ack.put_u64(seq);
  ctx.send(message.from, kLinkAck, ack.take());
  bump(&LinkStats::acks_sent);

  Inbound& inbound = inbound_[message.from];
  const bool duplicate =
      seq <= inbound.floor || inbound.above.count(seq) != 0;
  if (duplicate) {
    bump(&LinkStats::duplicates_suppressed);
    if (auto* sink = ctx.trace_sink()) {
      sink->on_event({obs::TraceEventType::kLinkDuplicate, ctx.now(), ctx.self(),
                      message.from, inner_kind, seq, 0});
    }
    return true;
  }
  inbound.above.insert(seq);
  while (inbound.above.erase(inbound.floor + 1) != 0) ++inbound.floor;

  bump(&LinkStats::delivered);
  if (deliver_) {
    sim::Message inner;
    inner.from = message.from;
    inner.to = message.to;
    inner.kind = inner_kind;
    inner.payload.assign(message.payload.begin() + kDataHeaderBytes,
                         message.payload.end());
    deliver_(ctx, inner);
  }
  return true;
}

bool ReliableLink::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  if ((timer_id & kLinkTimerTag) == 0) return false;
  if ((timer_id & kLinkFlushTimerBit) != 0) {
    const auto to = static_cast<sim::NodeId>(
        timer_id & ~(kLinkTimerTag | kLinkFlushTimerBit));
    const auto it = coalesce_.find(to);
    // One timer per empty->nonempty transition; a size flush in between
    // makes this firing stale (the live queue armed a later deadline).
    if (it != coalesce_.end() && !it->second.items.empty() &&
        ctx.now() >= it->second.deadline) {
      flush_queue(ctx, to, /*trigger=*/1);
    }
    return true;
  }
  const std::uint64_t token = timer_id & ~kLinkTimerTag;
  auto it = pending_.find(token);
  if (it == pending_.end()) return true;  // acked since; stale timer

  Pending& pending = it->second;
  if (pending.attempts > options_.max_retransmits) {
    bump(&LinkStats::exhausted);
    if (auto* sink = ctx.trace_sink()) {
      sink->on_event({obs::TraceEventType::kLinkExhausted, ctx.now(), ctx.self(),
                      pending.to, pending.kind, pending.seq, pending.attempts});
    }
    failed_.push_back({pending.to, pending.seq, pending.kind, pending.attempts});
    token_by_dest_.erase({pending.to, pending.seq});
    buffer_bytes_ -= pending.frame.size();
    pending_.erase(it);
    return true;
  }

  ++pending.attempts;
  bump(&LinkStats::retransmits);
  if (auto* sink = ctx.trace_sink()) {
    sink->on_event({obs::TraceEventType::kLinkRetransmit, ctx.now(), ctx.self(),
                    pending.to, pending.kind, pending.seq, pending.attempts});
    if (pending.trace.valid()) {
      // One retransmit span per resend, chained: each parents at the
      // previous transmission's context, and the resent frame rides the
      // new span so its net_hop lands underneath it.
      obs::Span rt;
      rt.type = obs::SpanType::kRetransmit;
      rt.trace_id = pending.trace.trace_id;
      rt.span_id = ctx.new_span_id();
      rt.parent_span = pending.trace.span_id;
      rt.begin = pending.last_sent;
      rt.end = ctx.now();
      rt.node = ctx.self();
      rt.peer = pending.to;
      rt.kind = pending.kind;
      rt.id = pending.seq;
      rt.arg = pending.attempts;
      sink->on_span(rt);
      pending.trace.span_id = rt.span_id;
    }
  }
  pending.last_sent = ctx.now();
  ctx.set_trace_context(pending.trace);
  ctx.send(pending.to, pending.wire_kind, pending.frame);
  const double next_rto = static_cast<double>(pending.rto) * options_.backoff;
  pending.rto = next_rto >= static_cast<double>(options_.max_rto)
                    ? options_.max_rto
                    : static_cast<sim::SimTime>(next_rto);
  ctx.set_timer(pending.rto, kLinkTimerTag | token);
  return true;
}

}  // namespace mocc::fault
