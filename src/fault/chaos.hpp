// Chaos harness: sweep fault rates across seeds, run every replica
// protocol over the faulty network with the reliable link enabled, and
// feed each execution through the core checkers.
//
// This is the discharge obligation for the reliable-channel assumption:
// the §5 protocols were proven over reliable channels; the harness shows
// the stack (protocol over ReliableLink over a dropping / duplicating /
// partitioning network) still produces executions the paper's
// consistency conditions accept.
//
// Verification per execution:
//   - mseq / mlin variants: the P5.x audit (core/audit) — legality,
//     ~ww admissibility, and the protocol-specific timestamp obligations.
//   - locking: the exact admissibility checker (core/admissibility)
//     against m-linearizability — the baseline records no version
//     vectors, so the generic exponential oracle is the only one that
//     applies (workloads are kept small to keep it tractable).
//   - every protocol: no reliable-link retry budget exhaustion and no
//     operation left incomplete.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/reliable_link.hpp"

namespace mocc::chaos {

struct ChaosParams {
  /// Protocols to sweep. mseq/mlin alternate the broadcast algorithm by
  /// seed parity so both sequencer and isis see faults.
  std::vector<std::string> protocols = {"mseq", "mlin", "locking"};
  /// Drop rates swept per protocol (duplicate rate rides along).
  std::vector<double> drop_rates = {0.02, 0.05, 0.10};
  double duplicate_rate = 0.05;
  double delay_spike_rate = 0.02;
  std::uint64_t delay_spike = 50;
  /// Executions per (protocol, drop rate) cell.
  std::size_t seeds_per_cell = 100;
  std::uint64_t base_seed = 1;
  /// One partition/heal cycle per execution: node 0 isolated during
  /// [partition_start, partition_heal).
  bool partition = true;
  std::uint64_t partition_start = 300;
  std::uint64_t partition_heal = 900;

  /// Run the sweep with the hot-path batching layer on: sequencer
  /// group-commit (sequencer-broadcast cells only), link coalescing, and
  /// mlin query rounds. Exercises batch framing against drops,
  /// duplicates, and partitions with the same checkers.
  bool batching = false;

  std::size_t num_processes = 3;
  std::size_t num_objects = 6;
  /// m-operations per process. Locking runs get min(this, 4) to keep the
  /// exponential checker tractable.
  std::size_t ops_per_process = 8;

  /// Attach a StreamingAuditor (obs/live.hpp) as each run's trace sink.
  /// A window violation stops the simulator mid-run and fails the cell;
  /// otherwise the live verdict is cross-checked against the post-hoc
  /// oracle, and any disagreement (including a live `inconclusive`) is a
  /// failure.
  bool stream = false;
  /// Completed m-operations per streaming window (0 = auditor default).
  std::size_t stream_window = 0;
  /// Deliberate protocol mutation (SystemConfig::mutation values) applied
  /// to every run whose protocol/broadcast the mutation is defined for;
  /// incompatible cells run unmutated. With `stream`, a mutated run that
  /// the auditor misses mid-run still fails via the post-hoc cross-check.
  std::string mutation;
};

/// One failed execution, with enough to reproduce it.
struct ChaosFailure {
  std::string protocol;
  std::string broadcast;
  double drop_rate = 0.0;
  std::uint64_t seed = 0;
  std::string reason;
};

struct ChaosReport {
  std::size_t runs = 0;
  std::size_t passed = 0;
  std::vector<ChaosFailure> failures;
  /// Aggregates across every execution.
  fault::FaultStats faults;
  fault::LinkStats link;
  /// Streaming-mode aggregates (zero unless ChaosParams::stream).
  std::size_t stream_windows = 0;
  /// Runs the streaming auditor aborted before workload completion.
  std::size_t mid_run_aborts = 0;

  bool ok() const { return failures.empty() && runs > 0; }
};

/// Runs the sweep; `progress` (may be null) receives one line per cell.
ChaosReport run_chaos(const ChaosParams& params, std::ostream* progress);

/// Smoke configuration for CI: 2 protocols x 1 rate x few seeds.
ChaosParams smoke_params();

void write_report(std::ostream& out, const ChaosParams& params,
                  const ChaosReport& report);

}  // namespace mocc::chaos
