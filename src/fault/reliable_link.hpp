// Reliable point-to-point delivery over a lossy network.
//
// The paper's protocols assume reliable channels (§5); the fault layer
// deliberately breaks that assumption. ReliableLink restores it with the
// classic positive-ack scheme: every data message carries a per-
// destination sequence number, the receiver acks every data frame it
// sees (including duplicates — acks are how the sender learns to stop),
// and the sender retransmits on a timer with exponential backoff until
// acked or a bounded retry budget runs out.
//
// Guarantees over a network that drops and duplicates (but does not
// forge): every message sent is delivered to the destination's upper
// layer EXACTLY ONCE, provided the retry budget suffices — at drop rate
// p the residual loss probability is p^(max_retransmits+1), which the
// default budget of 16 makes negligible for the fault rates the chaos
// harness sweeps. Exhausted sends are reported, never silent.
//
// The link does NOT reorder: frames deliver upward in network-arrival
// order, preserving the simulator's unordered-channel model. Ordering
// remains the job of the layers above (atomic broadcast / protocol
// logic), exactly as in the fault-free stack.
//
// Wire format (kinds 50 and 51, reserved range [50, 99]):
//   kLinkData: u64 link-seq | u32 inner kind | inner payload bytes
//   kLinkAck:  u64 link-seq
// Retransmit timers use ids tagged with kLinkTimerTag so they can share
// an actor's timer namespace; hosts forward unrecognized timers here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"
#include "sim/wire_kinds.hpp"

namespace mocc::fault {

/// Message-kind range reserved for the reliable link (below abcast's
/// [100, 199] and the protocols' [200, 299]; see sim/wire_kinds.hpp).
inline constexpr std::uint32_t kLinkKindFirst = sim::wire::kReliableLinkFirst;
inline constexpr std::uint32_t kLinkData = sim::wire::reliable_link_kind(0);
inline constexpr std::uint32_t kLinkAck = sim::wire::reliable_link_kind(1);
inline constexpr std::uint32_t kLinkKindLast = sim::wire::kReliableLinkLast;

/// High-bit tag distinguishing link retransmit timers from host timers.
inline constexpr std::uint64_t kLinkTimerTag = 1ULL << 62;

/// Counters for one link endpoint (or, via a shared sink, a whole
/// system — see set_shared_stats).
struct LinkStats {
  std::uint64_t data_sent = 0;    ///< first transmissions
  std::uint64_t retransmits = 0;  ///< timer-driven resends
  std::uint64_t acks_sent = 0;
  std::uint64_t delivered = 0;              ///< frames handed to the upper layer
  std::uint64_t duplicates_suppressed = 0;  ///< dedup hits
  std::uint64_t exhausted = 0;              ///< sends that ran out of retries
};

/// A send whose retry budget ran out. The payload is intentionally not
/// retained — by exhaustion time it has been transmitted
/// (1 + max_retransmits) times and the upper layer's recovery story is
/// protocol-level, not another resend.
struct FailedSend {
  sim::NodeId to = 0;
  std::uint64_t seq = 0;
  std::uint32_t kind = 0;       ///< inner (application) kind
  std::uint32_t attempts = 0;   ///< transmissions made before giving up
};

/// One endpoint of the reliable layer, owned by the hosting actor (one
/// per node). Not an Actor itself: the host calls send() instead of
/// Context::send, offers every incoming message to on_message() first,
/// and forwards unrecognized timers to on_timer().
class ReliableLink {
 public:
  struct Options {
    sim::SimTime initial_rto = 16;  ///< first retransmit timeout, ticks
    double backoff = 2.0;           ///< rto multiplier per retry
    sim::SimTime max_rto = 1024;    ///< backoff cap
    std::uint32_t max_retransmits = 16;  ///< resends beyond the original
  };

  /// Upward delivery: `message` is the reconstructed application message
  /// (original sender, inner kind, inner payload).
  using DeliverFn = std::function<void(sim::Context& ctx, const sim::Message& message)>;

  ReliableLink() : ReliableLink(Options()) {}
  explicit ReliableLink(Options options);

  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Reliably sends (kind, payload) to `to`. Self-sends are forbidden —
  /// hosts short-circuit local work without touching the network.
  void send(sim::Context& ctx, sim::NodeId to, std::uint32_t kind,
            std::vector<std::uint8_t> payload);

  /// Consumes kLinkData / kLinkAck; returns false for foreign kinds.
  /// Data frames are acked and, if new, delivered via the deliver
  /// callback before this returns.
  bool on_message(sim::Context& ctx, const sim::Message& message);

  /// Consumes kLinkTimerTag-tagged retransmit timers; returns false for
  /// foreign timer ids.
  bool on_timer(sim::Context& ctx, std::uint64_t timer_id);

  /// Sends still awaiting an ack (retry budget not yet exhausted).
  std::size_t in_flight() const { return pending_.size(); }
  /// Bytes of encoded frames held for possible retransmission (running
  /// counter over pending_; feeds the link_retransmit_buffer_bytes gauge).
  std::uint64_t buffer_bytes() const { return buffer_bytes_; }
  const std::vector<FailedSend>& failed() const { return failed_; }
  const LinkStats& stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// Optional second stats sink shared by every link in a system (not
  /// owned; must outlive the link). Lets System report aggregate link
  /// traffic without walking replicas.
  void set_shared_stats(LinkStats* shared) { shared_ = shared; }

 private:
  struct Pending {
    sim::NodeId to = 0;
    std::uint64_t seq = 0;
    std::uint32_t kind = 0;            ///< inner kind (for reporting)
    std::vector<std::uint8_t> frame;   ///< encoded kLinkData, resent as-is
    sim::SimTime rto = 0;              ///< next backoff interval
    std::uint32_t attempts = 0;        ///< transmissions so far
    obs::SpanContext trace;            ///< re-rooted at each retransmit span
    sim::SimTime last_sent = 0;        ///< retransmit span begin
  };
  /// Receiver-side dedup per sender: `floor` is the highest seq below
  /// which everything has been seen; `above` holds out-of-order seqs
  /// past the floor (compacted back into it as gaps fill).
  struct Inbound {
    std::uint64_t floor = 0;
    std::set<std::uint64_t> above;
  };

  void bump(std::uint64_t LinkStats::* field);

  Options options_;
  DeliverFn deliver_;
  std::map<sim::NodeId, std::uint64_t> next_seq_;  ///< per destination, from 1
  std::map<std::uint64_t, Pending> pending_;       ///< token → outbound
  std::map<std::pair<sim::NodeId, std::uint64_t>, std::uint64_t> token_by_dest_;
  std::uint64_t next_token_ = 0;
  std::map<sim::NodeId, Inbound> inbound_;
  std::vector<FailedSend> failed_;
  LinkStats stats_;
  LinkStats* shared_ = nullptr;
  std::uint64_t buffer_bytes_ = 0;  ///< sum of pending_ frame sizes
};

}  // namespace mocc::fault
