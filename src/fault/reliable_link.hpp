// Reliable point-to-point delivery over a lossy network.
//
// The paper's protocols assume reliable channels (§5); the fault layer
// deliberately breaks that assumption. ReliableLink restores it with the
// classic positive-ack scheme: every data message carries a per-
// destination sequence number, the receiver acks every data frame it
// sees (including duplicates — acks are how the sender learns to stop),
// and the sender retransmits on a timer with exponential backoff until
// acked or a bounded retry budget runs out.
//
// Guarantees over a network that drops and duplicates (but does not
// forge): every message sent is delivered to the destination's upper
// layer EXACTLY ONCE, provided the retry budget suffices — at drop rate
// p the residual loss probability is p^(max_retransmits+1), which the
// default budget of 16 makes negligible for the fault rates the chaos
// harness sweeps. Exhausted sends are reported, never silent.
//
// The link does NOT reorder: frames deliver upward in network-arrival
// order, preserving the simulator's unordered-channel model. Ordering
// remains the job of the layers above (atomic broadcast / protocol
// logic), exactly as in the fault-free stack.
//
// Wire format (kinds 50, 51 and 52, reserved range [50, 99]):
//   kLinkData:      u64 link-seq | u32 inner kind | inner payload bytes
//   kLinkAck:       u64 link-seq
//   kLinkBatchData: u64 link-seq | u32 item count |
//                   count x (u32 inner kind | length-prefixed payload)
// Retransmit timers use ids tagged with kLinkTimerTag so they can share
// an actor's timer namespace; hosts forward unrecognized timers here.
//
// Message coalescing (docs/batching.md; the itemized-queue / flush-
// trigger design of cortx-motr's rpc formation): with
// Options::coalesce_max_items > 1 each send() parks its message on a
// per-destination queue instead of transmitting. The queue flushes into
// ONE kLinkBatchData frame — one link sequence number, one ack, whole-
// frame retransmission — when it reaches coalesce_max_items items or
// coalesce_max_bytes queued payload bytes (size trigger), or when its
// oldest item ages past coalesce_max_age ticks (age trigger, bit-61
// flush timers inside the bit-62 link timer space). The delivery
// contract is unchanged: exactly once, frames in network-arrival order
// (a retransmitted frame can overtake a later one, batched or not), and
// items inside one frame unwrap upward in enqueue order. End-to-end
// FIFO / total order stays the job of the abcast layer above, exactly
// as for singleton frames.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"
#include "sim/wire_kinds.hpp"

namespace mocc::fault {

/// Message-kind range reserved for the reliable link (below abcast's
/// [100, 199] and the protocols' [200, 299]; see sim/wire_kinds.hpp).
inline constexpr std::uint32_t kLinkKindFirst = sim::wire::kReliableLinkFirst;
// Data/ack pairs are declared in sim/wire_kinds.hpp kKindPairs: the
// msg-flow closure check guarantees both frame shapes keep an emitter
// and that kLinkAck keeps answering them.
inline constexpr std::uint32_t kLinkData = sim::wire::reliable_link_kind(0);
inline constexpr std::uint32_t kLinkAck = sim::wire::reliable_link_kind(1);
/// Coalesced frame: several application messages under one link seq.
inline constexpr std::uint32_t kLinkBatchData = sim::wire::reliable_link_kind(2);
inline constexpr std::uint32_t kLinkKindLast = sim::wire::kReliableLinkLast;

/// High-bit tag distinguishing link retransmit timers from host timers.
inline constexpr std::uint64_t kLinkTimerTag = 1ULL << 62;
/// Second tag (inside the bit-62 link space) marking coalescing flush
/// timers; the low bits carry the destination node. Retransmit tokens
/// never reach bit 61, so the two link timer families cannot collide.
inline constexpr std::uint64_t kLinkFlushTimerBit = 1ULL << 61;

/// Counters for one link endpoint (or, via a shared sink, a whole
/// system — see set_shared_stats).
struct LinkStats {
  std::uint64_t data_sent = 0;    ///< first transmissions
  std::uint64_t retransmits = 0;  ///< timer-driven resends
  std::uint64_t acks_sent = 0;
  std::uint64_t delivered = 0;              ///< frames handed to the upper layer
  std::uint64_t duplicates_suppressed = 0;  ///< dedup hits
  std::uint64_t exhausted = 0;              ///< sends that ran out of retries
};

/// A send whose retry budget ran out. The payload is intentionally not
/// retained — by exhaustion time it has been transmitted
/// (1 + max_retransmits) times and the upper layer's recovery story is
/// protocol-level, not another resend.
struct FailedSend {
  sim::NodeId to = 0;
  std::uint64_t seq = 0;
  std::uint32_t kind = 0;       ///< inner (application) kind
  std::uint32_t attempts = 0;   ///< transmissions made before giving up
};

/// One endpoint of the reliable layer, owned by the hosting actor (one
/// per node). Not an Actor itself: the host calls send() instead of
/// Context::send, offers every incoming message to on_message() first,
/// and forwards unrecognized timers to on_timer().
class ReliableLink {
 public:
  struct Options {
    sim::SimTime initial_rto = 16;  ///< first retransmit timeout, ticks
    double backoff = 2.0;           ///< rto multiplier per retry
    sim::SimTime max_rto = 1024;    ///< backoff cap
    std::uint32_t max_retransmits = 16;  ///< resends beyond the original
    /// Message coalescing: > 1 enables the itemized per-destination
    /// queue; 1 (the default) transmits each send() immediately and
    /// byte-identically to the pre-batching link.
    std::size_t coalesce_max_items = 1;
    /// Additional size trigger on queued payload bytes (0 = items only).
    std::size_t coalesce_max_bytes = 0;
    /// Age flush trigger for a partial queue, virtual-time ticks. Must
    /// be >= 1 when coalescing — it is what keeps partial queues live.
    sim::SimTime coalesce_max_age = 4;
  };

  /// Upward delivery: `message` is the reconstructed application message
  /// (original sender, inner kind, inner payload).
  using DeliverFn = std::function<void(sim::Context& ctx, const sim::Message& message)>;

  ReliableLink() : ReliableLink(Options()) {}
  explicit ReliableLink(Options options);

  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Reliably sends (kind, payload) to `to`. Self-sends are forbidden —
  /// hosts short-circuit local work without touching the network.
  void send(sim::Context& ctx, sim::NodeId to, std::uint32_t kind,
            std::vector<std::uint8_t> payload);

  /// Consumes kLinkData / kLinkAck; returns false for foreign kinds.
  /// Data frames are acked and, if new, delivered via the deliver
  /// callback before this returns.
  bool on_message(sim::Context& ctx, const sim::Message& message);

  /// Consumes kLinkTimerTag-tagged retransmit and flush timers; returns
  /// false for foreign timer ids.
  bool on_timer(sim::Context& ctx, std::uint64_t timer_id);

  /// Transmits `to`'s coalescing queue now as one frame (no-op when the
  /// queue is empty). Emitted with the drain trigger (2); size and age
  /// flushes happen automatically.
  void flush(sim::Context& ctx, sim::NodeId to);
  /// Drains every destination's queue (ascending destination order).
  void flush_all(sim::Context& ctx);
  /// Messages parked on `to`'s coalescing queue, not yet framed.
  std::size_t queued(sim::NodeId to) const;

  /// Sends still awaiting an ack (retry budget not yet exhausted).
  std::size_t in_flight() const { return pending_.size(); }
  /// Bytes of encoded frames held for possible retransmission (running
  /// counter over pending_; feeds the link_retransmit_buffer_bytes gauge).
  std::uint64_t buffer_bytes() const { return buffer_bytes_; }
  const std::vector<FailedSend>& failed() const { return failed_; }
  const LinkStats& stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// Optional second stats sink shared by every link in a system (not
  /// owned; must outlive the link). Lets System report aggregate link
  /// traffic without walking replicas.
  void set_shared_stats(LinkStats* shared) { shared_ = shared; }

 private:
  struct Pending {
    sim::NodeId to = 0;
    std::uint64_t seq = 0;
    std::uint32_t kind = 0;            ///< inner kind (for reporting;
                                       ///< kLinkBatchData for coalesced frames)
    std::uint32_t wire_kind = kLinkData;  ///< kind the frame is resent under
    std::vector<std::uint8_t> frame;   ///< encoded frame, resent as-is
    sim::SimTime rto = 0;              ///< next backoff interval
    std::uint32_t attempts = 0;        ///< transmissions so far
    obs::SpanContext trace;            ///< re-rooted at each retransmit span
    sim::SimTime last_sent = 0;        ///< retransmit span begin
  };
  /// Receiver-side dedup per sender: `floor` is the highest seq below
  /// which everything has been seen; `above` holds out-of-order seqs
  /// past the floor (compacted back into it as gaps fill).
  struct Inbound {
    std::uint64_t floor = 0;
    std::set<std::uint64_t> above;
  };

  void bump(std::uint64_t LinkStats::* field);

  /// One application message parked for coalescing. The first item's
  /// context is the frame's carrier (docs/batching.md).
  struct QueuedItem {
    std::uint32_t kind = 0;
    std::vector<std::uint8_t> payload;
    obs::SpanContext trace;
  };
  struct CoalesceQueue {
    std::vector<QueuedItem> items;
    std::size_t payload_bytes = 0;
    sim::SimTime deadline = 0;  ///< age timers firing earlier are stale
  };

  /// Registers `frame` (already encoded) as one reliably-delivered unit:
  /// assigns the next per-destination seq, transmits, arms the
  /// retransmit timer. Shared by the unbatched path and flushes.
  void transmit_frame(sim::Context& ctx, sim::NodeId to, std::uint32_t wire_kind,
                      std::uint32_t inner_kind, std::uint64_t seq,
                      std::vector<std::uint8_t> frame);
  void flush_queue(sim::Context& ctx, sim::NodeId to, std::uint32_t trigger);

  Options options_;
  DeliverFn deliver_;
  std::map<sim::NodeId, std::uint64_t> next_seq_;  ///< per destination, from 1
  std::map<std::uint64_t, Pending> pending_;       ///< token → outbound
  std::map<std::pair<sim::NodeId, std::uint64_t>, std::uint64_t> token_by_dest_;
  std::uint64_t next_token_ = 0;
  std::map<sim::NodeId, Inbound> inbound_;
  std::map<sim::NodeId, CoalesceQueue> coalesce_;  ///< batching on only
  std::vector<FailedSend> failed_;
  LinkStats stats_;
  LinkStats* shared_ = nullptr;
  std::uint64_t buffer_bytes_ = 0;  ///< sum of pending_ frame sizes
};

}  // namespace mocc::fault
