// Chaos harness CLI (driven by tools/run_chaos.sh).
//
//   chaos [--smoke] [--seeds N] [--ops N] [--drop R[,R...]] [--dup R]
//         [--protocols a,b,...] [--no-partition] [--base-seed N] [--batch]
//         [--stream] [--stream-window N] [--mutation NAME]
//
// --stream attaches the live streaming auditor to every run and
// cross-checks its verdict against the post-hoc oracle; --mutation
// injects a deliberate protocol bug that --stream must catch mid-run.
//
// Exit status: 0 when every execution passed its checker, 1 otherwise.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/chaos.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<double> split_csv_doubles(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& item : split_csv(csv)) out.push_back(std::stod(item));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mocc::chaos::ChaosParams params;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      params = mocc::chaos::smoke_params();
    } else if (arg == "--seeds") {
      params.seeds_per_cell = std::stoul(next());
    } else if (arg == "--ops") {
      params.ops_per_process = std::stoul(next());
    } else if (arg == "--objects") {
      params.num_objects = std::stoul(next());
    } else if (arg == "--drop") {
      params.drop_rates = split_csv_doubles(next());
    } else if (arg == "--dup") {
      params.duplicate_rate = std::stod(next());
    } else if (arg == "--protocols") {
      params.protocols = split_csv(next());
    } else if (arg == "--no-partition") {
      params.partition = false;
    } else if (arg == "--base-seed") {
      params.base_seed = std::stoull(next());
    } else if (arg == "--batch") {
      params.batching = true;
    } else if (arg == "--stream") {
      params.stream = true;
    } else if (arg == "--stream-window") {
      params.stream_window = std::stoul(next());
    } else if (arg == "--mutation") {
      params.mutation = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: chaos [--smoke] [--seeds N] [--ops N] [--objects N]\n"
                << "             [--drop R,R,...] [--dup R] [--protocols a,b,...]\n"
                << "             [--no-partition] [--base-seed N] [--batch]\n"
                << "             [--stream] [--stream-window N] [--mutation NAME]\n";
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const mocc::chaos::ChaosReport report = mocc::chaos::run_chaos(params, &std::cout);
  mocc::chaos::write_report(std::cout, params, report);
  return report.ok() ? 0 : 1;
}
