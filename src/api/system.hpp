// mocc public API: a replicated multi-object store with a selectable
// consistency protocol, running on the deterministic simulator.
//
// Typical use (see examples/quickstart.cpp):
//
//   mocc::api::SystemConfig config;
//   config.num_processes = 4;
//   config.num_objects = 8;
//   config.protocol = "mlin";                       // m-linearizability
//   mocc::api::System system(config);
//
//   system.submit(0, 1, mocc::mscript::lib::make_dcas(0, 1, 0, 0, 7, 8),
//                 [](const mocc::protocols::InvocationOutcome& out) { ... });
//   system.run();
//
//   auto history = system.history();                // checkable record
//   auto audit = system.audit();                    // P5.x oracles
//   auto fast = system.check_fast(
//       mocc::core::Condition::kMLinearizability);  // Theorem 7
//
// Protocols: "mseq" (Figure 4), "mlin" (Figure 6), "mlin-narrow"
// (Figure 6 + §5.2's narrow query replies), "locking" (conservative 2PL
// baseline), "aggregate" (single-lock strawman from §1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/admissibility.hpp"
#include "core/audit.hpp"
#include "core/fast_check.hpp"
#include "core/history.hpp"
#include "fault/fault.hpp"
#include "fault/reliable_link.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "protocols/recorder.hpp"
#include "protocols/replica.hpp"
#include "protocols/workload.hpp"
#include "sim/simulator.hpp"

namespace mocc::api {

struct SystemConfig {
  std::size_t num_processes = 3;
  std::size_t num_objects = 8;
  /// "mseq" | "mlin" | "mlin-narrow" | "locking" | "aggregate"
  std::string protocol = "mlin";
  /// "sequencer" | "isis" (ignored by locking/aggregate)
  std::string broadcast = "sequencer";
  /// "constant" | "lan" | "wan" | "uniform" | "reorder" | "exponential"
  std::string delay = "lan";
  std::uint64_t seed = 42;
  /// §5.2 remark: narrow query replies (applies to "mlin-narrow").
  bool narrow_replies = false;
  /// Fault injection (src/fault): attached to the simulator only when
  /// faults.enabled() — a default plan costs nothing and leaves the
  /// execution byte-identical to a fault-free build.
  fault::FaultPlanConfig faults;
  /// Route every replica (and abcast) send through an ack/retransmit
  /// reliable link. Off by default: the paper assumes reliable channels.
  bool reliable_link = false;
  fault::ReliableLink::Options link;
  /// Hot-path batching & pipelining (docs/batching.md). Every knob
  /// defaults to "off" (batch of one), which keeps the wire behavior —
  /// and therefore every golden trace — byte-identical to an unbatched
  /// build. Order guarantees (per-sender FIFO, agreed total order) hold
  /// at any setting; batching trades latency for message count.
  struct BatchingConfig {
    /// Sequencer group-commit: assign a contiguous position block to up
    /// to this many pending updates per round (1 = off). Requires
    /// broadcast == "sequencer" when > 1.
    std::size_t abcast_batch_max = 1;
    /// Virtual-time age bound before a partial sequencer batch flushes.
    sim::SimTime abcast_batch_age = 8;
    /// Link-level coalescing: per-destination queue flushed at this many
    /// items (1 = off; needs reliable_link).
    std::size_t link_batch_items = 1;
    /// Byte-based flush threshold for the coalescing queue (0 = none).
    std::size_t link_batch_bytes = 0;
    /// Virtual-time age bound before a partial coalescing queue flushes.
    sim::SimTime link_batch_age = 4;
    /// mlin query fan-out batching: serialize queries into shared rounds
    /// (applies to the mlin / mlin-narrow protocols).
    bool batch_queries = false;

    bool any_enabled() const {
      return abcast_batch_max > 1 || link_batch_items > 1 || batch_queries;
    }
  };
  BatchingConfig batching;
  /// Deliberate protocol mutation, for validating that the mocc-check
  /// explorer (src/check) actually catches broken protocols. Empty — the
  /// default — is the correct protocol. Accepted values:
  ///   "seq-swap"      sequencer fans out the first two positions with
  ///                   swapped labels (requires broadcast="sequencer")
  ///   "skip-delivery" node 1 silently skips applying its first foreign
  ///                   abcast delivery (mseq / mlin variants)
  ///   "early-release" 2PL releases locks in a separate commit message
  ///                   sent before the writes (locking/aggregate)
  /// Never set outside tests and mocc-check selftests.
  std::string mutation;
  /// Deterministic backlog sampling: once per crossed multiple of this
  /// virtual-time interval, the system samples the simulator's event
  /// queue depth and the total reliable-link retransmit-buffer bytes —
  /// into the sim_event_queue_depth / link_retransmit_buffer_bytes
  /// gauges (set_metrics_registry) and a backlog_sample trace event.
  /// 0 (the default) disables sampling.
  sim::SimTime backlog_sample_interval = 0;
};

class System {
 public:
  explicit System(const SystemConfig& config);
  ~System();
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  const SystemConfig& config() const { return config_; }

  /// Enqueues an m-operation at `process`, invoked at virtual time `at`
  /// (or when the process is free, whichever is later — processes are
  /// sequential). The callback fires at response time.
  void submit(core::ProcessId process, sim::SimTime at, mscript::Program program,
              std::function<void(const protocols::InvocationOutcome&)> on_response = {});

  /// Runs the simulation until quiescent (or until `max_time` when
  /// non-zero); returns final virtual time.
  sim::SimTime run(sim::SimTime max_time = 0);

  /// Current virtual time (valid inside callbacks and between runs).
  sim::SimTime now() const;

  /// Closed-loop workload convenience (drives, runs, reports).
  protocols::WorkloadReport run_workload(const protocols::WorkloadParams& params);

  /// The recorded execution (valid after run() has drained everything).
  core::History history() const;

  /// True for the §5 protocols (mseq / mlin variants) whose timestamped
  /// traces the P5.x audit understands.
  bool supports_audit() const;
  core::AuditReport audit() const;

  /// Theorem-7 polynomial check of the recorded history against a
  /// condition (uses the recorded ~ww as the synchronization order).
  /// Requires supports_audit().
  core::FastCheckResult check_fast(core::Condition condition) const;

  /// Exact (worst-case exponential) check; works for any protocol.
  core::AdmissibilityResult check_exact(
      core::Condition condition, const core::AdmissibilityOptions& options = {}) const;

  const sim::TrafficStats& traffic() const;
  const protocols::ExecutionRecorder& recorder() const { return *recorder_; }

  /// The attached fault plan, or null when config.faults was disabled.
  const fault::FaultPlan* fault_plan() const { return fault_plan_.get(); }
  /// Aggregate reliable-link counters across every node (all zero when
  /// config.reliable_link is off).
  const fault::LinkStats& link_stats() const { return link_stats_; }
  /// Retry-budget exhaustions gathered from every node's link.
  std::vector<fault::FailedSend> link_failures() const;

  /// Attaches an observability trace sink (obs/trace.hpp) to the
  /// underlying simulator. Not owned — it must outlive the system or be
  /// detached with nullptr. Message, m-operation, lock, and abcast
  /// events of subsequent runs flow into it; with no sink attached the
  /// instrumentation costs one pointer test per event site.
  void set_trace_sink(obs::TraceSink* sink);

  /// Attaches a mocc-check schedule controller (sim/simulator.hpp) to the
  /// underlying simulator. Not owned; must be attached before the first
  /// run(). Requires faults off.
  void set_schedule_controller(sim::ScheduleController* controller);

  /// The most recent backlog sample (all zero until the first probe
  /// fires; see SystemConfig::backlog_sample_interval).
  struct BacklogSample {
    sim::SimTime time = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t link_buffer_bytes = 0;
  };
  const BacklogSample& backlog() const { return backlog_; }

  /// Metrics registry the backlog probe writes its gauges into (not
  /// owned; null — the default — skips gauge updates).
  void set_metrics_registry(obs::Registry* registry) { metrics_ = registry; }

  /// Streams one time-series sample of the metrics registry per backlog
  /// probe firing (deterministic virtual-time cadence — requires
  /// config.backlog_sample_interval != 0 and a metrics registry). Not
  /// owned; null — the default — disables sampling.
  void set_timeseries(obs::TimeSeriesWriter* writer) { timeseries_ = writer; }

  /// Asks the simulator to stop before its next event; the current
  /// run() returns early and stays stopped (see Simulator::request_stop).
  /// A streaming auditor's violation callback uses this to abort a run
  /// the moment a window fails.
  void request_stop();

 private:
  SystemConfig config_;
  std::unique_ptr<protocols::ExecutionRecorder> recorder_;
  std::unique_ptr<fault::FaultPlan> fault_plan_;  // null unless enabled
  fault::LinkStats link_stats_;  // shared sink of every replica's link
  std::unique_ptr<sim::Simulator> sim_;
  std::vector<protocols::Replica*> replicas_;  // owned by sim_
  /// Per-process queue serialization for submit().
  std::vector<sim::SimTime> process_free_hint_;
  struct SubmitQueue;
  std::vector<std::shared_ptr<SubmitQueue>> queues_;
  BacklogSample backlog_;
  obs::Registry* metrics_ = nullptr;
  obs::TimeSeriesWriter* timeseries_ = nullptr;
};

}  // namespace mocc::api
