#include "api/system.hpp"

#include <algorithm>
#include <deque>

#include "abcast/abcast.hpp"
#include "abcast/sequencer.hpp"
#include "protocols/locking_replica.hpp"
#include "protocols/mlin_replica.hpp"
#include "protocols/mseq_replica.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mocc::api {

struct System::SubmitQueue {
  struct Item {
    sim::SimTime at = 0;
    mscript::Program program;
    std::function<void(const protocols::InvocationOutcome&)> on_response;
  };
  std::deque<Item> items;
  bool busy = false;
  /// Earliest time the next invocation may start: one tick after the
  /// previous response (local step time). Enforced at pop so that
  /// however many pump closures are in flight, spacing holds.
  sim::SimTime not_before = 0;
};

System::System(const SystemConfig& config) : config_(config) {
  MOCC_ASSERT(config.num_processes >= 1);
  MOCC_ASSERT(config.num_objects >= 1);
  util::Logger::init_from_env();  // MOCC_LOG=debug traces the simulation

  recorder_ = std::make_unique<protocols::ExecutionRecorder>(config.num_processes,
                                                             config.num_objects);
  sim_ = std::make_unique<sim::Simulator>(sim::make_delay_model(config.delay),
                                          config.seed);
  if (config.faults.enabled()) {
    fault_plan_ = std::make_unique<fault::FaultPlan>(config.faults);
    sim_->set_fault_injector(fault_plan_.get());
  }

  const bool mutate_seq_swap = config.mutation == "seq-swap";
  const bool mutate_skip_delivery = config.mutation == "skip-delivery";
  const bool mutate_early_release = config.mutation == "early-release";
  MOCC_ASSERT_MSG(config.mutation.empty() || mutate_seq_swap ||
                      mutate_skip_delivery || mutate_early_release,
                  "unknown mutation (seq-swap|skip-delivery|early-release)");
  MOCC_ASSERT_MSG(!mutate_seq_swap || config.broadcast == "sequencer",
                  "seq-swap mutates the sequencer broadcast");

  const bool is_mseq = config.protocol == "mseq";
  const bool is_mlin_bcastq = config.protocol == "mlin-bcastq";
  const bool is_mlin = config.protocol == "mlin";
  const bool is_mlin_narrow = config.protocol == "mlin-narrow";
  const bool is_locking = config.protocol == "locking";
  const bool is_aggregate = config.protocol == "aggregate";
  MOCC_ASSERT_MSG(is_mseq || is_mlin_bcastq || is_mlin || is_mlin_narrow ||
                      is_locking || is_aggregate,
                  "unknown protocol (mseq|mlin|mlin-narrow|mlin-bcastq|locking|"
                  "aggregate)");

  MOCC_ASSERT_MSG(config.batching.abcast_batch_max <= 1 ||
                      config.broadcast == "sequencer",
                  "abcast batching is a sequencer group-commit — requires "
                  "broadcast=\"sequencer\"");
  MOCC_ASSERT_MSG(config.batching.abcast_batch_max <= 1 || !mutate_seq_swap,
                  "seq-swap mutation targets the unbatched fan-out path");
  MOCC_ASSERT_MSG(config.batching.link_batch_items <= 1 || config.reliable_link,
                  "link coalescing lives in the reliable link — enable it");

  const auto make_abcast = [&]() -> std::unique_ptr<abcast::AtomicBroadcast> {
    if (mutate_seq_swap) {
      abcast::SequencerAbcast::Options options;
      options.mutate_swap_first_two = true;
      return std::make_unique<abcast::SequencerAbcast>(options);
    }
    if (config.batching.abcast_batch_max > 1) {
      abcast::SequencerAbcast::Options options;
      options.batch_max = config.batching.abcast_batch_max;
      options.batch_age = config.batching.abcast_batch_age;
      return std::make_unique<abcast::SequencerAbcast>(options);
    }
    return abcast::make_abcast_factory(config.broadcast)();
  };

  for (std::size_t p = 0; p < config.num_processes; ++p) {
    std::unique_ptr<protocols::Replica> replica;
    if (is_mseq || is_mlin_bcastq) {
      protocols::MSeqReplica::Options options;
      options.broadcast_queries = is_mlin_bcastq;
      options.mutate_skip_first_foreign = mutate_skip_delivery && p == 1;
      replica = std::make_unique<protocols::MSeqReplica>(
          config.num_objects, make_abcast(), *recorder_, options);
    } else if (is_mlin || is_mlin_narrow) {
      protocols::MLinReplica::Options options;
      options.narrow_replies = is_mlin_narrow || config.narrow_replies;
      options.batch_queries = config.batching.batch_queries;
      options.mutate_skip_first_foreign = mutate_skip_delivery && p == 1;
      replica = std::make_unique<protocols::MLinReplica>(
          config.num_objects, make_abcast(), *recorder_, options);
    } else {
      protocols::LockingReplica::Options options;
      options.aggregate = is_aggregate;
      options.mutate_early_release = mutate_early_release;
      replica = std::make_unique<protocols::LockingReplica>(
          config.num_objects, config.num_processes, *recorder_, options);
    }
    if (config.reliable_link) {
      fault::ReliableLink::Options link_options = config.link;
      link_options.coalesce_max_items = config.batching.link_batch_items;
      link_options.coalesce_max_bytes = config.batching.link_batch_bytes;
      link_options.coalesce_max_age = config.batching.link_batch_age;
      auto link = std::make_unique<fault::ReliableLink>(link_options);
      link->set_shared_stats(&link_stats_);
      replica->set_reliable_link(std::move(link));
    }
    replicas_.push_back(replica.get());
    sim_->add_node(std::move(replica));
  }

  queues_.resize(config.num_processes);
  for (auto& queue : queues_) queue = std::make_shared<SubmitQueue>();

  if (config.backlog_sample_interval != 0) {
    sim_->set_backlog_probe(config.backlog_sample_interval, [this](sim::SimTime at) {
      backlog_.time = at;
      backlog_.queue_depth = sim_->queue_depth();
      std::uint64_t link_bytes = 0;
      for (const protocols::Replica* replica : replicas_) {
        if (const fault::ReliableLink* link = replica->reliable_link()) {
          link_bytes += link->buffer_bytes();
        }
      }
      backlog_.link_buffer_bytes = link_bytes;
      if (metrics_ != nullptr) {
        metrics_->gauge("sim_event_queue_depth")
            .set(static_cast<double>(backlog_.queue_depth));
        metrics_->gauge("link_retransmit_buffer_bytes")
            .set(static_cast<double>(link_bytes));
      }
      if (auto* sink = sim_->trace_sink()) {
        sink->on_event({obs::TraceEventType::kBacklogSample, at, 0, 0, 0,
                        backlog_.queue_depth, link_bytes});
      }
      if (timeseries_ != nullptr && metrics_ != nullptr) {
        timeseries_->sample(*metrics_, at);
      }
    });
  }
}

System::~System() = default;

void System::submit(core::ProcessId process, sim::SimTime at, mscript::Program program,
                    std::function<void(const protocols::InvocationOutcome&)> on_response) {
  MOCC_ASSERT(process < config_.num_processes);
  auto queue = queues_[process];
  queue->items.push_back(SubmitQueue::Item{at, std::move(program),
                                           std::move(on_response)});

  // Pump closure: issues the head item once the process is idle and the
  // item's requested time has arrived. The stored function refers to
  // itself only through a weak_ptr — capturing `pump` directly would form
  // a shared_ptr cycle and leak every pending closure (LeakSanitizer
  // finding); strong references live solely in scheduled events and the
  // replica's in-flight callback, so the chain frees once it drains.
  auto pump = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_pump = pump;
  protocols::Replica* replica = replicas_[process];
  sim::Simulator* simulator = sim_.get();
  *pump = [queue, weak_pump, replica, simulator, process]() {
    auto self = weak_pump.lock();
    MOCC_ASSERT_MSG(self != nullptr, "pump ran without a live self-reference");
    if (queue->busy || queue->items.empty()) return;
    const sim::SimTime start_at = std::max(queue->items.front().at, queue->not_before);
    if (start_at > simulator->now()) {
      simulator->schedule_call(start_at, [self] { (*self)(); });
      return;
    }
    SubmitQueue::Item item = std::move(queue->items.front());
    queue->items.pop_front();
    queue->busy = true;
    sim::Context ctx(*simulator, static_cast<sim::NodeId>(process));
    auto callback = std::move(item.on_response);
    replica->invoke(ctx, std::move(item.program),
                    [queue, self, simulator, callback](
                        const protocols::InvocationOutcome& outcome) {
                      queue->busy = false;
                      // ≥1 tick of local step time before the process's
                      // next invocation: keeps retry loops from spinning
                      // at a frozen virtual instant (the sequencer's own
                      // broadcasts complete in zero network time).
                      queue->not_before = simulator->now() + 1;
                      if (callback) callback(outcome);
                      simulator->schedule_call(simulator->now() + 1,
                                               [self] { (*self)(); });
                    });
  };
  sim_->schedule_call(std::max(at, sim_->now() + 1), [pump] { (*pump)(); });
}

sim::SimTime System::run(sim::SimTime max_time) { return sim_->run(max_time); }

void System::request_stop() { sim_->request_stop(); }

sim::SimTime System::now() const { return sim_->now(); }

protocols::WorkloadReport System::run_workload(const protocols::WorkloadParams& params) {
  return protocols::run_workload(*sim_, replicas_, config_.num_objects, params,
                                 config_.seed + 1);
}

core::History System::history() const { return recorder_->build_history(); }

bool System::supports_audit() const {
  return config_.protocol == "mseq" || config_.protocol == "mlin" ||
         config_.protocol == "mlin-narrow" || config_.protocol == "mlin-bcastq";
}

core::AuditReport System::audit() const {
  MOCC_ASSERT_MSG(supports_audit(), "audit requires a §5 protocol (mseq/mlin)");
  const core::History h = history();
  const core::ProtocolTrace trace =
      recorder_->build_trace(h, /*include_process_order=*/config_.protocol == "mseq");
  return core::audit_protocol_execution(h, trace);
}

core::FastCheckResult System::check_fast(core::Condition condition) const {
  MOCC_ASSERT_MSG(supports_audit(),
                  "fast check needs the recorded ~ww of a §5 protocol");
  const core::History h = history();
  return core::fast_check_condition(h, condition, recorder_->build_ww_order(),
                                    core::Constraint::kWW);
}

core::AdmissibilityResult System::check_exact(
    core::Condition condition, const core::AdmissibilityOptions& options) const {
  const core::History h = history();
  return core::check_condition(h, condition, options);
}

const sim::TrafficStats& System::traffic() const { return sim_->traffic(); }

std::vector<fault::FailedSend> System::link_failures() const {
  std::vector<fault::FailedSend> failures;
  for (const protocols::Replica* replica : replicas_) {
    if (const fault::ReliableLink* link = replica->reliable_link()) {
      failures.insert(failures.end(), link->failed().begin(), link->failed().end());
    }
  }
  return failures;
}

void System::set_trace_sink(obs::TraceSink* sink) { sim_->set_trace_sink(sink); }

void System::set_schedule_controller(sim::ScheduleController* controller) {
  sim_->set_schedule_controller(controller);
}

}  // namespace mocc::api
