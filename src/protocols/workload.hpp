// Closed-loop workload driver.
//
// Each process issues m-operations back-to-back (one outstanding at a
// time — processes are sequential threads of control, §2.1), drawing
// operation types from a configurable mix over the canonical multi-object
// operations (DCAS, m-register assignment, sum, transfer, reads/writes).
// Latencies are recorded in virtual time, split by query/update.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mscript/program.hpp"
#include "protocols/replica.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mocc::protocols {

struct WorkloadParams {
  /// m-operations issued by each process.
  std::size_t ops_per_process = 50;
  /// Probability that an issued m-operation is an update.
  double update_ratio = 0.5;
  /// Objects touched by a multi-object operation.
  std::size_t footprint = 2;
  /// Zipf skew over objects (0 = uniform).
  double zipf_skew = 0.0;
  /// Virtual-time think time between response and next invocation.
  sim::SimTime think_time = 1;
  /// Operation mix: when an update is drawn, with probability
  /// `dcas_fraction` issue a DCAS, else an m-register assignment /
  /// transfer / multi-add (rotating); queries alternate sum and read_all.
  double dcas_fraction = 0.3;
};

struct WorkloadReport {
  util::Summary query_latency;
  util::Summary update_latency;
  std::size_t queries = 0;
  std::size_t updates = 0;
};

/// Drives `replicas` (one per simulator node) inside `sim` and returns
/// per-class latency summaries. Replicas must already be registered as
/// the simulator's actors, in node order.
WorkloadReport run_workload(sim::Simulator& sim, const std::vector<Replica*>& replicas,
                            std::size_t num_objects, const WorkloadParams& params,
                            std::uint64_t seed);

/// Draws one random m-operation program per the params.
mscript::Program random_program(std::size_t num_objects, const WorkloadParams& params,
                                util::Rng& rng, util::ZipfGenerator& zipf,
                                std::uint64_t salt);

}  // namespace mocc::protocols
