// Execution recording: turning protocol runs into checkable histories.
//
// Every protocol records each m-operation it completes: the operations
// performed (with reads-from at m-operation granularity), invocation and
// response virtual times, and — for the timestamp-based protocols of §5 —
// the version-vector timestamp ts(α) = ts(finish(α)) and the atomic
// broadcast position, so the paper's P5.x properties can be audited after
// the run (core/audit.hpp) and the history checked against the claimed
// consistency condition.
//
// Ids are assigned at invocation time (so in-flight updates can be named
// by replicas' last-writer tables before their origin records the
// response) and the history materializes ops in id order, which preserves
// per-process program order because drivers are closed-loop.
//
// Thread safety: a recorder is shared by every replica of one execution,
// and parallel drivers (sim::ParallelRunner) may in addition share one
// recorder across concurrently-simulated process groups, so all state is
// behind an internal mutex with Clang thread-safety annotations. Records
// live in a deque: begin() never relocates existing records, so the
// reference record() returns stays valid across concurrent begins (each
// record is written once by complete() and read only afterwards).
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/history.hpp"
#include "util/thread_annotations.hpp"
#include "util/timestamp.hpp"

namespace mocc::protocols {

struct InvocationRecord {
  core::ProcessId process = 0;
  std::string label;
  core::Time invoke = 0;
  core::Time response = 0;
  std::vector<core::Operation> ops;
  /// ts(finish(α)) for timestamp-based protocols; empty otherwise.
  util::VersionVector timestamp;
  /// Position in the atomic broadcast total order (updates only).
  std::optional<std::uint64_t> ww_seq;
  bool completed = false;
};

class ExecutionRecorder {
 public:
  ExecutionRecorder(std::size_t num_processes, std::size_t num_objects);

  /// Reserves an id at invocation time.
  core::MOpId begin(core::ProcessId process, std::string label, core::Time invoke)
      MOCC_EXCLUDES(mu_);

  void complete(core::MOpId id, std::vector<core::Operation> ops, core::Time response,
                util::VersionVector timestamp,
                std::optional<std::uint64_t> ww_seq) MOCC_EXCLUDES(mu_);

  std::size_t size() const MOCC_EXCLUDES(mu_);
  bool all_completed() const MOCC_EXCLUDES(mu_);
  /// The returned reference is stable (deque) but its fields must not be
  /// read until the m-operation completed.
  const InvocationRecord& record(core::MOpId id) const MOCC_EXCLUDES(mu_);

  /// Builds the history of completed m-operations. Aborts if any
  /// invocation is still outstanding (drivers drain before building).
  core::History build_history() const MOCC_EXCLUDES(mu_);

  /// Builds the audit trace. `include_process_order` selects the Figure-4
  /// definition of ~>H− (D5.3: ~P ∪ ~rf ∪ ~ww) versus Figure-6's
  /// (D5.8: ~rf ∪ ~t ∪ ~ww).
  core::ProtocolTrace build_trace(const core::History& h,
                                  bool include_process_order) const MOCC_EXCLUDES(mu_);

  /// Just the atomic broadcast order ~ww over updates (the explicit
  /// synchronization a Theorem-7 fast check needs on top of the
  /// condition's base order).
  util::BitRelation build_ww_order() const MOCC_EXCLUDES(mu_);

 private:
  bool all_completed_locked() const MOCC_REQUIRES(mu_);
  util::BitRelation build_ww_order_locked() const MOCC_REQUIRES(mu_);

  const std::size_t num_processes_;
  const std::size_t num_objects_;
  mutable std::mutex mu_;
  std::deque<InvocationRecord> records_ MOCC_GUARDED_BY(mu_);
};

}  // namespace mocc::protocols
