// Execution recording: turning protocol runs into checkable histories.
//
// Every protocol records each m-operation it completes: the operations
// performed (with reads-from at m-operation granularity), invocation and
// response virtual times, and — for the timestamp-based protocols of §5 —
// the version-vector timestamp ts(α) = ts(finish(α)) and the atomic
// broadcast position, so the paper's P5.x properties can be audited after
// the run (core/audit.hpp) and the history checked against the claimed
// consistency condition.
//
// Ids are assigned at invocation time (so in-flight updates can be named
// by replicas' last-writer tables before their origin records the
// response) and the history materializes ops in id order, which preserves
// per-process program order because drivers are closed-loop.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/history.hpp"
#include "util/timestamp.hpp"

namespace mocc::protocols {

struct InvocationRecord {
  core::ProcessId process = 0;
  std::string label;
  core::Time invoke = 0;
  core::Time response = 0;
  std::vector<core::Operation> ops;
  /// ts(finish(α)) for timestamp-based protocols; empty otherwise.
  util::VersionVector timestamp;
  /// Position in the atomic broadcast total order (updates only).
  std::optional<std::uint64_t> ww_seq;
  bool completed = false;
};

class ExecutionRecorder {
 public:
  ExecutionRecorder(std::size_t num_processes, std::size_t num_objects);

  /// Reserves an id at invocation time.
  core::MOpId begin(core::ProcessId process, std::string label, core::Time invoke);

  void complete(core::MOpId id, std::vector<core::Operation> ops, core::Time response,
                util::VersionVector timestamp,
                std::optional<std::uint64_t> ww_seq);

  std::size_t size() const { return records_.size(); }
  bool all_completed() const;
  const InvocationRecord& record(core::MOpId id) const;

  /// Builds the history of completed m-operations. Aborts if any
  /// invocation is still outstanding (drivers drain before building).
  core::History build_history() const;

  /// Builds the audit trace. `include_process_order` selects the Figure-4
  /// definition of ~>H− (D5.3: ~P ∪ ~rf ∪ ~ww) versus Figure-6's
  /// (D5.8: ~rf ∪ ~t ∪ ~ww).
  core::ProtocolTrace build_trace(const core::History& h,
                                  bool include_process_order) const;

  /// Just the atomic broadcast order ~ww over updates (the explicit
  /// synchronization a Theorem-7 fast check needs on top of the
  /// condition's base order).
  util::BitRelation build_ww_order() const;

 private:
  std::size_t num_processes_;
  std::size_t num_objects_;
  std::vector<InvocationRecord> records_;
};

}  // namespace mocc::protocols
