// The m-sequential-consistency protocol (Figure 4), an extension of the
// Attiya–Welch construction to multi-object operations.
//
// Three atomic actions per process:
//   (A1) invocation of a potentially-writing m-operation α: atomically
//        broadcast α to all processes;
//   (A2) on abcast delivery of α: apply α to the local copy, bump
//        ts[x] for every x written; if α is ours, generate the response;
//   (A3) invocation of a query m-operation: apply to the local copy and
//        respond immediately — queries cost no messages, which is the
//        protocol's whole point (and experiment E1's contrast).
//
// The same replica also implements the *broadcast-everything* design
// point (`Options::broadcast_queries`): queries go through the atomic
// broadcast too and execute at their delivery point. That single change
// upgrades the guarantee from m-sequential consistency to
// m-linearizability — every m-operation takes effect at one totally
// ordered instant between invocation and response — at the price of a
// full broadcast per query. It is the natural strawman against Figure
// 6's query/reply scheme, which reads a *constructed* fresh copy without
// occupying the broadcast stream (ablation in experiments E1/E3).
#pragma once

#include <map>
#include <memory>

#include "abcast/abcast.hpp"
#include "protocols/replica.hpp"
#include "util/timestamp.hpp"

namespace mocc::protocols {

class MSeqReplica final : public Replica {
 public:
  // Deliberately declares no wire kinds of its own: every message rides
  // the abcast layer's kinds, so mocc-lint's msg-flow closure has
  // nothing to track here (and would flag any future orphaned addition).
  struct Options {
    /// Route queries through the atomic broadcast as well; see header
    /// comment. Off = the literal Figure 4.
    bool broadcast_queries = false;
    /// Deliberate protocol mutation for mocc-check validation (never set
    /// in production): silently skip applying the first delivered foreign
    /// update — the delivery counter still advances, so the replica's
    /// copy and timestamps go quietly stale.
    bool mutate_skip_first_foreign = false;
  };

  MSeqReplica(std::size_t num_objects, std::unique_ptr<abcast::AtomicBroadcast> abcast,
              ExecutionRecorder& recorder, Options options);
  MSeqReplica(std::size_t num_objects, std::unique_ptr<abcast::AtomicBroadcast> abcast,
              ExecutionRecorder& recorder)
      : MSeqReplica(num_objects, std::move(abcast), recorder, Options()) {}

  void on_start(sim::Context& ctx) override;
  void invoke(sim::Context& ctx, mscript::Program program,
              ResponseFn on_response) override;

  const util::VersionVector& timestamp() const { return myts_; }
  const std::vector<core::Value>& store() const { return my_x_; }

 protected:
  void handle_delivered(sim::Context& ctx, const sim::Message& message) override;

 private:
  void on_deliver(sim::Context& ctx, sim::NodeId origin,
                  const std::vector<std::uint8_t>& payload);

  std::size_t num_objects_;
  std::unique_ptr<abcast::AtomicBroadcast> abcast_;
  ExecutionRecorder& recorder_;
  Options options_;

  // Local copy of every shared object (full replication, §5) with the
  // per-object versions {ts} of Figure 4 and the last-writer table the
  // recorder uses for reads-from.
  std::vector<core::Value> my_x_;
  util::VersionVector myts_;
  std::vector<core::MOpId> last_writer_;

  /// Delivery index of the abcast stream (identical at every replica).
  std::uint64_t deliveries_ = 0;
  /// mutate_skip_first_foreign: the one skip has been spent.
  bool mutation_skipped_ = false;

  struct PendingUpdate {
    ResponseFn on_response;
    core::Time invoke = 0;
    obs::SpanContext trace;  ///< root span of the m-operation's trace
  };
  std::map<core::MOpId, PendingUpdate> pending_;
};

}  // namespace mocc::protocols
