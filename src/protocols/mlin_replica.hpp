// The m-linearizability protocol (Figure 6).
//
// Updates are handled exactly as in Figure 4 (A1/A2: atomic broadcast,
// apply everywhere, respond at the origin). Queries must not read stale
// values, and — unlike Attiya–Welch's linearizable construction — the
// protocol assumes nothing about clock synchronization or message delay:
//   (A3) on invoking a query: reset `othts`, send "query" to all
//        processes;
//   (A4) on receiving a "query": reply with ⟨myX, myts⟩;
//   (A5) on each reply ⟨X, ts⟩: if othts < ts, keep ⟨X, ts⟩;
//   (A6) once all replies arrived: apply the query to othX, respond.
//
// Because every replica applies the same abcast prefix, the returned
// timestamps are totally ordered under the pointwise order (asserted at
// A5), and keeping the maximum yields a copy at least as fresh as every
// copy that existed when the query started — which is what pins
// real-time order (Lemma 16, cases 2.x).
//
// Implementation detail: the querying process contributes its own copy
// locally (no self-message), so a query costs exactly 2(n-1) messages.
// Replies carry the last-writer table alongside ⟨myX, myts⟩ so the
// recorder can attribute reads-from at m-operation granularity; the
// paper's closing remark (§5.2) licenses restricting the reply to the
// objects the query declares — enabled with `narrow_replies`.
//
// Query fan-out batching (docs/batching.md, `Options::batch_queries`):
// at most one query ROUND is in flight per process; queries invoked
// while a round runs wait, and the next round serves every waiting
// query with a single 2(n-1)-message exchange (kQueryBatch /
// kQueryRespBatch) requesting the union of their footprints. Freshness
// is untouched — a round starts after every batched query's invocation,
// so the merged copy is at least as fresh as any copy existing at each
// invocation (the same Lemma 16 argument, applied per member).
#pragma once

#include <map>
#include <memory>

#include "abcast/abcast.hpp"
#include "protocols/replica.hpp"
#include "util/timestamp.hpp"

namespace mocc::protocols {

class MLinReplica final : public Replica {
 public:
  // Query/response pairs (sim/wire_kinds.hpp kKindPairs): the msg-flow
  // closure check enforces that a live kQuery[Batch] keeps its
  // kQueryResp[Batch] emitted, so neither round shape can rot silently.
  static constexpr std::uint32_t kQuery = sim::wire::protocols_kind(0);
  static constexpr std::uint32_t kQueryResp = sim::wire::protocols_kind(1);
  /// Batched query round: same body layout as kQuery / kQueryResp, keyed
  /// by a round id instead of a qid, footprint = union over the round.
  static constexpr std::uint32_t kQueryBatch = sim::wire::protocols_kind(2);
  static constexpr std::uint32_t kQueryRespBatch = sim::wire::protocols_kind(3);

  struct Options {
    /// §5.2 optimization: replies carry only the objects the query may
    /// read instead of the whole store.
    bool narrow_replies = false;
    /// Query fan-out batching: serialize queries into rounds (one round
    /// in flight; all queries waiting when a round completes share the
    /// next round's single 2(n-1)-message exchange).
    bool batch_queries = false;
    /// Deliberate protocol mutation for mocc-check validation (never set
    /// in production): silently skip applying the first delivered foreign
    /// update — the delivery counter still advances, so the replica's
    /// copy and timestamps go quietly stale.
    bool mutate_skip_first_foreign = false;
  };

  MLinReplica(std::size_t num_objects, std::unique_ptr<abcast::AtomicBroadcast> abcast,
              ExecutionRecorder& recorder, Options options);
  MLinReplica(std::size_t num_objects, std::unique_ptr<abcast::AtomicBroadcast> abcast,
              ExecutionRecorder& recorder)
      : MLinReplica(num_objects, std::move(abcast), recorder, Options()) {}

  void on_start(sim::Context& ctx) override;
  void invoke(sim::Context& ctx, mscript::Program program,
              ResponseFn on_response) override;

  const util::VersionVector& timestamp() const { return myts_; }
  const std::vector<core::Value>& store() const { return my_x_; }

 protected:
  void handle_delivered(sim::Context& ctx, const sim::Message& message) override;

 private:
  void on_deliver(sim::Context& ctx, sim::NodeId origin,
                  const std::vector<std::uint8_t>& payload);
  void on_query(sim::Context& ctx, const sim::Message& message,
                std::uint32_t resp_kind);
  void on_query_response(sim::Context& ctx, const sim::Message& message);
  void finish_query(sim::Context& ctx, std::uint64_t qid);
  /// Opens the next query round over every waiting qid (batch_queries).
  void start_round(sim::Context& ctx);
  void on_round_response(sim::Context& ctx, const sim::Message& message);
  /// All replies in: hand the round's merged copy to each member query,
  /// finish them in invocation order, then chain the next round.
  void complete_round(sim::Context& ctx);

  std::size_t num_objects_;
  std::unique_ptr<abcast::AtomicBroadcast> abcast_;
  ExecutionRecorder& recorder_;
  Options options_;

  std::vector<core::Value> my_x_;
  util::VersionVector myts_;
  std::vector<core::MOpId> last_writer_;
  std::uint64_t deliveries_ = 0;
  /// mutate_skip_first_foreign: the one skip has been spent.
  bool mutation_skipped_ = false;

  struct PendingUpdate {
    ResponseFn on_response;
    core::Time invoke = 0;
    obs::SpanContext trace;  ///< root span of the m-operation's trace
  };
  std::map<core::MOpId, PendingUpdate> pending_updates_;

  struct PendingQuery {
    core::MOpId id = 0;
    mscript::Program program;
    ResponseFn on_response;
    core::Time invoke = 0;
    obs::SpanContext trace;  ///< root span of the m-operation's trace
    std::size_t replies = 0;
    // othX / othts / oth last-writer: the freshest copy seen so far,
    // seeded from the local replica.
    std::vector<core::Value> oth_x;
    util::VersionVector othts;
    std::vector<core::MOpId> oth_writer;
  };
  std::uint64_t next_qid_ = 0;
  std::map<std::uint64_t, PendingQuery> pending_queries_;

  /// One in-flight query round (batch_queries). The merged copy lives at
  /// round level — member queries receive it only at completion, so it is
  /// at least as fresh as any copy existing at each member's invocation
  /// (the round opens after the last member invoked).
  struct QueryRound {
    std::uint64_t id = 0;
    std::vector<std::uint64_t> qids;       ///< members, invocation order
    std::vector<std::uint32_t> footprint;  ///< union may_read; empty = whole store
    std::size_t replies = 0;
    std::vector<core::Value> oth_x;
    util::VersionVector othts;
    std::vector<core::MOpId> oth_writer;
  };
  std::uint64_t next_round_id_ = 0;
  bool round_active_ = false;
  QueryRound round_;
  std::vector<std::uint64_t> waiting_;  ///< qids awaiting the next round
};

}  // namespace mocc::protocols
