// Baseline: conservative two-phase locking over partitioned objects.
//
// What a practitioner of the paper's era would deploy instead of the §5
// protocols: every object has a home node (x mod n); an m-operation
// acquires locks on its declared footprint in ascending object order
// (deadlock-free by global resource ordering), shared for read-only
// objects and exclusive for potentially-written ones; then it snapshots
// its read set from the homes, executes locally, pushes writes back, and
// releases. Strict 2PL + atomic footprint locking makes every execution
// m-linearizable (checked by tests with the exact checker) — but the
// latency grows with the footprint size (one sequential round trip per
// lock) where the §5 protocols pay a single atomic broadcast, and
// conflicting m-operations queue behind each other at the homes.
//
// The same replica also implements the *aggregate object* strawman from
// the paper's introduction ("this technique will force all registers to
// be treated as one object; this results in loss of locality and
// concurrency"): in aggregate mode every m-operation locks one global
// exclusive lock instead of its footprint, serializing all operations.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "protocols/replica.hpp"

namespace mocc::protocols {

class LockingReplica final : public Replica {
 public:
  // Three request/response round trips (declared as pairs in
  // sim/wire_kinds.hpp kKindPairs; mocc-lint's msg-flow closure check
  // keeps every kind here both emitted and routed by a handler below).
  static constexpr std::uint32_t kLockReq = sim::wire::protocols_kind(10);
  static constexpr std::uint32_t kLockGrant = sim::wire::protocols_kind(11);
  static constexpr std::uint32_t kReadReq = sim::wire::protocols_kind(12);
  static constexpr std::uint32_t kReadResp = sim::wire::protocols_kind(13);
  static constexpr std::uint32_t kCommitReq = sim::wire::protocols_kind(14);
  static constexpr std::uint32_t kCommitAck = sim::wire::protocols_kind(15);

  struct Options {
    /// Aggregate-object strawman: one global exclusive lock for every
    /// m-operation.
    bool aggregate = false;
    /// Deliberate protocol mutation for mocc-check validation (never set
    /// in production): release locks in a commit message SEPARATE from
    /// (and sent before) the one carrying the writes, so a competitor can
    /// acquire the lock and read the home copy before the write lands.
    bool mutate_early_release = false;
  };

  LockingReplica(std::size_t num_objects, std::size_t num_nodes,
                 ExecutionRecorder& recorder, Options options);
  LockingReplica(std::size_t num_objects, std::size_t num_nodes,
                 ExecutionRecorder& recorder)
      : LockingReplica(num_objects, num_nodes, recorder, Options()) {}

  void invoke(sim::Context& ctx, mscript::Program program,
              ResponseFn on_response) override;

 protected:
  void handle_delivered(sim::Context& ctx, const sim::Message& message) override;

 private:
  // ---- lock identifiers: real objects plus one virtual aggregate lock.
  using LockId = std::uint32_t;
  LockId aggregate_lock() const { return static_cast<LockId>(num_objects_); }
  sim::NodeId home_of_lock(LockId lock) const {
    return static_cast<sim::NodeId>(lock % num_nodes_);
  }
  sim::NodeId home_of_object(core::ObjectId x) const {
    return static_cast<sim::NodeId>(x % num_nodes_);
  }

  // ---- home (server) side ------------------------------------------
  struct LockState {
    std::size_t shared_holders = 0;
    bool exclusive_held = false;
    struct Waiter {
      sim::NodeId client;
      std::uint64_t token;
      bool exclusive;
      obs::SpanContext trace;      ///< context that carried the request
      sim::SimTime enqueued = 0;  ///< lock_wait span begin
    };
    std::vector<Waiter> queue;  // strict FIFO, no barging
  };
  void handle_lock_req(sim::Context& ctx, sim::NodeId from, std::uint64_t token,
                       LockId lock, bool exclusive);
  void handle_read_req(sim::Context& ctx, sim::NodeId from, std::uint64_t token,
                       const std::vector<std::uint32_t>& objects);
  void handle_commit_req(sim::Context& ctx, sim::NodeId from, std::uint64_t token,
                         const std::vector<std::uint32_t>& write_objects,
                         const std::vector<core::Value>& write_values,
                         const std::vector<std::uint32_t>& unlock_shared,
                         const std::vector<std::uint32_t>& unlock_exclusive);
  void pump_lock_queue(sim::Context& ctx, LockId lock);
  void grant(sim::Context& ctx, sim::NodeId client, std::uint64_t token, LockId lock);

  // ---- client side --------------------------------------------------
  enum class Phase { kAcquiring, kReading, kCommitting };
  struct PendingOp {
    core::MOpId id = 0;
    mscript::Program program;
    ResponseFn on_response;
    core::Time invoke = 0;
    obs::SpanContext trace;  ///< root span of the m-operation's trace
    Phase phase = Phase::kAcquiring;
    // Locks in ascending order; mode per lock.
    std::vector<LockId> locks;
    std::set<LockId> exclusive_locks;
    std::size_t next_lock = 0;
    // Snapshot of the read set.
    std::map<core::ObjectId, core::Value> snapshot_values;
    std::map<core::ObjectId, core::MOpId> snapshot_writers;
    std::size_t read_replies_expected = 0;
    std::size_t read_replies = 0;
    std::size_t commit_acks_expected = 0;
    std::size_t commit_acks = 0;
    mscript::Value return_value = 0;
    std::vector<core::Operation> ops;
    /// Aggregate mode: the lock's home is decoupled from the data homes,
    /// so releasing it in the same round as the writes would let the
    /// next holder read stale data (the unlock can overtake a write on a
    /// reordering network). These unlocks go out only after every write
    /// commit is acknowledged.
    std::vector<LockId> deferred_unlocks;
  };
  void on_lock_grant(sim::Context& ctx, std::uint64_t token);
  void request_next_lock(sim::Context& ctx, PendingOp& op);
  void start_read_phase(sim::Context& ctx, PendingOp& op);
  void on_read_resp(sim::Context& ctx, std::uint64_t token,
                    const std::vector<std::uint32_t>& objects,
                    const std::vector<core::Value>& values,
                    const std::vector<std::uint32_t>& writers);
  void execute_and_commit(sim::Context& ctx, PendingOp& op);
  void on_commit_ack(sim::Context& ctx, std::uint64_t token);

  std::size_t num_objects_;
  std::size_t num_nodes_;
  ExecutionRecorder& recorder_;
  Options options_;

  // Home state: this node's partition of values/versions/locks.
  std::map<core::ObjectId, core::Value> home_values_;
  std::map<core::ObjectId, core::MOpId> home_writers_;
  std::map<LockId, LockState> home_locks_;

  std::map<std::uint64_t, PendingOp> pending_;  // token == recorder id
};

}  // namespace mocc::protocols
