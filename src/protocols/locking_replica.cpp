#include "protocols/locking_replica.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mocc::protocols {

namespace {

/// StoreView over a locked snapshot: reads come from the snapshot (or the
/// operation's own buffered writes), writes are buffered for the commit
/// phase. Records operations at m-operation granularity.
class SnapshotStore final : public mscript::StoreView {
 public:
  SnapshotStore(const std::map<core::ObjectId, core::Value>& values,
                const std::map<core::ObjectId, core::MOpId>& writers,
                core::MOpId self)
      : values_(values), writers_(writers), self_(self) {}

  mscript::Value read(mscript::ObjectId object) override {
    if (const auto it = buffered_.find(object); it != buffered_.end()) {
      ops_.push_back(core::Operation::read(object, it->second, self_));
      return it->second;
    }
    const auto vit = values_.find(object);
    MOCC_ASSERT_MSG(vit != values_.end(), "read outside the snapshotted read set");
    const auto wit = writers_.find(object);
    const core::MOpId writer = wit == writers_.end() ? core::kInitialMOp : wit->second;
    ops_.push_back(core::Operation::read(object, vit->second, writer));
    return vit->second;
  }

  void write(mscript::ObjectId object, mscript::Value value) override {
    buffered_[object] = value;
    ops_.push_back(core::Operation::write(object, value));
  }

  std::vector<core::Operation> take_ops() { return std::move(ops_); }
  const std::map<core::ObjectId, core::Value>& buffered_writes() const {
    return buffered_;
  }

 private:
  const std::map<core::ObjectId, core::Value>& values_;
  const std::map<core::ObjectId, core::MOpId>& writers_;
  core::MOpId self_;
  std::map<core::ObjectId, core::Value> buffered_;
  std::vector<core::Operation> ops_;
};

}  // namespace

LockingReplica::LockingReplica(std::size_t num_objects, std::size_t num_nodes,
                               ExecutionRecorder& recorder, Options options)
    : num_objects_(num_objects),
      num_nodes_(num_nodes),
      recorder_(recorder),
      options_(options) {}

// ---------------------------------------------------------------- client

void LockingReplica::invoke(sim::Context& ctx, mscript::Program program,
                            ResponseFn on_response) {
  const core::Time invoke_time = ctx.now();
  const core::MOpId id = recorder_.begin(ctx.self(), program.name(), invoke_time);
  trace_mop(ctx, obs::TraceEventType::kMOpInvoke, id, program.is_update() ? 1 : 0);
  const std::uint64_t token = id;

  PendingOp op;
  op.id = id;
  op.program = std::move(program);
  op.on_response = std::move(on_response);
  op.invoke = invoke_time;
  op.trace = ctx.begin_trace();

  if (options_.aggregate) {
    op.locks = {aggregate_lock()};
    op.exclusive_locks = {aggregate_lock()};
  } else {
    std::vector<LockId> locks(op.program.may_read().begin(),
                              op.program.may_read().end());
    locks.insert(locks.end(), op.program.may_write().begin(),
                 op.program.may_write().end());
    std::sort(locks.begin(), locks.end());
    locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
    op.locks = std::move(locks);
    op.exclusive_locks.insert(op.program.may_write().begin(),
                              op.program.may_write().end());
  }
  MOCC_ASSERT_MSG(!op.locks.empty(), "m-operation with empty footprint");

  auto [it, inserted] = pending_.emplace(token, std::move(op));
  MOCC_ASSERT(inserted);
  request_next_lock(ctx, it->second);
}

void LockingReplica::request_next_lock(sim::Context& ctx, PendingOp& op) {
  if (op.next_lock == op.locks.size()) {
    op.phase = Phase::kReading;
    start_read_phase(ctx, op);
    return;
  }
  const LockId lock = op.locks[op.next_lock];
  const bool exclusive = op.exclusive_locks.count(lock) > 0;
  const sim::NodeId home = home_of_lock(lock);
  if (home == ctx.self()) {
    handle_lock_req(ctx, ctx.self(), op.id, lock, exclusive);
    return;
  }
  util::ByteWriter out;
  out.put_u64(op.id);
  out.put_u32(lock);
  out.put_u8(exclusive ? 1 : 0);
  net_send(ctx, home, kLockReq, out.take());
}

void LockingReplica::on_lock_grant(sim::Context& ctx, std::uint64_t token) {
  const auto it = pending_.find(token);
  MOCC_ASSERT_MSG(it != pending_.end(), "grant for unknown token");
  PendingOp& op = it->second;
  MOCC_ASSERT(op.phase == Phase::kAcquiring);
  ++op.next_lock;
  request_next_lock(ctx, op);
}

void LockingReplica::start_read_phase(sim::Context& ctx, PendingOp& op) {
  // Group the declared read set by home; one READ round trip per home.
  std::map<sim::NodeId, std::vector<std::uint32_t>> by_home;
  for (const auto x : op.program.may_read()) {
    by_home[home_of_object(x)].push_back(x);
  }
  if (by_home.empty()) {
    execute_and_commit(ctx, op);
    return;
  }
  op.read_replies_expected = by_home.size();
  for (const auto& [home, objects] : by_home) {
    if (home == ctx.self()) {
      handle_read_req(ctx, ctx.self(), op.id, objects);
      continue;
    }
    util::ByteWriter out;
    out.put_u64(op.id);
    out.put_u32_vector(objects);
    net_send(ctx, home, kReadReq, out.take());
  }
}

void LockingReplica::on_read_resp(sim::Context& ctx, std::uint64_t token,
                                  const std::vector<std::uint32_t>& objects,
                                  const std::vector<core::Value>& values,
                                  const std::vector<std::uint32_t>& writers) {
  const auto it = pending_.find(token);
  MOCC_ASSERT_MSG(it != pending_.end(), "read response for unknown token");
  PendingOp& op = it->second;
  MOCC_ASSERT(op.phase == Phase::kReading);
  MOCC_ASSERT(objects.size() == values.size() && objects.size() == writers.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    op.snapshot_values[objects[i]] = values[i];
    op.snapshot_writers[objects[i]] = writers[i];
  }
  ++op.read_replies;
  if (op.read_replies == op.read_replies_expected) {
    execute_and_commit(ctx, op);
  }
}

void LockingReplica::execute_and_commit(sim::Context& ctx, PendingOp& op) {
  op.phase = Phase::kCommitting;
  SnapshotStore store(op.snapshot_values, op.snapshot_writers, op.id);
  const mscript::ExecutionResult exec = mscript::Vm::run(op.program, store);
  op.return_value = exec.return_value;
  const auto writes = store.buffered_writes();
  op.ops = store.take_ops();

  // One COMMIT per home holding any of our locks or receiving any write:
  // applying writes and releasing locks in a single message keeps them
  // ordered at the home even though channels reorder.
  struct HomeCommit {
    std::vector<std::uint32_t> write_objects;
    std::vector<core::Value> write_values;
    std::vector<std::uint32_t> unlock_shared;
    std::vector<std::uint32_t> unlock_exclusive;
  };
  std::map<sim::NodeId, HomeCommit> commits;
  for (const auto& [x, v] : writes) {
    auto& commit = commits[home_of_object(x)];
    commit.write_objects.push_back(x);
    commit.write_values.push_back(v);
  }
  const bool defer_unlocks = options_.aggregate && !writes.empty();
  if (defer_unlocks) {
    op.deferred_unlocks = op.locks;
  } else {
    for (const LockId lock : op.locks) {
      auto& commit = commits[home_of_lock(lock)];
      if (op.exclusive_locks.count(lock) > 0) {
        commit.unlock_exclusive.push_back(lock);
      } else {
        commit.unlock_shared.push_back(lock);
      }
    }
  }
  if (commits.empty()) {
    // Nothing to write and unlocks deferred: release directly.
    MOCC_ASSERT(defer_unlocks);
    op.deferred_unlocks.clear();
    for (const LockId lock : op.locks) {
      auto& commit = commits[home_of_lock(lock)];
      if (op.exclusive_locks.count(lock) > 0) {
        commit.unlock_exclusive.push_back(lock);
      } else {
        commit.unlock_shared.push_back(lock);
      }
    }
  }
  // mocc-check mutation: break the writes-and-unlocks-ride-together
  // invariant by splitting each home's commit into an unlock-only message
  // sent BEFORE a write-only one — on a reordering (or explored) network
  // the next lock holder can read the home copy before the write lands.
  std::vector<std::pair<sim::NodeId, HomeCommit>> messages;
  for (auto& [home, commit] : commits) {
    const bool has_writes = !commit.write_objects.empty();
    const bool has_unlocks =
        !commit.unlock_shared.empty() || !commit.unlock_exclusive.empty();
    if (options_.mutate_early_release && has_writes && has_unlocks) {
      HomeCommit unlocks;
      unlocks.unlock_shared.swap(commit.unlock_shared);
      unlocks.unlock_exclusive.swap(commit.unlock_exclusive);
      messages.emplace_back(home, std::move(unlocks));
    }
    messages.emplace_back(home, std::move(commit));
  }
  op.commit_acks_expected = messages.size();
  MOCC_ASSERT(op.commit_acks_expected > 0);
  for (const auto& [home, commit] : messages) {
    if (home == ctx.self()) {
      handle_commit_req(ctx, ctx.self(), op.id, commit.write_objects,
                        commit.write_values, commit.unlock_shared,
                        commit.unlock_exclusive);
      continue;
    }
    util::ByteWriter out;
    out.put_u64(op.id);
    out.put_u32_vector(commit.write_objects);
    out.put_i64_vector(commit.write_values);
    out.put_u32_vector(commit.unlock_shared);
    out.put_u32_vector(commit.unlock_exclusive);
    net_send(ctx, home, kCommitReq, out.take());
  }
}

void LockingReplica::on_commit_ack(sim::Context& ctx, std::uint64_t token) {
  const auto it = pending_.find(token);
  MOCC_ASSERT_MSG(it != pending_.end(), "commit ack for unknown token");
  PendingOp& op = it->second;
  MOCC_ASSERT(op.phase == Phase::kCommitting);
  ++op.commit_acks;
  if (op.commit_acks < op.commit_acks_expected) return;

  if (!op.deferred_unlocks.empty()) {
    // Aggregate mode, second round: all writes are durable at their
    // homes — now the lock may be released.
    struct HomeRelease {
      std::vector<std::uint32_t> unlock_shared;
      std::vector<std::uint32_t> unlock_exclusive;
    };
    std::map<sim::NodeId, HomeRelease> releases;
    for (const LockId lock : op.deferred_unlocks) {
      auto& release = releases[home_of_lock(lock)];
      if (op.exclusive_locks.count(lock) > 0) {
        release.unlock_exclusive.push_back(lock);
      } else {
        release.unlock_shared.push_back(lock);
      }
    }
    op.deferred_unlocks.clear();
    op.commit_acks = 0;
    op.commit_acks_expected = releases.size();
    for (const auto& [home, release] : releases) {
      if (home == ctx.self()) {
        handle_commit_req(ctx, ctx.self(), op.id, {}, {}, release.unlock_shared,
                          release.unlock_exclusive);
        continue;
      }
      util::ByteWriter out;
      out.put_u64(op.id);
      out.put_u32_vector({});
      out.put_i64_vector({});
      out.put_u32_vector(release.unlock_shared);
      out.put_u32_vector(release.unlock_exclusive);
      net_send(ctx, home, kCommitReq, out.take());
    }
    return;
  }

  PendingOp done = std::move(op);
  pending_.erase(it);
  const core::Time response_time = ctx.now();
  trace_mop_span(ctx, done.trace, done.id, done.invoke, done.program.is_update(),
                 std::nullopt, done.ops);
  // No version-vector timestamps: the locking baseline is not a §5
  // protocol; its histories are checked with the generic checkers.
  recorder_.complete(done.id, std::move(done.ops), response_time,
                     util::VersionVector(num_objects_), std::nullopt);
  trace_mop(ctx, obs::TraceEventType::kMOpRespond, done.id, done.invoke);
  done.on_response(
      InvocationOutcome{done.id, done.return_value, done.invoke, response_time});
}

// ----------------------------------------------------------------- home

void LockingReplica::handle_lock_req(sim::Context& ctx, sim::NodeId from,
                                     std::uint64_t token, LockId lock,
                                     bool exclusive) {
  MOCC_ASSERT(home_of_lock(lock) == ctx.self());
  LockState& state = home_locks_[lock];
  state.queue.push_back(
      LockState::Waiter{from, token, exclusive, ctx.trace_context(), ctx.now()});
  pump_lock_queue(ctx, lock);
}

void LockingReplica::pump_lock_queue(sim::Context& ctx, LockId lock) {
  // Each grant re-roots the trace context at the waiter's lock_wait span
  // so the grant (and everything it causes) is attributed to the wait;
  // restore afterwards so unrelated work in the same dispatch keeps its
  // own context.
  const obs::SpanContext outer = ctx.trace_context();
  LockState& state = home_locks_[lock];
  while (!state.queue.empty()) {
    const LockState::Waiter head = state.queue.front();
    if (head.exclusive) {
      if (state.shared_holders > 0 || state.exclusive_held) break;
      state.exclusive_held = true;
    } else {
      if (state.exclusive_held) break;
      ++state.shared_holders;  // strict FIFO: shared never overtakes
    }
    state.queue.erase(state.queue.begin());
    // Trace at the home, where the grant decision is made — the queue
    // wait that precedes this instant is the contention E6 measures.
    if (auto* sink = ctx.trace_sink()) {
      sink->on_event({obs::TraceEventType::kLockAcquire, ctx.now(), ctx.self(),
                      head.client, lock, head.token, head.exclusive ? 1u : 0u});
      if (head.trace.valid()) {
        obs::Span wait;
        wait.type = obs::SpanType::kLockWait;
        wait.trace_id = head.trace.trace_id;
        wait.span_id = ctx.new_span_id();
        wait.parent_span = head.trace.span_id;
        wait.begin = head.enqueued;
        wait.end = ctx.now();
        wait.node = ctx.self();
        wait.peer = head.client;
        wait.kind = lock;
        wait.id = head.token;
        wait.arg = head.exclusive ? 1u : 0u;
        sink->on_span(wait);
        ctx.set_trace_context(obs::SpanContext{wait.trace_id, wait.span_id});
      }
    }
    grant(ctx, head.client, head.token, lock);
    ctx.set_trace_context(outer);
  }
}

void LockingReplica::grant(sim::Context& ctx, sim::NodeId client, std::uint64_t token,
                           LockId lock) {
  if (client == ctx.self()) {
    on_lock_grant(ctx, token);
    return;
  }
  util::ByteWriter out;
  out.put_u64(token);
  out.put_u32(lock);
  net_send(ctx, client, kLockGrant, out.take());
}

void LockingReplica::handle_read_req(sim::Context& ctx, sim::NodeId from,
                                     std::uint64_t token,
                                     const std::vector<std::uint32_t>& objects) {
  std::vector<core::Value> values;
  std::vector<std::uint32_t> writers;
  values.reserve(objects.size());
  writers.reserve(objects.size());
  for (const auto x : objects) {
    MOCC_ASSERT(home_of_object(x) == ctx.self());
    const auto vit = home_values_.find(x);
    values.push_back(vit == home_values_.end() ? 0 : vit->second);
    const auto wit = home_writers_.find(x);
    writers.push_back(wit == home_writers_.end() ? core::kInitialMOp : wit->second);
  }
  if (from == ctx.self()) {
    on_read_resp(ctx, token, objects, values, writers);
    return;
  }
  util::ByteWriter out;
  out.put_u64(token);
  out.put_u32_vector(objects);
  out.put_i64_vector(values);
  out.put_u32_vector(writers);
  net_send(ctx, from, kReadResp, out.take());
}

void LockingReplica::handle_commit_req(sim::Context& ctx, sim::NodeId from,
                                       std::uint64_t token,
                                       const std::vector<std::uint32_t>& write_objects,
                                       const std::vector<core::Value>& write_values,
                                       const std::vector<std::uint32_t>& unlock_shared,
                                       const std::vector<std::uint32_t>& unlock_exclusive) {
  MOCC_ASSERT(write_objects.size() == write_values.size());
  for (std::size_t i = 0; i < write_objects.size(); ++i) {
    MOCC_ASSERT(home_of_object(write_objects[i]) == ctx.self());
    home_values_[write_objects[i]] = write_values[i];
    home_writers_[write_objects[i]] = static_cast<core::MOpId>(token);
  }
  for (const auto lock : unlock_shared) {
    LockState& state = home_locks_[lock];
    MOCC_ASSERT(state.shared_holders > 0);
    --state.shared_holders;
    if (auto* sink = ctx.trace_sink()) {
      sink->on_event({obs::TraceEventType::kLockRelease, ctx.now(), ctx.self(), from,
                      lock, token, 0});
    }
    pump_lock_queue(ctx, lock);
  }
  for (const auto lock : unlock_exclusive) {
    LockState& state = home_locks_[lock];
    MOCC_ASSERT(state.exclusive_held);
    state.exclusive_held = false;
    if (auto* sink = ctx.trace_sink()) {
      sink->on_event({obs::TraceEventType::kLockRelease, ctx.now(), ctx.self(), from,
                      lock, token, 1});
    }
    pump_lock_queue(ctx, lock);
  }
  if (from == ctx.self()) {
    on_commit_ack(ctx, token);
    return;
  }
  util::ByteWriter out;
  out.put_u64(token);
  net_send(ctx, from, kCommitAck, out.take());
}

// ------------------------------------------------------------- dispatch

void LockingReplica::handle_delivered(sim::Context& ctx, const sim::Message& message) {
  util::ByteReader in(message.payload);
  switch (message.kind) {
    case kLockReq: {
      const std::uint64_t token = in.get_u64();
      const LockId lock = in.get_u32();
      const bool exclusive = in.get_u8() != 0;
      handle_lock_req(ctx, message.from, token, lock, exclusive);
      return;
    }
    case kLockGrant: {
      const std::uint64_t token = in.get_u64();
      (void)in.get_u32();
      on_lock_grant(ctx, token);
      return;
    }
    case kReadReq: {
      const std::uint64_t token = in.get_u64();
      const auto objects = in.get_u32_vector();
      handle_read_req(ctx, message.from, token, objects);
      return;
    }
    case kReadResp: {
      const std::uint64_t token = in.get_u64();
      const auto objects = in.get_u32_vector();
      const auto values = in.get_i64_vector();
      const auto writers = in.get_u32_vector();
      on_read_resp(ctx, token, objects, values, writers);
      return;
    }
    case kCommitReq: {
      const std::uint64_t token = in.get_u64();
      const auto write_objects = in.get_u32_vector();
      const auto write_values = in.get_i64_vector();
      const auto unlock_shared = in.get_u32_vector();
      const auto unlock_exclusive = in.get_u32_vector();
      handle_commit_req(ctx, message.from, token, write_objects, write_values,
                        unlock_shared, unlock_exclusive);
      return;
    }
    case kCommitAck: {
      const std::uint64_t token = in.get_u64();
      on_commit_ack(ctx, token);
      return;
    }
    default:
      MOCC_ASSERT_MSG(false, "locking replica received a foreign message kind");
  }
}

}  // namespace mocc::protocols
