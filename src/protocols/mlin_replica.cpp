#include "protocols/mlin_replica.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mocc::protocols {

MLinReplica::MLinReplica(std::size_t num_objects,
                         std::unique_ptr<abcast::AtomicBroadcast> abcast,
                         ExecutionRecorder& recorder, Options options)
    : num_objects_(num_objects),
      abcast_(std::move(abcast)),
      recorder_(recorder),
      options_(options),
      my_x_(num_objects, 0),
      myts_(num_objects),
      last_writer_(num_objects, core::kInitialMOp) {
  MOCC_ASSERT(abcast_ != nullptr);
}

void MLinReplica::on_start(sim::Context& ctx) {
  abcast_->set_deliver([this](sim::Context& live_ctx, sim::NodeId origin,
                              const std::vector<std::uint8_t>& payload) {
    on_deliver(live_ctx, origin, payload);
  });
  abcast_->set_reliable_link(reliable_link());
  abcast_->on_start(ctx);
}

void MLinReplica::invoke(sim::Context& ctx, mscript::Program program,
                         ResponseFn on_response) {
  const core::Time invoke_time = ctx.now();
  const core::MOpId id = recorder_.begin(ctx.self(), program.name(), invoke_time);
  trace_mop(ctx, obs::TraceEventType::kMOpInvoke, id, program.is_update() ? 1 : 0);
  const obs::SpanContext root = ctx.begin_trace();

  if (program.is_update()) {
    // (A1): identical to Figure 4.
    util::ByteWriter out;
    out.put_u32(id);
    program.encode(out);
    pending_updates_[id] = PendingUpdate{std::move(on_response), invoke_time, root};
    abcast_->broadcast(ctx, out.take());
    return;
  }

  // (A3): ask every process for its copy. Our own copy seeds othX/othts.
  const std::uint64_t qid = next_qid_++;
  PendingQuery query;
  query.id = id;
  query.program = program;
  query.on_response = std::move(on_response);
  query.invoke = invoke_time;
  query.trace = root;
  query.oth_x = my_x_;
  query.othts = myts_;
  query.oth_writer = last_writer_;

  util::ByteWriter out;
  out.put_u64(qid);
  if (options_.narrow_replies) {
    out.put_u32_vector(program.may_read());
  } else {
    out.put_u32_vector({});  // empty = whole store
  }
  pending_queries_[qid] = std::move(query);

  if (ctx.num_nodes() == 1) {
    finish_query(ctx, qid);
    return;
  }
  net_send_to_others(ctx, kQuery, out.bytes());
}

void MLinReplica::on_deliver(sim::Context& ctx, sim::NodeId origin,
                             const std::vector<std::uint8_t>& payload) {
  // (A2): identical to Figure 4.
  util::ByteReader in(payload);
  const core::MOpId id = in.get_u32();
  const mscript::Program program = mscript::Program::decode(in);

  const std::uint64_t ww_seq = deliveries_++;

  // mocc-check mutation: drop the first foreign delivery on the floor
  // (slot consumed, state untouched) — this replica's copy goes stale.
  if (options_.mutate_skip_first_foreign && !mutation_skipped_ &&
      origin != ctx.self()) {
    mutation_skipped_ = true;
    return;
  }

  RecordingStore store(my_x_, last_writer_, id);
  const mscript::ExecutionResult exec = mscript::Vm::run(program, store);
  for (const mscript::ObjectId x : exec.objects_written()) {
    myts_.increment(x);
  }

  if (origin == ctx.self()) {
    const auto it = pending_updates_.find(id);
    MOCC_ASSERT_MSG(it != pending_updates_.end(),
                    "delivered own update without pending state");
    const PendingUpdate pending = std::move(it->second);
    pending_updates_.erase(it);
    const core::Time response_time = ctx.now();
    std::vector<core::Operation> ops = store.take_ops();
    trace_mop_span(ctx, pending.trace, id, pending.invoke, true, ww_seq, ops);
    recorder_.complete(id, std::move(ops), response_time, myts_, ww_seq);
    trace_mop(ctx, obs::TraceEventType::kMOpRespond, id, pending.invoke);
    pending.on_response(
        InvocationOutcome{id, exec.return_value, pending.invoke, response_time});
  }
}

void MLinReplica::on_query(sim::Context& ctx, const sim::Message& message) {
  // (A4): reply with our copy and its timestamps (plus the last-writer
  // table, which exists for history recording, not for the protocol).
  util::ByteReader in(message.payload);
  const std::uint64_t qid = in.get_u64();
  const std::vector<std::uint32_t> objects = in.get_u32_vector();

  util::ByteWriter out;
  out.put_u64(qid);
  out.put_u32_vector(objects);
  out.put_u64_vector(myts_.entries());  // full ts always (8B/object)
  if (objects.empty()) {
    out.put_i64_vector(my_x_);
    out.put_u32_vector(last_writer_);
  } else {
    std::vector<core::Value> values;
    std::vector<core::MOpId> writers;
    values.reserve(objects.size());
    writers.reserve(objects.size());
    for (const auto x : objects) {
      MOCC_ASSERT(x < num_objects_);
      values.push_back(my_x_[x]);
      writers.push_back(last_writer_[x]);
    }
    out.put_i64_vector(values);
    out.put_u32_vector(writers);
  }
  net_send(ctx, message.from, kQueryResp, out.take());
}

void MLinReplica::on_query_response(sim::Context& ctx, const sim::Message& message) {
  util::ByteReader in(message.payload);
  const std::uint64_t qid = in.get_u64();
  const std::vector<std::uint32_t> objects = in.get_u32_vector();
  auto entries = in.get_u64_vector();
  MOCC_ASSERT(entries.size() == num_objects_);
  const util::VersionVector ts = util::VersionVector::from_entries(std::move(entries));
  const std::vector<core::Value> values = in.get_i64_vector();
  const std::vector<std::uint32_t> writers = in.get_u32_vector();

  const auto it = pending_queries_.find(qid);
  MOCC_ASSERT_MSG(it != pending_queries_.end(), "query response for unknown query");
  PendingQuery& query = it->second;

  if (objects.empty()) {
    // (A5), literal: replicas driven by the same total order hold
    // pointwise-comparable timestamps — keep the larger copy whole.
    MOCC_ASSERT_MSG(query.othts.comparable(ts),
                    "replica timestamps not comparable — abcast order broken");
    if (query.othts.pointwise_less(ts)) {
      MOCC_ASSERT(values.size() == num_objects_ && writers.size() == num_objects_);
      query.oth_x = values;
      query.othts = ts;
      query.oth_writer = writers;
    }
  } else {
    // Narrow replies (§5.2 closing remark): take each object from the
    // freshest copy seen; merge timestamps componentwise for ts(finish).
    MOCC_ASSERT(values.size() == objects.size() && writers.size() == objects.size());
    for (std::size_t i = 0; i < objects.size(); ++i) {
      const auto x = objects[i];
      if (ts[x] > query.othts[x]) {
        query.oth_x[x] = values[i];
        query.oth_writer[x] = writers[i];
      }
    }
    query.othts.merge_max(ts);
  }

  ++query.replies;
  if (query.replies == ctx.num_nodes() - 1) {
    finish_query(ctx, qid);
  }
}

void MLinReplica::finish_query(sim::Context& ctx, std::uint64_t qid) {
  // (A6): all replies in — read from the constructed copy and respond.
  const auto it = pending_queries_.find(qid);
  MOCC_ASSERT(it != pending_queries_.end());
  PendingQuery query = std::move(it->second);
  pending_queries_.erase(it);

  RecordingStore store(query.oth_x, query.oth_writer, query.id);
  const mscript::ExecutionResult exec = mscript::Vm::run(query.program, store);
  MOCC_ASSERT_MSG(exec.objects_written().empty(), "query program performed a write");

  const core::Time response_time = ctx.now();
  std::vector<core::Operation> ops = store.take_ops();
  trace_mop_span(ctx, query.trace, query.id, query.invoke, false, std::nullopt, ops);
  recorder_.complete(query.id, std::move(ops), response_time, query.othts,
                     std::nullopt);
  trace_mop(ctx, obs::TraceEventType::kMOpRespond, query.id, query.invoke);
  query.on_response(
      InvocationOutcome{query.id, exec.return_value, query.invoke, response_time});
}

void MLinReplica::handle_delivered(sim::Context& ctx, const sim::Message& message) {
  if (message.kind == kQuery) {
    on_query(ctx, message);
    return;
  }
  if (message.kind == kQueryResp) {
    on_query_response(ctx, message);
    return;
  }
  const bool consumed = abcast_->on_message(ctx, message);
  MOCC_ASSERT_MSG(consumed, "m-lin replica received a foreign message kind");
}

}  // namespace mocc::protocols
