#include "protocols/mlin_replica.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mocc::protocols {

namespace {

/// (A5) for one reply: fold ⟨X, ts⟩ into the freshest-copy accumulator.
/// Full replies (objects empty) rely on pointwise comparability and keep
/// the larger copy whole; narrow replies take each object from the
/// freshest copy seen and merge timestamps componentwise.
void merge_reply(std::vector<core::Value>& oth_x, util::VersionVector& othts,
                 std::vector<core::MOpId>& oth_writer,
                 const std::vector<std::uint32_t>& objects,
                 const util::VersionVector& ts,
                 const std::vector<core::Value>& values,
                 const std::vector<std::uint32_t>& writers,
                 std::size_t num_objects) {
  if (objects.empty()) {
    MOCC_ASSERT_MSG(othts.comparable(ts),
                    "replica timestamps not comparable — abcast order broken");
    if (othts.pointwise_less(ts)) {
      MOCC_ASSERT(values.size() == num_objects && writers.size() == num_objects);
      oth_x = values;
      othts = ts;
      oth_writer = writers;
    }
  } else {
    MOCC_ASSERT(values.size() == objects.size() && writers.size() == objects.size());
    for (std::size_t i = 0; i < objects.size(); ++i) {
      const auto x = objects[i];
      if (ts[x] > othts[x]) {
        oth_x[x] = values[i];
        oth_writer[x] = writers[i];
      }
    }
    othts.merge_max(ts);
  }
}

}  // namespace

MLinReplica::MLinReplica(std::size_t num_objects,
                         std::unique_ptr<abcast::AtomicBroadcast> abcast,
                         ExecutionRecorder& recorder, Options options)
    : num_objects_(num_objects),
      abcast_(std::move(abcast)),
      recorder_(recorder),
      options_(options),
      my_x_(num_objects, 0),
      myts_(num_objects),
      last_writer_(num_objects, core::kInitialMOp) {
  MOCC_ASSERT(abcast_ != nullptr);
}

void MLinReplica::on_start(sim::Context& ctx) {
  abcast_->set_deliver([this](sim::Context& live_ctx, sim::NodeId origin,
                              const std::vector<std::uint8_t>& payload) {
    on_deliver(live_ctx, origin, payload);
  });
  abcast_->set_reliable_link(reliable_link());
  route_timers_to_abcast(abcast_.get());
  abcast_->on_start(ctx);
}

void MLinReplica::invoke(sim::Context& ctx, mscript::Program program,
                         ResponseFn on_response) {
  const core::Time invoke_time = ctx.now();
  const core::MOpId id = recorder_.begin(ctx.self(), program.name(), invoke_time);
  trace_mop(ctx, obs::TraceEventType::kMOpInvoke, id, program.is_update() ? 1 : 0);
  const obs::SpanContext root = ctx.begin_trace();

  if (program.is_update()) {
    // (A1): identical to Figure 4.
    util::ByteWriter out;
    out.put_u32(id);
    program.encode(out);
    pending_updates_[id] = PendingUpdate{std::move(on_response), invoke_time, root};
    abcast_->broadcast(ctx, out.take());
    return;
  }

  // (A3): ask every process for its copy. Our own copy seeds othX/othts.
  const std::uint64_t qid = next_qid_++;
  PendingQuery query;
  query.id = id;
  query.program = program;
  query.on_response = std::move(on_response);
  query.invoke = invoke_time;
  query.trace = root;

  if (options_.batch_queries) {
    // Query rounds: join the waiting set; the round that serves this
    // query opens strictly after this invocation, so the round's merged
    // copy is fresh enough for it (header comment). The merged state
    // lives at round level — this query's oth fields stay empty until
    // complete_round hands the copy over.
    pending_queries_[qid] = std::move(query);
    waiting_.push_back(qid);
    if (!round_active_) start_round(ctx);
    return;
  }

  query.oth_x = my_x_;
  query.othts = myts_;
  query.oth_writer = last_writer_;

  util::ByteWriter out;
  out.put_u64(qid);
  if (options_.narrow_replies) {
    out.put_u32_vector(program.may_read());
  } else {
    out.put_u32_vector({});  // empty = whole store
  }
  pending_queries_[qid] = std::move(query);

  if (ctx.num_nodes() == 1) {
    finish_query(ctx, qid);
    return;
  }
  net_send_to_others(ctx, kQuery, out.bytes());
}

void MLinReplica::on_deliver(sim::Context& ctx, sim::NodeId origin,
                             const std::vector<std::uint8_t>& payload) {
  // (A2): identical to Figure 4.
  util::ByteReader in(payload);
  const core::MOpId id = in.get_u32();
  const mscript::Program program = mscript::Program::decode(in);

  const std::uint64_t ww_seq = deliveries_++;

  // mocc-check mutation: drop the first foreign delivery on the floor
  // (slot consumed, state untouched) — this replica's copy goes stale.
  if (options_.mutate_skip_first_foreign && !mutation_skipped_ &&
      origin != ctx.self()) {
    mutation_skipped_ = true;
    return;
  }

  RecordingStore store(my_x_, last_writer_, id);
  const mscript::ExecutionResult exec = mscript::Vm::run(program, store);
  for (const mscript::ObjectId x : exec.objects_written()) {
    myts_.increment(x);
  }

  if (origin == ctx.self()) {
    const auto it = pending_updates_.find(id);
    MOCC_ASSERT_MSG(it != pending_updates_.end(),
                    "delivered own update without pending state");
    const PendingUpdate pending = std::move(it->second);
    pending_updates_.erase(it);
    const core::Time response_time = ctx.now();
    std::vector<core::Operation> ops = store.take_ops();
    trace_mop_span(ctx, pending.trace, id, pending.invoke, true, ww_seq, ops);
    recorder_.complete(id, std::move(ops), response_time, myts_, ww_seq);
    trace_mop(ctx, obs::TraceEventType::kMOpRespond, id, pending.invoke);
    pending.on_response(
        InvocationOutcome{id, exec.return_value, pending.invoke, response_time});
  }
}

void MLinReplica::on_query(sim::Context& ctx, const sim::Message& message,
                           std::uint32_t resp_kind) {
  // (A4): reply with our copy and its timestamps (plus the last-writer
  // table, which exists for history recording, not for the protocol).
  // Round requests (kQueryBatch) share the body layout — `qid` is then a
  // round id and the reply goes back as resp_kind = kQueryRespBatch.
  util::ByteReader in(message.payload);
  const std::uint64_t qid = in.get_u64();
  const std::vector<std::uint32_t> objects = in.get_u32_vector();

  util::ByteWriter out;
  out.put_u64(qid);
  out.put_u32_vector(objects);
  out.put_u64_vector(myts_.entries());  // full ts always (8B/object)
  if (objects.empty()) {
    out.put_i64_vector(my_x_);
    out.put_u32_vector(last_writer_);
  } else {
    std::vector<core::Value> values;
    std::vector<core::MOpId> writers;
    values.reserve(objects.size());
    writers.reserve(objects.size());
    for (const auto x : objects) {
      MOCC_ASSERT(x < num_objects_);
      values.push_back(my_x_[x]);
      writers.push_back(last_writer_[x]);
    }
    out.put_i64_vector(values);
    out.put_u32_vector(writers);
  }
  net_send(ctx, message.from, resp_kind, out.take());
}

void MLinReplica::on_query_response(sim::Context& ctx, const sim::Message& message) {
  util::ByteReader in(message.payload);
  const std::uint64_t qid = in.get_u64();
  const std::vector<std::uint32_t> objects = in.get_u32_vector();
  auto entries = in.get_u64_vector();
  MOCC_ASSERT(entries.size() == num_objects_);
  const util::VersionVector ts = util::VersionVector::from_entries(std::move(entries));
  const std::vector<core::Value> values = in.get_i64_vector();
  const std::vector<std::uint32_t> writers = in.get_u32_vector();

  const auto it = pending_queries_.find(qid);
  MOCC_ASSERT_MSG(it != pending_queries_.end(), "query response for unknown query");
  PendingQuery& query = it->second;

  merge_reply(query.oth_x, query.othts, query.oth_writer, objects, ts, values,
              writers, num_objects_);

  ++query.replies;
  if (query.replies == ctx.num_nodes() - 1) {
    finish_query(ctx, qid);
  }
}

void MLinReplica::start_round(sim::Context& ctx) {
  MOCC_ASSERT(!round_active_ && !waiting_.empty());
  round_active_ = true;
  round_ = QueryRound{};
  round_.id = next_round_id_++;
  round_.qids.swap(waiting_);
  // Seed the round's accumulator from the local copy *now* — the round
  // opens after every member invoked, so this is fresh enough for all.
  round_.oth_x = my_x_;
  round_.othts = myts_;
  round_.oth_writer = last_writer_;

  if (options_.narrow_replies) {
    // Footprint = union of the members' may_read sets. An empty union
    // would be encoded as "whole store", so fall back to full replies in
    // that (read-nothing) corner instead of widening the wire meaning.
    std::vector<std::uint32_t> footprint;
    for (const std::uint64_t qid : round_.qids) {
      const auto& may_read = pending_queries_.at(qid).program.may_read();
      footprint.insert(footprint.end(), may_read.begin(), may_read.end());
    }
    std::sort(footprint.begin(), footprint.end());
    footprint.erase(std::unique(footprint.begin(), footprint.end()),
                    footprint.end());
    round_.footprint = std::move(footprint);
  }

  util::ByteWriter out;
  out.put_u64(round_.id);
  out.put_u32_vector(round_.footprint);
  const std::vector<std::uint8_t> frame = out.take();

  if (auto* sink = ctx.trace_sink()) {
    sink->on_event({obs::TraceEventType::kBatchFlush, ctx.now(), ctx.self(),
                    /*peer=*/0, /*kind=*/2, frame.size(), round_.qids.size()});
  }

  if (ctx.num_nodes() == 1) {
    complete_round(ctx);
    return;
  }

  // The round's wire exchange carries the first member's trace context
  // (carrier semantics, docs/batching.md); per-member spans are closed
  // from each PendingQuery's own root at finish_query.
  const obs::SpanContext outer = ctx.trace_context();
  ctx.set_trace_context(pending_queries_.at(round_.qids.front()).trace);
  net_send_to_others(ctx, kQueryBatch, frame);
  ctx.set_trace_context(outer);
}

void MLinReplica::on_round_response(sim::Context& ctx, const sim::Message& message) {
  util::ByteReader in(message.payload);
  const std::uint64_t round_id = in.get_u64();
  const std::vector<std::uint32_t> objects = in.get_u32_vector();
  auto entries = in.get_u64_vector();
  MOCC_ASSERT(entries.size() == num_objects_);
  const util::VersionVector ts = util::VersionVector::from_entries(std::move(entries));
  const std::vector<core::Value> values = in.get_i64_vector();
  const std::vector<std::uint32_t> writers = in.get_u32_vector();

  MOCC_ASSERT_MSG(round_active_ && round_id == round_.id,
                  "round response for a round that is not in flight");
  merge_reply(round_.oth_x, round_.othts, round_.oth_writer, objects, ts, values,
              writers, num_objects_);

  ++round_.replies;
  if (round_.replies == ctx.num_nodes() - 1) {
    complete_round(ctx);
  }
}

void MLinReplica::complete_round(sim::Context& ctx) {
  MOCC_ASSERT(round_active_);
  QueryRound round = std::move(round_);
  round_ = QueryRound{};

  for (const std::uint64_t qid : round.qids) {
    PendingQuery& query = pending_queries_.at(qid);
    query.oth_x = round.oth_x;
    query.othts = round.othts;
    query.oth_writer = round.oth_writer;
    // finish_query's on_response may re-enter invoke (closed-loop
    // drivers): new queries land in waiting_ and are served by the next
    // round, because round_active_ stays set until after this loop.
    finish_query(ctx, qid);
  }

  round_active_ = false;
  if (!waiting_.empty()) start_round(ctx);
}

void MLinReplica::finish_query(sim::Context& ctx, std::uint64_t qid) {
  // (A6): all replies in — read from the constructed copy and respond.
  const auto it = pending_queries_.find(qid);
  MOCC_ASSERT(it != pending_queries_.end());
  PendingQuery query = std::move(it->second);
  pending_queries_.erase(it);

  RecordingStore store(query.oth_x, query.oth_writer, query.id);
  const mscript::ExecutionResult exec = mscript::Vm::run(query.program, store);
  MOCC_ASSERT_MSG(exec.objects_written().empty(), "query program performed a write");

  const core::Time response_time = ctx.now();
  std::vector<core::Operation> ops = store.take_ops();
  trace_mop_span(ctx, query.trace, query.id, query.invoke, false, std::nullopt, ops);
  recorder_.complete(query.id, std::move(ops), response_time, query.othts,
                     std::nullopt);
  trace_mop(ctx, obs::TraceEventType::kMOpRespond, query.id, query.invoke);
  query.on_response(
      InvocationOutcome{query.id, exec.return_value, query.invoke, response_time});
}

void MLinReplica::handle_delivered(sim::Context& ctx, const sim::Message& message) {
  if (message.kind == kQuery) {
    on_query(ctx, message, kQueryResp);
    return;
  }
  if (message.kind == kQueryBatch) {
    on_query(ctx, message, kQueryRespBatch);
    return;
  }
  if (message.kind == kQueryResp) {
    on_query_response(ctx, message);
    return;
  }
  if (message.kind == kQueryRespBatch) {
    on_round_response(ctx, message);
    return;
  }
  const bool consumed = abcast_->on_message(ctx, message);
  MOCC_ASSERT_MSG(consumed, "m-lin replica received a foreign message kind");
}

}  // namespace mocc::protocols
