// Common replica interface.
//
// One replica per simulated process. Drivers invoke m-operations
// (MScript programs) at a replica and receive an asynchronous completion;
// the replica records the execution with the shared ExecutionRecorder.
// Node ids and the paper's process ids coincide.
#pragma once

#include <functional>

#include "core/types.hpp"
#include "mscript/vm.hpp"
#include "obs/trace.hpp"
#include "protocols/recorder.hpp"
#include "sim/simulator.hpp"

namespace mocc::protocols {

/// Protocol-layer message kinds (the abcast layer owns 100–199).
inline constexpr std::uint32_t kProtocolKindFirst = 200;

struct InvocationOutcome {
  core::MOpId id = 0;
  mscript::Value return_value = 0;
  core::Time invoke = 0;
  core::Time response = 0;
};

using ResponseFn = std::function<void(const InvocationOutcome&)>;

/// Emits an m-operation lifecycle trace event (kMOpInvoke with arg = "is
/// update", kMOpRespond with arg = invocation time) when the simulator
/// has a sink attached; free otherwise. Every replica protocol calls this
/// at its invoke and respond points so traces are protocol-agnostic.
inline void trace_mop(sim::Context& ctx, obs::TraceEventType type, core::MOpId id,
                      std::uint64_t arg) {
  if (auto* sink = ctx.trace_sink()) {
    sink->on_event({type, ctx.now(), ctx.self(), 0, 0, id, arg});
  }
}

class Replica : public sim::Actor {
 public:
  /// Starts executing `program` as one m-operation of this process.
  /// `on_response` fires exactly once, at response time. At most one
  /// invocation may be outstanding per replica (processes are sequential
  /// threads of control, §2.1); drivers are closed-loop by construction.
  virtual void invoke(sim::Context& ctx, mscript::Program program,
                      ResponseFn on_response) = 0;
};

/// StoreView against a replica-local copy that records accesses at
/// m-operation granularity: reads capture the last-writer m-operation of
/// the copy they read, writes update value and last-writer.
class RecordingStore final : public mscript::StoreView {
 public:
  RecordingStore(std::vector<core::Value>& values,
                 std::vector<core::MOpId>& last_writer, core::MOpId self);

  mscript::Value read(mscript::ObjectId object) override;
  void write(mscript::ObjectId object, mscript::Value value) override;

  /// Operations in program order, reads annotated with reads-from.
  std::vector<core::Operation> take_ops() { return std::move(ops_); }

 private:
  std::vector<core::Value>& values_;
  std::vector<core::MOpId>& last_writer_;
  core::MOpId self_;
  std::vector<core::Operation> ops_;
};

}  // namespace mocc::protocols
