// Common replica interface.
//
// One replica per simulated process. Drivers invoke m-operations
// (MScript programs) at a replica and receive an asynchronous completion;
// the replica records the execution with the shared ExecutionRecorder.
// Node ids and the paper's process ids coincide.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "abcast/abcast.hpp"
#include "core/moperation.hpp"
#include "core/types.hpp"
#include "fault/reliable_link.hpp"
#include "mscript/vm.hpp"
#include "obs/trace.hpp"
#include "protocols/recorder.hpp"
#include "sim/simulator.hpp"
#include "sim/wire_kinds.hpp"

namespace mocc::protocols {

/// Protocol-layer message kinds (range [200, 299]; the simulator-wide
/// partition lives in sim/wire_kinds.hpp).
inline constexpr std::uint32_t kProtocolKindFirst = sim::wire::kProtocolsFirst;

struct InvocationOutcome {
  core::MOpId id = 0;
  mscript::Value return_value = 0;
  core::Time invoke = 0;
  core::Time response = 0;
};

using ResponseFn = std::function<void(const InvocationOutcome&)>;

/// Emits an m-operation lifecycle trace event (kMOpInvoke with arg = "is
/// update", kMOpRespond with arg = invocation time) when the simulator
/// has a sink attached; free otherwise. Every replica protocol calls this
/// at its invoke and respond points so traces are protocol-agnostic.
inline void trace_mop(sim::Context& ctx, obs::TraceEventType type, core::MOpId id,
                      std::uint64_t arg) {
  if (auto* sink = ctx.trace_sink()) {
    sink->on_event({type, ctx.now(), ctx.self(), 0, 0, id, arg});
  }
}

/// Closes the causal trace of one m-operation at its response point:
/// emits one op_read / op_write event per operation in program order (the
/// audit trail trace_query rebuilds the history from — reads carry their
/// reads-from writer in `peer`), then the root `mop` span covering
/// [invoke, respond]. `root` is what Context::begin_trace returned at the
/// invocation; invalid (tracing off) makes this a no-op. The span's arg
/// packs `is_update` in bit 0 and `ww_seq + 1` in the remaining bits
/// (0 = no ww position), which is enough for the analyzer to rebuild the
/// ~ww synchronization order.
inline void trace_mop_span(sim::Context& ctx, obs::SpanContext root, core::MOpId id,
                           core::Time invoke, bool is_update,
                           std::optional<std::uint64_t> ww_seq,
                           const std::vector<core::Operation>& ops) {
  auto* sink = ctx.trace_sink();
  if (sink == nullptr || !root.valid()) return;
  for (const core::Operation& op : ops) {
    obs::TraceEvent event;
    event.type = op.type == core::OpType::kRead ? obs::TraceEventType::kOpRead
                                                : obs::TraceEventType::kOpWrite;
    event.time = ctx.now();
    event.node = ctx.self();
    event.peer = op.type == core::OpType::kRead ? op.reads_from : 0;
    event.kind = op.object;
    event.id = id;
    event.arg = static_cast<std::uint64_t>(op.value);
    sink->on_event(event);
  }
  obs::Span span;
  span.type = obs::SpanType::kMOp;
  span.trace_id = root.trace_id;
  span.span_id = root.span_id;
  span.parent_span = 0;
  span.begin = invoke;
  span.end = ctx.now();
  span.node = ctx.self();
  span.id = id;
  span.arg = (is_update ? 1u : 0u) |
             ((ww_seq.has_value() ? *ww_seq + 1 : 0) << 1);
  sink->on_span(span);
}

class Replica : public sim::Actor {
 public:
  /// Starts executing `program` as one m-operation of this process.
  /// `on_response` fires exactly once, at response time. At most one
  /// invocation may be outstanding per replica (processes are sequential
  /// threads of control, §2.1); drivers are closed-loop by construction.
  virtual void invoke(sim::Context& ctx, mscript::Program program,
                      ResponseFn on_response) = 0;

  /// Attaches a reliable-delivery layer (owned, one per node). From then
  /// on every network send of this replica — and of the abcast instance
  /// it hosts — goes through ack + retransmit, and incoming link frames
  /// are unwrapped before protocol dispatch. Null (the default) is the
  /// paper's reliable-network model: sends go raw.
  void set_reliable_link(std::unique_ptr<fault::ReliableLink> link) {
    link_ = std::move(link);
    if (link_ != nullptr) {
      link_->set_deliver([this](sim::Context& ctx, const sim::Message& message) {
        handle_delivered(ctx, message);
      });
    }
  }
  fault::ReliableLink* reliable_link() const { return link_.get(); }

  /// Link frames (data/acks) are consumed here; everything else — and
  /// every payload the link unwraps — reaches handle_delivered.
  void on_message(sim::Context& ctx, const sim::Message& message) final {
    if (link_ != nullptr && link_->on_message(ctx, message)) return;
    handle_delivered(ctx, message);
  }

  void on_timer(sim::Context& ctx, std::uint64_t timer_id) final {
    if (link_ != nullptr && link_->on_timer(ctx, timer_id)) return;
    if (abcast_timers_ != nullptr && abcast_timers_->on_timer(ctx, timer_id)) {
      return;
    }
    handle_timer(ctx, timer_id);
  }

 protected:
  /// Subclasses hosting an atomic broadcast register it here (alongside
  /// wiring its deliver callback) so its timers — group-commit flush
  /// deadlines — get routed: link first, then abcast, then handle_timer.
  void route_timers_to_abcast(abcast::AtomicBroadcast* abcast) {
    abcast_timers_ = abcast;
  }

  /// Protocol-level dispatch, called once per application message
  /// whether it arrived raw or via the reliable link.
  virtual void handle_delivered(sim::Context& ctx, const sim::Message& message) = 0;

  virtual void handle_timer(sim::Context& ctx, std::uint64_t timer_id) {
    (void)ctx;
    (void)timer_id;
  }

  /// Send indirection for protocol code: reliable when a link is
  /// attached, plain Context::send otherwise.
  void net_send(sim::Context& ctx, sim::NodeId to, std::uint32_t kind,
                std::vector<std::uint8_t> payload) {
    if (link_ != nullptr) {
      link_->send(ctx, to, kind, std::move(payload));
      return;
    }
    ctx.send(to, kind, std::move(payload));
  }

  void net_send_to_others(sim::Context& ctx, std::uint32_t kind,
                          const std::vector<std::uint8_t>& payload) {
    if (link_ == nullptr) {
      ctx.send_to_others(kind, payload);
      return;
    }
    for (sim::NodeId to = 0; to < ctx.num_nodes(); ++to) {
      if (to != ctx.self()) link_->send(ctx, to, kind, payload);
    }
  }

 private:
  std::unique_ptr<fault::ReliableLink> link_;
  abcast::AtomicBroadcast* abcast_timers_ = nullptr;  ///< not owned
};

/// StoreView against a replica-local copy that records accesses at
/// m-operation granularity: reads capture the last-writer m-operation of
/// the copy they read, writes update value and last-writer.
class RecordingStore final : public mscript::StoreView {
 public:
  RecordingStore(std::vector<core::Value>& values,
                 std::vector<core::MOpId>& last_writer, core::MOpId self);

  mscript::Value read(mscript::ObjectId object) override;
  void write(mscript::ObjectId object, mscript::Value value) override;

  /// Operations in program order, reads annotated with reads-from.
  std::vector<core::Operation> take_ops() { return std::move(ops_); }

 private:
  std::vector<core::Value>& values_;
  std::vector<core::MOpId>& last_writer_;
  core::MOpId self_;
  std::vector<core::Operation> ops_;
};

}  // namespace mocc::protocols
