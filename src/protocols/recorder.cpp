#include "protocols/recorder.hpp"

#include <algorithm>

#include "core/relations.hpp"
#include "util/assert.hpp"

namespace mocc::protocols {

ExecutionRecorder::ExecutionRecorder(std::size_t num_processes, std::size_t num_objects)
    : num_processes_(num_processes), num_objects_(num_objects) {}

core::MOpId ExecutionRecorder::begin(core::ProcessId process, std::string label,
                                     core::Time invoke) {
  MOCC_ASSERT(process < num_processes_);
  InvocationRecord record;
  record.process = process;
  record.label = std::move(label);
  record.invoke = invoke;
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
  return static_cast<core::MOpId>(records_.size() - 1);
}

void ExecutionRecorder::complete(core::MOpId id, std::vector<core::Operation> ops,
                                 core::Time response, util::VersionVector timestamp,
                                 std::optional<std::uint64_t> ww_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  MOCC_ASSERT(id < records_.size());
  InvocationRecord& record = records_[id];
  MOCC_ASSERT_MSG(!record.completed, "double completion");
  record.ops = std::move(ops);
  record.response = response;
  record.timestamp = std::move(timestamp);
  record.ww_seq = ww_seq;
  record.completed = true;
}

std::size_t ExecutionRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

bool ExecutionRecorder::all_completed_locked() const {
  for (const auto& record : records_) {
    if (!record.completed) return false;
  }
  return true;
}

bool ExecutionRecorder::all_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return all_completed_locked();
}

const InvocationRecord& ExecutionRecorder::record(core::MOpId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  MOCC_ASSERT(id < records_.size());
  return records_[id];
}

core::History ExecutionRecorder::build_history() const {
  std::lock_guard<std::mutex> lock(mu_);
  MOCC_ASSERT_MSG(all_completed_locked(),
                  "cannot build history with outstanding invocations");
  core::History h(num_processes_, num_objects_);
  for (const auto& record : records_) {
    h.add(core::MOperation(record.process, record.ops, record.invoke, record.response,
                           record.label));
  }
  return h;
}

util::BitRelation ExecutionRecorder::build_ww_order_locked() const {
  util::BitRelation ww(records_.size());
  std::vector<std::pair<std::uint64_t, core::MOpId>> updates;
  for (core::MOpId id = 0; id < records_.size(); ++id) {
    if (records_[id].ww_seq.has_value()) updates.emplace_back(*records_[id].ww_seq, id);
  }
  std::sort(updates.begin(), updates.end());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    for (std::size_t j = i + 1; j < updates.size(); ++j) {
      ww.add(updates[i].second, updates[j].second);
    }
  }
  return ww;
}

util::BitRelation ExecutionRecorder::build_ww_order() const {
  std::lock_guard<std::mutex> lock(mu_);
  return build_ww_order_locked();
}

core::ProtocolTrace ExecutionRecorder::build_trace(const core::History& h,
                                                   bool include_process_order) const {
  std::lock_guard<std::mutex> lock(mu_);
  MOCC_ASSERT(h.size() == records_.size());
  core::ProtocolTrace trace;
  trace.sync_order = core::reads_from_order(h);
  if (include_process_order) {
    trace.sync_order.merge(core::process_order(h));  // Figure 4: ~P ∪ ~rf ∪ ~ww
  } else {
    trace.sync_order.merge(core::real_time_order(h));  // Figure 6: ~rf ∪ ~t ∪ ~ww
  }
  trace.sync_order.merge(build_ww_order_locked());
  trace.timestamps.reserve(records_.size());
  trace.is_update.reserve(records_.size());
  for (const auto& record : records_) {
    util::VersionVector ts = record.timestamp;
    if (ts.empty()) ts = util::VersionVector(num_objects_);
    trace.timestamps.push_back(std::move(ts));
    // Broadcast position present <=> conservatively an update.
    trace.is_update.push_back(record.ww_seq.has_value());
  }
  return trace;
}

}  // namespace mocc::protocols
