#include "protocols/mseq_replica.hpp"

#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mocc::protocols {

RecordingStore::RecordingStore(std::vector<core::Value>& values,
                               std::vector<core::MOpId>& last_writer, core::MOpId self)
    : values_(values), last_writer_(last_writer), self_(self) {}

mscript::Value RecordingStore::read(mscript::ObjectId object) {
  MOCC_ASSERT(object < values_.size());
  ops_.push_back(core::Operation::read(object, values_[object], last_writer_[object]));
  return values_[object];
}

void RecordingStore::write(mscript::ObjectId object, mscript::Value value) {
  MOCC_ASSERT(object < values_.size());
  values_[object] = value;
  last_writer_[object] = self_;
  ops_.push_back(core::Operation::write(object, value));
}

MSeqReplica::MSeqReplica(std::size_t num_objects,
                         std::unique_ptr<abcast::AtomicBroadcast> abcast,
                         ExecutionRecorder& recorder, Options options)
    : num_objects_(num_objects),
      abcast_(std::move(abcast)),
      recorder_(recorder),
      options_(options),
      my_x_(num_objects, 0),
      myts_(num_objects),
      last_writer_(num_objects, core::kInitialMOp) {
  MOCC_ASSERT(abcast_ != nullptr);
}

void MSeqReplica::on_start(sim::Context& ctx) {
  abcast_->set_deliver([this](sim::Context& live_ctx, sim::NodeId origin,
                              const std::vector<std::uint8_t>& payload) {
    on_deliver(live_ctx, origin, payload);
  });
  abcast_->set_reliable_link(reliable_link());
  route_timers_to_abcast(abcast_.get());
  abcast_->on_start(ctx);
}

void MSeqReplica::invoke(sim::Context& ctx, mscript::Program program,
                         ResponseFn on_response) {
  const core::Time invoke_time = ctx.now();
  const core::MOpId id = recorder_.begin(ctx.self(), program.name(), invoke_time);
  trace_mop(ctx, obs::TraceEventType::kMOpInvoke, id, program.is_update() ? 1 : 0);
  const obs::SpanContext root = ctx.begin_trace();

  if (program.is_update() || options_.broadcast_queries) {
    // (A1): atomically broadcast the m-operation. In broadcast-queries
    // mode queries take the same path and execute at delivery, pinning
    // them to one point of the total order (m-linearizability).
    util::ByteWriter out;
    out.put_u32(id);
    program.encode(out);
    pending_[id] = PendingUpdate{std::move(on_response), invoke_time, root};
    abcast_->broadcast(ctx, out.take());
    return;
  }

  // (A3): queries execute against the local copy, no messages.
  RecordingStore store(my_x_, last_writer_, id);
  const mscript::ExecutionResult exec = mscript::Vm::run(program, store);
  MOCC_ASSERT_MSG(exec.objects_written().empty(), "query program performed a write");
  const core::Time response_time = ctx.now();
  std::vector<core::Operation> ops = store.take_ops();
  trace_mop_span(ctx, root, id, invoke_time, false, std::nullopt, ops);
  recorder_.complete(id, std::move(ops), response_time, myts_, std::nullopt);
  trace_mop(ctx, obs::TraceEventType::kMOpRespond, id, invoke_time);
  on_response(InvocationOutcome{id, exec.return_value, invoke_time, response_time});
}

void MSeqReplica::on_deliver(sim::Context& ctx, sim::NodeId origin,
                             const std::vector<std::uint8_t>& payload) {
  // (A2): apply the m-operation to the local copy; bump versions of the
  // objects written; respond if we are the origin.
  util::ByteReader in(payload);
  const core::MOpId id = in.get_u32();
  const mscript::Program program = mscript::Program::decode(in);

  // ~ww records the broadcast position of *updates* (queries riding the
  // stream in broadcast-queries mode are ordered by real time alone —
  // P5.1 forbids synthesizing stronger query-query edges).
  const std::uint64_t seq = deliveries_++;
  const std::optional<std::uint64_t> ww_seq =
      program.is_update() ? std::optional<std::uint64_t>(seq) : std::nullopt;

  // mocc-check mutation: drop the first foreign delivery on the floor
  // (slot consumed, state untouched) — this replica's copy goes stale.
  if (options_.mutate_skip_first_foreign && !mutation_skipped_ &&
      origin != ctx.self()) {
    mutation_skipped_ = true;
    return;
  }

  RecordingStore store(my_x_, last_writer_, id);
  const mscript::ExecutionResult exec = mscript::Vm::run(program, store);
  for (const mscript::ObjectId x : exec.objects_written()) {
    myts_.increment(x);
  }

  if (origin == ctx.self()) {
    const auto it = pending_.find(id);
    MOCC_ASSERT_MSG(it != pending_.end(), "delivered own update without pending state");
    const PendingUpdate pending = std::move(it->second);
    pending_.erase(it);
    const core::Time response_time = ctx.now();
    std::vector<core::Operation> ops = store.take_ops();
    trace_mop_span(ctx, pending.trace, id, pending.invoke, program.is_update(), ww_seq,
                   ops);
    recorder_.complete(id, std::move(ops), response_time, myts_, ww_seq);
    trace_mop(ctx, obs::TraceEventType::kMOpRespond, id, pending.invoke);
    pending.on_response(
        InvocationOutcome{id, exec.return_value, pending.invoke, response_time});
  }
}

void MSeqReplica::handle_delivered(sim::Context& ctx, const sim::Message& message) {
  const bool consumed = abcast_->on_message(ctx, message);
  MOCC_ASSERT_MSG(consumed, "m-seq replica received a foreign message kind");
}

}  // namespace mocc::protocols
