#include "protocols/workload.hpp"

#include <algorithm>
#include <set>

#include "mscript/library.hpp"
#include "util/assert.hpp"

namespace mocc::protocols {

namespace {

/// Distinct objects, Zipf-weighted.
std::vector<mscript::ObjectId> pick_objects(std::size_t count, std::size_t num_objects,
                                            util::Rng& rng, util::ZipfGenerator& zipf) {
  count = std::min(count, num_objects);
  std::set<mscript::ObjectId> chosen;
  while (chosen.size() < count) {
    chosen.insert(static_cast<mscript::ObjectId>(zipf.next(rng)));
  }
  return {chosen.begin(), chosen.end()};
}

}  // namespace

mscript::Program random_program(std::size_t num_objects, const WorkloadParams& params,
                                util::Rng& rng, util::ZipfGenerator& zipf,
                                std::uint64_t salt) {
  const std::size_t footprint = std::max<std::size_t>(1, params.footprint);
  const auto objects = pick_objects(footprint, num_objects, rng, zipf);

  if (!rng.next_bool(params.update_ratio)) {
    // Query: sum or read_all over the footprint.
    if (rng.next_bool(0.5)) return mscript::lib::make_sum(objects);
    return mscript::lib::make_read_all(objects);
  }

  if (objects.size() >= 2 && rng.next_bool(params.dcas_fraction)) {
    // DCAS with random expectations: both success and failure paths are
    // exercised (the conservative update rule broadcasts either way).
    return mscript::lib::make_dcas(objects[0], objects[1],
                                   rng.next_in(0, 3), rng.next_in(0, 3),
                                   static_cast<mscript::Value>(salt * 4 + 1),
                                   static_cast<mscript::Value>(salt * 4 + 2));
  }
  switch (salt % 3) {
    case 0: {
      std::vector<mscript::Value> values;
      values.reserve(objects.size());
      for (std::size_t i = 0; i < objects.size(); ++i) {
        values.push_back(static_cast<mscript::Value>(salt * 16 + i));
      }
      return mscript::lib::make_m_assign(objects, values);
    }
    case 1:
      if (objects.size() >= 2) {
        return mscript::lib::make_transfer(objects[0], objects[1], rng.next_in(1, 5));
      }
      [[fallthrough]];
    default: {
      std::vector<mscript::Value> deltas;
      deltas.reserve(objects.size());
      for (std::size_t i = 0; i < objects.size(); ++i) {
        deltas.push_back(rng.next_in(1, 9));
      }
      return mscript::lib::make_multi_add(objects, deltas);
    }
  }
}

WorkloadReport run_workload(sim::Simulator& sim, const std::vector<Replica*>& replicas,
                            std::size_t num_objects, const WorkloadParams& params,
                            std::uint64_t seed) {
  MOCC_ASSERT(!replicas.empty());
  auto report = std::make_shared<WorkloadReport>();
  auto rng = std::make_shared<util::Rng>(seed);
  auto zipf = std::make_shared<util::ZipfGenerator>(num_objects, params.zipf_skew);
  auto salt = std::make_shared<std::uint64_t>(0);

  // One self-rescheduling closure per process.
  struct Loop : std::enable_shared_from_this<Loop> {
    sim::Simulator& sim;
    Replica& replica;
    sim::NodeId node;
    std::size_t remaining;
    std::size_t num_objects;
    const WorkloadParams& params;
    std::shared_ptr<WorkloadReport> report;
    std::shared_ptr<util::Rng> rng;
    std::shared_ptr<util::ZipfGenerator> zipf;
    std::shared_ptr<std::uint64_t> salt;

    Loop(sim::Simulator& s, Replica& r, sim::NodeId n, std::size_t rem,
         std::size_t objs, const WorkloadParams& p, std::shared_ptr<WorkloadReport> rep,
         std::shared_ptr<util::Rng> rg, std::shared_ptr<util::ZipfGenerator> z,
         std::shared_ptr<std::uint64_t> st)
        : sim(s), replica(r), node(n), remaining(rem), num_objects(objs), params(p),
          report(std::move(rep)), rng(std::move(rg)), zipf(std::move(z)),
          salt(std::move(st)) {}

    void issue() {
      if (remaining == 0) return;
      --remaining;
      mscript::Program program =
          random_program(num_objects, params, *rng, *zipf, (*salt)++);
      const bool is_update = program.is_update();
      sim::Context ctx(sim, node);
      auto self = shared_from_this();
      replica.invoke(ctx, std::move(program), [self, is_update](const InvocationOutcome& out) {
        const auto latency = static_cast<double>(out.response - out.invoke);
        if (is_update) {
          self->report->update_latency.add(latency);
          ++self->report->updates;
        } else {
          self->report->query_latency.add(latency);
          ++self->report->queries;
        }
        // mocc-lint: allow(sched-hook): harness issue loop, not protocol
        self->sim.schedule_call(self->sim.now() + self->params.think_time,
                                [self] { self->issue(); });
      });
    }
  };

  for (sim::NodeId node = 0; node < replicas.size(); ++node) {
    auto loop = std::make_shared<Loop>(sim, *replicas[node], node,
                                       params.ops_per_process, num_objects, params,
                                       report, rng, zipf, salt);
    // mocc-lint: allow(sched-hook): harness kickoff, not protocol code
    sim.schedule_call(1 + node, [loop] { loop->issue(); });
  }

  sim.run();
  return *report;
}

}  // namespace mocc::protocols
