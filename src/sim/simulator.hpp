// Deterministic discrete-event simulator for asynchronous message
// passing.
//
// Substitutes the paper's assumed network: reliable (no loss, no
// duplication), unordered (delays are sampled per message, so messages
// overtake each other freely), fully asynchronous (no delay bound is ever
// exposed to protocol code). Virtual time exists only inside the
// simulator — actors observe it solely for measurement, never for
// protocol decisions.
//
// Actors are event-driven: on_start once at t=0, on_message per delivery,
// on_timer for self-scheduled wakeups. All execution is single-threaded
// and deterministic given the seed; ties in delivery time break by event
// sequence number.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "obs/trace.hpp"
#include "sim/delay.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace mocc::sim {

/// Fault-injection hook (implemented by fault::FaultPlan). When attached,
/// the simulator consults it once per send (message fate) and once per
/// dispatch (node liveness). Detached — the default — every site costs
/// exactly one null-pointer branch and the simulator's behavior,
/// including its RNG stream, is bit-identical to a hook-free build.
class FaultInjector {
 public:
  /// The fate of one message at its send instant.
  struct SendAction {
    /// Discard instead of enqueueing (the send is still counted in
    /// TrafficStats: the sender paid for it).
    bool drop = false;
    /// Extra copies enqueued beyond the original, each with its own
    /// sampled network delay (a duplicating network, not a resend).
    std::uint32_t duplicates = 0;
    /// Delay spike added to every enqueued copy.
    SimTime extra_delay = 0;
  };

  virtual ~FaultInjector() = default;

  /// Called once per Simulator::send, in send order (deterministic given
  /// the injector's own seed).
  virtual SendAction on_send(NodeId from, NodeId to, std::uint32_t kind,
                             SimTime now) = 0;

  /// Crash-stop state: while true, the node silently discards every
  /// delivery and timer dispatched to it (counted by the injector,
  /// traced by the simulator). Restart is the transition back to false;
  /// the actor keeps its in-memory state, modeling recovery from a
  /// checkpoint — events discarded while down stay lost.
  virtual bool is_down(NodeId node, SimTime now) = 0;
};

/// Controlled-nondeterminism hook (implemented by the mocc-check
/// explorer, src/check). When attached, message deliveries stop being
/// ordered by sampled network delays: Simulator::send parks each message
/// in a pending list instead of the time-ordered event queue, and
/// whenever no internal event (scheduled call / timer) remains, run()
/// asks the controller which pending delivery dispatches next. Internal
/// events always dispatch first, in deterministic (time, seq) order, so
/// the ONLY nondeterminism surfaced to the controller is the
/// message-delivery interleaving — exactly the choice surface systematic
/// exploration enumerates. Virtual time advances by one tick per chosen
/// delivery (the delay model and the RNG stream are never consulted), so
/// a choice sequence fully determines the execution.
///
/// Replay-stability contract (asserted below, documented in DESIGN.md):
/// the pending list handed to choose() is in ascending send-seq order —
/// the same FIFO tie-break the event queue uses for equal times. Choice
/// indices recorded by one binary stay valid as long as that canonical
/// order and the actors' send behavior are unchanged; replay files carry
/// per-choice structural signatures to detect when they are not.
/// FNV-1a (64-bit) over payload bytes: the fingerprint carried in
/// ScheduleController::Choice and mocc-check replay signatures.
std::uint64_t payload_fingerprint(const std::vector<std::uint8_t>& bytes);

class ScheduleController {
 public:
  /// One pending message delivery, described structurally (not by
  /// pointer) so controllers can persist and compare choices across
  /// re-executions.
  struct Choice {
    std::uint64_t seq = 0;  ///< send sequence number (canonical order)
    NodeId from = 0;
    NodeId to = 0;
    std::uint32_t kind = 0;
    /// FNV-1a over the payload bytes: lets replay detect a divergent
    /// execution without storing payloads in choice files.
    std::uint64_t payload_hash = 0;
  };

  /// Sentinel return from choose(): abandon the run immediately (run()
  /// returns with the remaining pending deliveries undelivered). Used by
  /// the explorer to cut a schedule at a pruned or divergent state.
  static constexpr std::size_t kAbortRun = static_cast<std::size_t>(-1);

  virtual ~ScheduleController() = default;

  /// Picks the next delivery: an index into `pending` (non-empty,
  /// ascending seq), or kAbortRun.
  virtual std::size_t choose(const std::vector<Choice>& pending) = 0;
};

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  /// Protocol-defined discriminator (also keys the traffic statistics).
  std::uint32_t kind = 0;
  std::vector<std::uint8_t> payload;
  /// Causal trace context, stamped by Simulator::send from the current
  /// context. Rides in memory only — it is never serialized, so wire
  /// payloads, traffic accounting, and every golden stay byte-identical
  /// whether or not tracing is attached.
  obs::SpanContext trace;
  /// Virtual send time, stamped by Simulator::send (net_hop span begin).
  SimTime sent_at = 0;
};

class Simulator;

/// The API an actor sees. Deliberately narrow: send, timers, the clock,
/// and nothing else (no shared memory between actors).
class Context {
 public:
  Context(Simulator& sim, NodeId self) : sim_(sim), self_(self) {}

  NodeId self() const { return self_; }
  SimTime now() const;
  std::size_t num_nodes() const;

  void send(NodeId to, std::uint32_t kind, std::vector<std::uint8_t> payload);
  /// Sends to every node except self.
  void send_to_others(std::uint32_t kind, const std::vector<std::uint8_t>& payload);
  /// on_timer(id) fires after `delay` ticks.
  void set_timer(SimTime delay, std::uint64_t timer_id);

  /// The simulator's trace sink — null unless observability is attached.
  /// Emission sites test for null themselves so that building the event
  /// costs nothing when tracing is off:
  ///   if (auto* sink = ctx.trace_sink()) sink->on_event({...});
  obs::TraceSink* trace_sink() const;

  /// Causal-trace context (Dapper-style). The simulator tracks one
  /// "current" context per dispatched event: sends stamp it into the
  /// outgoing message, timers capture it at set_timer and restore it when
  /// they fire, and message delivery re-roots it at the net_hop span it
  /// emits. All invalid (trace id 0) when no sink is attached.
  obs::SpanContext trace_context() const;
  void set_trace_context(obs::SpanContext trace);
  /// Starts a fresh trace: allocates a trace id and a root span id, makes
  /// it the current context, and returns it. Invalid when no sink is
  /// attached, so downstream emission sites stay inert.
  obs::SpanContext begin_trace();
  /// A span id unique within this simulator (for child spans).
  std::uint64_t new_span_id();

 private:
  Simulator& sim_;
  NodeId self_;
};

class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_start(Context& ctx) { (void)ctx; }
  virtual void on_message(Context& ctx, const Message& message) = 0;
  virtual void on_timer(Context& ctx, std::uint64_t timer_id) {
    (void)ctx;
    (void)timer_id;
  }
};

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::map<std::uint32_t, std::uint64_t> messages_by_kind;
  std::map<std::uint32_t, std::uint64_t> bytes_by_kind;
};

class Simulator {
 public:
  Simulator(std::unique_ptr<DelayModel> delay, std::uint64_t seed);

  /// Nodes must all be added before run(). Takes ownership.
  NodeId add_node(std::unique_ptr<Actor> actor);
  std::size_t num_nodes() const { return actors_.size(); }

  Actor& actor(NodeId id);

  /// Schedules an external closure (workload injection) at `time`.
  /// NOT thread-safe: call from the simulation thread only (between
  /// run() slices or from inside a dispatched event).
  void schedule_call(SimTime time, std::function<void()> fn);

  /// Thread-safe workload injection: queues a closure from ANY thread;
  /// run() drains posted closures at the next event boundary and executes
  /// them at the current virtual time on the simulation thread. This is
  /// the only cross-thread entry point — everything else on Simulator is
  /// confined to the simulation thread.
  void post(std::function<void()> fn) MOCC_EXCLUDES(post_mu_);

  /// Runs until the event queue drains or `max_time` passes (0 = no
  /// limit). Returns the final virtual time.
  SimTime run(SimTime max_time = 0);

  /// Asks run() to return before dispatching its next event. Sticky:
  /// subsequent run() calls return immediately until clear_stop().
  /// Callable from inside a dispatched event (a streaming auditor's
  /// violation callback aborts the run this way); the current event
  /// finishes, nothing else dispatches.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }
  void clear_stop() { stop_requested_ = false; }

  SimTime now() const { return now_; }
  const TrafficStats& traffic() const { return traffic_; }
  util::Rng& rng() { return rng_; }

  /// Attaches a trace sink (not owned; must outlive the simulator or be
  /// detached with nullptr). Message send/deliver events are emitted by
  /// the simulator itself; protocol layers emit theirs through
  /// Context::trace_sink(). Null (the default) disables tracing at the
  /// cost of one pointer test per event site.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  /// Attaches a fault injector (not owned; must outlive the simulator or
  /// be detached with nullptr). Null (the default) keeps the pristine
  /// reliable network at the cost of one branch per send/dispatch site.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }
  FaultInjector* fault_injector() const { return faults_; }

  /// Attaches a schedule controller (not owned; must outlive the
  /// simulator). Must be set before the first run() and is incompatible
  /// with fault injection (controlled mode models the paper's pristine
  /// reliable network; message fates are the controller's alone). Null —
  /// the default — keeps delay-model ordering, bit-identical to a
  /// hook-free build.
  void set_schedule_controller(ScheduleController* controller);
  ScheduleController* schedule_controller() const { return controller_; }

  /// Installs a deterministic backlog probe: whenever virtual time is
  /// about to cross a multiple of `interval`, `probe(sample_time)` runs
  /// once per crossed multiple, before the crossing event dispatches.
  /// The probe is an observer — it must not schedule events or send
  /// messages (it reads queue_depth() and friends and records gauges /
  /// trace events). Interval 0 (the default) disables sampling; the
  /// probe never fires on an empty queue, so it cannot keep an otherwise
  /// quiescent simulation alive.
  void set_backlog_probe(SimTime interval, std::function<void(SimTime)> probe);

  /// Pending events (messages + timers + scheduled calls), including
  /// deliveries parked for a schedule controller.
  std::size_t queue_depth() const { return queue_.size() + held_messages_.size(); }

  /// Current causal-trace context (see Context::trace_context).
  obs::SpanContext trace_context() const { return current_trace_; }
  void set_trace_context(obs::SpanContext trace) { current_trace_ = trace; }
  obs::SpanContext begin_trace();
  std::uint64_t new_span_id() { return next_span_id_++; }

  // Internal API used by Context -------------------------------------
  void send(NodeId from, NodeId to, std::uint32_t kind,
            std::vector<std::uint8_t> payload);
  void set_timer(NodeId node, SimTime delay, std::uint64_t timer_id);

 private:
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  // tie-break: FIFO among equal times
    // exactly one of:
    bool is_timer = false;
    Message message;
    NodeId timer_node = 0;
    std::uint64_t timer_id = 0;
    obs::SpanContext timer_trace;  // context captured at set_timer
    std::function<void()> call;  // external injection when set
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void dispatch(const Event& event);
  /// Controlled mode: surfaces held_messages_ to the controller and
  /// dispatches the chosen delivery at now_ + 1. Returns false when the
  /// controller aborted the run.
  bool dispatch_controlled_choice();
  /// Moves everything in posted_ into the event queue at virtual time
  /// now_ (in posting order). Runs on the simulation thread.
  void drain_posted() MOCC_EXCLUDES(post_mu_);

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_ MOCC_GUARDED_BY(post_mu_);

  // mocc-lint: allow-begin(guarded-by): post_mu_ guards only posted_;
  // everything below is owned by the single simulation thread (post() is
  // the one cross-thread entry point, and it touches posted_ alone).
  std::unique_ptr<DelayModel> delay_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool started_ = false;
  bool stop_requested_ = false;
  TrafficStats traffic_;
  obs::TraceSink* trace_ = nullptr;
  FaultInjector* faults_ = nullptr;
  ScheduleController* controller_ = nullptr;
  /// Controlled mode only: messages awaiting a choose() decision, in
  /// ascending send-seq (canonical) order.
  std::vector<Event> held_messages_;
  /// Tie-break monotonicity witness for the queue path: successive pops
  /// must be lexicographically increasing in (time, seq) — replay files
  /// depend on that order staying deterministic (debug-asserted).
  SimTime last_pop_time_ = 0;
  std::uint64_t last_pop_seq_ = 0;
  bool popped_any_ = false;
  obs::SpanContext current_trace_;
  std::uint64_t next_trace_id_ = 1;  // 0 is "no trace"
  std::uint64_t next_span_id_ = 1;
  SimTime backlog_interval_ = 0;
  SimTime next_backlog_ = 0;
  std::function<void(SimTime)> backlog_probe_;
  // mocc-lint: allow-end(guarded-by)
};

}  // namespace mocc::sim
