// Parallel experiment driver.
//
// A single simulation is deterministic and single-threaded by design
// (sim/simulator.hpp), but experiment sweeps and property tests run many
// independent simulations — one per seed, protocol, or parameter point —
// and those parallelize perfectly. ParallelRunner fans a job list out
// over a fixed pool of std::threads: jobs are claimed from an atomic
// counter (no per-job scheduling overhead), the first exception is
// captured under an annotated mutex and rethrown on the caller's thread,
// and the pool joins before run() returns, so the caller observes fully
// sequential semantics at the call site.
//
// Everything a job touches must be job-local or thread-safe; within this
// codebase the shared pieces are the Logger and (optionally) an
// ExecutionRecorder, both internally synchronized and annotated. The
// `tsan` preset relies on this class to give ThreadSanitizer real
// concurrency to examine (tests/parallel_test.cpp).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace mocc::sim {

class ParallelRunner {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ParallelRunner(std::size_t threads = 0);

  std::size_t threads() const { return threads_; }

  /// Runs job(0) ... job(count-1) across the pool and returns when every
  /// job finished. If any job throws, the first exception (in completion
  /// order) is rethrown here after all threads joined; remaining jobs may
  /// be skipped.
  void run(std::size_t count, const std::function<void(std::size_t)>& job)
      MOCC_EXCLUDES(error_mu_);

 private:
  void record_error(std::exception_ptr error) MOCC_EXCLUDES(error_mu_);
  bool has_error() const MOCC_EXCLUDES(error_mu_);

  const std::size_t threads_;
  mutable std::mutex error_mu_;
  std::exception_ptr first_error_ MOCC_GUARDED_BY(error_mu_);
};

}  // namespace mocc::sim
