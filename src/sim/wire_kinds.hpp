// Central registry of message-kind ranges.
//
// Message kinds discriminate wire traffic (sim::Message::kind) and key
// the traffic statistics and trace events, so the layers of the stack
// partition the kind space instead of coordinating at runtime: a layer
// consumes exactly the kinds inside its reserved range and routes the
// rest onward. Before this registry the partition lived in per-layer
// comments; now the ranges are named constants in one table, the
// partition is checked at compile time (static_assert below), every
// per-layer kind constant derives from its component's helper, and the
// simulator rejects out-of-registry kinds in debug builds
// (Simulator::send / dispatch).
//
// tools/mocc_lint reads the kKindRanges table (mocc-wire-kind check):
// keep one entry per line with literal component names and bounds, and
// define new kind constants via the <component>_kind helpers so the lint
// can compute their values and detect cross-TU collisions.
//
// Changing an existing kind's numeric value changes the
// messages_by_kind keys in BENCH_results.json and breaks the golden
// artifacts (tests/golden/) — append to ranges, never renumber.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/assert.hpp"

namespace mocc::sim::wire {

/// One component's reserved slice of the kind space (both ends
/// inclusive).
struct KindRange {
  std::string_view component;
  std::uint32_t first;
  std::uint32_t last;
};

/// The whole partition, sorted by range. "app" is the scratch range for
/// tests, examples, and ad-hoc actors that never share a simulation with
/// the production stack's layers.
inline constexpr KindRange kKindRanges[] = {
    {"app", 0, 49},
    {"reliable_link", 50, 99},
    {"abcast", 100, 199},
    {"protocols", 200, 299},
};

inline constexpr std::size_t kNumKindRanges =
    sizeof(kKindRanges) / sizeof(kKindRanges[0]);

/// Sanity of the table itself: every range non-empty, ranges strictly
/// ascending and pairwise disjoint.
constexpr bool kind_ranges_sorted_and_disjoint() {
  for (std::size_t i = 0; i < kNumKindRanges; ++i) {
    if (kKindRanges[i].first > kKindRanges[i].last) return false;
    if (i + 1 < kNumKindRanges &&
        kKindRanges[i].last >= kKindRanges[i + 1].first) {
      return false;
    }
  }
  return true;
}
static_assert(kind_ranges_sorted_and_disjoint(),
              "wire_kinds.hpp: kind ranges must be sorted and disjoint");

/// True when `component` owns a reserved range. Components absent from
/// the table have no kinds to send with: wire-free subsystems (src/exec)
/// static_assert the negative so a future Simulator::send call there is
/// caught at the registry, not just at the debug-build send assert.
constexpr bool has_component(std::string_view component) {
  for (std::size_t i = 0; i < kNumKindRanges; ++i) {
    if (kKindRanges[i].component == component) return true;
  }
  return false;
}

/// True when some component's range contains `kind`.
constexpr bool is_registered(std::uint32_t kind) {
  for (std::size_t i = 0; i < kNumKindRanges; ++i) {
    if (kind >= kKindRanges[i].first && kind <= kKindRanges[i].last) return true;
  }
  return false;
}

/// Owning component's name, or "unregistered".
constexpr std::string_view component_of(std::uint32_t kind) {
  for (std::size_t i = 0; i < kNumKindRanges; ++i) {
    if (kind >= kKindRanges[i].first && kind <= kKindRanges[i].last) {
      return kKindRanges[i].component;
    }
  }
  return "unregistered";
}

namespace detail {
/// kind = range.first + offset, aborting (compile error in constant
/// evaluation) when the offset leaves the component's range.
constexpr std::uint32_t kind_at(const KindRange& range, std::uint32_t offset) {
  if (offset > range.last - range.first) {
    assert_fail("offset > range.last - range.first", __FILE__, __LINE__,
                "wire_kinds.hpp: kind offset outside the component's range");
  }
  return range.first + offset;
}
}  // namespace detail

// Per-component named ranges and kind constructors. Every message-kind
// constant in the tree must be defined through one of these helpers
// (enforced by mocc-lint's wire-kind check).
inline constexpr std::uint32_t kAppFirst = kKindRanges[0].first;
inline constexpr std::uint32_t kAppLast = kKindRanges[0].last;
inline constexpr std::uint32_t kReliableLinkFirst = kKindRanges[1].first;
inline constexpr std::uint32_t kReliableLinkLast = kKindRanges[1].last;
inline constexpr std::uint32_t kAbcastFirst = kKindRanges[2].first;
inline constexpr std::uint32_t kAbcastLast = kKindRanges[2].last;
inline constexpr std::uint32_t kProtocolsFirst = kKindRanges[3].first;
inline constexpr std::uint32_t kProtocolsLast = kKindRanges[3].last;

constexpr std::uint32_t app_kind(std::uint32_t offset) {
  return detail::kind_at(kKindRanges[0], offset);
}
constexpr std::uint32_t reliable_link_kind(std::uint32_t offset) {
  return detail::kind_at(kKindRanges[1], offset);
}
constexpr std::uint32_t abcast_kind(std::uint32_t offset) {
  return detail::kind_at(kKindRanges[2], offset);
}
constexpr std::uint32_t protocols_kind(std::uint32_t offset) {
  return detail::kind_at(kKindRanges[3], offset);
}

static_assert(reliable_link_kind(0) == 50 && abcast_kind(0) == 100 &&
                  protocols_kind(0) == 200,
              "wire_kinds.hpp: historical kind values are load-bearing "
              "(golden bench artifacts key traffic by numeric kind)");

/// A request kind and the response kind that answers it.
struct KindPair {
  std::string_view request;
  std::string_view response;
};

// Request/response pairings over the kind space. mocc-lint's msg-flow
// check reads this table (one pair per line, literal constant names) and
// enforces that both sides of each pair stay closed: a live request
// whose response is never emitted — or vice versa — is a protocol hole
// the compiler cannot see. Pure documentation at runtime; nothing links
// against it.
inline constexpr KindPair kKindPairs[] = {
    {"kLinkData", "kLinkAck"},
    {"kLinkBatchData", "kLinkAck"},
    {"kQuery", "kQueryResp"},
    {"kQueryBatch", "kQueryRespBatch"},
    {"kLockReq", "kLockGrant"},
    {"kReadReq", "kReadResp"},
    {"kCommitReq", "kCommitAck"},
};

}  // namespace mocc::sim::wire
