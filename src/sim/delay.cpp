#include "sim/delay.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace mocc::sim {

ConstantDelay::ConstantDelay(SimTime delay) : delay_(std::max<SimTime>(1, delay)) {}

SimTime ConstantDelay::sample(NodeId, NodeId, util::Rng&) { return delay_; }

std::string ConstantDelay::name() const {
  std::ostringstream out;
  out << "constant(" << delay_ << ")";
  return out.str();
}

UniformDelay::UniformDelay(SimTime lo, SimTime hi)
    : lo_(std::max<SimTime>(1, lo)), hi_(std::max(hi, lo_)) {}

SimTime UniformDelay::sample(NodeId, NodeId, util::Rng& rng) {
  return lo_ + rng.next_below(hi_ - lo_ + 1);
}

std::string UniformDelay::name() const {
  std::ostringstream out;
  out << "uniform(" << lo_ << "," << hi_ << ")";
  return out.str();
}

ExponentialDelay::ExponentialDelay(double mean, SimTime cap) : mean_(mean), cap_(cap) {
  MOCC_ASSERT(mean > 0.0);
  MOCC_ASSERT(cap >= 1);
}

SimTime ExponentialDelay::sample(NodeId, NodeId, util::Rng& rng) {
  const double d = rng.next_exponential(mean_);
  const auto ticks = static_cast<SimTime>(d) + 1;
  return std::min(ticks, cap_);
}

std::string ExponentialDelay::name() const {
  std::ostringstream out;
  out << "exponential(mean=" << mean_ << ",cap=" << cap_ << ")";
  return out.str();
}

std::unique_ptr<DelayModel> make_delay_model(const std::string& name) {
  if (name == "constant") return std::make_unique<ConstantDelay>(10);
  if (name == "lan") return std::make_unique<UniformDelay>(5, 15);
  if (name == "wan") return std::make_unique<UniformDelay>(50, 150);
  if (name == "uniform") return std::make_unique<UniformDelay>(5, 50);
  if (name == "reorder") return std::make_unique<UniformDelay>(1, 500);
  if (name == "exponential") return std::make_unique<ExponentialDelay>(20.0, 2000);
  MOCC_ASSERT_MSG(false, "unknown delay model name");
  return nullptr;
}

}  // namespace mocc::sim
