// Network delay models.
//
// The paper assumes reliable channels where "messages can get reordered"
// (§5) and its m-linearizability protocol explicitly avoids any bound on
// message delay. The delay models below let the experiments sweep from a
// near-synchronous network to an adversarially reordering one; all
// sampling is from the simulator's seeded Rng, so runs are reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace mocc::sim {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Delay (>= 1 tick) for a message from `from` to `to`.
  virtual SimTime sample(NodeId from, NodeId to, util::Rng& rng) = 0;
  virtual std::string name() const = 0;
};

/// Fixed delay: FIFO, synchronous-looking network.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(SimTime delay);
  SimTime sample(NodeId from, NodeId to, util::Rng& rng) override;
  std::string name() const override;

 private:
  SimTime delay_;
};

/// Uniform in [lo, hi]; hi much larger than lo produces heavy reordering.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(SimTime lo, SimTime hi);
  SimTime sample(NodeId from, NodeId to, util::Rng& rng) override;
  std::string name() const override;

 private:
  SimTime lo_;
  SimTime hi_;
};

/// Exponential with the given mean, clamped to [1, cap]. Long tail
/// exercises the asynchronous-safety of the protocols.
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(double mean, SimTime cap);
  SimTime sample(NodeId from, NodeId to, util::Rng& rng) override;
  std::string name() const override;

 private:
  double mean_;
  SimTime cap_;
};

/// Named factory used by benches/examples ("constant", "uniform", "lan",
/// "wan", "reorder", "exponential").
std::unique_ptr<DelayModel> make_delay_model(const std::string& name);

}  // namespace mocc::sim
