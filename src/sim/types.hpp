// Shared simulator-layer identifier types.
//
// NodeId doubles as the paper's process id (src/protocols keeps them
// aligned); SimTime is virtual ticks. One definition here so delay
// models, the simulator, and the fault layer agree by construction.
#pragma once

#include <cstdint>

namespace mocc::sim {

using NodeId = std::uint32_t;
using SimTime = std::uint64_t;

}  // namespace mocc::sim
