#include "sim/simulator.hpp"

#include "obs/trace.hpp"
#include "sim/wire_kinds.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mocc::sim {

std::uint64_t payload_fingerprint(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

SimTime Context::now() const { return sim_.now(); }

obs::TraceSink* Context::trace_sink() const { return sim_.trace_sink(); }

obs::SpanContext Context::trace_context() const { return sim_.trace_context(); }

void Context::set_trace_context(obs::SpanContext trace) {
  sim_.set_trace_context(trace);
}

obs::SpanContext Context::begin_trace() { return sim_.begin_trace(); }

std::uint64_t Context::new_span_id() { return sim_.new_span_id(); }

std::size_t Context::num_nodes() const { return sim_.num_nodes(); }

void Context::send(NodeId to, std::uint32_t kind, std::vector<std::uint8_t> payload) {
  sim_.send(self_, to, kind, std::move(payload));
}

void Context::send_to_others(std::uint32_t kind,
                             const std::vector<std::uint8_t>& payload) {
  for (NodeId to = 0; to < sim_.num_nodes(); ++to) {
    if (to != self_) sim_.send(self_, to, kind, payload);
  }
}

void Context::set_timer(SimTime delay, std::uint64_t timer_id) {
  sim_.set_timer(self_, delay, timer_id);
}

Simulator::Simulator(std::unique_ptr<DelayModel> delay, std::uint64_t seed)
    : delay_(std::move(delay)), rng_(seed) {
  MOCC_ASSERT(delay_ != nullptr);
}

NodeId Simulator::add_node(std::unique_ptr<Actor> actor) {
  MOCC_ASSERT_MSG(!started_, "nodes must be added before run()");
  MOCC_ASSERT(actor != nullptr);
  actors_.push_back(std::move(actor));
  return static_cast<NodeId>(actors_.size() - 1);
}

Actor& Simulator::actor(NodeId id) {
  MOCC_ASSERT(id < actors_.size());
  return *actors_[id];
}

void Simulator::schedule_call(SimTime time, std::function<void()> fn) {
  Event event;
  event.time = std::max(time, now_);
  event.seq = next_seq_++;
  event.call = std::move(fn);
  queue_.push(std::move(event));
}

void Simulator::post(std::function<void()> fn) {
  MOCC_ASSERT(fn != nullptr);
  std::lock_guard<std::mutex> lock(post_mu_);
  posted_.push_back(std::move(fn));
}

void Simulator::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) schedule_call(now_, std::move(fn));
}

void Simulator::set_schedule_controller(ScheduleController* controller) {
  MOCC_ASSERT_MSG(!started_,
                  "schedule controller must be attached before the first run()");
  MOCC_ASSERT_MSG(controller == nullptr || faults_ == nullptr,
                  "controlled exploration is incompatible with fault injection");
  controller_ = controller;
}

obs::SpanContext Simulator::begin_trace() {
  // No sink, no trace: keeps the disabled-tracing path free of id churn
  // and every downstream emission site inert (invalid contexts propagate
  // as invalid).
  if (trace_ == nullptr) return {};
  current_trace_ = obs::SpanContext{next_trace_id_++, next_span_id_++};
  return current_trace_;
}

void Simulator::set_backlog_probe(SimTime interval,
                                  std::function<void(SimTime)> probe) {
  MOCC_ASSERT_MSG(interval == 0 || probe != nullptr,
                  "a nonzero sampling interval needs a probe");
  backlog_interval_ = interval;
  next_backlog_ = interval;  // skip t=0: nothing has happened yet
  backlog_probe_ = std::move(probe);
}

void Simulator::send(NodeId from, NodeId to, std::uint32_t kind,
                     std::vector<std::uint8_t> payload) {
  MOCC_ASSERT(from < actors_.size() && to < actors_.size());
  // Every kind on the wire must belong to a range registered in
  // sim/wire_kinds.hpp (hot path, so debug builds only).
  MOCC_DEBUG_ASSERT(wire::is_registered(kind));
  const std::size_t bytes = payload.size();
  MOCC_DEBUG() << "t=" << now_ << " send " << from << "->" << to << " kind=" << kind
               << " bytes=" << bytes;

  // Traffic counts what the sender emitted — dropped and duplicated
  // copies are the network's doing and are tallied by the fault plan.
  traffic_.messages += 1;
  traffic_.bytes += bytes;
  traffic_.messages_by_kind[kind] += 1;
  traffic_.bytes_by_kind[kind] += bytes;

  if (trace_ != nullptr) {
    trace_->on_event({obs::TraceEventType::kMessageSend, now_, from, to, kind, 0,
                      bytes});
  }

  // Schedule-controller hook: in controlled mode the delivery instant is
  // the controller's decision, not the delay model's. Park the message in
  // canonical send order; run() surfaces it as a choice point. No delay
  // sample is drawn, so the RNG stream is untouched and a choice sequence
  // alone determines the execution.
  if (controller_ != nullptr) {
    Event event;
    event.seq = next_seq_++;
    event.message = Message{from, to, kind, std::move(payload), current_trace_, now_};
    held_messages_.push_back(std::move(event));
    return;
  }

  // Fault hook: one branch when detached; the detached path below is
  // byte-for-byte the pristine reliable network (one copy, no extra rng
  // draws — the injector keeps its own stream).
  std::uint32_t copies = 1;
  SimTime extra_delay = 0;
  if (faults_ != nullptr) {
    const FaultInjector::SendAction action = faults_->on_send(from, to, kind, now_);
    if (action.drop) {
      if (trace_ != nullptr) {
        trace_->on_event({obs::TraceEventType::kFaultDrop, now_, from, to, kind, 0,
                          bytes});
      }
      return;
    }
    copies += action.duplicates;
    extra_delay = action.extra_delay;
    if (trace_ != nullptr) {
      for (std::uint32_t i = 0; i < action.duplicates; ++i) {
        trace_->on_event({obs::TraceEventType::kFaultDuplicate, now_, from, to, kind,
                          0, bytes});
      }
      if (extra_delay != 0) {
        trace_->on_event({obs::TraceEventType::kFaultDelay, now_, from, to, kind,
                          extra_delay, bytes});
      }
    }
  }

  for (std::uint32_t copy = 0; copy < copies; ++copy) {
    Event event;
    event.time = now_ + delay_->sample(from, to, rng_) + extra_delay;
    event.seq = next_seq_++;
    event.message = Message{from, to, kind,
                            copy + 1 == copies ? std::move(payload)
                                               : std::vector<std::uint8_t>(payload),
                            current_trace_, now_};
    queue_.push(std::move(event));
  }
}

void Simulator::set_timer(NodeId node, SimTime delay, std::uint64_t timer_id) {
  Event event;
  event.time = now_ + std::max<SimTime>(1, delay);
  event.seq = next_seq_++;
  event.is_timer = true;
  event.timer_node = node;
  event.timer_id = timer_id;
  event.timer_trace = current_trace_;
  queue_.push(std::move(event));
}

void Simulator::dispatch(const Event& event) {
  if (event.call) {
    // External injections start context-free; a trace begins only at an
    // m-operation invocation (Context::begin_trace).
    current_trace_ = obs::SpanContext{};
    event.call();
    return;
  }
  if (event.is_timer) {
    MOCC_DEBUG() << "t=" << now_ << " timer node=" << event.timer_node
                 << " id=" << event.timer_id;
    if (faults_ != nullptr && faults_->is_down(event.timer_node, now_)) {
      if (trace_ != nullptr) {
        trace_->on_event({obs::TraceEventType::kFaultCrashDiscard, now_,
                          event.timer_node, 0, 0, event.timer_id, 1});
      }
      return;
    }
    current_trace_ = event.timer_trace;
    Context ctx(*this, event.timer_node);
    actors_[event.timer_node]->on_timer(ctx, event.timer_id);
    return;
  }
  MOCC_DEBUG() << "t=" << now_ << " deliver " << event.message.from << "->"
               << event.message.to << " kind=" << event.message.kind;
  MOCC_DEBUG_ASSERT(wire::is_registered(event.message.kind));
  if (faults_ != nullptr && faults_->is_down(event.message.to, now_)) {
    if (trace_ != nullptr) {
      trace_->on_event({obs::TraceEventType::kFaultCrashDiscard, now_,
                        event.message.to, event.message.from, event.message.kind, 0,
                        0});
    }
    return;
  }
  if (trace_ != nullptr) {
    trace_->on_event({obs::TraceEventType::kMessageDeliver, now_, event.message.to,
                      event.message.from, event.message.kind, 0,
                      event.message.payload.size()});
  }
  // One net_hop span per traced delivery, then re-root the context at it:
  // whatever this delivery causes is a child of the hop that carried it.
  obs::SpanContext incoming = event.message.trace;
  if (trace_ != nullptr && incoming.valid()) {
    obs::Span hop;
    hop.type = obs::SpanType::kNetHop;
    hop.trace_id = incoming.trace_id;
    hop.span_id = next_span_id_++;
    hop.parent_span = incoming.span_id;
    hop.begin = event.message.sent_at;
    hop.end = now_;
    hop.node = event.message.to;
    hop.peer = event.message.from;
    hop.kind = event.message.kind;
    hop.arg = event.message.payload.size();
    trace_->on_span(hop);
    incoming.span_id = hop.span_id;
  }
  current_trace_ = incoming;
  Context ctx(*this, event.message.to);
  actors_[event.message.to]->on_message(ctx, event.message);
}

SimTime Simulator::run(SimTime max_time) {
  if (!started_) {
    started_ = true;
    for (NodeId id = 0; id < actors_.size(); ++id) {
      Context ctx(*this, id);
      actors_[id]->on_start(ctx);
    }
  }
  for (;;) {
    if (stop_requested_) return now_;
    drain_posted();
    if (queue_.empty()) {
      // Controlled mode: internal events (calls, timers) always dispatch
      // first in deterministic (time, seq) order; only once they are
      // exhausted does the controller pick among pending deliveries.
      if (controller_ == nullptr || held_messages_.empty()) break;
      if (!dispatch_controlled_choice()) return now_;
      continue;
    }
    // Check the deadline BEFORE popping so a paused run can resume
    // without losing the event at the horizon.
    if (max_time != 0 && queue_.top().time > max_time) {
      now_ = max_time;
      return now_;
    }
    // Backlog sampling: fire once per interval multiple the next event is
    // about to cross. Piggybacking on the event loop (instead of a
    // self-rescheduling timer) keeps quiescence detection intact.
    if (backlog_interval_ != 0) {
      while (next_backlog_ <= queue_.top().time) {
        backlog_probe_(next_backlog_);
        next_backlog_ += backlog_interval_;
      }
    }
    Event event = queue_.top();
    queue_.pop();
    MOCC_ASSERT_MSG(event.time >= now_, "time went backwards");
    // Deterministic tie-break: pops are lexicographically increasing in
    // (time, seq) — equal-time events dispatch in send order. mocc-check
    // replay files are only valid against this order (DESIGN.md).
    MOCC_DEBUG_ASSERT(!popped_any_ || event.time > last_pop_time_ ||
                      (event.time == last_pop_time_ && event.seq > last_pop_seq_));
    popped_any_ = true;
    last_pop_time_ = event.time;
    last_pop_seq_ = event.seq;
    now_ = event.time;
    dispatch(event);
  }
  return now_;
}

bool Simulator::dispatch_controlled_choice() {
  std::vector<ScheduleController::Choice> choices;
  choices.reserve(held_messages_.size());
  for (const Event& held : held_messages_) {
    // Canonical choice order — ascending send seq (the same FIFO
    // tie-break the event queue uses). Replay indices depend on it.
    MOCC_DEBUG_ASSERT(choices.empty() || held.seq > choices.back().seq);
    choices.push_back(ScheduleController::Choice{
        held.seq, held.message.from, held.message.to, held.message.kind,
        payload_fingerprint(held.message.payload)});
  }
  const std::size_t pick = controller_->choose(choices);
  if (pick == ScheduleController::kAbortRun) return false;
  MOCC_ASSERT_MSG(pick < held_messages_.size(),
                  "schedule controller chose an out-of-range delivery");
  Event event = std::move(held_messages_[pick]);
  held_messages_.erase(held_messages_.begin() +
                       static_cast<std::ptrdiff_t>(pick));
  now_ += 1;  // one tick per delivery: step-counter virtual time
  event.time = now_;
  dispatch(event);
  return true;
}

}  // namespace mocc::sim
