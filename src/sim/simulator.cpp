#include "sim/simulator.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace mocc::sim {

SimTime Context::now() const { return sim_.now(); }

obs::TraceSink* Context::trace_sink() const { return sim_.trace_sink(); }

std::size_t Context::num_nodes() const { return sim_.num_nodes(); }

void Context::send(NodeId to, std::uint32_t kind, std::vector<std::uint8_t> payload) {
  sim_.send(self_, to, kind, std::move(payload));
}

void Context::send_to_others(std::uint32_t kind,
                             const std::vector<std::uint8_t>& payload) {
  for (NodeId to = 0; to < sim_.num_nodes(); ++to) {
    if (to != self_) sim_.send(self_, to, kind, payload);
  }
}

void Context::set_timer(SimTime delay, std::uint64_t timer_id) {
  sim_.set_timer(self_, delay, timer_id);
}

Simulator::Simulator(std::unique_ptr<DelayModel> delay, std::uint64_t seed)
    : delay_(std::move(delay)), rng_(seed) {
  MOCC_ASSERT(delay_ != nullptr);
}

NodeId Simulator::add_node(std::unique_ptr<Actor> actor) {
  MOCC_ASSERT_MSG(!started_, "nodes must be added before run()");
  MOCC_ASSERT(actor != nullptr);
  actors_.push_back(std::move(actor));
  return static_cast<NodeId>(actors_.size() - 1);
}

Actor& Simulator::actor(NodeId id) {
  MOCC_ASSERT(id < actors_.size());
  return *actors_[id];
}

void Simulator::schedule_call(SimTime time, std::function<void()> fn) {
  Event event;
  event.time = std::max(time, now_);
  event.seq = next_seq_++;
  event.call = std::move(fn);
  queue_.push(std::move(event));
}

void Simulator::post(std::function<void()> fn) {
  MOCC_ASSERT(fn != nullptr);
  std::lock_guard<std::mutex> lock(post_mu_);
  posted_.push_back(std::move(fn));
}

void Simulator::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) schedule_call(now_, std::move(fn));
}

void Simulator::send(NodeId from, NodeId to, std::uint32_t kind,
                     std::vector<std::uint8_t> payload) {
  MOCC_ASSERT(from < actors_.size() && to < actors_.size());
  Event event;
  event.time = now_ + delay_->sample(from, to, rng_);
  event.seq = next_seq_++;
  event.message = Message{from, to, kind, std::move(payload)};
  MOCC_DEBUG() << "t=" << now_ << " send " << from << "->" << to << " kind=" << kind
               << " bytes=" << event.message.payload.size() << " eta=" << event.time;

  traffic_.messages += 1;
  traffic_.bytes += event.message.payload.size();
  traffic_.messages_by_kind[kind] += 1;
  traffic_.bytes_by_kind[kind] += event.message.payload.size();

  if (trace_ != nullptr) {
    trace_->on_event({obs::TraceEventType::kMessageSend, now_, from, to, kind, 0,
                      event.message.payload.size()});
  }

  queue_.push(std::move(event));
}

void Simulator::set_timer(NodeId node, SimTime delay, std::uint64_t timer_id) {
  Event event;
  event.time = now_ + std::max<SimTime>(1, delay);
  event.seq = next_seq_++;
  event.is_timer = true;
  event.timer_node = node;
  event.timer_id = timer_id;
  queue_.push(std::move(event));
}

void Simulator::dispatch(const Event& event) {
  if (event.call) {
    event.call();
    return;
  }
  if (event.is_timer) {
    MOCC_DEBUG() << "t=" << now_ << " timer node=" << event.timer_node
                 << " id=" << event.timer_id;
    Context ctx(*this, event.timer_node);
    actors_[event.timer_node]->on_timer(ctx, event.timer_id);
    return;
  }
  MOCC_DEBUG() << "t=" << now_ << " deliver " << event.message.from << "->"
               << event.message.to << " kind=" << event.message.kind;
  if (trace_ != nullptr) {
    trace_->on_event({obs::TraceEventType::kMessageDeliver, now_, event.message.to,
                      event.message.from, event.message.kind, 0,
                      event.message.payload.size()});
  }
  Context ctx(*this, event.message.to);
  actors_[event.message.to]->on_message(ctx, event.message);
}

SimTime Simulator::run(SimTime max_time) {
  if (!started_) {
    started_ = true;
    for (NodeId id = 0; id < actors_.size(); ++id) {
      Context ctx(*this, id);
      actors_[id]->on_start(ctx);
    }
  }
  for (;;) {
    drain_posted();
    if (queue_.empty()) break;
    // Check the deadline BEFORE popping so a paused run can resume
    // without losing the event at the horizon.
    if (max_time != 0 && queue_.top().time > max_time) {
      now_ = max_time;
      return now_;
    }
    Event event = queue_.top();
    queue_.pop();
    MOCC_ASSERT_MSG(event.time >= now_, "time went backwards");
    now_ = event.time;
    dispatch(event);
  }
  return now_;
}

}  // namespace mocc::sim
