#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace mocc::sim {

namespace {

std::size_t resolve_threads(std::size_t threads) {
  if (threads != 0) return threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ParallelRunner::ParallelRunner(std::size_t threads)
    : threads_(resolve_threads(threads)) {}

void ParallelRunner::record_error(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!first_error_) first_error_ = std::move(error);
}

bool ParallelRunner::has_error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_ != nullptr;
}

void ParallelRunner::run(std::size_t count,
                         const std::function<void(std::size_t)>& job) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    first_error_ = nullptr;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count || has_error()) return;
      try {
        job(index);
      } catch (...) {
        record_error(std::current_exception());
        return;
      }
    }
  };

  const std::size_t pool = std::min(std::max<std::size_t>(1, threads_), std::max<std::size_t>(1, count));
  if (pool == 1) {
    // Degenerate pool: run inline; keeps single-threaded debugging simple.
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) workers.emplace_back(worker);
    for (auto& w : workers) w.join();
  }

  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace mocc::sim
