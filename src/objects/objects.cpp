#include "objects/objects.hpp"

#include <limits>

#include "mscript/builder.hpp"
#include "mscript/library.hpp"
#include "util/assert.hpp"

namespace mocc::objects {

namespace {
// Sentinels for the conditional structure programs. Stored values must
// stay above kEmpty.
constexpr Value kStale = std::numeric_limits<Value>::min();
constexpr Value kEmpty = std::numeric_limits<Value>::min() + 1;
constexpr Value kFull = 0;
constexpr Value kOk = 1;
}  // namespace

// -------------------------------------------------------------- Register

Register::Register(api::System& system, ObjectId object)
    : system_(system), object_(object) {}

void Register::write(ProcessId process, Value value, std::function<void()> done) {
  system_.submit(process, 1, mscript::lib::make_write(object_, value),
                 [done = std::move(done)](const protocols::InvocationOutcome&) {
                   if (done) done();
                 });
}

void Register::read(ProcessId process, std::function<void(Value)> done) {
  system_.submit(process, 1, mscript::lib::make_read(object_),
                 [done = std::move(done)](const protocols::InvocationOutcome& out) {
                   done(out.return_value);
                 });
}

// --------------------------------------------------------------- Counter

Counter::Counter(api::System& system, ObjectId object)
    : system_(system), object_(object) {}

void Counter::fetch_add(ProcessId process, Value delta,
                        std::function<void(Value)> done) {
  system_.submit(process, 1, mscript::lib::make_fetch_add(object_, delta),
                 [done = std::move(done)](const protocols::InvocationOutcome& out) {
                   if (done) done(out.return_value);
                 });
}

void Counter::get(ProcessId process, std::function<void(Value)> done) {
  system_.submit(process, 1, mscript::lib::make_read(object_),
                 [done = std::move(done)](const protocols::InvocationOutcome& out) {
                   done(out.return_value);
                 });
}

// ------------------------------------------------------------ BoundedQueue

BoundedQueue::BoundedQueue(api::System& system, ObjectId base, std::size_t capacity)
    : system_(system), base_(base), capacity_(capacity) {
  MOCC_ASSERT(capacity >= 1);
}

mscript::Program BoundedQueue::make_enqueue(std::int64_t expected_tail,
                                            Value value) const {
  MOCC_ASSERT_MSG(value > kEmpty, "queue values must stay above the sentinels");
  mscript::Builder b("queue_enqueue");
  const auto t = b.reg();
  const auto expect = b.reg();
  const auto cond = b.reg();
  const auto h = b.reg();
  const auto cap = b.reg();
  const auto used = b.reg();
  const auto val = b.reg();
  b.read(t, tail())
      .load_const(expect, expected_tail)
      .cmp_eq(cond, t, expect)
      .jump_if_zero(cond, "stale")
      .read(h, head())
      .sub(used, t, h)
      .load_const(cap, static_cast<Value>(capacity_))
      .cmp_lt(cond, used, cap)
      .jump_if_zero(cond, "full")
      .load_const(val, value)
      .write(cell(static_cast<std::uint64_t>(expected_tail)), val)
      .load_const(val, expected_tail + 1)
      .write(tail(), val)
      .ret_const(kOk)
      .label("full")
      .ret_const(kFull)
      .label("stale")
      .ret_const(kStale);
  return b.build();
}

mscript::Program BoundedQueue::make_dequeue(std::int64_t expected_head) const {
  mscript::Builder b("queue_dequeue");
  const auto h = b.reg();
  const auto expect = b.reg();
  const auto cond = b.reg();
  const auto t = b.reg();
  const auto val = b.reg();
  b.read(h, head())
      .load_const(expect, expected_head)
      .cmp_eq(cond, h, expect)
      .jump_if_zero(cond, "stale")
      .read(t, tail())
      .cmp_eq(cond, h, t)
      .jump_if_nonzero(cond, "empty")
      .read(val, cell(static_cast<std::uint64_t>(expected_head)))
      .load_const(h, expected_head + 1)
      .write(head(), h)
      .ret(val)
      .label("empty")
      .ret_const(kEmpty)
      .label("stale")
      .ret_const(kStale);
  return b.build();
}

void BoundedQueue::enqueue(ProcessId process, Value value,
                           std::function<void(bool)> done, std::size_t max_retries) {
  enqueue_attempt(process, value, std::move(done),
                  max_retries == 0 ? std::numeric_limits<std::size_t>::max()
                                   : max_retries);
}

void BoundedQueue::enqueue_attempt(ProcessId process, Value value,
                                   std::function<void(bool)> done,
                                   std::size_t budget) {
  // Speculate: observe the tail, then validate-and-apply atomically.
  system_.submit(
      process, 1, mscript::lib::make_read(tail()),
      [this, process, value, done = std::move(done),
       budget](const protocols::InvocationOutcome& snapshot) mutable {
        system_.submit(
            process, 1, make_enqueue(snapshot.return_value, value),
            [this, process, value, done = std::move(done),
             budget](const protocols::InvocationOutcome& out) mutable {
              if (out.return_value == kOk) {
                if (done) done(true);
              } else if (out.return_value == kFull) {
                if (done) done(false);
              } else if (budget > 1) {
                enqueue_attempt(process, value, std::move(done), budget - 1);
              } else if (done) {
                done(false);
              }
            });
      });
}

void BoundedQueue::dequeue(ProcessId process,
                           std::function<void(std::optional<Value>)> done,
                           std::size_t max_retries) {
  dequeue_attempt(process, std::move(done),
                  max_retries == 0 ? std::numeric_limits<std::size_t>::max()
                                   : max_retries);
}

void BoundedQueue::dequeue_attempt(ProcessId process,
                                   std::function<void(std::optional<Value>)> done,
                                   std::size_t budget) {
  system_.submit(
      process, 1, mscript::lib::make_read(head()),
      [this, process, done = std::move(done),
       budget](const protocols::InvocationOutcome& snapshot) mutable {
        system_.submit(
            process, 1, make_dequeue(snapshot.return_value),
            [this, process, done = std::move(done),
             budget](const protocols::InvocationOutcome& out) mutable {
              if (out.return_value == kEmpty) {
                done(std::nullopt);
              } else if (out.return_value == kStale) {
                if (budget > 1) {
                  dequeue_attempt(process, std::move(done), budget - 1);
                } else {
                  done(std::nullopt);
                }
              } else {
                done(out.return_value);
              }
            });
      });
}

// ----------------------------------------------------------------- Stack

Stack::Stack(api::System& system, ObjectId base, std::size_t capacity)
    : system_(system), base_(base), capacity_(capacity) {
  MOCC_ASSERT(capacity >= 1);
}

mscript::Program Stack::make_push(std::int64_t expected_top, Value value) const {
  MOCC_ASSERT_MSG(value > kEmpty, "stack values must stay above the sentinels");
  mscript::Builder b("stack_push");
  const auto t = b.reg();
  const auto expect = b.reg();
  const auto cond = b.reg();
  const auto val = b.reg();
  b.read(t, top())
      .load_const(expect, expected_top)
      .cmp_eq(cond, t, expect)
      .jump_if_zero(cond, "stale");
  if (static_cast<std::size_t>(expected_top) >= capacity_) {
    b.ret_const(kFull);
  } else {
    b.load_const(val, value)
        .write(cell(expected_top), val)
        .load_const(val, expected_top + 1)
        .write(top(), val)
        .ret_const(kOk);
  }
  b.label("stale").ret_const(kStale);
  return b.build();
}

mscript::Program Stack::make_pop(std::int64_t expected_top) const {
  mscript::Builder b("stack_pop");
  const auto t = b.reg();
  const auto expect = b.reg();
  const auto cond = b.reg();
  const auto val = b.reg();
  b.read(t, top())
      .load_const(expect, expected_top)
      .cmp_eq(cond, t, expect)
      .jump_if_zero(cond, "stale");
  if (expected_top <= 0) {
    b.ret_const(kEmpty);
  } else {
    b.read(val, cell(expected_top - 1))
        .load_const(expect, expected_top - 1)
        .write(top(), expect)
        .ret(val);
  }
  b.label("stale").ret_const(kStale);
  return b.build();
}

void Stack::push(ProcessId process, Value value, std::function<void(bool)> done,
                 std::size_t max_retries) {
  push_attempt(process, value, std::move(done),
               max_retries == 0 ? std::numeric_limits<std::size_t>::max()
                                : max_retries);
}

void Stack::push_attempt(ProcessId process, Value value,
                         std::function<void(bool)> done, std::size_t budget) {
  system_.submit(
      process, 1, mscript::lib::make_read(top()),
      [this, process, value, done = std::move(done),
       budget](const protocols::InvocationOutcome& snapshot) mutable {
        system_.submit(
            process, 1, make_push(snapshot.return_value, value),
            [this, process, value, done = std::move(done),
             budget](const protocols::InvocationOutcome& out) mutable {
              if (out.return_value == kOk) {
                if (done) done(true);
              } else if (out.return_value == kFull) {
                if (done) done(false);
              } else if (budget > 1) {
                push_attempt(process, value, std::move(done), budget - 1);
              } else if (done) {
                done(false);
              }
            });
      });
}

void Stack::pop(ProcessId process, std::function<void(std::optional<Value>)> done,
                std::size_t max_retries) {
  pop_attempt(process, std::move(done),
              max_retries == 0 ? std::numeric_limits<std::size_t>::max()
                               : max_retries);
}

void Stack::pop_attempt(ProcessId process,
                        std::function<void(std::optional<Value>)> done,
                        std::size_t budget) {
  system_.submit(
      process, 1, mscript::lib::make_read(top()),
      [this, process, done = std::move(done),
       budget](const protocols::InvocationOutcome& snapshot) mutable {
        system_.submit(
            process, 1, make_pop(snapshot.return_value),
            [this, process, done = std::move(done),
             budget](const protocols::InvocationOutcome& out) mutable {
              if (out.return_value == kEmpty) {
                done(std::nullopt);
              } else if (out.return_value == kStale) {
                if (budget > 1) {
                  pop_attempt(process, std::move(done), budget - 1);
                } else {
                  done(std::nullopt);
                }
              } else {
                done(out.return_value);
              }
            });
      });
}

}  // namespace mocc::objects
