// Typed concurrent objects built from m-operations.
//
// Herlihy's model (which §1 extends) is about representing powerful
// concurrent objects; this layer shows the m-operation model doing that
// job: registers, counters, a bounded FIFO queue and a stack, each
// implemented as MScript programs against the replicated store and
// inheriting whatever consistency condition the underlying System runs
// (m-linearizability gives the usual linearizable-object semantics).
//
// The queue and stack use *client-side speculation*: a query observes the
// structure's cursor(s), then a conditional m-operation validates the
// observation and applies the mutation atomically — the optimistic
// pattern DCAS enables (§1), generalized to whole-structure conditions.
// MScript addresses objects with immediate ids, so the cell to touch is
// chosen client-side from the observed cursor and validated inside the
// m-operation; a stale observation fails cleanly and the wrapper retries.
//
// All completions are asynchronous callbacks; the simulation delivers
// them. Ordering caveat: an operation is ordered by its *commit* (the
// successful conditional m-operation), so two structure operations
// pipelined from the same process may commit in either order — chain
// calls through the completion callback where issue order must be
// preserved (e.g. per-producer FIFO into a queue).
#pragma once

#include <functional>
#include <optional>

#include "api/system.hpp"
#include "mscript/program.hpp"

namespace mocc::objects {

using Value = mscript::Value;
using ObjectId = mscript::ObjectId;
using ProcessId = core::ProcessId;

/// A single shared register occupying one object.
class Register {
 public:
  Register(api::System& system, ObjectId object);

  void write(ProcessId process, Value value, std::function<void()> done = {});
  void read(ProcessId process, std::function<void(Value)> done);

  static constexpr std::size_t objects_needed() { return 1; }

 private:
  api::System& system_;
  ObjectId object_;
};

/// A shared counter with atomic fetch-and-add.
class Counter {
 public:
  Counter(api::System& system, ObjectId object);

  /// Calls done(old_value).
  void fetch_add(ProcessId process, Value delta, std::function<void(Value)> done = {});
  void get(ProcessId process, std::function<void(Value)> done);

  static constexpr std::size_t objects_needed() { return 1; }

 private:
  api::System& system_;
  ObjectId object_;
};

/// Bounded multi-producer multi-consumer FIFO queue.
///
/// Layout: [head, tail, cell_0 .. cell_{capacity-1}] starting at `base`.
/// head/tail are monotone counters; cell index = cursor mod capacity.
/// Stored values must be non-negative (negative space is reserved for
/// the internal stale/empty/full sentinels).
class BoundedQueue {
 public:
  BoundedQueue(api::System& system, ObjectId base, std::size_t capacity);

  static std::size_t objects_needed(std::size_t capacity) { return 2 + capacity; }

  /// done(true) once enqueued; done(false) if the queue was full at the
  /// linearization point. Retries stale speculations internally (up to
  /// `max_retries` whole attempts, 0 = unbounded).
  void enqueue(ProcessId process, Value value, std::function<void(bool)> done = {},
               std::size_t max_retries = 0);

  /// done(value) on success; done(nullopt) if empty.
  void dequeue(ProcessId process, std::function<void(std::optional<Value>)> done,
               std::size_t max_retries = 0);

 private:
  ObjectId head() const { return base_; }
  ObjectId tail() const { return base_ + 1; }
  ObjectId cell(std::uint64_t cursor) const {
    return base_ + 2 + static_cast<ObjectId>(cursor % capacity_);
  }

  mscript::Program make_enqueue(std::int64_t expected_tail, Value value) const;
  mscript::Program make_dequeue(std::int64_t expected_head) const;

  void enqueue_attempt(ProcessId process, Value value, std::function<void(bool)> done,
                       std::size_t budget);
  void dequeue_attempt(ProcessId process,
                       std::function<void(std::optional<Value>)> done,
                       std::size_t budget);

  api::System& system_;
  ObjectId base_;
  std::size_t capacity_;
};

/// Unbounded (capacity-limited) LIFO stack: [top, cell_0 ..].
class Stack {
 public:
  Stack(api::System& system, ObjectId base, std::size_t capacity);

  static std::size_t objects_needed(std::size_t capacity) { return 1 + capacity; }

  /// done(true) on success, done(false) when full.
  void push(ProcessId process, Value value, std::function<void(bool)> done = {},
            std::size_t max_retries = 0);
  /// done(value) or done(nullopt) when empty.
  void pop(ProcessId process, std::function<void(std::optional<Value>)> done,
           std::size_t max_retries = 0);

 private:
  ObjectId top() const { return base_; }
  ObjectId cell(std::int64_t index) const {
    return base_ + 1 + static_cast<ObjectId>(index);
  }

  mscript::Program make_push(std::int64_t expected_top, Value value) const;
  mscript::Program make_pop(std::int64_t expected_top) const;

  void push_attempt(ProcessId process, Value value, std::function<void(bool)> done,
                    std::size_t budget);
  void pop_attempt(ProcessId process, std::function<void(std::optional<Value>)> done,
                   std::size_t budget);

  api::System& system_;
  ObjectId base_;
  std::size_t capacity_;
};

}  // namespace mocc::objects
