#include "mscript/vm.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mocc::mscript {

namespace {
std::vector<ObjectId> dedup_kind(const std::vector<AccessRecord>& accesses, bool writes) {
  std::vector<ObjectId> out;
  for (const AccessRecord& a : accesses) {
    if (a.is_write == writes) out.push_back(a.object);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}
}  // namespace

std::vector<ObjectId> ExecutionResult::objects_read() const {
  return dedup_kind(accesses, /*writes=*/false);
}

std::vector<ObjectId> ExecutionResult::objects_written() const {
  return dedup_kind(accesses, /*writes=*/true);
}

ExecutionResult Vm::run(const Program& program, StoreView& store) {
  MOCC_DEBUG_ASSERT(program.validate().empty());
  ExecutionResult result;
  std::vector<Value> regs(program.num_regs(), 0);
  const auto& code = program.code();
  std::size_t pc = 0;
  for (;;) {
    MOCC_ASSERT_MSG(result.steps < kMaxSteps, "MScript program exceeded step limit");
    ++result.steps;
    MOCC_DEBUG_ASSERT(pc < code.size());
    const Instruction& ins = code[pc];
    switch (ins.op) {
      case OpCode::kLoadConst:
        regs[ins.a] = ins.imm;
        break;
      case OpCode::kMove:
        regs[ins.a] = regs[ins.b];
        break;
      case OpCode::kReadObj: {
        const Value v = store.read(ins.obj);
        regs[ins.a] = v;
        result.accesses.push_back({/*is_write=*/false, ins.obj, v});
        break;
      }
      case OpCode::kWriteObj:
        store.write(ins.obj, regs[ins.a]);
        result.accesses.push_back({/*is_write=*/true, ins.obj, regs[ins.a]});
        break;
      case OpCode::kAdd:
        regs[ins.a] = static_cast<Value>(static_cast<std::uint64_t>(regs[ins.b]) +
                                         static_cast<std::uint64_t>(regs[ins.c]));
        break;
      case OpCode::kSub:
        regs[ins.a] = static_cast<Value>(static_cast<std::uint64_t>(regs[ins.b]) -
                                         static_cast<std::uint64_t>(regs[ins.c]));
        break;
      case OpCode::kMul:
        regs[ins.a] = static_cast<Value>(static_cast<std::uint64_t>(regs[ins.b]) *
                                         static_cast<std::uint64_t>(regs[ins.c]));
        break;
      case OpCode::kCmpEq:
        regs[ins.a] = regs[ins.b] == regs[ins.c] ? 1 : 0;
        break;
      case OpCode::kCmpLt:
        regs[ins.a] = regs[ins.b] < regs[ins.c] ? 1 : 0;
        break;
      case OpCode::kCmpLe:
        regs[ins.a] = regs[ins.b] <= regs[ins.c] ? 1 : 0;
        break;
      case OpCode::kJump:
        pc = ins.target;
        continue;
      case OpCode::kJumpIfZero:
        if (regs[ins.a] == 0) {
          pc = ins.target;
          continue;
        }
        break;
      case OpCode::kJumpIfNonZero:
        if (regs[ins.a] != 0) {
          pc = ins.target;
          continue;
        }
        break;
      case OpCode::kReturn:
        result.return_value = regs[ins.a];
        return result;
    }
    ++pc;
  }
}

Value VectorStore::read(ObjectId object) {
  MOCC_ASSERT(object < values_.size());
  return values_[object];
}

void VectorStore::write(ObjectId object, Value value) {
  MOCC_ASSERT(object < values_.size());
  values_[object] = value;
}

}  // namespace mocc::mscript
