#include "mscript/library.hpp"

#include "mscript/builder.hpp"
#include "util/assert.hpp"

namespace mocc::mscript::lib {

Program make_read(ObjectId x) {
  Builder b("read");
  const auto r = b.reg();
  b.read(r, x).ret(r);
  return b.build();
}

Program make_write(ObjectId x, Value v) {
  Builder b("write");
  const auto r = b.reg();
  b.load_const(r, v).write(x, r).ret(r);
  return b.build();
}

Program make_read_all(std::span<const ObjectId> objects) {
  MOCC_ASSERT(!objects.empty());
  Builder b("read_all");
  const auto r = b.reg();
  for (ObjectId x : objects) b.read(r, x);
  b.ret(r);
  return b.build();
}

Program make_m_assign(std::span<const ObjectId> objects, std::span<const Value> values) {
  MOCC_ASSERT(objects.size() == values.size());
  MOCC_ASSERT(!objects.empty());
  Builder b("m_assign");
  const auto r = b.reg();
  for (std::size_t i = 0; i < objects.size(); ++i) {
    b.load_const(r, values[i]).write(objects[i], r);
  }
  b.ret_const(1);
  return b.build();
}

Program make_cas(ObjectId x, Value expected, Value desired) {
  Builder b("cas");
  const auto cur = b.reg();
  const auto exp = b.reg();
  const auto cond = b.reg();
  b.read(cur, x)
      .load_const(exp, expected)
      .cmp_eq(cond, cur, exp)
      .jump_if_zero(cond, "fail")
      .load_const(cur, desired)
      .write(x, cur)
      .ret_const(1)
      .label("fail")
      .ret_const(0);
  return b.build();
}

Program make_dcas(ObjectId x1, ObjectId x2, Value old1, Value old2, Value new1,
                  Value new2) {
  Builder b("dcas");
  const auto v1 = b.reg();
  const auto v2 = b.reg();
  const auto expect = b.reg();
  const auto cond = b.reg();
  b.read(v1, x1)
      .read(v2, x2)
      .load_const(expect, old1)
      .cmp_eq(cond, v1, expect)
      .jump_if_zero(cond, "fail")
      .load_const(expect, old2)
      .cmp_eq(cond, v2, expect)
      .jump_if_zero(cond, "fail")
      .load_const(v1, new1)
      .write(x1, v1)
      .load_const(v2, new2)
      .write(x2, v2)
      .ret_const(1)
      .label("fail")
      .ret_const(0);
  return b.build();
}

Program make_sum(std::span<const ObjectId> objects) {
  MOCC_ASSERT(!objects.empty());
  Builder b("sum");
  const auto acc = b.reg();
  const auto cur = b.reg();
  b.load_const(acc, 0);
  for (ObjectId x : objects) {
    b.read(cur, x).add(acc, acc, cur);
  }
  b.ret(acc);
  return b.build();
}

Program make_transfer(ObjectId from, ObjectId to, Value amount) {
  Builder b("transfer");
  const auto bal = b.reg();
  const auto amt = b.reg();
  const auto cond = b.reg();
  const auto dst = b.reg();
  b.read(bal, from)
      .load_const(amt, amount)
      .cmp_le(cond, amt, bal)
      .jump_if_zero(cond, "fail")
      .sub(bal, bal, amt)
      .write(from, bal)
      .read(dst, to)
      .add(dst, dst, amt)
      .write(to, dst)
      .ret_const(1)
      .label("fail")
      .ret_const(0);
  return b.build();
}

Program make_fetch_add(ObjectId x, Value delta) {
  Builder b("fetch_add");
  const auto old = b.reg();
  const auto d = b.reg();
  const auto updated = b.reg();
  b.read(old, x)
      .load_const(d, delta)
      .add(updated, old, d)
      .write(x, updated)
      .ret(old);
  return b.build();
}

Program make_multi_add(std::span<const ObjectId> objects, std::span<const Value> deltas) {
  MOCC_ASSERT(objects.size() == deltas.size());
  MOCC_ASSERT(!objects.empty());
  Builder b("multi_add");
  const auto cur = b.reg();
  const auto d = b.reg();
  for (std::size_t i = 0; i < objects.size(); ++i) {
    b.read(cur, objects[i])
        .load_const(d, deltas[i])
        .add(cur, cur, d)
        .write(objects[i], cur);
  }
  b.ret(cur);
  return b.build();
}

}  // namespace mocc::mscript::lib
