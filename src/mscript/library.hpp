// Canonical multi-object operations as MScript programs.
//
// These are the m-operations the paper motivates: DCAS and atomic
// m-register assignment explicitly (§1), the `sum` multi-method (§1's
// aggregate-object discussion), plus the read/write primitives that
// recover the traditional single-object DSM model as a special case, and
// a conditional `transfer` for the transaction-flavoured examples.
#pragma once

#include <span>
#include <vector>

#include "mscript/program.hpp"

namespace mocc::mscript::lib {

/// Single-object read: returns the value of `x`. Query.
Program make_read(ObjectId x);

/// Single-object write: x := v. Update.
Program make_write(ObjectId x, Value v);

/// Query reading each object in turn; returns the value of the *last*
/// object listed (all read values appear in the access record).
Program make_read_all(std::span<const ObjectId> objects);

/// Atomic m-register assignment: objects[i] := values[i] for all i.
/// Update; returns 1.
Program make_m_assign(std::span<const ObjectId> objects, std::span<const Value> values);

/// Single compare-and-swap: if x == expected then x := desired, return 1;
/// else return 0. Update (conservatively, even when the swap fails).
Program make_cas(ObjectId x, Value expected, Value desired);

/// Double compare-and-swap (the paper's footnote 1): atomically, if
/// x1 == old1 and x2 == old2, then x1 := new1 and x2 := new2 and return 1;
/// otherwise return 0 and write nothing.
Program make_dcas(ObjectId x1, ObjectId x2, Value old1, Value old2, Value new1,
                  Value new2);

/// Query returning the sum of the listed objects (the `sum` multi-method
/// from the paper's introduction).
Program make_sum(std::span<const ObjectId> objects);

/// Conditional funds transfer: if from >= amount then {from -= amount;
/// to += amount; return 1} else return 0. Update.
Program make_transfer(ObjectId from, ObjectId to, Value amount);

/// Unconditional fetch-and-add on a single object; returns the old value.
Program make_fetch_add(ObjectId x, Value delta);

/// Balanced multi-object increment: objects[i] += deltas[i] atomically.
/// Returns the new value of the last object.
Program make_multi_add(std::span<const ObjectId> objects, std::span<const Value> deltas);

}  // namespace mocc::mscript::lib
