#include "mscript/program.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace mocc::mscript {

namespace {
std::vector<ObjectId> sorted_unique(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

bool contains(const std::vector<ObjectId>& sorted, ObjectId x) {
  return std::binary_search(sorted.begin(), sorted.end(), x);
}
}  // namespace

Program::Program(std::vector<Instruction> code, std::uint8_t num_regs,
                 std::vector<ObjectId> may_read, std::vector<ObjectId> may_write,
                 std::string name)
    : code_(std::move(code)),
      num_regs_(num_regs),
      may_read_(sorted_unique(std::move(may_read))),
      may_write_(sorted_unique(std::move(may_write))),
      name_(std::move(name)) {}

std::string Program::validate() const {
  if (code_.empty()) return "empty program";
  if (num_regs_ == 0) return "zero registers";
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    const Instruction& ins = code_[pc];
    auto reg_ok = [&](std::uint8_t r) { return r < num_regs_; };
    std::ostringstream err;
    err << "instruction " << pc << " (" << opcode_name(ins.op) << "): ";
    switch (ins.op) {
      case OpCode::kLoadConst:
        if (!reg_ok(ins.a)) return err.str() + "bad register";
        break;
      case OpCode::kMove:
        if (!reg_ok(ins.a) || !reg_ok(ins.b)) return err.str() + "bad register";
        break;
      case OpCode::kReadObj:
        if (!reg_ok(ins.a)) return err.str() + "bad register";
        if (!contains(may_read_, ins.obj)) return err.str() + "object not in may_read";
        break;
      case OpCode::kWriteObj:
        if (!reg_ok(ins.a)) return err.str() + "bad register";
        if (!contains(may_write_, ins.obj)) return err.str() + "object not in may_write";
        break;
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kCmpEq:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
        if (!reg_ok(ins.a) || !reg_ok(ins.b) || !reg_ok(ins.c)) {
          return err.str() + "bad register";
        }
        break;
      case OpCode::kJump:
        if (ins.target >= code_.size()) return err.str() + "jump target out of range";
        break;
      case OpCode::kJumpIfZero:
      case OpCode::kJumpIfNonZero:
        if (!reg_ok(ins.a)) return err.str() + "bad register";
        if (ins.target >= code_.size()) return err.str() + "jump target out of range";
        break;
      case OpCode::kReturn:
        if (!reg_ok(ins.a)) return err.str() + "bad register";
        break;
      default:
        return err.str() + "unknown opcode";
    }
  }
  // The last instruction must not fall off the end.
  const OpCode last = code_.back().op;
  if (last != OpCode::kReturn && last != OpCode::kJump) {
    return "program can fall off the end (last instruction must be return or jump)";
  }
  return "";
}

void Program::encode(util::ByteWriter& out) const {
  out.put_string(name_);
  out.put_u8(num_regs_);
  out.put_u32_vector(may_read_);
  out.put_u32_vector(may_write_);
  out.put_u32(static_cast<std::uint32_t>(code_.size()));
  for (const Instruction& ins : code_) {
    out.put_u8(static_cast<std::uint8_t>(ins.op));
    out.put_u8(ins.a);
    out.put_u8(ins.b);
    out.put_u8(ins.c);
    out.put_u32(ins.obj);
    out.put_u32(ins.target);
    out.put_i64(ins.imm);
  }
}

Program Program::decode(util::ByteReader& in) {
  std::string name = in.get_string();
  const std::uint8_t num_regs = in.get_u8();
  std::vector<ObjectId> may_read = in.get_u32_vector();
  std::vector<ObjectId> may_write = in.get_u32_vector();
  const std::uint32_t count = in.get_u32();
  std::vector<Instruction> code;
  code.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Instruction ins;
    ins.op = static_cast<OpCode>(in.get_u8());
    ins.a = in.get_u8();
    ins.b = in.get_u8();
    ins.c = in.get_u8();
    ins.obj = in.get_u32();
    ins.target = in.get_u32();
    ins.imm = in.get_i64();
    code.push_back(ins);
  }
  Program program(std::move(code), num_regs, std::move(may_read),
                  std::move(may_write), std::move(name));
  MOCC_ASSERT_MSG(program.validate().empty(), "decoded program failed validation");
  return program;
}

bool Program::operator==(const Program& other) const {
  if (num_regs_ != other.num_regs_ || name_ != other.name_ ||
      may_read_ != other.may_read_ || may_write_ != other.may_write_ ||
      code_.size() != other.code_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instruction& x = code_[i];
    const Instruction& y = other.code_[i];
    if (x.op != y.op || x.a != y.a || x.b != y.b || x.c != y.c || x.obj != y.obj ||
        x.target != y.target || x.imm != y.imm) {
      return false;
    }
  }
  return true;
}

const char* opcode_name(OpCode op) {
  switch (op) {
    case OpCode::kLoadConst: return "const";
    case OpCode::kMove: return "move";
    case OpCode::kReadObj: return "read";
    case OpCode::kWriteObj: return "write";
    case OpCode::kAdd: return "add";
    case OpCode::kSub: return "sub";
    case OpCode::kMul: return "mul";
    case OpCode::kCmpEq: return "cmpeq";
    case OpCode::kCmpLt: return "cmplt";
    case OpCode::kCmpLe: return "cmple";
    case OpCode::kJump: return "jump";
    case OpCode::kJumpIfZero: return "jz";
    case OpCode::kJumpIfNonZero: return "jnz";
    case OpCode::kReturn: return "return";
  }
  return "?";
}

std::string to_string(const Program& program) {
  std::ostringstream out;
  out << "program '" << program.name() << "' regs=" << int(program.num_regs())
      << " may_read={";
  for (std::size_t i = 0; i < program.may_read().size(); ++i) {
    if (i > 0) out << ",";
    out << program.may_read()[i];
  }
  out << "} may_write={";
  for (std::size_t i = 0; i < program.may_write().size(); ++i) {
    if (i > 0) out << ",";
    out << program.may_write()[i];
  }
  out << "}\n";
  const auto& code = program.code();
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instruction& ins = code[pc];
    out << "  " << pc << ": " << opcode_name(ins.op);
    switch (ins.op) {
      case OpCode::kLoadConst:
        out << " r" << int(ins.a) << " <- " << ins.imm;
        break;
      case OpCode::kMove:
        out << " r" << int(ins.a) << " <- r" << int(ins.b);
        break;
      case OpCode::kReadObj:
        out << " r" << int(ins.a) << " <- obj" << ins.obj;
        break;
      case OpCode::kWriteObj:
        out << " obj" << ins.obj << " <- r" << int(ins.a);
        break;
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kCmpEq:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
        out << " r" << int(ins.a) << " <- r" << int(ins.b) << ", r" << int(ins.c);
        break;
      case OpCode::kJump:
        out << " -> " << ins.target;
        break;
      case OpCode::kJumpIfZero:
      case OpCode::kJumpIfNonZero:
        out << " r" << int(ins.a) << " -> " << ins.target;
        break;
      case OpCode::kReturn:
        out << " r" << int(ins.a);
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace mocc::mscript
