// Fluent assembler for MScript programs.
//
// Collects instructions and labels, resolves forward references, derives
// the may-read/may-write footprint from the emitted READ/WRITE
// instructions (callers can widen it with `declare_*` for programs whose
// footprint should be conservative beyond what the code touches).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mscript/program.hpp"

namespace mocc::mscript {

class Builder {
 public:
  explicit Builder(std::string name) : name_(std::move(name)) {}

  using Reg = std::uint8_t;

  /// Allocates a fresh register (max 255 per program).
  Reg reg();

  Builder& load_const(Reg dst, Value v);
  Builder& move(Reg dst, Reg src);
  Builder& read(Reg dst, ObjectId obj);
  Builder& write(ObjectId obj, Reg src);
  Builder& add(Reg dst, Reg lhs, Reg rhs);
  Builder& sub(Reg dst, Reg lhs, Reg rhs);
  Builder& mul(Reg dst, Reg lhs, Reg rhs);
  Builder& cmp_eq(Reg dst, Reg lhs, Reg rhs);
  Builder& cmp_lt(Reg dst, Reg lhs, Reg rhs);
  Builder& cmp_le(Reg dst, Reg lhs, Reg rhs);
  Builder& jump(const std::string& label);
  Builder& jump_if_zero(Reg test, const std::string& label);
  Builder& jump_if_nonzero(Reg test, const std::string& label);
  Builder& ret(Reg value);
  /// Convenience: return constant (uses a scratch register).
  Builder& ret_const(Value v);

  /// Binds `label` to the next emitted instruction.
  Builder& label(const std::string& name);

  /// Widen the declared footprint beyond the instructions emitted so far.
  Builder& declare_read(ObjectId obj);
  Builder& declare_write(ObjectId obj);

  /// Resolves labels and validates; aborts on malformed programs
  /// (builder misuse is a programming error in this codebase).
  Program build();

 private:
  std::string name_;
  std::vector<Instruction> code_;
  std::map<std::string, std::uint32_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;  // (pc, label)
  std::vector<ObjectId> may_read_;
  std::vector<ObjectId> may_write_;
  std::uint16_t next_reg_ = 0;
};

}  // namespace mocc::mscript
