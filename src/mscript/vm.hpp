// MScript interpreter.
//
// Execution is purely deterministic given the program and the store's
// responses to READs — the replay property both protocols depend on.
// The VM records every shared-object operation it performs in program
// order; the protocol layer turns that record into the core model's
// m-operation (and the checkers consume it).
#pragma once

#include <cstdint>
#include <vector>

#include "mscript/program.hpp"

namespace mocc::mscript {

/// The store a program executes against. Implementations: a replica's
/// local copy, the m-linearizability query copy, a plain test store.
class StoreView {
 public:
  virtual ~StoreView() = default;
  virtual Value read(ObjectId object) = 0;
  virtual void write(ObjectId object, Value value) = 0;
};

/// One shared-object access performed during execution, in program order.
/// For reads, `value` is the value obtained; for writes, the value stored.
struct AccessRecord {
  bool is_write = false;
  ObjectId object = 0;
  Value value = 0;
};

struct ExecutionResult {
  Value return_value = 0;
  std::vector<AccessRecord> accesses;
  std::size_t steps = 0;

  /// Objects actually read / written (deduplicated, sorted).
  std::vector<ObjectId> objects_read() const;
  std::vector<ObjectId> objects_written() const;
};

class Vm {
 public:
  /// Upper bound on interpreted steps; exceeded means a buggy program
  /// (deterministic procedures must terminate) and aborts.
  static constexpr std::size_t kMaxSteps = 1 << 20;

  /// Runs `program` against `store`. The program must validate.
  static ExecutionResult run(const Program& program, StoreView& store);
};

/// Trivial in-memory store for tests and single-process use.
class VectorStore final : public StoreView {
 public:
  explicit VectorStore(std::size_t num_objects, Value initial = 0)
      : values_(num_objects, initial) {}

  Value read(ObjectId object) override;
  void write(ObjectId object, Value value) override;

  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& values() { return values_; }

 private:
  std::vector<Value> values_;
};

}  // namespace mocc::mscript
