// MScript: a tiny deterministic bytecode for m-operations.
//
// The paper models an m-operation as a "deterministic procedure" of read
// and write operations on shared objects (§2.1). Both protocols (§5) rely
// on shipping that procedure to every replica via atomic broadcast and
// replaying it there with an identical outcome. MScript is the concrete
// form of such a procedure in this library:
//
//   - register machine, 64-bit signed integer values;
//   - READ/WRITE against a store of shared objects;
//   - arithmetic, comparison, and conditional branches (so that e.g. DCAS
//     can decide whether to write based on the values it read);
//   - a declared *may-read* / *may-write* object footprint. The footprint
//     is conservative: the set of objects an execution actually touches is
//     always a subset. The protocols follow the paper's rule of treating
//     any m-operation with a non-empty may-write set as an update
//     m-operation ("we take a conservative approach and treat an
//     m-operation as an update m-operation if it can potentially write to
//     some object").
//
// Programs serialize to bytes (ByteWriter format) so the simulator carries
// them as ordinary message payloads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mocc::mscript {

using Value = std::int64_t;
using ObjectId = std::uint32_t;

enum class OpCode : std::uint8_t {
  kLoadConst = 0,  // r[a] <- imm
  kMove = 1,       // r[a] <- r[b]
  kReadObj = 2,    // r[a] <- store[obj]
  kWriteObj = 3,   // store[obj] <- r[a]
  kAdd = 4,        // r[a] <- r[b] + r[c]
  kSub = 5,        // r[a] <- r[b] - r[c]
  kMul = 6,        // r[a] <- r[b] * r[c]
  kCmpEq = 7,      // r[a] <- (r[b] == r[c])
  kCmpLt = 8,      // r[a] <- (r[b] <  r[c])
  kCmpLe = 9,      // r[a] <- (r[b] <= r[c])
  kJump = 10,      // pc <- target
  kJumpIfZero = 11,  // if r[a] == 0: pc <- target
  kJumpIfNonZero = 12,  // if r[a] != 0: pc <- target
  kReturn = 13,    // halt; return value r[a]
};

struct Instruction {
  OpCode op{OpCode::kReturn};
  std::uint8_t a = 0;  // destination / tested register
  std::uint8_t b = 0;  // first source register
  std::uint8_t c = 0;  // second source register
  ObjectId obj = 0;    // object operand (kReadObj / kWriteObj)
  std::uint32_t target = 0;  // jump target (kJump*)
  Value imm = 0;       // immediate (kLoadConst)
};

/// A validated MScript program together with its declared object footprint.
class Program {
 public:
  Program() = default;
  Program(std::vector<Instruction> code, std::uint8_t num_regs,
          std::vector<ObjectId> may_read, std::vector<ObjectId> may_write,
          std::string name);

  const std::vector<Instruction>& code() const { return code_; }
  std::uint8_t num_regs() const { return num_regs_; }

  /// Sorted, deduplicated footprints.
  const std::vector<ObjectId>& may_read() const { return may_read_; }
  const std::vector<ObjectId>& may_write() const { return may_write_; }

  /// Paper's update/query split: an m-operation is an update iff it can
  /// potentially write (conservative, decided statically).
  bool is_update() const { return !may_write_.empty(); }
  bool is_query() const { return may_write_.empty(); }

  /// Human-readable label for traces ("dcas", "transfer", ...).
  const std::string& name() const { return name_; }

  /// Structural validation: register indices in range, jump targets in
  /// range, every READ object in may_read, every WRITE object in
  /// may_write, program non-empty and ends in control flow that cannot
  /// fall off the end. Returns an error description or empty string.
  std::string validate() const;

  void encode(util::ByteWriter& out) const;
  static Program decode(util::ByteReader& in);

  bool operator==(const Program& other) const;

 private:
  std::vector<Instruction> code_;
  std::uint8_t num_regs_ = 0;
  std::vector<ObjectId> may_read_;
  std::vector<ObjectId> may_write_;
  std::string name_;
};

const char* opcode_name(OpCode op);

/// Disassembly for debugging and traces.
std::string to_string(const Program& program);

}  // namespace mocc::mscript
