#include "mscript/builder.hpp"

#include "util/assert.hpp"

namespace mocc::mscript {

Builder::Reg Builder::reg() {
  MOCC_ASSERT_MSG(next_reg_ < 256, "register budget exhausted");
  return static_cast<Reg>(next_reg_++);
}

Builder& Builder::load_const(Reg dst, Value v) {
  Instruction ins;
  ins.op = OpCode::kLoadConst;
  ins.a = dst;
  ins.imm = v;
  code_.push_back(ins);
  return *this;
}

Builder& Builder::move(Reg dst, Reg src) {
  Instruction ins;
  ins.op = OpCode::kMove;
  ins.a = dst;
  ins.b = src;
  code_.push_back(ins);
  return *this;
}

Builder& Builder::read(Reg dst, ObjectId obj) {
  Instruction ins;
  ins.op = OpCode::kReadObj;
  ins.a = dst;
  ins.obj = obj;
  code_.push_back(ins);
  may_read_.push_back(obj);
  return *this;
}

Builder& Builder::write(ObjectId obj, Reg src) {
  Instruction ins;
  ins.op = OpCode::kWriteObj;
  ins.a = src;
  ins.obj = obj;
  code_.push_back(ins);
  may_write_.push_back(obj);
  return *this;
}

namespace {
Instruction arith(OpCode op, Builder::Reg dst, Builder::Reg lhs, Builder::Reg rhs) {
  Instruction ins;
  ins.op = op;
  ins.a = dst;
  ins.b = lhs;
  ins.c = rhs;
  return ins;
}
}  // namespace

Builder& Builder::add(Reg dst, Reg lhs, Reg rhs) {
  code_.push_back(arith(OpCode::kAdd, dst, lhs, rhs));
  return *this;
}

Builder& Builder::sub(Reg dst, Reg lhs, Reg rhs) {
  code_.push_back(arith(OpCode::kSub, dst, lhs, rhs));
  return *this;
}

Builder& Builder::mul(Reg dst, Reg lhs, Reg rhs) {
  code_.push_back(arith(OpCode::kMul, dst, lhs, rhs));
  return *this;
}

Builder& Builder::cmp_eq(Reg dst, Reg lhs, Reg rhs) {
  code_.push_back(arith(OpCode::kCmpEq, dst, lhs, rhs));
  return *this;
}

Builder& Builder::cmp_lt(Reg dst, Reg lhs, Reg rhs) {
  code_.push_back(arith(OpCode::kCmpLt, dst, lhs, rhs));
  return *this;
}

Builder& Builder::cmp_le(Reg dst, Reg lhs, Reg rhs) {
  code_.push_back(arith(OpCode::kCmpLe, dst, lhs, rhs));
  return *this;
}

Builder& Builder::jump(const std::string& label) {
  Instruction ins;
  ins.op = OpCode::kJump;
  fixups_.emplace_back(code_.size(), label);
  code_.push_back(ins);
  return *this;
}

Builder& Builder::jump_if_zero(Reg test, const std::string& label) {
  Instruction ins;
  ins.op = OpCode::kJumpIfZero;
  ins.a = test;
  fixups_.emplace_back(code_.size(), label);
  code_.push_back(ins);
  return *this;
}

Builder& Builder::jump_if_nonzero(Reg test, const std::string& label) {
  Instruction ins;
  ins.op = OpCode::kJumpIfNonZero;
  ins.a = test;
  fixups_.emplace_back(code_.size(), label);
  code_.push_back(ins);
  return *this;
}

Builder& Builder::ret(Reg value) {
  Instruction ins;
  ins.op = OpCode::kReturn;
  ins.a = value;
  code_.push_back(ins);
  return *this;
}

Builder& Builder::ret_const(Value v) {
  const Reg r = reg();
  load_const(r, v);
  return ret(r);
}

Builder& Builder::label(const std::string& name) {
  MOCC_ASSERT_MSG(labels_.find(name) == labels_.end(), "duplicate label");
  labels_[name] = static_cast<std::uint32_t>(code_.size());
  return *this;
}

Builder& Builder::declare_read(ObjectId obj) {
  may_read_.push_back(obj);
  return *this;
}

Builder& Builder::declare_write(ObjectId obj) {
  may_write_.push_back(obj);
  return *this;
}

Program Builder::build() {
  for (const auto& [pc, label] : fixups_) {
    const auto it = labels_.find(label);
    MOCC_ASSERT_MSG(it != labels_.end(), "undefined label");
    MOCC_ASSERT_MSG(it->second < code_.size(), "label points past program end");
    code_[pc].target = it->second;
  }
  const auto regs = static_cast<std::uint8_t>(next_reg_ == 0 ? 1 : next_reg_);
  Program program(std::move(code_), regs, std::move(may_read_), std::move(may_write_),
                  std::move(name_));
  const std::string err = program.validate();
  MOCC_ASSERT_MSG(err.empty(), err.c_str());
  return program;
}

}  // namespace mocc::mscript
