#include "abcast/sequencer.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mocc::abcast {

SequencerAbcast::SequencerAbcast(Options options) : options_(options) {
  MOCC_ASSERT_MSG(options_.batch_max >= 1, "batch_max 0 makes no batches");
  MOCC_ASSERT_MSG(options_.batch_max == 1 || options_.batch_age >= 1,
                  "group commit needs an age trigger to keep partial "
                  "batches live");
  MOCC_ASSERT_MSG(!(options_.mutate_swap_first_two && options_.batch_max > 1),
                  "seq-swap mutation targets the unbatched wire path");
}

void SequencerAbcast::broadcast(sim::Context& ctx, std::vector<std::uint8_t> payload) {
  if (ctx.self() == kSequencerNode) {
    sequence_and_fan_out(ctx, ctx.self(), payload);
    return;
  }
  util::ByteWriter out;
  out.put_u32(ctx.self());
  out.put_u64_vector({});  // reserved
  out.put_string(std::string(payload.begin(), payload.end()));
  send(ctx, kSequencerNode, kSubmit, out.take());
}

void SequencerAbcast::sequence_and_fan_out(sim::Context& ctx, sim::NodeId origin,
                                           const std::vector<std::uint8_t>& payload) {
  MOCC_ASSERT(ctx.self() == kSequencerNode);
  if (options_.batch_max > 1) {
    // Group commit: park the submission; positions are assigned to the
    // whole batch at flush time, in this arrival order.
    const bool was_empty = batch_.empty();
    batch_.push_back(
        BatchItem{origin, payload, ctx.trace_context(), ctx.now()});
    if (batch_.size() >= options_.batch_max) {
      flush_batch(ctx, /*trigger=*/0);
    } else if (was_empty) {
      batch_deadline_ = ctx.now() + options_.batch_age;
      ctx.set_timer(options_.batch_age, kBatchTimerId);
    }
    return;
  }
  const std::uint64_t seq = next_seq_to_assign_++;
  // mocc-check mutation: mislabel the first two fan-outs (0 <-> 1) while
  // the local accept below keeps the true position — receivers apply the
  // first two updates in the opposite order from the sequencer.
  std::uint64_t wire_seq = seq;
  if (options_.mutate_swap_first_two && seq < 2) wire_seq = 1 - seq;
  util::ByteWriter out;
  out.put_u64(wire_seq);
  out.put_u32(origin);
  out.put_string(std::string(payload.begin(), payload.end()));
  send_to_others(ctx, kDeliver, out.bytes());
  // Local delivery without a network hop.
  accept(ctx, seq, origin, payload, ctx.now());
}

void SequencerAbcast::flush_batch(sim::Context& ctx, std::uint32_t trigger) {
  MOCC_ASSERT(ctx.self() == kSequencerNode);
  if (batch_.empty()) return;  // stale age timer; nothing pending
  // Swap out before processing: deliver_ below may broadcast, enqueuing
  // into a fresh batch while this one is mid-flush.
  std::vector<BatchItem> batch;
  batch.swap(batch_);
  const std::uint64_t first = next_seq_to_assign_;
  next_seq_to_assign_ += batch.size();

  util::ByteWriter out;
  out.put_u64(first);
  out.put_u32(static_cast<std::uint32_t>(batch.size()));
  for (const BatchItem& item : batch) {
    out.put_u32(item.origin);
    out.put_string(std::string(item.payload.begin(), item.payload.end()));
  }
  if (auto* sink = ctx.trace_sink()) {
    sink->on_event({obs::TraceEventType::kBatchAssign, ctx.now(), ctx.self(), 0,
                    trigger, first, batch.size()});
    sink->on_event({obs::TraceEventType::kBatchFlush, ctx.now(), ctx.self(), 0,
                    trigger, out.size(), batch.size()});
  }
  // The frame rides the first item's context (the batch carrier); local
  // deliveries below restore each item's own context first.
  const obs::SpanContext outer = ctx.trace_context();
  ctx.set_trace_context(batch.front().trace);
  send_to_others(ctx, kDeliverBatch, out.bytes());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ctx.set_trace_context(batch[i].trace);
    accept(ctx, first + i, batch[i].origin, std::move(batch[i].payload),
           batch[i].seen_at);
  }
  ctx.set_trace_context(outer);
}

bool SequencerAbcast::on_timer(sim::Context& ctx, std::uint64_t timer_id) {
  if (timer_id != kBatchTimerId) return false;
  // One timer is armed per empty->nonempty transition; a size flush in
  // between makes this firing stale (the live batch armed a fresh timer
  // for its own, later deadline).
  if (!batch_.empty() && ctx.now() >= batch_deadline_) {
    flush_batch(ctx, /*trigger=*/1);
  }
  return true;
}

void SequencerAbcast::accept(sim::Context& ctx, std::uint64_t seq, sim::NodeId origin,
                             std::vector<std::uint8_t> payload, sim::SimTime seen_at) {
  pending_[seq] =
      PendingDelivery{origin, std::move(payload), ctx.trace_context(), seen_at};
  // Each delivery re-roots the trace context at its abcast_agree span
  // (first sighting here -> agreed-position delivery); restore between
  // iterations so gap-fill deliveries keep their own contexts.
  const obs::SpanContext outer = ctx.trace_context();
  while (true) {
    const auto it = pending_.find(next_seq_to_deliver_);
    if (it == pending_.end()) break;
    MOCC_ASSERT_MSG(deliver_ != nullptr, "deliver callback not wired");
    // Copy out before erasing: the callback may broadcast, mutating
    // pending_ through nested sequencing on this node.
    const sim::NodeId msg_origin = it->second.origin;
    const std::vector<std::uint8_t> msg_payload = std::move(it->second.payload);
    const obs::SpanContext msg_trace = it->second.trace;
    const sim::SimTime msg_seen_at = it->second.seen_at;
    pending_.erase(it);
    const std::uint64_t seq_pos = next_seq_to_deliver_++;
    if (auto* sink = ctx.trace_sink()) {
      sink->on_event({obs::TraceEventType::kAbcastSequence, ctx.now(), ctx.self(),
                      msg_origin, 0, seq_pos, msg_payload.size()});
      if (msg_trace.valid()) {
        obs::Span agree;
        agree.type = obs::SpanType::kAbcastAgree;
        agree.trace_id = msg_trace.trace_id;
        agree.span_id = ctx.new_span_id();
        agree.parent_span = msg_trace.span_id;
        agree.begin = msg_seen_at;
        agree.end = ctx.now();
        agree.node = ctx.self();
        agree.peer = msg_origin;
        agree.id = seq_pos;
        agree.arg = msg_payload.size();
        sink->on_span(agree);
        ctx.set_trace_context(obs::SpanContext{agree.trace_id, agree.span_id});
      }
    }
    deliver_(ctx, msg_origin, msg_payload);
    ctx.set_trace_context(outer);
  }
}

bool SequencerAbcast::on_message(sim::Context& ctx, const sim::Message& message) {
  if (message.kind == kSubmit) {
    util::ByteReader in(message.payload);
    const sim::NodeId origin = in.get_u32();
    (void)in.get_u64_vector();
    const std::string payload = in.get_string();
    sequence_and_fan_out(ctx, origin,
                         std::vector<std::uint8_t>(payload.begin(), payload.end()));
    return true;
  }
  if (message.kind == kDeliver) {
    util::ByteReader in(message.payload);
    const std::uint64_t seq = in.get_u64();
    const sim::NodeId origin = in.get_u32();
    const std::string payload = in.get_string();
    accept(ctx, seq, origin,
           std::vector<std::uint8_t>(payload.begin(), payload.end()), ctx.now());
    return true;
  }
  if (message.kind == kDeliverBatch) {
    util::ByteReader in(message.payload);
    const std::uint64_t first = in.get_u64();
    const std::uint32_t count = in.get_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const sim::NodeId origin = in.get_u32();
      const std::string payload = in.get_string();
      accept(ctx, first + i, origin,
             std::vector<std::uint8_t>(payload.begin(), payload.end()),
             ctx.now());
    }
    return true;
  }
  return false;
}

}  // namespace mocc::abcast
