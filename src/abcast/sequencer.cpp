#include "abcast/sequencer.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mocc::abcast {

void SequencerAbcast::broadcast(sim::Context& ctx, std::vector<std::uint8_t> payload) {
  if (ctx.self() == kSequencerNode) {
    sequence_and_fan_out(ctx, ctx.self(), payload);
    return;
  }
  util::ByteWriter out;
  out.put_u32(ctx.self());
  out.put_u64_vector({});  // reserved
  out.put_string(std::string(payload.begin(), payload.end()));
  send(ctx, kSequencerNode, kSubmit, out.take());
}

void SequencerAbcast::sequence_and_fan_out(sim::Context& ctx, sim::NodeId origin,
                                           const std::vector<std::uint8_t>& payload) {
  MOCC_ASSERT(ctx.self() == kSequencerNode);
  const std::uint64_t seq = next_seq_to_assign_++;
  // mocc-check mutation: mislabel the first two fan-outs (0 <-> 1) while
  // the local accept below keeps the true position — receivers apply the
  // first two updates in the opposite order from the sequencer.
  std::uint64_t wire_seq = seq;
  if (options_.mutate_swap_first_two && seq < 2) wire_seq = 1 - seq;
  util::ByteWriter out;
  out.put_u64(wire_seq);
  out.put_u32(origin);
  out.put_string(std::string(payload.begin(), payload.end()));
  send_to_others(ctx, kDeliver, out.bytes());
  // Local delivery without a network hop.
  accept(ctx, seq, origin, payload);
}

void SequencerAbcast::accept(sim::Context& ctx, std::uint64_t seq, sim::NodeId origin,
                             std::vector<std::uint8_t> payload) {
  pending_[seq] =
      PendingDelivery{origin, std::move(payload), ctx.trace_context(), ctx.now()};
  // Each delivery re-roots the trace context at its abcast_agree span
  // (first sighting here -> agreed-position delivery); restore between
  // iterations so gap-fill deliveries keep their own contexts.
  const obs::SpanContext outer = ctx.trace_context();
  while (true) {
    const auto it = pending_.find(next_seq_to_deliver_);
    if (it == pending_.end()) break;
    MOCC_ASSERT_MSG(deliver_ != nullptr, "deliver callback not wired");
    // Copy out before erasing: the callback may broadcast, mutating
    // pending_ through nested sequencing on this node.
    const sim::NodeId msg_origin = it->second.origin;
    const std::vector<std::uint8_t> msg_payload = std::move(it->second.payload);
    const obs::SpanContext msg_trace = it->second.trace;
    const sim::SimTime seen_at = it->second.seen_at;
    pending_.erase(it);
    const std::uint64_t seq_pos = next_seq_to_deliver_++;
    if (auto* sink = ctx.trace_sink()) {
      sink->on_event({obs::TraceEventType::kAbcastSequence, ctx.now(), ctx.self(),
                      msg_origin, 0, seq_pos, msg_payload.size()});
      if (msg_trace.valid()) {
        obs::Span agree;
        agree.type = obs::SpanType::kAbcastAgree;
        agree.trace_id = msg_trace.trace_id;
        agree.span_id = ctx.new_span_id();
        agree.parent_span = msg_trace.span_id;
        agree.begin = seen_at;
        agree.end = ctx.now();
        agree.node = ctx.self();
        agree.peer = msg_origin;
        agree.id = seq_pos;
        agree.arg = msg_payload.size();
        sink->on_span(agree);
        ctx.set_trace_context(obs::SpanContext{agree.trace_id, agree.span_id});
      }
    }
    deliver_(ctx, msg_origin, msg_payload);
    ctx.set_trace_context(outer);
  }
}

bool SequencerAbcast::on_message(sim::Context& ctx, const sim::Message& message) {
  if (message.kind == kSubmit) {
    util::ByteReader in(message.payload);
    const sim::NodeId origin = in.get_u32();
    (void)in.get_u64_vector();
    const std::string payload = in.get_string();
    sequence_and_fan_out(ctx, origin,
                         std::vector<std::uint8_t>(payload.begin(), payload.end()));
    return true;
  }
  if (message.kind == kDeliver) {
    util::ByteReader in(message.payload);
    const std::uint64_t seq = in.get_u64();
    const sim::NodeId origin = in.get_u32();
    const std::string payload = in.get_string();
    accept(ctx, seq, origin,
           std::vector<std::uint8_t>(payload.begin(), payload.end()));
    return true;
  }
  return false;
}

}  // namespace mocc::abcast
