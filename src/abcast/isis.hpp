// ISIS-style agreed-order atomic broadcast (Birman & Joseph).
//
// Decentralized total order from Lamport-clock proposals:
//   1. the origin sends PROPOSE(payload) to every other node and makes
//      its own proposal;
//   2. every node answers PROPOSAL(c, node) where c is its bumped
//      logical clock — the pair (c, node) is globally unique;
//   3. the origin picks the lexicographic maximum as the final timestamp
//      and announces FINAL(c*, node*);
//   4. messages deliver in final-timestamp order, once no pending
//      message's (still growing) proposed timestamp could precede them.
//
// Correct under arbitrary message reordering: a FINAL that overtakes its
// PROPOSE is buffered until the payload arrives; a message's final
// timestamp is never smaller than any node's own proposal for it, which
// is what makes the "minimal pending" delivery test safe.
#pragma once

#include <cstdint>
#include <map>

#include "abcast/abcast.hpp"

namespace mocc::abcast {

class IsisAbcast final : public AtomicBroadcast {
 public:
  // Three-phase agreement kinds; mocc-lint's msg-flow closure keeps each
  // one both emitted and handled by the on_message switch in isis.cpp.
  static constexpr std::uint32_t kPropose = sim::wire::abcast_kind(10);
  static constexpr std::uint32_t kProposal = sim::wire::abcast_kind(11);
  static constexpr std::uint32_t kFinal = sim::wire::abcast_kind(12);

  void broadcast(sim::Context& ctx, std::vector<std::uint8_t> payload) override;
  bool on_message(sim::Context& ctx, const sim::Message& message) override;
  std::string name() const override { return "isis"; }

 private:
  /// Globally-unique logical timestamp.
  struct Stamp {
    std::uint64_t clock = 0;
    sim::NodeId node = 0;
    bool operator<(const Stamp& other) const {
      if (clock != other.clock) return clock < other.clock;
      return node < other.node;
    }
  };
  using MsgKey = std::pair<sim::NodeId, std::uint64_t>;  // (origin, msgid)

  struct Pending {
    std::vector<std::uint8_t> payload;
    Stamp stamp;        // proposed (lower bound) until final
    bool final = false;
    obs::SpanContext trace;     ///< context when first seen at this node
    sim::SimTime seen_at = 0;  ///< abcast_agree span begin
  };

  /// Origin-side bookkeeping while collecting proposals.
  struct Collecting {
    Stamp max_proposal;
    std::size_t responses = 0;
  };

  void handle_propose(sim::Context& ctx, sim::NodeId origin, std::uint64_t msgid,
                      std::vector<std::uint8_t> payload);
  void handle_proposal(sim::Context& ctx, std::uint64_t msgid, Stamp proposal);
  void finalize(sim::Context& ctx, const MsgKey& key, Stamp final_stamp);
  void try_deliver(sim::Context& ctx);

  std::uint64_t lamport_ = 0;
  std::uint64_t next_msgid_ = 0;
  /// Agreed-order delivery position (identical at every node; traced as
  /// the kAbcastSequence event id).
  std::uint64_t next_delivery_pos_ = 0;
  std::map<MsgKey, Pending> pending_;
  std::map<std::uint64_t, Collecting> collecting_;  // my own msgid -> state
  std::map<MsgKey, Stamp> early_finals_;            // FINAL overtook PROPOSE
};

}  // namespace mocc::abcast
