#include "abcast/abcast.hpp"

#include "abcast/isis.hpp"
#include "abcast/sequencer.hpp"
#include "util/assert.hpp"

namespace mocc::abcast {

AbcastFactory make_abcast_factory(const std::string& name) {
  if (name == "sequencer") {
    return [] { return std::make_unique<SequencerAbcast>(); };
  }
  if (name == "isis") {
    return [] { return std::make_unique<IsisAbcast>(); };
  }
  MOCC_ASSERT_MSG(false, "unknown atomic broadcast name (sequencer|isis)");
  return nullptr;
}

}  // namespace mocc::abcast
