#include "abcast/isis.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace mocc::abcast {

void IsisAbcast::broadcast(sim::Context& ctx, std::vector<std::uint8_t> payload) {
  const std::uint64_t msgid = next_msgid_++;

  util::ByteWriter out;
  out.put_u32(ctx.self());
  out.put_u64(msgid);
  out.put_string(std::string(payload.begin(), payload.end()));
  send_to_others(ctx, kPropose, out.bytes());

  // Own proposal.
  const Stamp own{++lamport_, ctx.self()};
  pending_[{ctx.self(), msgid}] = Pending{std::move(payload), own, /*final=*/false,
                                          ctx.trace_context(), ctx.now()};
  collecting_[msgid] = Collecting{own, 1};

  if (ctx.num_nodes() == 1) {
    finalize(ctx, {ctx.self(), msgid}, own);
    collecting_.erase(msgid);
  }
}

void IsisAbcast::handle_propose(sim::Context& ctx, sim::NodeId origin,
                                std::uint64_t msgid,
                                std::vector<std::uint8_t> payload) {
  const Stamp proposal{++lamport_, ctx.self()};
  const MsgKey key{origin, msgid};
  pending_[key] = Pending{std::move(payload), proposal, /*final=*/false,
                          ctx.trace_context(), ctx.now()};

  util::ByteWriter out;
  out.put_u64(msgid);
  out.put_u64(proposal.clock);
  out.put_u32(proposal.node);
  send(ctx, origin, kProposal, out.take());

  // A FINAL may have arrived before the PROPOSE.
  if (const auto it = early_finals_.find(key); it != early_finals_.end()) {
    const Stamp early = it->second;
    early_finals_.erase(it);
    finalize(ctx, key, early);
  }
}

void IsisAbcast::handle_proposal(sim::Context& ctx, std::uint64_t msgid,
                                 Stamp proposal) {
  const auto it = collecting_.find(msgid);
  MOCC_ASSERT_MSG(it != collecting_.end(), "proposal for unknown own broadcast");
  Collecting& state = it->second;
  if (state.max_proposal < proposal) state.max_proposal = proposal;
  ++state.responses;
  if (state.responses < ctx.num_nodes()) return;

  const Stamp final_stamp = state.max_proposal;
  util::ByteWriter out;
  out.put_u32(ctx.self());
  out.put_u64(msgid);
  out.put_u64(final_stamp.clock);
  out.put_u32(final_stamp.node);
  send_to_others(ctx, kFinal, out.bytes());

  finalize(ctx, {ctx.self(), msgid}, final_stamp);
  collecting_.erase(it);
}

void IsisAbcast::finalize(sim::Context& ctx, const MsgKey& key, Stamp final_stamp) {
  lamport_ = std::max(lamport_, final_stamp.clock);
  const auto it = pending_.find(key);
  MOCC_ASSERT_MSG(it != pending_.end(), "finalize without pending entry");
  MOCC_ASSERT_MSG(!(final_stamp < it->second.stamp),
                  "final timestamp below own proposal");
  it->second.stamp = final_stamp;
  it->second.final = true;
  try_deliver(ctx);
}

void IsisAbcast::try_deliver(sim::Context& ctx) {
  // Each delivery re-roots the trace context at its abcast_agree span;
  // restore between iterations so queued deliveries keep their own
  // contexts (see SequencerAbcast::accept).
  const obs::SpanContext outer = ctx.trace_context();
  for (;;) {
    const std::pair<const MsgKey, Pending>* min_entry = nullptr;
    for (const auto& entry : pending_) {
      if (min_entry == nullptr || entry.second.stamp < min_entry->second.stamp) {
        min_entry = &entry;
      }
    }
    if (min_entry == nullptr || !min_entry->second.final) return;
    MOCC_ASSERT_MSG(deliver_ != nullptr, "deliver callback not wired");
    const MsgKey key = min_entry->first;
    const obs::SpanContext msg_trace = min_entry->second.trace;
    const sim::SimTime seen_at = min_entry->second.seen_at;
    // Deliver before erasing; the callback may trigger nested broadcasts,
    // which never touch this (final) entry.
    const std::vector<std::uint8_t> payload = std::move(pending_.at(key).payload);
    pending_.erase(key);
    const std::uint64_t seq_pos = next_delivery_pos_++;
    if (auto* sink = ctx.trace_sink()) {
      sink->on_event({obs::TraceEventType::kAbcastSequence, ctx.now(), ctx.self(),
                      key.first, 0, seq_pos, payload.size()});
      if (msg_trace.valid()) {
        obs::Span agree;
        agree.type = obs::SpanType::kAbcastAgree;
        agree.trace_id = msg_trace.trace_id;
        agree.span_id = ctx.new_span_id();
        agree.parent_span = msg_trace.span_id;
        agree.begin = seen_at;
        agree.end = ctx.now();
        agree.node = ctx.self();
        agree.peer = key.first;
        agree.id = seq_pos;
        agree.arg = payload.size();
        sink->on_span(agree);
        ctx.set_trace_context(obs::SpanContext{agree.trace_id, agree.span_id});
      }
    }
    deliver_(ctx, key.first, payload);
    ctx.set_trace_context(outer);
    continue;
  }
}

bool IsisAbcast::on_message(sim::Context& ctx, const sim::Message& message) {
  switch (message.kind) {
    case kPropose: {
      util::ByteReader in(message.payload);
      const sim::NodeId origin = in.get_u32();
      const std::uint64_t msgid = in.get_u64();
      const std::string payload = in.get_string();
      handle_propose(ctx, origin, msgid,
                     std::vector<std::uint8_t>(payload.begin(), payload.end()));
      return true;
    }
    case kProposal: {
      util::ByteReader in(message.payload);
      const std::uint64_t msgid = in.get_u64();
      Stamp proposal;
      proposal.clock = in.get_u64();
      proposal.node = in.get_u32();
      handle_proposal(ctx, msgid, proposal);
      return true;
    }
    case kFinal: {
      util::ByteReader in(message.payload);
      const sim::NodeId origin = in.get_u32();
      const std::uint64_t msgid = in.get_u64();
      Stamp final_stamp;
      final_stamp.clock = in.get_u64();
      final_stamp.node = in.get_u32();
      const MsgKey key{origin, msgid};
      if (pending_.find(key) == pending_.end()) {
        early_finals_[key] = final_stamp;  // FINAL overtook PROPOSE
      } else {
        finalize(ctx, key, final_stamp);
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace mocc::abcast
