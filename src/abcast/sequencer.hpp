// Fixed-sequencer atomic broadcast.
//
// Node 0 is the sequencer. A broadcast is submitted to the sequencer,
// which stamps it with the next global sequence number and fans it out;
// receivers hold out-of-order arrivals until the gap fills. Local
// submissions and deliveries at the sequencer skip the network (a real
// co-located sequencer pays no wire cost either), so message counts stay
// honest: a broadcast costs (n-1) fan-out messages plus one submit when
// the origin is not the sequencer.
#pragma once

#include <cstdint>
#include <map>

#include "abcast/abcast.hpp"

namespace mocc::abcast {

class SequencerAbcast final : public AtomicBroadcast {
 public:
  static constexpr std::uint32_t kSubmit = sim::wire::abcast_kind(0);
  static constexpr std::uint32_t kDeliver = sim::wire::abcast_kind(1);
  static constexpr sim::NodeId kSequencerNode = 0;

  struct Options {
    /// Deliberate protocol mutation for mocc-check validation (never set
    /// in production): the sequencer fans out the first two positions
    /// with swapped sequence labels while delivering locally in true
    /// order, so receivers and the sequencer disagree on the total order.
    bool mutate_swap_first_two = false;
  };

  SequencerAbcast() = default;
  explicit SequencerAbcast(Options options) : options_(options) {}

  void broadcast(sim::Context& ctx, std::vector<std::uint8_t> payload) override;
  bool on_message(sim::Context& ctx, const sim::Message& message) override;
  std::string name() const override { return "sequencer"; }

 private:
  /// Sequencer side: stamp and fan out.
  void sequence_and_fan_out(sim::Context& ctx, sim::NodeId origin,
                            const std::vector<std::uint8_t>& payload);
  /// Receiver side: in-order delivery with gap buffering.
  void accept(sim::Context& ctx, std::uint64_t seq, sim::NodeId origin,
              std::vector<std::uint8_t> payload);

  struct PendingDelivery {
    sim::NodeId origin = 0;
    std::vector<std::uint8_t> payload;
    obs::SpanContext trace;     ///< context when first seen at this node
    sim::SimTime seen_at = 0;  ///< abcast_agree span begin
  };

  Options options_;
  std::uint64_t next_seq_to_assign_ = 0;   // sequencer only
  std::uint64_t next_seq_to_deliver_ = 0;  // every node
  std::map<std::uint64_t, PendingDelivery> pending_;
};

}  // namespace mocc::abcast
