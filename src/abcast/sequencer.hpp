// Fixed-sequencer atomic broadcast.
//
// Node 0 is the sequencer. A broadcast is submitted to the sequencer,
// which stamps it with the next global sequence number and fans it out;
// receivers hold out-of-order arrivals until the gap fills. Local
// submissions and deliveries at the sequencer skip the network (a real
// co-located sequencer pays no wire cost either), so message counts stay
// honest: a broadcast costs (n-1) fan-out messages plus one submit when
// the origin is not the sequencer.
//
// Group commit (docs/batching.md): with Options::batch_max > 1 the
// sequencer gathers submissions into a pending batch and assigns one
// CONTIGUOUS position block per flush, fanning the whole block out as a
// single kDeliverBatch frame — (n-1) messages per batch instead of per
// update. A batch flushes when it reaches batch_max items (size trigger)
// or when its oldest item ages past batch_age virtual-time ticks (age
// trigger, armed via the host-forwarded kBatchTimerId timer). Positions
// inside a block follow submission-arrival order, so the agreed total
// order and per-sender FIFO are exactly what the unbatched stamping
// would have produced for the same arrival sequence.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "abcast/abcast.hpp"

namespace mocc::abcast {

class SequencerAbcast final : public AtomicBroadcast {
 public:
  // Fixed-sequencer kinds; mocc-lint's msg-flow closure keeps each one
  // emitted and handled, and checks that kBatchTimerId below retains its
  // on_timer route in sequencer.cpp.
  static constexpr std::uint32_t kSubmit = sim::wire::abcast_kind(0);
  static constexpr std::uint32_t kDeliver = sim::wire::abcast_kind(1);
  /// Group-commit fan-out: one frame carrying a contiguous position
  /// block (u64 first seq | u32 count | count x (u32 origin | payload)).
  static constexpr std::uint32_t kDeliverBatch = sim::wire::abcast_kind(2);
  static constexpr sim::NodeId kSequencerNode = 0;
  /// Age-flush timer id (bit 61). The reliable link owns bit 62
  /// (fault::kLinkTimerTag) and hosts route timers link-first, so the
  /// two layers share an actor's timer namespace without collisions.
  static constexpr std::uint64_t kBatchTimerId = 1ULL << 61;

  struct Options {
    /// Deliberate protocol mutation for mocc-check validation (never set
    /// in production): the sequencer fans out the first two positions
    /// with swapped sequence labels while delivering locally in true
    /// order, so receivers and the sequencer disagree on the total order.
    bool mutate_swap_first_two = false;
    /// Group commit: > 1 makes the sequencer gather submissions and
    /// assign a contiguous position block of up to batch_max per flush.
    std::size_t batch_max = 1;
    /// Age flush trigger: a pending batch whose first item is this many
    /// virtual-time ticks old flushes even if not full. Must be >= 1
    /// when batching — the age timer is what keeps partial batches live.
    sim::SimTime batch_age = 8;
  };

  SequencerAbcast() = default;
  explicit SequencerAbcast(Options options);

  void broadcast(sim::Context& ctx, std::vector<std::uint8_t> payload) override;
  bool on_message(sim::Context& ctx, const sim::Message& message) override;
  bool on_timer(sim::Context& ctx, std::uint64_t timer_id) override;
  std::string name() const override { return "sequencer"; }

 private:
  /// Sequencer side: stamp and fan out (or enqueue when batching).
  void sequence_and_fan_out(sim::Context& ctx, sim::NodeId origin,
                            const std::vector<std::uint8_t>& payload);
  /// Group commit: assign the pending batch its position block, fan it
  /// out as one frame, deliver locally. `trigger`: 0=size, 1=age.
  void flush_batch(sim::Context& ctx, std::uint32_t trigger);
  /// Receiver side: in-order delivery with gap buffering. `seen_at` is
  /// the abcast_agree span begin — arrival time for wire deliveries,
  /// submission-enqueue time for the sequencer's own batched items (the
  /// group-commit wait is agreement latency, not queueing).
  void accept(sim::Context& ctx, std::uint64_t seq, sim::NodeId origin,
              std::vector<std::uint8_t> payload, sim::SimTime seen_at);

  struct PendingDelivery {
    sim::NodeId origin = 0;
    std::vector<std::uint8_t> payload;
    obs::SpanContext trace;     ///< context when first seen at this node
    sim::SimTime seen_at = 0;  ///< abcast_agree span begin
  };

  /// One submission awaiting its position block (sequencer only). The
  /// per-item trace context keeps each local delivery's abcast_agree
  /// span rooted in its own m-operation's trace; the fan-out frame
  /// carries the FIRST item's context (the batch carrier —
  /// docs/batching.md "Tracing batched frames").
  struct BatchItem {
    sim::NodeId origin = 0;
    std::vector<std::uint8_t> payload;
    obs::SpanContext trace;
    sim::SimTime seen_at = 0;
  };

  Options options_;
  std::uint64_t next_seq_to_assign_ = 0;   // sequencer only
  std::uint64_t next_seq_to_deliver_ = 0;  // every node
  std::map<std::uint64_t, PendingDelivery> pending_;
  std::vector<BatchItem> batch_;        // sequencer only, batching on
  sim::SimTime batch_deadline_ = 0;     ///< age timers older than this are stale
};

}  // namespace mocc::abcast
