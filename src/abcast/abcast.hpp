// Atomic (total-order) broadcast.
//
// Both protocols in §5 hinge on one primitive: "we use atomic broadcast
// to achieve our objective … atomic broadcast ensures that all processes
// apply all update m-operations in the same order". The paper treats it
// as given; this library provides two implementations so the stack is
// self-contained and their costs can be compared (experiment E2):
//
//   - SequencerAbcast: a fixed sequencer (node 0) assigns a global
//     sequence number; receivers deliver in sequence order. One hop to
//     the sequencer + n-1 fan-out per broadcast; the sequencer is a
//     throughput bottleneck and a single point of serialization.
//   - IsisAbcast: decentralized agreed order via Lamport-clock proposals
//     (the ISIS / Birman-Joseph algorithm): every node proposes a
//     timestamp, the origin picks the max and announces it; messages
//     deliver in final-timestamp order once no pending message could
//     precede them. 3(n-1) messages per broadcast, no bottleneck node.
//
// Guarantees (asserted by tests across random seeds and delay models):
// validity (own broadcasts deliver), agreement (every node delivers the
// same set), total order (identical delivery sequence everywhere), and
// per-sender FIFO integrity.
//
// A layer consumes messages whose kind falls in its reserved range; the
// composite actor in src/protocols routes accordingly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/reliable_link.hpp"
#include "sim/simulator.hpp"
#include "sim/wire_kinds.hpp"

namespace mocc::abcast {

/// Message-kind range reserved for the abcast layer (sim/wire_kinds.hpp
/// holds the simulator-wide partition).
inline constexpr std::uint32_t kAbcastKindFirst = sim::wire::kAbcastFirst;
inline constexpr std::uint32_t kAbcastKindLast = sim::wire::kAbcastLast;

class AtomicBroadcast {
 public:
  /// origin = broadcasting node; payload = opaque application bytes.
  /// The context is the live one of the event that triggered delivery
  /// (never stored — contexts are stack-scoped per event).
  using DeliverFn = std::function<void(sim::Context& ctx, sim::NodeId origin,
                                       const std::vector<std::uint8_t>& payload)>;

  virtual ~AtomicBroadcast() = default;

  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  virtual void on_start(sim::Context& ctx) { (void)ctx; }

  /// Initiates total-order broadcast; the payload is eventually delivered
  /// at EVERY node (including the origin) in the agreed order.
  virtual void broadcast(sim::Context& ctx, std::vector<std::uint8_t> payload) = 0;

  /// Consumes abcast-layer messages; returns false for foreign kinds.
  virtual bool on_message(sim::Context& ctx, const sim::Message& message) = 0;

  /// Consumes abcast-layer timers (batch flush deadlines); returns false
  /// for foreign timer ids. Hosts forward timers the reliable link did
  /// not claim here before their own handler.
  virtual bool on_timer(sim::Context& ctx, std::uint64_t timer_id) {
    (void)ctx;
    (void)timer_id;
    return false;
  }

  virtual std::string name() const = 0;

  /// Routes every network send through `link` (not owned; the hosting
  /// replica owns one link per node and shares it across layers). Null —
  /// the default — sends raw, assuming the reliable network of the
  /// paper's model.
  void set_reliable_link(fault::ReliableLink* link) { link_ = link; }

 protected:
  /// Send indirection used by the concrete algorithms: raw Context::send
  /// when no link is attached, reliable (ack + retransmit) otherwise.
  void send(sim::Context& ctx, sim::NodeId to, std::uint32_t kind,
            std::vector<std::uint8_t> payload) {
    if (link_ != nullptr) {
      link_->send(ctx, to, kind, std::move(payload));
      return;
    }
    ctx.send(to, kind, std::move(payload));
  }

  void send_to_others(sim::Context& ctx, std::uint32_t kind,
                      const std::vector<std::uint8_t>& payload) {
    if (link_ == nullptr) {
      ctx.send_to_others(kind, payload);
      return;
    }
    for (sim::NodeId to = 0; to < ctx.num_nodes(); ++to) {
      if (to != ctx.self()) link_->send(ctx, to, kind, payload);
    }
  }

  DeliverFn deliver_;
  fault::ReliableLink* link_ = nullptr;
};

/// Factory: one instance per node.
using AbcastFactory = std::function<std::unique_ptr<AtomicBroadcast>()>;

AbcastFactory make_abcast_factory(const std::string& name);

}  // namespace mocc::abcast
