// mocc-check replay: deterministic re-execution of a recorded schedule.
//
// A violating schedule found by explore() is just a choice sequence; the
// simulation is a pure function of it. The replay file format captures
// the configuration plus one line per choice point, each carrying the
// structural signature of the chosen delivery (send seq, from, to, wire
// kind, payload FNV-1a). Replay re-runs the system under a fixed
// controller that verifies every signature before following it — if the
// binary's send behavior changed since the file was recorded, replay
// reports the exact step that diverged instead of silently exploring a
// different execution.
//
// Replay is the bridge into the observability pipeline: pass a TraceSink
// and the re-execution emits the full causal-span trace, which
// `trace_query --audit` (and the rest of tools/trace_query) consumes.
//
// File format (line-oriented text, '#' comments allowed):
//
//   mocc-check-replay v1
//   protocol mseq
//   broadcast sequencer
//   mutation seq-swap          # "-" when exploring the correct protocol
//   processes 2
//   objects 2
//   ops 2
//   exact-budget 2000000
//   reason P5.x audit failed: ...
//   choices 17
//   choice <enabled> <chosen> <seq> <from> <to> <kind> <payload_hash>
//   ...                        # exactly `choices` choice lines
#pragma once

#include <string>

#include "check/explore.hpp"
#include "obs/trace.hpp"

namespace mocc::check {

/// Serializes a counterexample into the replay file format above.
std::string format_counterexample(const Counterexample& counterexample);

/// Parses the replay file format. Returns false (with `error` set) on an
/// unsupported version line or any malformed field; budgets and toggles
/// not present in the format keep their ExploreConfig defaults.
bool parse_counterexample(const std::string& text, Counterexample& out,
                          std::string& error);

struct ReplayResult {
  /// True when every recorded choice was followed and the run reached
  /// quiescence without running past the recorded sequence.
  bool faithful = false;
  /// Non-empty when the execution stopped matching the file: names the
  /// first divergent step and what differed.
  std::string divergence;
  /// Verdict of the replayed schedule (empty = admissible). A recorded
  /// violation that replays faithfully reproduces its reason here.
  std::string violation;
  /// False only if the exact checker exhausted the file's exact-budget.
  bool decided = true;
  /// Mirrors ScheduleVerdict::history_level for the replayed violation:
  /// true when it is visible in the recorded history alone and therefore
  /// reproducible by `trace_query --audit` on the emitted trace.
  bool history_level = false;
};

/// Re-executes a counterexample's schedule and re-judges the terminal
/// state with the same checks explore() used. `trace_sink` (optional,
/// not owned) receives the re-execution's causal spans — feed a
/// RingBufferSink and obs::write_trace_jsonl to hand the schedule to
/// trace_query.
ReplayResult replay(const Counterexample& counterexample,
                    obs::TraceSink* trace_sink = nullptr);

}  // namespace mocc::check
