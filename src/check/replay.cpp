#include "check/replay.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "api/system.hpp"
#include "util/assert.hpp"

namespace mocc::check {
namespace {

constexpr const char* kVersionLine = "mocc-check-replay v1";

/// The format is line-oriented; violation reasons (audit reports) can be
/// multi-line, so they are flattened onto the reason line.
std::string single_line(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ';';
  }
  return out;
}

/// Follows a recorded choice sequence, verifying each step's structural
/// signature; the first mismatch aborts the run and is reported instead
/// of silently exploring a different execution.
class FixedScheduleController final : public sim::ScheduleController {
 public:
  explicit FixedScheduleController(const std::vector<ChoiceRecord>& choices)
      : choices_(choices) {}

  std::size_t choose(const std::vector<Choice>& pending) override {
    if (!divergence_.empty()) return kAbortRun;
    const std::size_t step = step_++;
    if (step >= choices_.size()) {
      divergence_ = "replay diverged at step " + std::to_string(step) +
                    ": execution has more choice points than the recorded "
                    "schedule (" +
                    std::to_string(choices_.size()) + ")";
      return kAbortRun;
    }
    const ChoiceRecord& record = choices_[step];
    if (pending.size() != record.enabled) {
      divergence_ = "replay diverged at step " + std::to_string(step) +
                    ": " + std::to_string(pending.size()) +
                    " deliveries enabled, recorded " +
                    std::to_string(record.enabled);
      return kAbortRun;
    }
    if (record.chosen >= pending.size()) {
      divergence_ = "replay diverged at step " + std::to_string(step) +
                    ": recorded choice index " + std::to_string(record.chosen) +
                    " out of range";
      return kAbortRun;
    }
    const Choice& choice = pending[record.chosen];
    if (choice.seq != record.seq || choice.from != record.from ||
        choice.to != record.to || choice.kind != record.kind ||
        choice.payload_hash != record.payload_hash) {
      std::ostringstream out;
      out << "replay diverged at step " << step
          << ": chosen delivery signature mismatch (recorded seq="
          << record.seq << " " << record.from << "->" << record.to
          << " kind=" << record.kind << " payload=" << record.payload_hash
          << ", execution has seq=" << choice.seq << " " << choice.from
          << "->" << choice.to << " kind=" << choice.kind
          << " payload=" << choice.payload_hash << ")";
      divergence_ = out.str();
      return kAbortRun;
    }
    return record.chosen;
  }

  std::size_t steps() const { return step_; }
  const std::string& divergence() const { return divergence_; }

 private:
  const std::vector<ChoiceRecord>& choices_;
  std::size_t step_ = 0;
  std::string divergence_;
};

bool parse_u64(std::istringstream& in, const std::string& key,
               std::uint64_t& out, std::string& error) {
  if (in >> out) return true;
  error = "malformed value for '" + key + "'";
  return false;
}

}  // namespace

std::string format_counterexample(const Counterexample& counterexample) {
  const ExploreConfig& config = counterexample.config;
  std::ostringstream out;
  out << kVersionLine << "\n";
  out << "protocol " << config.protocol << "\n";
  out << "broadcast " << config.broadcast << "\n";
  out << "mutation " << (config.mutation.empty() ? "-" : config.mutation)
      << "\n";
  out << "processes " << config.num_processes << "\n";
  out << "objects " << config.num_objects << "\n";
  out << "ops " << config.ops_per_process << "\n";
  out << "exact-budget " << config.exact_states_budget << "\n";
  // Emitted only when on: unbatched files stay byte-identical to v1
  // writers, and v1 readers of unbatched files keep working.
  if (config.batching) out << "batching 1\n";
  out << "reason "
      << (counterexample.reason.empty() ? "-" : single_line(counterexample.reason))
      << "\n";
  out << "choices " << counterexample.choices.size() << "\n";
  for (const ChoiceRecord& record : counterexample.choices) {
    out << "choice " << record.enabled << " " << record.chosen << " "
        << record.seq << " " << record.from << " " << record.to << " "
        << record.kind << " " << record.payload_hash << "\n";
  }
  return out.str();
}

bool parse_counterexample(const std::string& text, Counterexample& out,
                          std::string& error) {
  out = Counterexample{};
  std::istringstream stream(text);
  std::string line;
  bool saw_version = false;
  bool saw_choices_count = false;
  std::uint64_t declared_choices = 0;
  while (std::getline(stream, line)) {
    // Strip trailing CR and '#' comments; skip blank lines.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key)) continue;

    if (!saw_version) {
      if (line != kVersionLine) {
        error = "unsupported replay file (expected '" +
                std::string(kVersionLine) + "', got '" + line + "')";
        return false;
      }
      saw_version = true;
      continue;
    }

    if (key == "protocol") {
      if (!(fields >> out.config.protocol)) {
        error = "malformed value for 'protocol'";
        return false;
      }
    } else if (key == "broadcast") {
      if (!(fields >> out.config.broadcast)) {
        error = "malformed value for 'broadcast'";
        return false;
      }
    } else if (key == "mutation") {
      std::string value;
      if (!(fields >> value)) {
        error = "malformed value for 'mutation'";
        return false;
      }
      out.config.mutation = value == "-" ? std::string{} : value;
    } else if (key == "batching") {
      std::uint64_t value = 0;
      if (!parse_u64(fields, key, value, error)) return false;
      out.config.batching = value != 0;
    } else if (key == "processes" || key == "objects" || key == "ops" ||
               key == "exact-budget" || key == "choices") {
      std::uint64_t value = 0;
      if (!parse_u64(fields, key, value, error)) return false;
      if (key == "processes") {
        out.config.num_processes = static_cast<std::size_t>(value);
      } else if (key == "objects") {
        out.config.num_objects = static_cast<std::size_t>(value);
      } else if (key == "ops") {
        out.config.ops_per_process = static_cast<std::size_t>(value);
      } else if (key == "exact-budget") {
        out.config.exact_states_budget = value;
      } else {
        declared_choices = value;
        saw_choices_count = true;
      }
    } else if (key == "reason") {
      std::string rest;
      std::getline(fields >> std::ws, rest);
      out.reason = rest == "-" ? std::string{} : rest;
    } else if (key == "choice") {
      ChoiceRecord record;
      std::uint64_t enabled = 0;
      std::uint64_t chosen = 0;
      std::uint64_t from = 0;
      std::uint64_t to = 0;
      std::uint64_t kind = 0;
      if (!parse_u64(fields, key, enabled, error) ||
          !parse_u64(fields, key, chosen, error) ||
          !parse_u64(fields, key, record.seq, error) ||
          !parse_u64(fields, key, from, error) ||
          !parse_u64(fields, key, to, error) ||
          !parse_u64(fields, key, kind, error) ||
          !parse_u64(fields, key, record.payload_hash, error)) {
        return false;
      }
      record.enabled = static_cast<std::uint32_t>(enabled);
      record.chosen = static_cast<std::uint32_t>(chosen);
      record.from = static_cast<std::uint32_t>(from);
      record.to = static_cast<std::uint32_t>(to);
      record.kind = static_cast<std::uint32_t>(kind);
      out.choices.push_back(record);
    } else {
      error = "unknown replay file key '" + key + "'";
      return false;
    }
  }
  if (!saw_version) {
    error = "empty replay file";
    return false;
  }
  if (out.config.protocol.empty()) {
    error = "replay file missing 'protocol'";
    return false;
  }
  if (!saw_choices_count || declared_choices != out.choices.size()) {
    error = "replay file declares " + std::to_string(declared_choices) +
            " choices but carries " + std::to_string(out.choices.size());
    return false;
  }
  return true;
}

ReplayResult replay(const Counterexample& counterexample,
                    obs::TraceSink* trace_sink) {
  ReplayResult result;
  const ExploreConfig& cfg = counterexample.config;

  api::System system(system_config_for(cfg));
  if (trace_sink != nullptr) system.set_trace_sink(trace_sink);

  FixedScheduleController controller(counterexample.choices);
  system.set_schedule_controller(&controller);

  auto completed = std::make_shared<std::uint64_t>(0);
  const auto workload = fixed_workload(cfg);
  for (std::size_t p = 0; p < workload.size(); ++p) {
    for (const mscript::Program& program : workload[p]) {
      system.submit(static_cast<core::ProcessId>(p), 1, program,
                    [completed](const protocols::InvocationOutcome&) {
                      ++*completed;
                    });
    }
  }
  system.run();

  if (!controller.divergence().empty()) {
    result.divergence = controller.divergence();
    return result;
  }
  if (controller.steps() != counterexample.choices.size()) {
    result.divergence =
        "replay diverged: execution quiesced after " +
        std::to_string(controller.steps()) + " of " +
        std::to_string(counterexample.choices.size()) + " recorded choices";
    return result;
  }
  result.faithful = true;
  ScheduleVerdict verdict =
      check_terminal_schedule(system, cfg, *completed);
  result.decided = verdict.decided;
  result.violation = std::move(verdict.violation);
  result.history_level = verdict.history_level;
  return result;
}

}  // namespace mocc::check
