#include "check/explore.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "api/system.hpp"
#include "core/history.hpp"
#include "core/relations.hpp"
#include "mscript/library.hpp"
#include "util/assert.hpp"

namespace mocc::check {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: the second, independent hash chain.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Structural signature of a pending delivery. Deliberately excludes the
/// send seq: seq numbers depend on the global interleaving, while sleep
/// sets and state fingerprints must agree across commuted paths that
/// carry the same messages.
std::uint64_t choice_signature(const sim::ScheduleController::Choice& choice) {
  std::uint64_t h = kFnvOffset;
  const auto fold = [&h](std::uint64_t v) {
    h ^= v;
    h *= kFnvPrime;
  };
  fold(choice.from);
  fold(choice.to);
  fold(choice.kind);
  fold(choice.payload_hash);
  return h;
}

/// Multiset inclusion of two ascending-sorted vectors.
bool sorted_subset(const std::vector<std::uint64_t>& sub,
                   const std::vector<std::uint64_t>& super) {
  if (sub.size() > super.size()) return false;
  std::size_t j = 0;
  for (const std::uint64_t v : sub) {
    while (j < super.size() && super[j] < v) ++j;
    if (j == super.size() || super[j] != v) return false;
    ++j;
  }
  return true;
}

class Explorer final : public sim::ScheduleController {
 public:
  explicit Explorer(const ExploreConfig& config) : cfg_(config) {
    hash_mask_ = cfg_.hash_bits >= 64
                     ? ~0ull
                     : (std::uint64_t{1} << cfg_.hash_bits) - 1;
  }

  ExploreResult run_all();

  std::size_t choose(const std::vector<Choice>& pending) override;

 private:
  /// One choice point of the DFS tree, persisted across re-executions.
  struct Node {
    std::vector<Choice> enabled;         ///< ascending send-seq
    std::vector<std::uint64_t> sigs;     ///< structural signature per entry
    std::vector<std::uint8_t> sleeping;  ///< entry sleep ∪ explored siblings
    std::size_t chosen = 0;
    std::size_t explored = 0;  ///< branches whose subtree is done
    bool pruned = false;       ///< abandoned at entry (sleep/state prune)
  };

  /// Visits of one state fingerprint: the full-width secondary hash (the
  /// masked primary is the table key) plus every entry sleep the state
  /// was explored under.
  struct StateEntry {
    std::uint64_t h2 = 0;
    std::vector<std::vector<std::uint64_t>> sleeps;
  };

  void reset_run_state();
  void advance_state(const Choice& choice);
  std::vector<std::uint64_t> canonical_sleep(const Node& node) const;
  /// True = keep exploring from this state; false = a previous visit
  /// covered at least as much (its sleep ⊆ `sleep`).
  bool visit_state(std::vector<std::uint64_t> sleep);
  static std::size_t first_awake(const Node& node, std::size_t from);
  /// Advances the deepest unfinished node to its next awake branch;
  /// false when the whole tree is explored.
  bool backtrack();
  Counterexample make_counterexample(std::string reason) const;

  const ExploreConfig cfg_;
  std::uint64_t hash_mask_ = ~0ull;
  ExploreStats stats_;
  bool budget_hit_ = false;

  std::vector<Node> path_;  ///< DFS spine, shared by successive runs

  // --- per-run state --------------------------------------------------
  std::size_t depth_ = 0;
  bool aborted_ = false;
  std::shared_ptr<std::uint64_t> completed_;
  /// Per-destination rolling hashes of delivered message contents; the
  /// global fingerprint XORs them, so orders that differ only across
  /// destinations — which commute — hash equal.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> chains_;
  std::uint64_t global1_ = 0;
  std::uint64_t global2_ = 0;

  std::unordered_map<std::uint64_t, std::vector<StateEntry>> states_;
};

void Explorer::reset_run_state() {
  depth_ = 0;
  aborted_ = false;
  completed_ = std::make_shared<std::uint64_t>(0);
  chains_.assign(cfg_.num_processes, {0, 0});
  global1_ = 0;
  global2_ = 0;
  for (std::size_t d = 0; d < chains_.size(); ++d) {
    chains_[d].first = kFnvOffset ^ mix64(d + 1);
    chains_[d].second = mix64(d * kFnvPrime + 7);
    global1_ ^= chains_[d].first;
    global2_ ^= chains_[d].second;
  }
}

void Explorer::advance_state(const Choice& choice) {
  MOCC_ASSERT(choice.to < chains_.size());
  auto& [h1, h2] = chains_[choice.to];
  global1_ ^= h1;
  global2_ ^= h2;
  const std::uint64_t sig = choice_signature(choice);
  h1 = (h1 ^ sig) * kFnvPrime;
  h2 = mix64(h2 ^ (sig + 0x9e3779b97f4a7c15ull));
  global1_ ^= h1;
  global2_ ^= h2;
}

std::vector<std::uint64_t> Explorer::canonical_sleep(const Node& node) const {
  std::vector<std::uint64_t> sleep;
  for (std::size_t i = 0; i < node.enabled.size(); ++i) {
    if (node.sleeping[i] != 0) sleep.push_back(node.sigs[i]);
  }
  std::sort(sleep.begin(), sleep.end());
  return sleep;
}

bool Explorer::visit_state(std::vector<std::uint64_t> sleep) {
  auto& bucket = states_[global1_ & hash_mask_];
  for (StateEntry& entry : bucket) {
    if (entry.h2 != global2_) {
      // Masked-primary collision between distinct states: detected by
      // the independent secondary chain, never pruned on.
      ++stats_.hash_collisions;
      continue;
    }
    for (const std::vector<std::uint64_t>& stored : entry.sleeps) {
      if (sorted_subset(stored, sleep)) return false;
    }
    entry.sleeps.push_back(std::move(sleep));
    return true;
  }
  ++stats_.distinct_states;
  StateEntry entry;
  entry.h2 = global2_;
  entry.sleeps.push_back(std::move(sleep));
  bucket.push_back(std::move(entry));
  return true;
}

std::size_t Explorer::first_awake(const Node& node, std::size_t from) {
  for (std::size_t i = from; i < node.enabled.size(); ++i) {
    if (node.sleeping[i] == 0) return i;
  }
  return kNone;
}

std::size_t Explorer::choose(const std::vector<Choice>& pending) {
  MOCC_ASSERT(!pending.empty());
  const std::size_t depth = depth_++;

  if (depth < path_.size()) {
    // Prefix replay: the execution is a pure function of the choice
    // sequence, so the pending set must match what this node recorded.
    Node& node = path_[depth];
    MOCC_ASSERT_MSG(pending.size() == node.enabled.size(),
                    "mocc-check: prefix replay diverged (pending-set size)");
    MOCC_DEBUG_ASSERT(choice_signature(pending[node.chosen]) ==
                      node.sigs[node.chosen]);
    advance_state(pending[node.chosen]);
    return node.chosen;
  }

  ++stats_.choice_points;
  if (depth >= cfg_.max_depth) {
    ++stats_.depth_truncations;
    budget_hit_ = true;
    aborted_ = true;
    return kAbortRun;
  }

  Node node;
  node.enabled = pending;
  node.sigs.reserve(pending.size());
  for (const Choice& choice : pending) {
    node.sigs.push_back(choice_signature(choice));
  }
  node.sleeping.assign(pending.size(), 0);

  if (cfg_.use_sleep_sets && depth > 0) {
    // Sleep inheritance. The child's pending list is the parent's minus
    // the chosen entry (relative order preserved) with this dispatch's
    // new sends appended, so child index j < |parent|-1 maps onto parent
    // index j, skipping the chosen slot. A sleeping parent entry stays
    // asleep while it is independent of the chosen delivery — deliveries
    // to different destinations commute; same destination conflicts.
    const Node& parent = path_[depth - 1];
    const Choice& prev = parent.enabled[parent.chosen];
    const std::size_t surviving = parent.enabled.size() - 1;
    MOCC_ASSERT(pending.size() >= surviving);
    for (std::size_t j = 0; j < surviving; ++j) {
      const std::size_t i = j < parent.chosen ? j : j + 1;
      MOCC_DEBUG_ASSERT(node.sigs[j] == parent.sigs[i]);
      if (parent.sleeping[i] != 0 && parent.enabled[i].to != prev.to) {
        node.sleeping[j] = 1;
      }
    }
  }

  if (cfg_.use_state_hash && !visit_state(canonical_sleep(node))) {
    ++stats_.hash_pruned;
    node.pruned = true;
    path_.push_back(std::move(node));
    aborted_ = true;
    return kAbortRun;
  }

  const std::size_t pick = first_awake(node, 0);
  if (pick == kNone) {
    // Every enabled delivery is asleep: each continuation commutes with
    // an already-explored schedule.
    stats_.sleep_pruned += node.enabled.size();
    node.pruned = true;
    path_.push_back(std::move(node));
    aborted_ = true;
    return kAbortRun;
  }

  node.chosen = pick;
  advance_state(node.enabled[pick]);
  path_.push_back(std::move(node));
  return pick;
}

bool Explorer::backtrack() {
  while (!path_.empty()) {
    Node& node = path_.back();
    if (node.pruned) {
      path_.pop_back();
      continue;
    }
    node.sleeping[node.chosen] = 1;
    ++node.explored;
    const std::size_t next = first_awake(node, node.chosen + 1);
    if (next != kNone) {
      node.chosen = next;
      return true;
    }
    // Node exhausted. Entries asleep but never chosen here are branches
    // the sleep set proved redundant.
    std::size_t asleep = 0;
    for (const std::uint8_t flag : node.sleeping) asleep += flag;
    MOCC_ASSERT(asleep >= node.explored);
    stats_.sleep_pruned += asleep - node.explored;
    path_.pop_back();
  }
  return false;
}

Counterexample Explorer::make_counterexample(std::string reason) const {
  Counterexample cx;
  cx.config = cfg_;
  cx.reason = std::move(reason);
  cx.choices.reserve(path_.size());
  for (const Node& node : path_) {
    MOCC_ASSERT(!node.pruned);
    ChoiceRecord record;
    record.enabled = static_cast<std::uint32_t>(node.enabled.size());
    record.chosen = static_cast<std::uint32_t>(node.chosen);
    const Choice& choice = node.enabled[node.chosen];
    record.seq = choice.seq;
    record.from = choice.from;
    record.to = choice.to;
    record.kind = choice.kind;
    record.payload_hash = choice.payload_hash;
    cx.choices.push_back(record);
  }
  return cx;
}

ExploreResult Explorer::run_all() {
  ExploreResult result;
  while (true) {
    if (stats_.runs_total >= cfg_.max_schedules) {
      budget_hit_ = true;
      break;
    }
    ++stats_.runs_total;
    reset_run_state();

    api::System system(system_config_for(cfg_));
    system.set_schedule_controller(this);

    const auto workload = fixed_workload(cfg_);
    const std::shared_ptr<std::uint64_t> completed = completed_;
    for (std::size_t p = 0; p < workload.size(); ++p) {
      for (const mscript::Program& program : workload[p]) {
        system.submit(static_cast<core::ProcessId>(p), 1, program,
                      [completed](const protocols::InvocationOutcome&) {
                        ++*completed;
                      });
      }
    }
    system.run();
    stats_.max_depth_seen =
        std::max<std::uint64_t>(stats_.max_depth_seen, depth_);

    if (!aborted_) {
      // Terminal schedule. Intern the terminal state with an empty sleep
      // set (nothing left to explore): revisits of this state — terminal
      // or not — are covered.
      const bool fresh = !cfg_.use_state_hash || visit_state({});
      if (fresh) {
        ++stats_.schedules_checked;
        ScheduleVerdict verdict =
            check_terminal_schedule(system, cfg_, *completed_);
        if (!verdict.decided) {
          ++stats_.exact_undecided;
          budget_hit_ = true;
        } else if (!verdict.violation.empty()) {
          if (cfg_.history_violations_only && !verdict.history_level) {
            ++stats_.audit_only_violations;
          } else {
            result.violation =
                make_counterexample(std::move(verdict.violation));
            break;
          }
        }
      } else {
        ++stats_.hash_pruned;
      }
    }

    if (!backtrack()) break;
  }

  result.stats = stats_;
  result.complete = !budget_hit_ && !result.violation.has_value();
  return result;
}

}  // namespace

std::vector<std::vector<mscript::Program>> fixed_workload(
    const ExploreConfig& config) {
  std::vector<std::vector<mscript::Program>> out(config.num_processes);
  const std::size_t objects = config.num_objects;
  for (std::size_t p = 0; p < config.num_processes; ++p) {
    out[p].reserve(config.ops_per_process);
    for (std::size_t i = 0; i < config.ops_per_process; ++i) {
      const auto a = static_cast<mscript::ObjectId>((p + i) % objects);
      const auto b = static_cast<mscript::ObjectId>((a + 1) % objects);
      if (i % 2 == 0) {
        // Single-object RMW; footprints rotate so processes collide.
        out[p].push_back(mscript::lib::make_fetch_add(
            a, static_cast<mscript::Value>(1 + 10 * p + i)));
      } else if (p % 2 == 0) {
        // Multi-object conditional update.
        out[p].push_back(b == a ? mscript::lib::make_fetch_add(a, 1)
                                : mscript::lib::make_transfer(a, b, 1));
      } else {
        // Multi-object query.
        if (b == a) {
          const mscript::ObjectId footprint[] = {a};
          out[p].push_back(mscript::lib::make_sum(footprint));
        } else {
          const mscript::ObjectId footprint[] = {a, b};
          out[p].push_back(mscript::lib::make_sum(footprint));
        }
      }
    }
  }
  return out;
}

ScheduleVerdict check_terminal_schedule(const api::System& system,
                                        const ExploreConfig& config,
                                        std::uint64_t completed_ops) {
  ScheduleVerdict verdict;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(config.num_processes) * config.ops_per_process;
  if (completed_ops != expected) {
    verdict.violation = "stuck schedule: " + std::to_string(completed_ops) +
                        " of " + std::to_string(expected) +
                        " m-operations completed at quiescence";
    verdict.history_level = true;
    return verdict;
  }
  // Value coherence catches lost deliveries whose residue is a read whose
  // VALUE diverges from its writer's record while the reads-from edges
  // stay legal (e.g. the skip-delivery mutation). trace_query --audit
  // runs the same check on the rebuilt history, so these replay.
  std::string incoherent;
  if (!system.history().value_coherent(&incoherent)) {
    verdict.violation = "history is not value-coherent: " + incoherent;
    verdict.history_level = true;
    return verdict;
  }
  if (system.supports_audit()) {
    // History-level check first: its violations replay into a failing
    // trace_query audit, so they make the better counterexamples.
    const core::Condition condition =
        config.protocol == "mseq" ? core::Condition::kMSequentialConsistency
                                  : core::Condition::kMLinearizability;
    const core::FastCheckResult fast = system.check_fast(condition);
    if (!fast.admissible) {
      verdict.violation = std::string("fast check (Theorem 7) rejected ") +
                          core::condition_name(condition) + ": " + fast.detail;
      verdict.history_level = true;
      return verdict;
    }
    const core::AuditReport audit = system.audit();
    if (!audit.ok) {
      verdict.violation = "P5.x audit failed: " + audit.to_string();
    }
    return verdict;
  }
  core::AdmissibilityOptions options;
  options.max_states = config.exact_states_budget;
  const core::AdmissibilityResult exact =
      system.check_exact(core::Condition::kMLinearizability, options);
  if (!exact.completed) {
    verdict.decided = false;
    return verdict;
  }
  if (!exact.admissible) {
    verdict.violation = "exact check rejected m-linearizability (" +
                        std::to_string(exact.states_visited) +
                        " states searched)";
    verdict.history_level = true;
  }
  return verdict;
}

api::SystemConfig system_config_for(const ExploreConfig& config) {
  api::SystemConfig out;
  out.num_processes = config.num_processes;
  out.num_objects = config.num_objects;
  out.protocol = config.protocol;
  out.broadcast = config.broadcast;
  out.mutation = config.mutation;
  out.delay = "constant";  // never sampled in controlled mode
  out.seed = 1;
  if (config.batching) {
    const bool uses_abcast =
        config.protocol != "locking" && config.protocol != "aggregate";
    if (uses_abcast && config.broadcast == "sequencer") {
      // Small enough that both flush paths land in the schedule space:
      // size flushes when two submissions race, age flushes (the timer
      // is an internal event, dispatched before delivery choices) when
      // one waits alone.
      out.batching.abcast_batch_max = 2;
      out.batching.abcast_batch_age = 6;
    }
    if (config.protocol.rfind("mlin", 0) == 0) {
      out.batching.batch_queries = true;
    }
  }
  return out;
}

ExploreResult explore(const ExploreConfig& config) {
  MOCC_ASSERT_MSG(config.num_processes >= 1 && config.num_processes <= 5,
                  "mocc-check is a small-scope verifier: 1..5 processes");
  MOCC_ASSERT_MSG(config.num_objects >= 1 && config.num_objects <= 5,
                  "mocc-check is a small-scope verifier: 1..5 objects");
  MOCC_ASSERT_MSG(config.ops_per_process >= 1 && config.ops_per_process <= 8,
                  "mocc-check is a small-scope verifier: 1..8 ops/process");
  MOCC_ASSERT_MSG(config.hash_bits >= 1 && config.hash_bits <= 64,
                  "hash_bits must be 1..64");
  Explorer explorer(config);
  return explorer.run_all();
}

}  // namespace mocc::check
