// mocc-check: systematic exploration of message-delivery interleavings.
//
// The chaos harness and trace audits sample ~100 seeds per
// configuration; the paper's claims are universally quantified. This
// library turns the per-schedule checkers (P5.x audit, Theorem 7 fast
// check, the exact admissibility search) into a small-scope *verifier*:
// it drives the deterministic Simulator in controlled mode
// (sim::ScheduleController), enumerating every message-delivery
// interleaving of a small configuration by depth-first search over
// choice sequences, re-executing the system from scratch per schedule,
// and checking the recorded history at every terminal state.
//
// Reduction — naive enumeration explodes factorially, so the explorer
// prunes with two sound techniques:
//
//   Sleep sets (Godefroid-style DPOR) keyed on the commuting structure
//   the actor model guarantees: deliveries to DIFFERENT destination
//   nodes commute (each dispatch mutates only its destination's state
//   and appends sends in a fixed relative order), deliveries to the SAME
//   destination conflict. After a branch is fully explored it joins the
//   node's sleep set; sleeping events are inherited by sibling subtrees
//   while they stay independent of the chosen event, and a schedule that
//   reaches a node with every enabled delivery asleep is abandoned —
//   every continuation is a commutation of an explored one.
//
//   State hashing: because actors are deterministic, the global state is
//   a function of the per-destination sequence of delivered message
//   contents. The explorer fingerprints that sequence with two
//   independent 64-bit FNV chains and prunes a revisited state when a
//   previous visit explored at least as much (its sleep set was a subset
//   of the current one — the Godefroid/Wolper soundness condition).
//
// Scope limits (see docs/static-analysis.md): faults and the reliable
// link stay off, invocations are issued eagerly (internal events always
// dispatch before delivery choices), and each Mazurkiewicz trace class
// is checked through one representative with canonical step-counter
// timing — conditions sensitive to the real-time order BETWEEN
// commuting deliveries are checked on that representative only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mscript/program.hpp"

namespace mocc::api {
class System;
struct SystemConfig;
}

namespace mocc::check {

/// One small-scope configuration to exhaust. The workload is fixed and
/// deterministic (fixed_workload), so delivery order is the ONLY source
/// of nondeterminism and a choice sequence fully determines a run.
struct ExploreConfig {
  std::size_t num_processes = 2;
  std::size_t num_objects = 2;
  std::size_t ops_per_process = 2;
  /// "mseq" | "mlin" | "mlin-narrow" | "mlin-bcastq" | "locking" |
  /// "aggregate" (api::SystemConfig::protocol).
  std::string protocol = "mseq";
  /// "sequencer" | "isis" (ignored by locking/aggregate).
  std::string broadcast = "sequencer";
  /// Protocol mutation under test (api::SystemConfig::mutation); empty =
  /// the correct protocol.
  std::string mutation;
  /// Explore with the hot-path batching layer on: sequencer group-commit
  /// (abcast protocols under the sequencer broadcast) and mlin query
  /// rounds. Small thresholds so both size and age flushes appear in the
  /// schedule space. Link coalescing stays out of scope — the reliable
  /// link is off in every controlled-mode run.
  bool batching = false;

  // --- Budgets (exact explored/pruned counts are reported either way).
  /// Maximum number of re-executions (complete=false when hit; 0 = none).
  std::uint64_t max_schedules = 1u << 20;
  /// Maximum choice points along one schedule before it is truncated.
  std::size_t max_depth = 4096;
  /// State budget for the exact checker on terminal histories that carry
  /// no recorded ~ww (the locking baseline).
  std::uint64_t exact_states_budget = 2'000'000;

  /// Some mutations first surface as protocol-internal findings (P5.x
  /// timestamp invariants) on schedules whose recorded history is still
  /// admissible — e.g. a skipped delivery leaves timestamps stale before
  /// any read observes the lost write. When set, such findings are
  /// counted (stats.audit_only_violations) but exploration continues
  /// until a schedule whose HISTORY is inadmissible (fast/exact check,
  /// stuckness) — the kind a rebuilt-from-trace audit (trace_query
  /// --audit) reproduces.
  bool history_violations_only = false;

  // --- Reduction toggles. Both off = naive full enumeration (the
  // baseline the DPOR speedup is measured against).
  bool use_sleep_sets = true;
  bool use_state_hash = true;
  /// Test knob: keep only this many low bits of the PRIMARY state hash
  /// (the second chain stays full-width), forcing bucket collisions to
  /// exercise the collision-handling path. 64 = production behavior.
  unsigned hash_bits = 64;
};

/// One choice point of a recorded schedule: how many deliveries were
/// enabled, which index was picked, and the structural signature of the
/// picked delivery (used by replay to detect divergence against a
/// changed binary).
struct ChoiceRecord {
  std::uint32_t enabled = 0;
  std::uint32_t chosen = 0;
  std::uint64_t seq = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t kind = 0;
  std::uint64_t payload_hash = 0;
};

/// A replayable violating schedule (see replay.hpp for the file format).
struct Counterexample {
  ExploreConfig config;
  std::string reason;
  std::vector<ChoiceRecord> choices;
};

struct ExploreStats {
  /// Re-executions started (terminal + pruned + truncated).
  std::uint64_t runs_total = 0;
  /// Schedules that ran to quiescence and were checked.
  std::uint64_t schedules_checked = 0;
  /// Branches never explored because they were asleep (commutation with
  /// an explored sibling).
  std::uint64_t sleep_pruned = 0;
  /// Runs abandoned at a state an earlier visit had covered.
  std::uint64_t hash_pruned = 0;
  std::uint64_t choice_points = 0;
  std::uint64_t max_depth_seen = 0;
  std::uint64_t depth_truncations = 0;
  /// Distinct state fingerprints interned (both chains agreeing).
  std::uint64_t distinct_states = 0;
  /// Lookups whose primary (possibly masked) hash matched an entry whose
  /// secondary chain disagreed — detected, never pruned on.
  std::uint64_t hash_collisions = 0;
  /// Terminal schedules the exact checker could not decide within
  /// exact_states_budget (forces complete=false, never a violation).
  std::uint64_t exact_undecided = 0;
  /// Protocol-internal (P5.x) violations skipped over because
  /// history_violations_only was set.
  std::uint64_t audit_only_violations = 0;
};

struct ExploreResult {
  /// True when the DFS exhausted the schedule tree within every budget.
  bool complete = false;
  ExploreStats stats;
  /// First violating schedule found (exploration stops at it).
  std::optional<Counterexample> violation;
};

/// Exhausts (up to budgets) every delivery interleaving of `config` and
/// checks each terminal schedule. Asserts the scope is small
/// (processes/objects <= 5, ops <= 8): the tool is a verifier for
/// small-scope configs, not a load generator.
ExploreResult explore(const ExploreConfig& config);

/// The controlled-mode SystemConfig a scope runs under — shared by the
/// explorer and by replay so a counterexample re-executes the exact
/// system its schedule condemned (including the batching knobs).
api::SystemConfig system_config_for(const ExploreConfig& config);

/// The fixed per-process programs explored for a config: a deterministic
/// mix of single-object RMWs (fetch_add), multi-object updates
/// (transfer), and multi-object queries (sum) chosen so footprints
/// overlap across processes. Index = process.
std::vector<std::vector<mscript::Program>> fixed_workload(const ExploreConfig& config);

/// Admissibility verdict on one terminated schedule. Shared by the
/// explorer and by replay so a counterexample re-judges under exactly the
/// checks that condemned it.
struct ScheduleVerdict {
  /// False only when the exact checker exhausted exact_states_budget.
  bool decided = true;
  /// Empty = admissible; otherwise the violation reason.
  std::string violation;
  /// True when the violation is visible in the recorded history alone
  /// (fast/exact admissibility, stuckness) — i.e. reproducible by a
  /// rebuilt-from-trace audit. False for protocol-internal (P5.x
  /// timestamp) findings.
  bool history_level = false;
};

/// Judges a quiescent system driven with fixed_workload(config):
/// completion (stuck schedules are violations), then the P5.x audit plus
/// the Theorem-7 fast check for auditable protocols, or the exact
/// admissibility search (m-linearizability) for the locking baselines.
ScheduleVerdict check_terminal_schedule(const api::System& system,
                                        const ExploreConfig& config,
                                        std::uint64_t completed_ops);

}  // namespace mocc::check
