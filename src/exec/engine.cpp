#include "exec/engine.hpp"

#include <algorithm>
// mocc-lint: allow(determinism): wall-clock throughput is the point of the
// multicore engine; elapsed_seconds never feeds a golden artifact
#include <chrono>
#include <thread>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mocc::exec {

namespace {

/// try_lock attempts per write-set object before the whole m-operation
/// aborts (exec_abort_lock) and retries from scratch. Bounds convoying
/// behind a stalled committer without a deadlock-prone blocking wait.
constexpr std::size_t kLockSpins = 128;

/// One step of a generated m-operation, fixed across retries.
struct SpecOp {
  core::OpType type = core::OpType::kRead;
  core::ObjectId object = 0;
  /// Writes: literal value, or (rmw) 1 + the value this attempt read
  /// from the same object.
  core::Value literal = 0;
  bool rmw_increment = false;
};

struct ReadEntry {
  core::ObjectId object = 0;
  core::Value value = 0;
  std::uint64_t tid = kInitialTid;  ///< writer tid the snapshot observed
};

struct WriteEntry {
  core::ObjectId object = 0;
  core::Value value = 0;
  /// Pre-lock version word, filled at lock time: restored on abort,
  /// and the version validation compares against for read-own-write.
  std::uint64_t locked_from = kInitialTid;
};

/// Everything the workers share. Both counters are seq_cst fetch_adds:
/// the real-time soundness argument (engine.hpp top comment) chains
/// program order with the single total order over these operations, so
/// relaxing either would void resp(b) < inv(a) ⟹ tid(b) < tid(a).
/// mocc-lint's atomics pass checks every site against this table; the
/// relaxed entries cover the pre-spawn reset in run() and the
/// trace-timestamp read in emit_abort(), each individually justified.
// mocc-atomics: next_tid: rmw=seq_cst store=relaxed
// mocc-atomics: clock: rmw=seq_cst load=relaxed store=relaxed
struct Shared {
  ObjectStore store;
  std::atomic<std::uint64_t> next_tid{kInitialTid + 1};
  std::atomic<std::uint64_t> clock{0};
};

struct WorkerStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted_validation = 0;
  std::uint64_t aborted_lock = 0;
  std::uint64_t abandoned = 0;
};

class Worker {
 public:
  Worker(const ExecConfig& config, Shared& shared, std::uint32_t id,
         obs::TraceSink* sink)
      : config_(config),
        shared_(shared),
        id_(id),
        sink_(sink),
        rng_(config.seed * 0x9e3779b97f4a7c15ULL + id + 1),
        zipf_(config.objects, config.zipf_skew) {
    log_.reserve(config.mops_per_thread);
  }

  void operator()() {
    for (std::size_t i = 0; i < config_.mops_per_thread; ++i) {
      generate_spec();
      execute_one();
    }
  }

  std::vector<CommittedMop> take_log() { return std::move(log_); }
  const WorkerStats& stats() const { return stats_; }

 private:
  core::ObjectId pick_object() {
    if (config_.zipf_skew > 0.0) {
      return static_cast<core::ObjectId>(zipf_.next(rng_));
    }
    return static_cast<core::ObjectId>(rng_.next_below(config_.objects));
  }

  void generate_spec() {
    spec_.clear();
    const std::size_t footprint =
        std::min(std::max<std::size_t>(config_.footprint, 1), config_.objects);
    footprint_.clear();
    while (footprint_.size() < footprint) {
      const core::ObjectId x = pick_object();
      if (std::find(footprint_.begin(), footprint_.end(), x) ==
          footprint_.end()) {
        footprint_.push_back(x);
      }
    }
    if (rng_.next_bool(config_.query_ratio)) {
      for (const core::ObjectId x : footprint_) {
        spec_.push_back({core::OpType::kRead, x, 0, false});
      }
      return;
    }
    if (rng_.next_bool(config_.rmw_ratio)) {
      // rmw set: read every object, then write back value + 1. The
      // increments make lost updates *observable*: verify.cpp's replay
      // reproduces the exact final value of every counter-like object.
      for (const core::ObjectId x : footprint_) {
        spec_.push_back({core::OpType::kRead, x, 0, false});
      }
      for (const core::ObjectId x : footprint_) {
        spec_.push_back({core::OpType::kWrite, x, 0, true});
      }
      return;
    }
    // Mixed read/write set: read the first half, blind-write the rest
    // (at least one write — this branch is an update by construction).
    const std::size_t num_reads = footprint_.size() / 2;
    for (std::size_t k = 0; k < footprint_.size(); ++k) {
      if (k < num_reads) {
        spec_.push_back({core::OpType::kRead, footprint_[k], 0, false});
      } else {
        const auto literal = static_cast<core::Value>(rng_.next_u64() >> 16);
        spec_.push_back({core::OpType::kWrite, footprint_[k], literal, false});
      }
    }
  }

  WriteEntry* find_write(core::ObjectId x) {
    for (WriteEntry& w : writes_) {
      if (w.object == x) return &w;
    }
    return nullptr;
  }

  const ReadEntry* find_read(core::ObjectId x) const {
    for (const ReadEntry& r : reads_) {
      if (r.object == x) return &r;
    }
    return nullptr;
  }

  /// Phase 1: run the spec against the store, building the read set,
  /// write set (sorted by object — the canonical lock order), and the
  /// program-order op log.
  void execute_attempt() {
    ops_.clear();
    reads_.clear();
    writes_.clear();
    for (const SpecOp& op : spec_) {
      if (op.type == core::OpType::kRead) {
        if (const WriteEntry* w = find_write(op.object)) {
          ops_.push_back(
              {core::OpType::kRead, op.object, w->value, kOwnWriteTid});
          continue;
        }
        if (const ReadEntry* r = find_read(op.object)) {
          ops_.push_back({core::OpType::kRead, op.object, r->value, r->tid});
          continue;
        }
        const StableRead snapshot = shared_.store.stable_read(op.object);
        reads_.push_back({op.object, snapshot.value, snapshot.tid});
        ops_.push_back(
            {core::OpType::kRead, op.object, snapshot.value, snapshot.tid});
        continue;
      }
      core::Value value = op.literal;
      if (op.rmw_increment) {
        if (const WriteEntry* w = find_write(op.object)) {
          value = w->value + 1;
        } else if (const ReadEntry* r = find_read(op.object)) {
          value = r->value + 1;
        } else {
          MOCC_ASSERT_MSG(false, "rmw write with no preceding read");
        }
      }
      if (WriteEntry* w = find_write(op.object)) {
        w->value = value;
      } else {
        const auto at = std::lower_bound(
            writes_.begin(), writes_.end(), op.object,
            [](const WriteEntry& w, core::ObjectId x) { return w.object < x; });
        writes_.insert(at, {op.object, value, kInitialTid});
      }
      ops_.push_back({core::OpType::kWrite, op.object, value, kInitialTid});
    }
  }

  /// Phase 2 (updates): CAS-acquire the write locks in ascending object
  /// order. On failure releases everything acquired so far.
  bool lock_write_set() {
    for (std::size_t k = 0; k < writes_.size(); ++k) {
      bool locked = false;
      for (std::size_t spin = 0; spin < kLockSpins; ++spin) {
        if (shared_.store.try_lock(writes_[k].object,
                                   writes_[k].locked_from)) {
          locked = true;
          break;
        }
      }
      if (!locked) {
        for (std::size_t j = 0; j < k; ++j) {
          shared_.store.unlock(writes_[j].object, writes_[j].locked_from);
        }
        return false;
      }
    }
    return true;
  }

  /// Phase 4: every read-set entry must still name the writer tid the
  /// snapshot observed. Objects we hold the lock on are compared against
  /// the pre-lock word (the version the lock was acquired over); all
  /// others must be unlocked — a lock here is a concurrent committer
  /// that drew a smaller tid (it locked before we drew ours), so waiting
  /// it out could only confirm the conflict.
  bool validate_read_set() const {
    for (const ReadEntry& r : reads_) {
      const WriteEntry* own = nullptr;
      for (const WriteEntry& w : writes_) {
        if (w.object == r.object) {
          own = &w;
          break;
        }
      }
      if (own != nullptr) {
        if (tid_of(own->locked_from) != r.tid) return false;
        continue;
      }
      const std::uint64_t word = shared_.store.word(r.object);
      if (is_locked(word) || tid_of(word) != r.tid) return false;
    }
    return true;
  }

  void emit_abort(std::uint32_t reason, std::uint32_t attempt) {
    if (sink_ == nullptr) return;
    // mocc-lint: allow(atomics): trace timestamp only; no m-op ordering rides on this read
    const std::uint64_t now = shared_.clock.load(std::memory_order_relaxed);
    sink_->on_event({obs::TraceEventType::kExecAbort, now, id_,
                     /*peer=*/0, reason, attempt, /*arg=*/0});
  }

  void execute_one() {
    const std::uint64_t invoke =
        shared_.clock.fetch_add(1, std::memory_order_seq_cst);
    std::uint32_t attempt = 0;
    for (;;) {
      ++attempt;
      if (config_.max_attempts != 0 && attempt > config_.max_attempts) {
        ++stats_.abandoned;
        return;
      }
      execute_attempt();
      std::uint64_t tid;
      if (writes_.empty()) {
        // Query: no locks; drawing the serialization tid BEFORE
        // validating makes the validated snapshot current as of the
        // draw (any smaller-tid writer either published before the
        // validation or still held its lock through it).
        tid = shared_.next_tid.fetch_add(1, std::memory_order_seq_cst);
        if (!validate_read_set()) {
          ++stats_.aborted_validation;
          emit_abort(1, attempt);
          std::this_thread::yield();
          continue;
        }
      } else {
        if (!lock_write_set()) {
          ++stats_.aborted_lock;
          emit_abort(0, attempt);
          std::this_thread::yield();
          continue;
        }
        tid = shared_.next_tid.fetch_add(1, std::memory_order_seq_cst);
        if (!validate_read_set()) {
          for (const WriteEntry& w : writes_) {
            shared_.store.unlock(w.object, w.locked_from);
          }
          ++stats_.aborted_validation;
          emit_abort(1, attempt);
          std::this_thread::yield();
          continue;
        }
        for (const WriteEntry& w : writes_) {
          shared_.store.write_and_unlock(w.object, w.value, tid);
        }
      }
      const std::uint64_t response =
          shared_.clock.fetch_add(1, std::memory_order_seq_cst);
      ++stats_.committed;
      log_.push_back({id_, tid, invoke, response, attempt, !writes_.empty(),
                      ops_});
      if (sink_ != nullptr) {
        sink_->on_event({obs::TraceEventType::kExecCommit, response, id_,
                         /*peer=*/0, /*kind=*/0, tid, attempt});
      }
      return;
    }
  }

  const ExecConfig& config_;
  Shared& shared_;
  const std::uint32_t id_;
  obs::TraceSink* const sink_;
  util::Rng rng_;
  util::ZipfGenerator zipf_;
  std::vector<core::ObjectId> footprint_;
  std::vector<SpecOp> spec_;
  std::vector<LoggedOp> ops_;
  std::vector<ReadEntry> reads_;
  std::vector<WriteEntry> writes_;
  std::vector<CommittedMop> log_;
  WorkerStats stats_;
};

}  // namespace

std::uint64_t ExecStats::mops_per_sec() const {
  if (elapsed_seconds <= 0.0) return 0;
  return static_cast<std::uint64_t>(static_cast<double>(committed) /
                                    elapsed_seconds);
}

ExecResult run(const ExecConfig& config, obs::TraceSink* sink) {
  MOCC_ASSERT_MSG(config.threads > 0, "exec: need at least one worker");
  MOCC_ASSERT_MSG(config.objects > 0, "exec: need at least one object");
  Shared shared{ObjectStore(config.objects, config.initial_value), {}, {}};
  // mocc-lint: allow-begin(atomics): pre-spawn reset on the creating
  // thread; the std::thread constructors below synchronize-with the
  // workers' first reads
  shared.next_tid.store(kInitialTid + 1, std::memory_order_relaxed);
  shared.clock.store(0, std::memory_order_relaxed);
  // mocc-lint: allow-end(atomics)

  std::vector<Worker> workers;
  workers.reserve(config.threads);
  for (std::size_t i = 0; i < config.threads; ++i) {
    workers.emplace_back(config, shared, static_cast<std::uint32_t>(i), sink);
  }

  // Wall clock is measured only to report throughput; the derived gauge
  // is zeroed in golden smoke records (docs/exec-engine.md).
  // mocc-lint: allow(determinism): wall-clock throughput measurement only
  const auto started = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(config.threads);
    for (Worker& worker : workers) {
      threads.emplace_back([&worker] { worker(); });
    }
    for (std::thread& t : threads) t.join();
  }
  const std::chrono::duration<double> elapsed =
      // mocc-lint: allow(determinism): wall-clock throughput measurement only
      std::chrono::steady_clock::now() - started;

  ExecResult result;
  result.config = config;
  result.stats.elapsed_seconds = elapsed.count();
  result.logs.reserve(config.threads);
  for (Worker& worker : workers) {
    const WorkerStats& s = worker.stats();
    result.stats.committed += s.committed;
    result.stats.aborted_validation += s.aborted_validation;
    result.stats.aborted_lock += s.aborted_lock;
    result.stats.abandoned += s.abandoned;
    result.logs.push_back(worker.take_log());
  }
  result.final_values.reserve(config.objects);
  for (std::size_t x = 0; x < config.objects; ++x) {
    result.final_values.push_back(
        shared.store.committed_value(static_cast<core::ObjectId>(x)));
  }
  return result;
}

std::vector<const CommittedMop*> merge_logs(const ExecResult& result) {
  std::vector<const CommittedMop*> merged;
  std::size_t total = 0;
  for (const auto& log : result.logs) total += log.size();
  merged.reserve(total);
  for (const auto& log : result.logs) {
    for (const CommittedMop& mop : log) merged.push_back(&mop);
  }
  std::sort(merged.begin(), merged.end(),
            [](const CommittedMop* a, const CommittedMop* b) {
              // (epoch, tid); tids are globally unique, so this is a
              // strict total order and the merge is deterministic.
              if (epoch_of(a->tid) != epoch_of(b->tid)) {
                return epoch_of(a->tid) < epoch_of(b->tid);
              }
              return a->tid < b->tid;
            });
  return merged;
}

}  // namespace mocc::exec
