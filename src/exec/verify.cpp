#include "exec/verify.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "core/audit.hpp"
#include "core/constraints.hpp"
#include "core/fast_check.hpp"
#include "core/history.hpp"
#include "protocols/recorder.hpp"
#include "util/assert.hpp"
#include "util/timestamp.hpp"

namespace mocc::exec {

void VerifyReport::fail(std::string message) {
  ok = false;
  violations.push_back(std::move(message));
}

std::string VerifyReport::to_string() const {
  std::ostringstream out;
  out << (ok ? "OK" : "FAIL") << " (" << mops << " m-ops, " << windows
      << " windows";
  if (!ok) out << ", " << violations.size() << " violations";
  out << ")";
  for (const std::string& v : violations) out << "\n  " << v;
  return out.str();
}

namespace {

/// Replay state carried across windows: per object, the tid and value of
/// its latest committed writer and its total committed write count.
struct ReplayState {
  std::vector<std::uint64_t> last_tid;
  std::vector<core::Value> last_value;
  std::vector<std::uint64_t> write_count;

  ReplayState(std::size_t objects, core::Value initial_value)
      : last_tid(objects, kInitialTid),
        last_value(objects, initial_value),
        write_count(objects, 0) {}
};

/// tid → window-local MOpId for committed updates already replayed in
/// the current window (kept sorted; merged order is ascending tid).
class TidIndex {
 public:
  void add(std::uint64_t tid, core::MOpId id) { entries_.push_back({tid, id}); }
  const core::MOpId* find(std::uint64_t tid) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), tid,
        [](const Entry& e, std::uint64_t t) { return e.tid < t; });
    if (it == entries_.end() || it->tid != tid) return nullptr;
    return &it->id;
  }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::uint64_t tid;
    core::MOpId id;
  };
  std::vector<Entry> entries_;
};

}  // namespace

VerifyReport verify_execution(const ExecResult& result,
                              const VerifyOptions& options) {
  VerifyReport report;
  const std::size_t objects = result.config.objects;
  const auto workers = static_cast<core::ProcessId>(result.config.threads);
  const std::vector<const CommittedMop*> merged = merge_logs(result);
  report.mops = merged.size();

  if (result.stats.committed != merged.size()) {
    report.fail("stats.committed (" + std::to_string(result.stats.committed) +
                ") != merged log size (" + std::to_string(merged.size()) + ")");
  }
  for (std::size_t i = 1; i < merged.size(); ++i) {
    if (merged[i - 1]->tid >= merged[i]->tid) {
      report.fail("merged order not strictly ascending in tid at index " +
                  std::to_string(i));
      return report;
    }
  }

  ReplayState state(objects, result.config.initial_value);
  const std::size_t window = std::max<std::size_t>(options.window, 2);
  TidIndex index;

  for (std::size_t begin = 0; begin < merged.size(); begin += window) {
    const std::size_t end = std::min(begin + window, merged.size());
    const std::size_t window_number = report.windows++;
    auto where = [&](const CommittedMop& mop) {
      return "window " + std::to_string(window_number) + ", tid " +
             std::to_string(mop.tid);
    };

    // One extra process for the per-window snapshot writer.
    protocols::ExecutionRecorder recorder(workers + 1, objects);
    index.clear();
    core::MOpId snapshot_id = core::kInitialMOp;
    if (begin > 0) {
      snapshot_id = recorder.begin(workers, "snapshot", 0);
      std::vector<core::Operation> snapshot_ops;
      snapshot_ops.reserve(objects);
      for (std::size_t x = 0; x < objects; ++x) {
        snapshot_ops.push_back(core::Operation::write(
            static_cast<core::ObjectId>(x), state.last_value[x]));
      }
      recorder.complete(snapshot_id, std::move(snapshot_ops), 1,
                        util::VersionVector::from_entries(state.write_count),
                        /*ww_seq=*/0);
    }

    for (std::size_t i = begin; i < end; ++i) {
      const CommittedMop& mop = *merged[i];
      // +2 clears the snapshot's stamps (0, 1); the engine's logical
      // clock preserves relative order, which is all real time needs.
      const core::MOpId id = recorder.begin(mop.worker, "", mop.invoke + 2);
      std::vector<core::Operation> ops;
      ops.reserve(mop.ops.size());
      for (const LoggedOp& op : mop.ops) {
        if (op.type == core::OpType::kWrite) {
          ops.push_back(core::Operation::write(op.object, op.value));
          continue;
        }
        if (op.from_tid == kOwnWriteTid) {
          // Internal read (own write precedes it in program order);
          // MOperation excludes it from external_reads, the target is
          // never consulted.
          ops.push_back(
              core::Operation::read(op.object, op.value, core::kInitialMOp));
          continue;
        }
        // The OCC validation invariant: an external read names the
        // latest committed writer of its object at the reader's
        // serialization point. This is the cross-window lost-update
        // detector — it compares against the replay state, not the
        // window-local history.
        if (op.from_tid != state.last_tid[op.object]) {
          report.fail(where(mop) + ": read of object " +
                      std::to_string(op.object) + " from tid " +
                      std::to_string(op.from_tid) +
                      " but the latest committed writer is tid " +
                      std::to_string(state.last_tid[op.object]));
        }
        const core::MOpId* target = index.find(op.from_tid);
        core::MOpId reads_from;
        if (target != nullptr) {
          reads_from = *target;
        } else if (begin > 0) {
          reads_from = snapshot_id;  // pre-window writer → snapshot
        } else {
          if (op.from_tid != kInitialTid) {
            report.fail(where(mop) + ": read from unknown tid " +
                        std::to_string(op.from_tid) + " in the first window");
          }
          reads_from = core::kInitialMOp;
        }
        ops.push_back(core::Operation::read(op.object, op.value, reads_from));
      }

      // ts(α) = per-object committed write counts including α's own
      // writes (one version per written object per m-operation, the
      // granularity P5.8 expects).
      for (const LoggedOp& op : mop.ops) {
        if (op.type != core::OpType::kWrite) continue;
        if (state.last_tid[op.object] != mop.tid) {
          state.last_tid[op.object] = mop.tid;
          ++state.write_count[op.object];
        }
        state.last_value[op.object] = op.value;  // last write in PO wins
      }
      recorder.complete(
          id, std::move(ops), mop.response + 2,
          util::VersionVector::from_entries(state.write_count),
          mop.is_update ? std::optional<std::uint64_t>(mop.tid) : std::nullopt);
      if (mop.is_update) index.add(mop.tid, id);
    }

    const core::History h = recorder.build_history();
    std::string why;
    if (!h.well_formed(&why)) {
      report.fail("window " + std::to_string(window_number) +
                  ": not well-formed: " + why);
      continue;
    }
    if (!h.value_coherent(&why, result.config.initial_value)) {
      report.fail("window " + std::to_string(window_number) +
                  ": not value-coherent: " + why);
    }
    const core::FastCheckResult fast = core::fast_check_condition(
        h, core::Condition::kMLinearizability, recorder.build_ww_order(),
        core::Constraint::kWW);
    if (!fast.constraint_holds || !fast.admissible) {
      report.fail("window " + std::to_string(window_number) +
                  ": fast check failed: " + fast.detail);
    }
    if (options.run_audit) {
      const core::AuditReport audit = core::audit_protocol_execution(
          h, recorder.build_trace(h, /*include_process_order=*/false));
      for (const std::string& v : audit.violations) {
        report.fail("window " + std::to_string(window_number) + ": " + v);
      }
    }
  }

  for (std::size_t x = 0; x < objects; ++x) {
    if (x < result.final_values.size() &&
        result.final_values[x] != state.last_value[x]) {
      report.fail("final value of object " + std::to_string(x) + " is " +
                  std::to_string(result.final_values[x]) +
                  " but the merged log replays to " +
                  std::to_string(state.last_value[x]));
    }
  }
  return report;
}

obs::StreamingAuditorOptions stream_options(const ExecConfig& config) {
  obs::StreamingAuditorOptions options;
  options.condition = core::Condition::kMLinearizability;
  options.initial_value = config.initial_value;
  // OCC reads always name the latest committed writer, so a shallow
  // retention horizon suffices; keep the default for safety margin.
  return options;
}

const obs::StreamingReport& stream_execution(const ExecResult& result,
                                             obs::StreamingAuditor& auditor,
                                             obs::TimeSeriesWriter* series,
                                             obs::Registry* registry,
                                             std::size_t sample_every,
                                             bool wallclock) {
  const std::vector<const CommittedMop*> merged = merge_logs(result);
  const bool sampling =
      series != nullptr && registry != nullptr && sample_every != 0;
  const auto stamp = [&](std::uint64_t logical) -> std::uint64_t {
    if (!wallclock) return logical;
    // Wallclock stamps are for live monitoring of the real-thread
    // engine only; they never enter a deterministic artifact.
    // mocc-lint: allow(determinism): live-monitoring wallclock stamps
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
  };
  std::size_t fed = 0;
  for (const CommittedMop* mop : merged) {
    obs::StreamingAuditor::ObservedMop observed;
    observed.process = mop->worker;
    observed.key = mop->tid;
    observed.invoke = mop->invoke;
    observed.respond = mop->response;
    observed.is_update = mop->is_update;
    if (mop->is_update) observed.ww = mop->tid;
    observed.ops.reserve(mop->ops.size());
    for (const LoggedOp& op : mop->ops) {
      obs::StreamingAuditor::ObservedOp out;
      out.type = op.type;
      out.object = op.object;
      out.value = op.value;
      if (op.type == core::OpType::kRead) {
        if (op.from_tid == kOwnWriteTid) {
          out.internal = true;
        } else if (op.from_tid == kInitialTid) {
          out.writer = obs::StreamingAuditor::kInitialWriter;
        } else {
          out.writer = op.from_tid;
        }
      }
      observed.ops.push_back(out);
    }
    const std::uint64_t response = mop->response;
    auditor.observe(std::move(observed));
    ++fed;
    if (sampling && fed % sample_every == 0) {
      auditor.export_metrics(*registry);
      series->sample(*registry, stamp(response));
    }
  }
  const obs::StreamingReport& report = auditor.finish();
  if (sampling) {
    auditor.export_metrics(*registry);
    const std::uint64_t last =
        merged.empty() ? 0 : merged.back()->response;
    series->sample(*registry, stamp(last));
  }
  return report;
}

}  // namespace mocc::exec
