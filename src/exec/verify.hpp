// Post-run verification of the multicore engine by the paper's checkers.
//
// The committed logs merge deterministically by (epoch, tid) and replay
// into protocols::ExecutionRecorder histories, so the SAME machinery
// that audits the simulated protocols judges the real-thread engine:
// History::well_formed, the value-coherence residue check, the Theorem-7
// fast check (m-linearizability base order + the commit-tid order as the
// explicit ~ww synchronization, WW constraint), and the P5.x audit over
// the Figure-6 trace (~rf ∪ ~t ∪ ~ww).
//
// Scaling: the checkers' dense relations are quadratic in history size
// (the P5.x audit worse), so a 100k-op run is replayed in WINDOWS of
// `options.window` m-operations. Every window after the first starts
// with a synthetic snapshot m-operation (process id = num workers) that
// writes every object the value it had at the window cut, with ww_seq
// below every real tid and invoke/response before every real stamp —
// exactly the paper's imaginary initializing write, re-issued per
// window. Reads from pre-window writers resolve to the snapshot.
//
// Why per-window verdicts compose: commit-tid order refines real time
// (a response stamp is drawn after its tid, an invoke stamp before —
// engine.hpp), so every real-time edge crosses window cuts forward and
// admissibility of each window in tid order implies no cross-window
// witness exists. The replay additionally checks the cross-window glue
// directly: every external read must name the LATEST committed writer
// of its object at that point of the merged order (the OCC validation
// invariant — a lost update breaks it even when both halves of the
// anomaly land in different windows), and the replayed final state must
// equal the store's.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "obs/live.hpp"
#include "obs/timeseries.hpp"

namespace mocc::exec {

struct VerifyOptions {
  /// M-operations per replay window. The P5.x audit is the binding cost:
  /// O(window² · objects) timestamp comparisons per window.
  std::size_t window = 512;
  /// Run the P5.x audit per window (the fast check, value coherence, and
  /// the replay invariants always run).
  bool run_audit = true;
};

struct VerifyReport {
  bool ok = true;
  std::size_t mops = 0;     ///< committed m-operations verified
  std::size_t windows = 0;  ///< replay windows checked
  std::vector<std::string> violations;

  void fail(std::string message);
  std::string to_string() const;
};

/// Merges `result`'s logs and checks the full verdict described above.
VerifyReport verify_execution(const ExecResult& result,
                              const VerifyOptions& options = {});

/// Auditor options matching this engine's log shape: m-linearizability
/// (commit-tid order refines real time), the run's initial value, and
/// the verify default window.
obs::StreamingAuditorOptions stream_options(const ExecConfig& config);

/// Feeds the merged committed log through `auditor` in (epoch, tid)
/// order — the trace-free twin of the simulator's TraceSink tap. Reads
/// reference their writer by commit tid (kInitialTid maps to the
/// initializing write, kOwnWriteTid to an internal read), so the SAME
/// streaming windows + ghost-writer checks that audit the simulated
/// protocols judge the real-thread engine. Calls auditor.finish() and
/// returns its report.
///
/// When `series` and `registry` are both non-null, one time-series
/// sample is emitted every `sample_every` m-operations plus one final
/// sample after the audit completes. Samples carry the logical response
/// clock by default; `wallclock` stamps them with milliseconds of
/// wall time instead (non-deterministic — live monitoring only, never
/// a golden artifact).
const obs::StreamingReport& stream_execution(const ExecResult& result,
                                             obs::StreamingAuditor& auditor,
                                             obs::TimeSeriesWriter* series = nullptr,
                                             obs::Registry* registry = nullptr,
                                             std::size_t sample_every = 4096,
                                             bool wallclock = false);

}  // namespace mocc::exec
