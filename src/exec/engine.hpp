// Shared-memory multicore execution engine (`mocc_exec`).
//
// Worker threads execute multi-object m-operations (read / write / rmw
// sets over one ObjectStore) and commit them with an OCC protocol in the
// Silo/MOCC family (per-object version words, read-set validation,
// epoch-advancing global commit counter):
//
//   1. execute: reads take seqlock snapshots (value + writer tid) into
//      the read set; writes are buffered in the write set (reads of
//      own-written objects are served from the buffer);
//   2. lock: write-set objects are CAS-locked in canonical ascending
//      object order (deadlock-free; a bounded spin then abort+backoff
//      bounds convoying);
//   3. serialize: a commit tid is drawn from the global counter — after
//      the locks, before validation, so any conflicting writer with a
//      smaller tid either already published (validation sees the version
//      change) or still holds its lock (validation sees the lock bit);
//   4. validate: every read-set entry must still carry the observed
//      writer tid and be unlocked (write-set members: the lock must have
//      been acquired over exactly the observed version);
//   5. publish: write-set values are stored and the version words
//      release-stored with the new tid (which is also the unlock).
//
// Validation failure releases the locks untouched and re-executes the
// m-operation from scratch. Each committed m-operation is appended to a
// thread-local log: (worker, invoke/response logical-clock stamps,
// operations with reads-from tids, commit tid). After the run the logs
// merge deterministically by (epoch, tid) — epoch = tid >> kEpochShift,
// the global counter advances it every 2^kEpochShift draws — and feed
// the protocols::ExecutionRecorder, so the committed history is checked
// by the SAME Theorem-7 fast check, P5.x audit, and value-coherence
// residue check as the simulated protocols (verify.hpp).
//
// The invoke/response stamps come from a second global counter (the
// logical clock), drawn before the first read and after the last
// publish, so the recorded real-time order is genuine: two m-operations
// overlap in the history iff their executions overlapped. Commit-tid
// order refines that real-time order (a response stamp is drawn after
// its tid, an invoke stamp before), which is what makes the merged
// history m-linearizable, not merely m-sequentially consistent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/moperation.hpp"
#include "core/types.hpp"
#include "exec/store.hpp"
#include "obs/trace.hpp"

namespace mocc::exec {

/// Commits per epoch: the global counter advances the epoch every
/// 2^kEpochShift tid draws. Epochs bound the deterministic merge's sort
/// keys and give logs a coarse lifetime structure; (epoch, tid) and tid
/// induce the same total order.
inline constexpr unsigned kEpochShift = 12;

constexpr std::uint64_t epoch_of(std::uint64_t tid) { return tid >> kEpochShift; }

struct ExecConfig {
  std::size_t threads = 4;
  std::size_t objects = 1024;
  /// Committed m-operations each worker must produce (aborts retry).
  std::size_t mops_per_thread = 1000;
  /// Objects touched per m-operation (clamped to `objects`).
  std::size_t footprint = 4;
  /// Probability that an m-operation is a read-only query.
  double query_ratio = 0.5;
  /// Among updates: probability the m-operation is an rmw set (read every
  /// footprint object, then write back value+1) instead of a read/write
  /// mix (read half the footprint, blind-write the other half).
  double rmw_ratio = 0.5;
  /// Zipf skew over object choice (0 = uniform). The contention knob:
  /// high skew concentrates write sets on a few hot objects.
  double zipf_skew = 0.0;
  std::uint64_t seed = 1;
  /// Give up on an m-operation after this many attempts (0 = retry until
  /// it commits; abandoned m-operations are counted, not logged).
  std::size_t max_attempts = 0;
  /// Initial value of every object.
  core::Value initial_value = 0;
};

/// One read or write inside a committed m-operation, in program order.
struct LoggedOp {
  core::OpType type = core::OpType::kRead;
  core::ObjectId object = 0;
  core::Value value = 0;
  /// Reads: commit tid of the writer whose value was observed
  /// (kInitialTid for the initializing write, kOwnWriteTid when the read
  /// was served from this m-operation's own write buffer). Unused for
  /// writes.
  std::uint64_t from_tid = kInitialTid;
};

/// Reads satisfied from the m-operation's own write set (internal reads
/// in the paper's sense — they constrain nothing across m-operations).
inline constexpr std::uint64_t kOwnWriteTid = ~std::uint64_t{0};

/// One committed m-operation as logged by its worker.
struct CommittedMop {
  std::uint32_t worker = 0;
  std::uint64_t tid = 0;       ///< global commit tid (serialization point)
  std::uint64_t invoke = 0;    ///< logical-clock stamp before the first read
  std::uint64_t response = 0;  ///< logical-clock stamp after publication
  std::uint32_t attempts = 1;  ///< 1 = committed first try
  bool is_update = false;
  std::vector<LoggedOp> ops;
};

struct ExecStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted_validation = 0;  ///< read-set validation failures
  std::uint64_t aborted_lock = 0;        ///< write-lock spin budget exhausted
  std::uint64_t abandoned = 0;           ///< m-ops dropped at max_attempts
  /// Wall-clock seconds between starting the workers and the last join.
  /// The ONLY non-deterministic field; it never feeds a golden artifact
  /// (bench smoke records zero the derived throughput gauge).
  double elapsed_seconds = 0.0;

  std::uint64_t mops_per_sec() const;
};

struct ExecResult {
  ExecConfig config;
  ExecStats stats;
  /// Thread-local commit logs, one per worker, in local commit order
  /// (ascending tid within each log).
  std::vector<std::vector<CommittedMop>> logs;
  /// Committed value of every object after the run (the store's final
  /// state; verify.cpp cross-checks it against the merged log replay).
  std::vector<core::Value> final_values;
};

/// Runs the workload: `threads` real threads against one shared store.
/// When `sink` is non-null every commit/abort emits an exec_commit /
/// exec_abort trace event (null sink = one pointer test per event site,
/// same overhead policy as the simulator's instrumentation).
ExecResult run(const ExecConfig& config, obs::TraceSink* sink = nullptr);

/// Deterministic merge: pointers into `result.logs` sorted by
/// (epoch, tid). A pure function of the logs — any run's logs merge to
/// the same sequence regardless of which thread produced which entry.
std::vector<const CommittedMop*> merge_logs(const ExecResult& result);

}  // namespace mocc::exec
