#include "exec/store.hpp"

namespace mocc::exec {

ObjectStore::ObjectStore(std::size_t num_objects, core::Value initial_value)
    : slots_(num_objects) {
  for (Slot& slot : slots_) {
    // mocc-lint: allow-begin(atomics): single-threaded construction; the
    // store is published to the workers by the std::thread creation that
    // follows, which synchronizes-with their first access
    slot.word.store(kInitialTid, std::memory_order_relaxed);
    slot.value.store(initial_value, std::memory_order_relaxed);
    // mocc-lint: allow-end(atomics)
  }
}

StableRead ObjectStore::stable_read(core::ObjectId x) const {
  MOCC_ASSERT(x < slots_.size());
  const Slot& slot = slots_[x];
  for (;;) {
    const std::uint64_t before = slot.word.load(std::memory_order_acquire);
    if (is_locked(before)) continue;
    const core::Value value = slot.value.load(std::memory_order_acquire);
    const std::uint64_t after = slot.word.load(std::memory_order_acquire);
    if (after == before) return {value, tid_of(before)};
  }
}

bool ObjectStore::try_lock(core::ObjectId x, std::uint64_t& observed) {
  MOCC_ASSERT(x < slots_.size());
  Slot& slot = slots_[x];
  std::uint64_t word = slot.word.load(std::memory_order_acquire);
  if (is_locked(word)) {
    observed = word;
    return false;
  }
  observed = word;
  return slot.word.compare_exchange_strong(word, word | kLockBit,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
}

void ObjectStore::write_and_unlock(core::ObjectId x, core::Value value,
                                   std::uint64_t tid) {
  MOCC_ASSERT(x < slots_.size());
  MOCC_ASSERT_MSG(tid < kLockBit, "commit tid overflowed into the lock bit");
  Slot& slot = slots_[x];
  // mocc-lint: allow(atomics): lock-held debug self-check; ordering came from the acquiring CAS
  MOCC_DEBUG_ASSERT(is_locked(slot.word.load(std::memory_order_relaxed)));
  // Release on the value store: a reader that sees this value and
  // synchronizes with it must also see the locked word (stored before it
  // in this thread), so its seqlock double-read rejects the snapshot
  // unless it re-reads the final word below.
  slot.value.store(value, std::memory_order_release);
  slot.word.store(tid, std::memory_order_release);
}

void ObjectStore::unlock(core::ObjectId x, std::uint64_t restore_word) {
  MOCC_ASSERT(x < slots_.size());
  MOCC_ASSERT(!is_locked(restore_word));
  Slot& slot = slots_[x];
  // mocc-lint: allow(atomics): lock-held debug self-check; ordering came from the acquiring CAS
  MOCC_DEBUG_ASSERT(is_locked(slot.word.load(std::memory_order_relaxed)));
  slot.word.store(restore_word, std::memory_order_release);
}

std::uint64_t ObjectStore::word(core::ObjectId x) const {
  MOCC_ASSERT(x < slots_.size());
  return slots_[x].word.load(std::memory_order_acquire);
}

core::Value ObjectStore::committed_value(core::ObjectId x) const {
  MOCC_ASSERT(x < slots_.size());
  return slots_[x].value.load(std::memory_order_acquire);
}

}  // namespace mocc::exec
