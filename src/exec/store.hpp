// Shared in-memory object store for the multicore execution engine.
//
// One slot per object: a version word (lock bit + committed writer tid)
// and the committed value. Readers take consistent (value, version)
// snapshots without locking via the seqlock-style double-read below;
// writers CAS the lock bit at commit time (in canonical ascending object
// order — see engine.hpp for the full OCC protocol) and publish the new
// value with a release store of the new version word.
//
// The version a reader observes IS the provenance of the value: version
// words hold the global commit tid of the writing m-operation (tid 0 =
// the paper's imaginary initializing write), so committed read sets name
// their reads-from m-operations directly and the post-run merge can
// rebuild a checkable core::History with no value matching.
//
// This file is the only place that touches the store's atomics; the
// memory-ordering obligations are documented on each member.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "util/assert.hpp"

// src/exec is a *shared-memory* subsystem: worker threads communicate
// through the object store's atomics only, never through sim::Message
// traffic, so it deliberately has NO entry in sim::wire::kKindRanges.
// Any exec code that grew a Simulator::send call would have no kind
// range to draw from: raw integer kinds at send sites are rejected by
// mocc-lint's wire-kind check, and out-of-registry kinds abort in debug
// builds at Simulator::send itself (MOCC_DEBUG_ASSERT(is_registered)).
// The static_assert pins the "no range" half of that contract.
#include "sim/wire_kinds.hpp"
static_assert(!mocc::sim::wire::has_component("exec"),
              "src/exec must stay wire-free: it has no reserved kind range, "
              "so any Simulator::send from this subsystem is rejected "
              "(mocc-lint wire-kind + debug is_registered assert)");

namespace mocc::exec {

/// Commit tid of the initializing write every object starts with.
inline constexpr std::uint64_t kInitialTid = 0;

/// Version-word layout: bit 63 is the commit lock, bits [62:0] hold the
/// commit tid of the last writer.
inline constexpr std::uint64_t kLockBit = std::uint64_t{1} << 63;

constexpr bool is_locked(std::uint64_t word) { return (word & kLockBit) != 0; }
constexpr std::uint64_t tid_of(std::uint64_t word) { return word & ~kLockBit; }

/// A consistent (value, committed-writer-tid) observation of one object.
struct StableRead {
  core::Value value = 0;
  std::uint64_t tid = kInitialTid;
};

class ObjectStore {
 public:
  /// All objects start at `initial_value` with version kInitialTid.
  explicit ObjectStore(std::size_t num_objects, core::Value initial_value = 0);

  std::size_t size() const { return slots_.size(); }

  /// Seqlock-style consistent snapshot: load word (acquire), load value
  /// (acquire), re-load word; retry while the word is locked or changed
  /// between the loads. The writer's value store is a release store, so
  /// a reader that observed writer w's value and still sees the old
  /// version word would have synchronized with w's lock acquisition and
  /// re-read a locked/advanced word — the double-read cannot pair a new
  /// value with an old version.
  StableRead stable_read(core::ObjectId x) const;

  /// Commit-side primitives (engine.cpp). try_lock CASes the lock bit on
  /// and reports the pre-lock word through `observed` (both on success —
  /// the version the lock was acquired over — and on failure).
  bool try_lock(core::ObjectId x, std::uint64_t& observed);
  /// Publishes `value` then releases the lock by storing version word
  /// `tid` (release; tid < kLockBit so the lock bit clears).
  void write_and_unlock(core::ObjectId x, core::Value value, std::uint64_t tid);
  /// Releases the lock without writing (validation-failure path),
  /// restoring the pre-lock word.
  void unlock(core::ObjectId x, std::uint64_t restore_word);

  /// Raw version word (acquire); validation compares these against the
  /// read set.
  std::uint64_t word(core::ObjectId x) const;

  /// Post-run, single-threaded: the committed value of x (used by tests
  /// and by the final-state cross-check in verify.cpp).
  core::Value committed_value(core::ObjectId x) const;

 private:
  // Publication discipline, machine-checked by mocc-lint's atomics pass
  // (docs/static-analysis.md, "Atomics publication discipline"): every
  // access in src/exec must spell one of the orders declared here, and
  // each relaxed site carries an inline justified allow. word is the
  // seqlock/OCC version word — acquire reads pair with the release
  // publication stores, the commit lock is taken with an acq_rel CAS.
  // value rides the same release/acquire edge (store-before-word inside
  // write_and_unlock).
  // mocc-atomics: word: load=acquire,relaxed store=release,relaxed cas=acq_rel/acquire
  // mocc-atomics: value: load=acquire store=release,relaxed
  struct Slot {
    std::atomic<std::uint64_t> word;
    std::atomic<core::Value> value;
    // Version words and values are false-sharing-prone under contention;
    // pad each slot to its own cache line.
    char pad[64 - sizeof(std::atomic<std::uint64_t>) -
             sizeof(std::atomic<core::Value>)];
  };
  static_assert(sizeof(Slot) == 64, "one slot per cache line");

  std::vector<Slot> slots_;
};

}  // namespace mocc::exec
