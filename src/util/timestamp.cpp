#include "util/timestamp.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace mocc::util {

void VersionVector::increment(std::size_t x) {
  MOCC_ASSERT(x < v_.size());
  ++v_[x];
}

bool VersionVector::pointwise_leq(const VersionVector& other) const {
  MOCC_ASSERT(v_.size() == other.v_.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] > other.v_[i]) return false;
  }
  return true;
}

bool VersionVector::pointwise_less(const VersionVector& other) const {
  return pointwise_leq(other) && !(*this == other);
}

bool VersionVector::comparable(const VersionVector& other) const {
  return pointwise_leq(other) || other.pointwise_leq(*this);
}

int VersionVector::lex_compare(const VersionVector& other) const {
  MOCC_ASSERT(v_.size() == other.v_.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (v_[i] < other.v_[i]) return -1;
    if (v_[i] > other.v_[i]) return 1;
  }
  return 0;
}

void VersionVector::merge_max(const VersionVector& other) {
  MOCC_ASSERT(v_.size() == other.v_.size());
  for (std::size_t i = 0; i < v_.size(); ++i) {
    v_[i] = std::max(v_[i], other.v_[i]);
  }
}

std::string VersionVector::to_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < v_.size(); ++i) {
    if (i > 0) out << ",";
    out << v_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace mocc::util
