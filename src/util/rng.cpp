#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mocc::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 guarantees a non-degenerate (not all-zero) state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MOCC_ASSERT(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  MOCC_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the whole 64-bit range.
  const std::uint64_t draw = (span == 0) ? next_u64() : next_below(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::next_double() {
  // 53 random bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double probability_true) {
  return next_double() < probability_true;
}

double Rng::next_exponential(double mean) {
  MOCC_ASSERT(mean > 0.0);
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng(next_u64()); }

ZipfGenerator::ZipfGenerator(std::uint64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  MOCC_ASSERT(n >= 1);
  MOCC_ASSERT(exponent >= 0.0);
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_inverse(h(2.5) - std::pow(2.0, -exponent));
}

double ZipfGenerator::h(double x) const {
  if (exponent_ == 1.0) return std::log(x);
  return std::pow(x, 1.0 - exponent_) / (1.0 - exponent_);
}

double ZipfGenerator::h_inverse(double x) const {
  if (exponent_ == 1.0) return std::exp(x);
  return std::pow((1.0 - exponent_) * x, 1.0 / (1.0 - exponent_));
}

std::uint64_t ZipfGenerator::next(Rng& rng) {
  if (n_ == 1) return 0;
  if (exponent_ == 0.0) return rng.next_below(n_);
  for (;;) {
    const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
    const double x = h_inverse(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= h(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -exponent_)) {
      return k - 1;  // 0-based rank
    }
  }
}

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace mocc::util
