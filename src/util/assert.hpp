// Internal invariant checking.
//
// MOCC_ASSERT is always on (protocol and checker invariants are cheap
// relative to the work they guard, and a violated invariant means a wrong
// answer, not a slow one). MOCC_DEBUG_ASSERT compiles away in release
// builds and is reserved for hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mocc {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "mocc: invariant violated: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace mocc

#define MOCC_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::mocc::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MOCC_ASSERT_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) ::mocc::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define MOCC_DEBUG_ASSERT(expr) ((void)0)
#else
#define MOCC_DEBUG_ASSERT(expr) MOCC_ASSERT(expr)
#endif
