// Leveled logging to stderr.
//
// Off by default below `warn`; simulator traces use `debug` and are enabled
// per-run (MOCC_LOG=debug or Logger::set_level). Logging is process-global
// and intentionally unsynchronized beyond a mutex around the final write —
// the simulator is single-threaded and bench binaries log only summaries.
#pragma once

#include <sstream>
#include <string>

namespace mocc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  /// Reads MOCC_LOG from the environment ("debug", "info", "warn", "error",
  /// "off"); keeps the current level if unset/unknown.
  static void init_from_env();

  static void write(LogLevel level, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mocc::util

#define MOCC_LOG(level_enum)                                             \
  if (::mocc::util::Logger::level() <= ::mocc::util::LogLevel::level_enum) \
  ::mocc::util::detail::LogLine(::mocc::util::LogLevel::level_enum)

#define MOCC_DEBUG() MOCC_LOG(kDebug)
#define MOCC_INFO() MOCC_LOG(kInfo)
#define MOCC_WARN() MOCC_LOG(kWarn)
#define MOCC_ERROR() MOCC_LOG(kError)
