// Leveled logging to stderr.
//
// Off by default below `warn`; simulator traces use `debug` and are enabled
// per-run (MOCC_LOG=debug or Logger::set_level). Logging is process-global
// and thread-safe: the level is an atomic and the sink (stream pointer +
// the write itself) sits behind a Clang-annotated mutex, so parallel
// simulations (sim::ParallelRunner) can log concurrently.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace mocc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  /// Reads MOCC_LOG from the environment ("debug", "info", "warn", "error",
  /// "off"); keeps the current level if unset/unknown.
  static void init_from_env();

  static void write(LogLevel level, const std::string& message);

  /// Redirects log output (nullptr restores stderr). The caller keeps
  /// ownership of the stream and must keep it open until the next
  /// set_stream. Thread-safe; meant for tests that exercise concurrent
  /// logging without spamming the terminal.
  static void set_stream(std::FILE* stream);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mocc::util

#define MOCC_LOG(level_enum)                                             \
  if (::mocc::util::Logger::level() <= ::mocc::util::LogLevel::level_enum) \
  ::mocc::util::detail::LogLine(::mocc::util::LogLevel::level_enum)

#define MOCC_DEBUG() MOCC_LOG(kDebug)
#define MOCC_INFO() MOCC_LOG(kInfo)
#define MOCC_WARN() MOCC_LOG(kWarn)
#define MOCC_ERROR() MOCC_LOG(kError)
