// Clang thread-safety analysis annotations.
//
// Wrappers over Clang's `-Wthread-safety` attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under Clang
// the macros expand to the corresponding `__attribute__((...))`; under
// every other compiler they expand to nothing, so annotated code stays
// portable. The analysis is enabled automatically by the build
// (`-Wthread-safety` on `mocc_options` when the compiler is Clang) and
// promoted to an error with `MOCC_WERROR=ON`.
//
// Conventions in this codebase:
//   * every mutex-protected member is declared `MOCC_GUARDED_BY(mu_)`;
//   * public entry points that take the lock are `MOCC_EXCLUDES(mu_)`;
//   * private helpers that expect the caller to hold the lock are
//     suffixed `_locked` and declared `MOCC_REQUIRES(mu_)`;
//   * all locking is RAII (`std::lock_guard` / `std::unique_lock`) —
//     there are no raw lock()/unlock() call sites.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MOCC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MOCC_THREAD_ANNOTATION
#define MOCC_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (e.g. a mutex wrapper).
#define MOCC_CAPABILITY(x) MOCC_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability for its lifetime.
#define MOCC_SCOPED_CAPABILITY MOCC_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define MOCC_GUARDED_BY(x) MOCC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by the given mutex.
#define MOCC_PT_GUARDED_BY(x) MOCC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the caller to already hold the mutex(es).
#define MOCC_REQUIRES(...) \
  MOCC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the caller to hold the mutex(es) in shared mode.
#define MOCC_REQUIRES_SHARED(...) \
  MOCC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and does not release before returning.
#define MOCC_ACQUIRE(...) \
  MOCC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es) held on entry.
#define MOCC_RELEASE(...) \
  MOCC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must be called WITHOUT the mutex(es) held (it takes them
/// itself); catches self-deadlock at compile time.
#define MOCC_EXCLUDES(...) MOCC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function tries to acquire; first argument is the success value.
#define MOCC_TRY_ACQUIRE(...) \
  MOCC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Return value is a reference to data guarded by the given mutex.
#define MOCC_RETURN_CAPABILITY(x) MOCC_THREAD_ANNOTATION(lock_returned(x))

/// Asserts at runtime that the capability is held (for code the static
/// analysis cannot follow, e.g. callbacks).
#define MOCC_ASSERT_CAPABILITY(x) \
  MOCC_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the analysis cannot see the invariant.
#define MOCC_NO_THREAD_SAFETY_ANALYSIS \
  MOCC_THREAD_ANNOTATION(no_thread_safety_analysis)
