// Deterministic random number generation.
//
// Every randomized component in mocc (workload generators, delay models,
// property tests) draws from an explicitly seeded Rng so that any run —
// including a failing property-test case — is reproducible from its seed.
// The generator is xoshiro256**, seeded via splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace mocc::util {

/// splitmix64 step; used for seeding and cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Not cryptographic; fast and statistically strong
/// enough for simulation workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool next_bool(double probability_true);

  /// Exponentially distributed double with the given mean (> 0).
  double next_exponential(double mean);

  /// Split off an independent generator (for per-process streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed integers in [0, n). Uses the rejection-inversion
/// method of Hörmann & Derflinger so that setup is O(1) and sampling is
/// O(1) expected, independent of n.
class ZipfGenerator {
 public:
  /// `exponent` is the skew parameter s (s = 0 degenerates to uniform).
  ZipfGenerator(std::uint64_t n, double exponent);

  std::uint64_t next(Rng& rng);

  std::uint64_t n() const { return n_; }
  double exponent() const { return exponent_; }

 private:
  double h(double x) const;
  double h_inverse(double x) const;

  std::uint64_t n_;
  double exponent_;
  double h_x1_;
  double h_n_;
  double s_;
};

/// Fisher-Yates shuffle of an index vector.
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace mocc::util
