// Wire format for simulator messages.
//
// Protocol messages cross the simulated network as byte payloads rather
// than shared in-memory object graphs: this forces every replica to work
// only from information a real network would deliver, and lets the
// simulator account message sizes. Encoding is little-endian, varint-free
// fixed width (simplicity over compactness — payload *counting* is what
// the experiments need).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mocc::util {

class ByteWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_string(std::string_view s);
  void put_u64_vector(const std::vector<std::uint64_t>& v);
  void put_i64_vector(const std::vector<std::int64_t>& v);
  void put_u32_vector(const std::vector<std::uint32_t>& v);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads values back in the order they were written. Out-of-bounds reads
/// abort (a malformed message is a bug in this codebase, not input).
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  std::string get_string();
  std::vector<std::uint64_t> get_u64_vector();
  std::vector<std::int64_t> get_i64_vector();
  std::vector<std::uint32_t> get_u32_vector();

  bool exhausted() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace mocc::util
