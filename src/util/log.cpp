#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace mocc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// The write end of the logger. One mutex serializes whole lines and
/// guards the redirectable stream pointer; Clang's -Wthread-safety
/// verifies every access goes through it.
class Sink {
 public:
  void write(const char* level, const std::string& message) MOCC_EXCLUDES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);
    std::FILE* stream = out_ != nullptr ? out_ : stderr;
    std::fprintf(stream, "[%s] %s\n", level, message.c_str());
  }

  void set_stream(std::FILE* stream) MOCC_EXCLUDES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);
    out_ = stream;
  }

 private:
  std::mutex mu_;
  /// nullptr means stderr (resolved at write time: stderr is not a
  /// constant expression, so it cannot be a default member initializer).
  std::FILE* out_ MOCC_GUARDED_BY(mu_) = nullptr;
};

Sink& sink() {
  static Sink instance;
  return instance;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::init_from_env() {
  const char* env = std::getenv("MOCC_LOG");
  if (env == nullptr) return;
  const std::string v = env;
  if (v == "debug") set_level(LogLevel::kDebug);
  else if (v == "info") set_level(LogLevel::kInfo);
  else if (v == "warn") set_level(LogLevel::kWarn);
  else if (v == "error") set_level(LogLevel::kError);
  else if (v == "off") set_level(LogLevel::kOff);
}

void Logger::write(LogLevel level, const std::string& message) {
  sink().write(level_name(level), message);
}

void Logger::set_stream(std::FILE* stream) { sink().set_stream(stream); }

}  // namespace mocc::util
