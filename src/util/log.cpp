#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mocc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::init_from_env() {
  const char* env = std::getenv("MOCC_LOG");
  if (env == nullptr) return;
  const std::string v = env;
  if (v == "debug") set_level(LogLevel::kDebug);
  else if (v == "info") set_level(LogLevel::kInfo);
  else if (v == "warn") set_level(LogLevel::kWarn);
  else if (v == "error") set_level(LogLevel::kError);
  else if (v == "off") set_level(LogLevel::kOff);
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace mocc::util
