#include "util/relation.hpp"

#include <bit>

#include "util/assert.hpp"

namespace mocc::util {

BitRelation::BitRelation(std::size_t n) : n_(n), bits_(n * ((n + 63) / 64), 0) {}

void BitRelation::add(std::size_t from, std::size_t to) {
  MOCC_ASSERT_MSG(from < n_ && to < n_,
                  "BitRelation::add: index outside the universe");
  row(from)[to / 64] |= (std::uint64_t{1} << (to % 64));
}

bool BitRelation::has(std::size_t from, std::size_t to) const {
  MOCC_ASSERT_MSG(from < n_ && to < n_,
                  "BitRelation::has: index outside the universe");
  return (row(from)[to / 64] >> (to % 64)) & 1U;
}

void BitRelation::merge(const BitRelation& other) {
  MOCC_ASSERT_MSG(n_ == other.n_,
                  "BitRelation::merge: universe sizes disagree");
  MOCC_DEBUG_ASSERT(bits_.size() == other.bits_.size());
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
}

std::size_t BitRelation::pair_count() const {
  std::size_t count = 0;
  for (auto word : bits_) count += static_cast<std::size_t>(std::popcount(word));
  return count;
}

BitRelation BitRelation::transitive_closure() const {
  BitRelation closure = *this;
  const std::size_t words = words_per_row();
  for (std::size_t k = 0; k < n_; ++k) {
    const std::uint64_t* krow = closure.row(k);
    for (std::size_t i = 0; i < n_; ++i) {
      if (closure.has(i, k)) {
        std::uint64_t* irow = closure.row(i);
        for (std::size_t w = 0; w < words; ++w) irow[w] |= krow[w];
      }
    }
  }
  return closure;
}

bool BitRelation::closed_is_irreflexive() const {
  for (std::size_t i = 0; i < n_; ++i) {
    if (has(i, i)) return false;
  }
  return true;
}

bool BitRelation::is_acyclic() const {
  return transitive_closure().closed_is_irreflexive();
}

bool BitRelation::closed_is_total_order() const {
  if (!closed_is_irreflexive()) return false;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (!has(i, j) && !has(j, i)) return false;
    }
  }
  return true;
}

std::optional<std::vector<std::size_t>> BitRelation::topological_order() const {
  std::vector<std::size_t> indeg = in_degrees();
  std::vector<std::size_t> order;
  order.reserve(n_);
  // Kahn's algorithm with smallest-index-first tie-breaking for determinism.
  std::vector<bool> placed(n_, false);
  for (std::size_t step = 0; step < n_; ++step) {
    std::size_t pick = n_;
    for (std::size_t i = 0; i < n_; ++i) {
      if (!placed[i] && indeg[i] == 0) {
        pick = i;
        break;
      }
    }
    if (pick == n_) return std::nullopt;  // cycle
    placed[pick] = true;
    order.push_back(pick);
    for (std::size_t j = 0; j < n_; ++j) {
      if (!placed[j] && has(pick, j)) --indeg[j];
    }
  }
  return order;
}

std::vector<std::size_t> BitRelation::successors(std::size_t from) const {
  MOCC_ASSERT_MSG(from < n_, "BitRelation::successors: index outside the universe");
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < n_; ++j) {
    if (has(from, j)) out.push_back(j);
  }
  return out;
}

std::vector<std::size_t> BitRelation::predecessors(std::size_t to) const {
  MOCC_ASSERT_MSG(to < n_, "BitRelation::predecessors: index outside the universe");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n_; ++i) {
    if (has(i, to)) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> BitRelation::in_degrees() const {
  std::vector<std::size_t> indeg(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (has(i, j)) ++indeg[j];
    }
  }
  return indeg;
}

}  // namespace mocc::util
