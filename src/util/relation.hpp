// Dense binary relations over a fixed universe {0, ..., n-1}.
//
// The history checkers manipulate order relations over m-operations:
// union, transitive closure, acyclicity, topological linearization. A
// bit-matrix representation keeps the closure at O(n^3 / 64) and every
// membership query at O(1), which is what lets the Theorem-7 polynomial
// checker stay fast on protocol-generated histories with thousands of
// m-operations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace mocc::util {

class BitRelation {
 public:
  BitRelation() = default;
  explicit BitRelation(std::size_t n);

  std::size_t size() const { return n_; }

  void add(std::size_t from, std::size_t to);
  bool has(std::size_t from, std::size_t to) const;

  /// Union in-place with another relation over the same universe.
  void merge(const BitRelation& other);

  /// Number of ordered pairs present.
  std::size_t pair_count() const;

  /// Warshall's algorithm on bit rows; O(n^2 * n/64).
  BitRelation transitive_closure() const;

  /// True iff the transitive closure is irreflexive (no cycle through any
  /// element). `closed` may be passed to skip recomputing the closure.
  bool is_acyclic() const;
  bool closed_is_irreflexive() const;

  /// True iff the relation is a total (strict) order when transitively
  /// closed: acyclic and every distinct pair ordered.
  bool closed_is_total_order() const;

  /// Some topological order (ascending under the relation), or nullopt if
  /// cyclic. Ties are broken by smallest index, so the result is
  /// deterministic.
  std::optional<std::vector<std::size_t>> topological_order() const;

  /// Successors of `from` as indices (ascending).
  std::vector<std::size_t> successors(std::size_t from) const;
  /// Predecessors of `to` as indices (ascending).
  std::vector<std::size_t> predecessors(std::size_t to) const;

  /// In-degree of every element (number of predecessors).
  std::vector<std::size_t> in_degrees() const;

 private:
  std::size_t words_per_row() const { return (n_ + 63) / 64; }
  const std::uint64_t* row(std::size_t i) const { return bits_.data() + i * words_per_row(); }
  std::uint64_t* row(std::size_t i) { return bits_.data() + i * words_per_row(); }

  std::size_t n_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace mocc::util
