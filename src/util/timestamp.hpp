// Per-object version timestamps (the paper's `ts` vectors, §5).
//
// A timestamp has one unsigned counter per shared object; entry x is the
// version of object x (number of writes to x that the copy reflects).
// The paper uses two orders on timestamps:
//   - the pointwise partial order:  ts <= ts'  iff every entry of ts is
//     <= the corresponding entry of ts' (P 5.x proofs);
//   - lexicographic order, used to break ties when comparing copies.
// Both are provided, plus the comparisons the protocols need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mocc::util {

class VersionVector {
 public:
  VersionVector() = default;
  explicit VersionVector(std::size_t num_objects) : v_(num_objects, 0) {}
  static VersionVector from_entries(std::vector<std::uint64_t> entries) {
    VersionVector vv;
    vv.v_ = std::move(entries);
    return vv;
  }

  std::size_t size() const { return v_.size(); }
  /// True for a default-constructed vector (no objects tracked yet).
  bool empty() const { return v_.empty(); }
  std::uint64_t operator[](std::size_t x) const { return v_[x]; }

  /// Bump the version of object x (a write to x creates a new version).
  void increment(std::size_t x);

  /// Pointwise comparisons — the paper's <= and < (D: "ts is less than ts'
  /// iff ts <= ts' and they are not equal").
  bool pointwise_leq(const VersionVector& other) const;
  bool pointwise_less(const VersionVector& other) const;
  bool operator==(const VersionVector& other) const { return v_ == other.v_; }

  /// True iff the two vectors are ordered one way or the other under the
  /// pointwise order. Replicas driven by the same atomic broadcast always
  /// hold comparable timestamps; the m-linearizability protocol asserts it.
  bool comparable(const VersionVector& other) const;

  /// Lexicographic three-way comparison: -1, 0, +1.
  int lex_compare(const VersionVector& other) const;

  /// Componentwise maximum (join in the version lattice).
  void merge_max(const VersionVector& other);

  std::string to_string() const;

  const std::vector<std::uint64_t>& entries() const { return v_; }

 private:
  std::vector<std::uint64_t> v_;
};

}  // namespace mocc::util
