#include "util/table.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace mocc::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  MOCC_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace mocc::util
