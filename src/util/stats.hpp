// Lightweight descriptive statistics for benchmark and simulation output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mocc::util {

/// Accumulates samples and answers summary queries. Stores all samples so
/// that exact percentiles can be reported (benchmark runs are small enough
/// that this is the right trade-off).
class Summary {
 public:
  void add(double sample);
  void merge(const Summary& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  /// Exact percentile by nearest-rank; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// "n=.. mean=.. p50=.. p99=.. max=.." one-liner for logs.
  std::string brief() const;

  /// Raw samples in insertion order (e.g. to refill an obs::FixedHistogram).
  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double sample);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Multi-line ASCII rendering, widest bucket normalized to `width` chars.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mocc::util
