#include "util/bytes.hpp"

#include "util/assert.hpp"

namespace mocc::util {

void ByteWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::put_u64_vector(const std::vector<std::uint64_t>& v) {
  put_u32(static_cast<std::uint32_t>(v.size()));
  for (auto x : v) put_u64(x);
}

void ByteWriter::put_i64_vector(const std::vector<std::int64_t>& v) {
  put_u32(static_cast<std::uint32_t>(v.size()));
  for (auto x : v) put_i64(x);
}

void ByteWriter::put_u32_vector(const std::vector<std::uint32_t>& v) {
  put_u32(static_cast<std::uint32_t>(v.size()));
  for (auto x : v) put_u32(x);
}

std::uint8_t ByteReader::get_u8() {
  MOCC_ASSERT_MSG(pos_ + 1 <= buf_.size(), "message underflow");
  return buf_[pos_++];
}

std::uint32_t ByteReader::get_u32() {
  MOCC_ASSERT_MSG(pos_ + 4 <= buf_.size(), "message underflow");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::get_u64() {
  MOCC_ASSERT_MSG(pos_ + 8 <= buf_.size(), "message underflow");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::int64_t ByteReader::get_i64() { return static_cast<std::int64_t>(get_u64()); }

std::string ByteReader::get_string() {
  const std::uint32_t len = get_u32();
  MOCC_ASSERT_MSG(pos_ + len <= buf_.size(), "message underflow");
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return s;
}

std::vector<std::uint64_t> ByteReader::get_u64_vector() {
  const std::uint32_t len = get_u32();
  std::vector<std::uint64_t> v;
  v.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) v.push_back(get_u64());
  return v;
}

std::vector<std::int64_t> ByteReader::get_i64_vector() {
  const std::uint32_t len = get_u32();
  std::vector<std::int64_t> v;
  v.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) v.push_back(get_i64());
  return v;
}

std::vector<std::uint32_t> ByteReader::get_u32_vector() {
  const std::uint32_t len = get_u32();
  std::vector<std::uint32_t> v;
  v.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) v.push_back(get_u32());
  return v;
}

}  // namespace mocc::util
