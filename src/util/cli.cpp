#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace mocc::util {

CliArgs::CliArgs(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare boolean flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  touched_[name] = true;
  return flags_.count(name) > 0;
}

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "%s: flag --%s expects an integer, got '%s'\n",
                 program_.c_str(), name.c_str(), it->second.c_str());
    std::exit(2);
  }
  return v;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "%s: flag --%s expects a number, got '%s'\n",
                 program_.c_str(), name.c_str(), it->second.c_str());
    std::exit(2);
  }
  return v;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (touched_.find(name) == touched_.end()) out.push_back(name);
  }
  return out;
}

}  // namespace mocc::util
