#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace mocc::util {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_valid_ = false;
}

double Summary::sum() const {
  double total = 0.0;
  for (double s : samples_) total += s;
  return total;
}

double Summary::mean() const {
  MOCC_ASSERT(!samples_.empty());
  return sum() / static_cast<double>(samples_.size());
}

double Summary::min() const {
  MOCC_ASSERT(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  MOCC_ASSERT(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::percentile(double p) const {
  MOCC_ASSERT(!samples_.empty());
  MOCC_ASSERT(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  // Nearest-rank with linear interpolation between adjacent order statistics.
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Summary::brief() const {
  std::ostringstream out;
  if (empty()) {
    out << "n=0";
    return out.str();
  }
  out << "n=" << count() << " mean=" << mean() << " p50=" << median()
      << " p99=" << percentile(99.0) << " max=" << max();
  return out.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  MOCC_ASSERT(hi > lo);
  MOCC_ASSERT(buckets > 0);
}

void Histogram::add(double sample) {
  ++total_;
  if (sample < lo_) {
    ++underflow_;
  } else if (sample >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((sample - lo_) / bucket_width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ > 0) out << "underflow " << underflow_ << "\n";
  if (overflow_ > 0) out << "overflow " << overflow_ << "\n";
  return out.str();
}

}  // namespace mocc::util
