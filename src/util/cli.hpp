// Minimal command-line flag parsing for the examples and bench drivers.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are an error (typos in sweep scripts should fail loudly).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mocc::util {

class CliArgs {
 public:
  /// Parses argv; prints a message and exits(2) on malformed input.
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program_name() const { return program_; }

  /// Flags that were provided but never read by any get_*/has call.
  /// Call at the end of main to reject typos.
  std::vector<std::string> unused() const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> touched_;
  std::vector<std::string> positional_;
};

}  // namespace mocc::util
