// Database schedules (§3).
//
// The paper's NP-completeness argument (Theorem 2) reduces strict view
// serializability of database schedules to m-linearizability. This module
// is the database side of that bridge: transactions as totally-ordered
// sequences of read/write actions on entities, interleaved into a
// schedule.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace mocc::txn {

using TxnId = std::uint32_t;
using EntityId = std::uint32_t;

/// Sentinel writer for reads satisfied by the initial database state.
inline constexpr TxnId kInitialTxn = std::numeric_limits<TxnId>::max();

struct Action {
  TxnId txn = 0;
  bool is_write = false;
  EntityId entity = 0;
};

class Schedule {
 public:
  Schedule(std::size_t num_txns, std::size_t num_entities);

  /// Appends the next action in schedule order.
  void append(TxnId txn, bool is_write, EntityId entity);

  std::size_t num_txns() const { return num_txns_; }
  std::size_t num_entities() const { return num_entities_; }
  const std::vector<Action>& actions() const { return actions_; }

  /// Position of the first/last action of a transaction in the schedule;
  /// nullopt for transactions with no actions.
  std::optional<std::size_t> first_action(TxnId txn) const;
  std::optional<std::size_t> last_action(TxnId txn) const;

  /// The transaction whose write the read at `position` observes: the
  /// latest preceding write to the same entity (kInitialTxn if none).
  /// Intra-transaction reads resolve to the own transaction.
  TxnId reads_from(std::size_t position) const;

  /// Entities transaction `txn` reads externally (before writing them
  /// itself), paired with the transaction each read observes.
  struct ExternalRead {
    EntityId entity;
    TxnId from;
  };
  std::vector<ExternalRead> external_reads(TxnId txn) const;

  /// Entities `txn` writes, and whether its write is the last write to
  /// that entity in the whole schedule (the "final write").
  std::vector<EntityId> write_set(TxnId txn) const;
  TxnId final_writer(EntityId entity) const;

  /// Ti strictly-before Tj: Ti's last action precedes Tj's first action.
  /// Both transactions must be non-empty.
  bool non_overlapping_before(TxnId a, TxnId b) const;

  /// Necessary condition for view serializability, assumed by the
  /// transaction-granularity searches: every read observes either (a) its
  /// own transaction's most recent write to the entity (if the reader
  /// already wrote it), or (b) the *final* write to the entity of some
  /// other transaction. A serial execution can realize no other pattern,
  /// so a schedule failing this is trivially not view serializable.
  bool reads_are_serially_realizable() const;

  /// The paper's augmentation (footnote 3): T0 writes every entity before
  /// everything, T-infinity reads every entity after everything. Returns
  /// the augmented schedule plus the ids assigned to T0 and T-infinity.
  struct Augmented;
  Augmented augment() const;

  std::string to_string() const;

 private:
  std::size_t num_txns_;
  std::size_t num_entities_;
  std::vector<Action> actions_;
};

struct Schedule::Augmented {
  Schedule schedule;
  TxnId t0;
  TxnId t_inf;
};

}  // namespace mocc::txn
