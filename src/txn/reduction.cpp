#include "txn/reduction.hpp"

#include <map>

#include "util/assert.hpp"

namespace mocc::txn {

ReductionResult reduce_to_history(const Schedule& s) {
  ReductionResult result{core::History(s.num_txns() + 1, s.num_entities()), false, {},
                         0};
  if (!s.reads_are_serially_realizable()) return result;

  const auto& actions = s.actions();

  // Unique value per write action; position -> value.
  std::map<std::size_t, core::Value> write_value;
  std::map<EntityId, std::uint64_t> version;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i].is_write) {
      const EntityId e = actions[i].entity;
      write_value[i] = static_cast<core::Value>(e) * 1'000'000 +
                       static_cast<core::Value>(++version[e]);
    }
  }

  // Value each read observes (position of the latest preceding write).
  auto observed_value = [&](std::size_t read_pos) -> core::Value {
    for (std::size_t j = read_pos; j > 0; --j) {
      if (actions[j - 1].is_write && actions[j - 1].entity == actions[read_pos].entity) {
        return write_value.at(j - 1);
      }
    }
    return 0;  // initial value
  };

  // One m-operation per original transaction; m-op id == txn id because
  // transactions are added in id order (History assigns ids sequentially).
  result.txn_to_mop.resize(s.num_txns());
  for (TxnId t = 0; t < s.num_txns(); ++t) {
    const auto first = s.first_action(t);
    const auto last = s.last_action(t);
    MOCC_ASSERT_MSG(first.has_value(), "reduction requires non-empty transactions");
    std::vector<core::Operation> ops;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      const Action& action = actions[i];
      if (action.txn != t) continue;
      if (action.is_write) {
        ops.push_back(core::Operation::write(action.entity, write_value.at(i)));
      } else {
        const TxnId from = s.reads_from(i);
        const core::MOpId writer =
            from == kInitialTxn ? core::kInitialMOp : static_cast<core::MOpId>(from);
        ops.push_back(core::Operation::read(action.entity, observed_value(i), writer));
      }
    }
    const auto id = result.history.add(core::MOperation(
        /*process=*/t, std::move(ops), /*invoke=*/static_cast<core::Time>(*first + 1),
        /*response=*/static_cast<core::Time>(*last + 1), "txn"));
    result.txn_to_mop[t] = id;
  }

  // T-infinity: a query reading every entity's final value, invoked after
  // every response (real-time-after everything, as the augmentation
  // demands).
  {
    std::vector<core::Operation> ops;
    for (EntityId e = 0; e < s.num_entities(); ++e) {
      const TxnId from = s.final_writer(e);
      const core::MOpId writer =
          from == kInitialTxn ? core::kInitialMOp : static_cast<core::MOpId>(from);
      core::Value value = 0;
      if (from != kInitialTxn) {
        // Value of the final write to e.
        for (std::size_t i = actions.size(); i > 0; --i) {
          if (actions[i - 1].is_write && actions[i - 1].entity == e) {
            value = write_value.at(i - 1);
            break;
          }
        }
      }
      ops.push_back(core::Operation::read(e, value, writer));
    }
    const auto t_inf_time = static_cast<core::Time>(actions.size() + 2);
    result.t_inf_mop = result.history.add(
        core::MOperation(/*process=*/static_cast<core::ProcessId>(s.num_txns()),
                         std::move(ops), t_inf_time, t_inf_time + 1, "t_inf"));
  }

  result.feasible = true;
  return result;
}

}  // namespace mocc::txn
