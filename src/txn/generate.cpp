#include "txn/generate.hpp"

#include "util/assert.hpp"

namespace mocc::txn {

namespace {
std::vector<std::vector<Action>> random_transactions(const ScheduleParams& params,
                                                     util::Rng& rng) {
  std::vector<std::vector<Action>> txns(params.num_txns);
  for (TxnId t = 0; t < params.num_txns; ++t) {
    const std::size_t count = static_cast<std::size_t>(
        rng.next_in(static_cast<std::int64_t>(params.min_actions_per_txn),
                    static_cast<std::int64_t>(params.max_actions_per_txn)));
    MOCC_ASSERT(count >= 1);
    for (std::size_t i = 0; i < count; ++i) {
      const auto e = static_cast<EntityId>(rng.next_below(params.num_entities));
      txns[t].push_back(Action{t, rng.next_bool(params.write_probability), e});
    }
  }
  return txns;
}
}  // namespace

Schedule generate_serial_schedule(const ScheduleParams& params, util::Rng& rng) {
  Schedule s(params.num_txns, params.num_entities);
  for (const auto& txn : random_transactions(params, rng)) {
    for (const Action& a : txn) s.append(a.txn, a.is_write, a.entity);
  }
  return s;
}

Schedule generate_interleaved_schedule(const ScheduleParams& params, util::Rng& rng) {
  const auto txns = random_transactions(params, rng);
  Schedule s(params.num_txns, params.num_entities);
  std::vector<std::size_t> cursor(params.num_txns, 0);
  std::size_t remaining = 0;
  for (const auto& txn : txns) remaining += txn.size();
  while (remaining > 0) {
    // Pick a transaction with actions left, weighted by remaining count.
    std::size_t pick = rng.next_below(remaining);
    for (TxnId t = 0; t < params.num_txns; ++t) {
      const std::size_t left = txns[t].size() - cursor[t];
      if (pick < left) {
        const Action& a = txns[t][cursor[t]++];
        s.append(a.txn, a.is_write, a.entity);
        --remaining;
        break;
      }
      pick -= left;
    }
  }
  return s;
}

}  // namespace mocc::txn
