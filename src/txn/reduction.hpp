// The Theorem-2 reduction: database schedules to histories.
//
// Construction (§3, proof of Theorem 2): given a schedule S over
// transactions T1..Tn, augment it with T0 (initial writes) and T-infinity
// (final reads); build a distributed system with one process per
// transaction of the *original* schedule, each executing a single
// m-operation whose operations are the transaction's actions in order.
// Invocation/response events are the schedule positions of the first/last
// action, so two transactions are non-overlapping in S iff the
// corresponding m-operations are non-overlapping in H. The history's base
// order is reads-from ∪ real-time (process order is vacuous — one
// m-operation per process), i.e. exactly the m-linearizability base.
//
// Theorem 2: S is strict view serializable  ⟺  H is m-linearizable.
// The same construction with real-time dropped (m-sequential consistency)
// decides plain view serializability.
//
// Implementation note on the augmentation: T0's writes are the history's
// implicit initializing m-operation (reads that observe T0 map to
// kInitialMOp), and T-infinity's final reads are encoded as an extra
// query m-operation on its own process whose invocation follows every
// response. This keeps H exactly as large as the augmented schedule
// requires while reusing the model's built-in initial write.
#pragma once

#include "core/history.hpp"
#include "txn/schedule.hpp"

namespace mocc::txn {

struct ReductionResult {
  /// Meaningful only when feasible.
  core::History history;
  /// False when the schedule contains a read no serial execution can
  /// realize (Schedule::reads_are_serially_realizable fails); such
  /// schedules are trivially not view serializable and have no faithful
  /// m-operation image.
  bool feasible = false;
  /// history m-op id of each original transaction (index = TxnId).
  std::vector<core::MOpId> txn_to_mop;
  /// m-op id of the T-infinity reader.
  core::MOpId t_inf_mop = 0;
};

ReductionResult reduce_to_history(const Schedule& s);

}  // namespace mocc::txn
