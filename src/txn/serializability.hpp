// Serializability checkers for database schedules (§3).
//
// Implemented independently of the core history machinery so that the
// Theorem-2 reduction can be validated by agreement between two separate
// decision procedures:
//
//   - view serializability          (NP-complete; backtracking search)
//   - strict view serializability   (NP-complete; + order of
//                                    non-overlapping transactions fixed)
//   - conflict serializability      (polynomial; precedence-graph cycle
//                                    test) — strictly stronger than view
//                                    serializability, provided for
//                                    comparison benches.
//
// View equivalence is checked against the augmented schedule (footnote 3),
// which folds final-write equality into the reads-from relation.
#pragma once

#include <optional>
#include <vector>

#include "txn/schedule.hpp"

namespace mocc::txn {

struct SerializabilityResult {
  bool serializable = false;
  /// Serial order of the original (unaugmented) transaction ids, when
  /// serializable.
  std::optional<std::vector<TxnId>> witness;
  std::uint64_t states_visited = 0;
};

/// Is the schedule view-equivalent to some serial schedule?
SerializabilityResult view_serializable(const Schedule& s);

/// Footnote 2: view serializable by a serial order that preserves the
/// schedule order of transactions that do not overlap in s.
SerializabilityResult strict_view_serializable(const Schedule& s);

/// Precedence-graph (conflict) serializability; polynomial.
bool conflict_serializable(const Schedule& s);

/// Checks that `order` is a serial order view-equivalent to `s`
/// (replay of the augmented reads-from). Used to validate witnesses.
bool is_view_equivalent_serial_order(const Schedule& s, const std::vector<TxnId>& order);

}  // namespace mocc::txn
