#include "txn/schedule.hpp"

#include <map>
#include <set>
#include <sstream>

#include "util/assert.hpp"

namespace mocc::txn {

Schedule::Schedule(std::size_t num_txns, std::size_t num_entities)
    : num_txns_(num_txns), num_entities_(num_entities) {}

void Schedule::append(TxnId txn, bool is_write, EntityId entity) {
  MOCC_ASSERT(txn < num_txns_);
  MOCC_ASSERT(entity < num_entities_);
  actions_.push_back(Action{txn, is_write, entity});
}

std::optional<std::size_t> Schedule::first_action(TxnId txn) const {
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (actions_[i].txn == txn) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> Schedule::last_action(TxnId txn) const {
  for (std::size_t i = actions_.size(); i > 0; --i) {
    if (actions_[i - 1].txn == txn) return i - 1;
  }
  return std::nullopt;
}

TxnId Schedule::reads_from(std::size_t position) const {
  MOCC_ASSERT(position < actions_.size());
  const Action& read = actions_[position];
  MOCC_ASSERT(!read.is_write);
  for (std::size_t i = position; i > 0; --i) {
    const Action& prior = actions_[i - 1];
    if (prior.is_write && prior.entity == read.entity) return prior.txn;
  }
  return kInitialTxn;
}

std::vector<Schedule::ExternalRead> Schedule::external_reads(TxnId txn) const {
  std::vector<ExternalRead> out;
  std::set<EntityId> own_written;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const Action& action = actions_[i];
    if (action.txn != txn) continue;
    if (action.is_write) {
      own_written.insert(action.entity);
    } else if (own_written.count(action.entity) == 0) {
      out.push_back(ExternalRead{action.entity, reads_from(i)});
    }
  }
  return out;
}

std::vector<EntityId> Schedule::write_set(TxnId txn) const {
  std::set<EntityId> entities;
  for (const Action& action : actions_) {
    if (action.txn == txn && action.is_write) entities.insert(action.entity);
  }
  return {entities.begin(), entities.end()};
}

TxnId Schedule::final_writer(EntityId entity) const {
  for (std::size_t i = actions_.size(); i > 0; --i) {
    const Action& action = actions_[i - 1];
    if (action.is_write && action.entity == entity) return action.txn;
  }
  return kInitialTxn;
}

bool Schedule::non_overlapping_before(TxnId a, TxnId b) const {
  const auto last_a = last_action(a);
  const auto first_b = first_action(b);
  MOCC_ASSERT(last_a.has_value() && first_b.has_value());
  return *last_a < *first_b;
}

bool Schedule::reads_are_serially_realizable() const {
  // Last write position per (txn, entity), for the "final write" test.
  std::map<std::pair<TxnId, EntityId>, std::size_t> last_write_of;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (actions_[i].is_write) last_write_of[{actions_[i].txn, actions_[i].entity}] = i;
  }
  // Whether the reader wrote the entity before this position.
  std::map<std::pair<TxnId, EntityId>, bool> wrote_before;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const Action& action = actions_[i];
    if (action.is_write) {
      wrote_before[{action.txn, action.entity}] = true;
      continue;
    }
    const TxnId from = reads_from(i);
    const bool own_written = wrote_before.count({action.txn, action.entity}) > 0;
    if (own_written) {
      // Must see its own most recent write.
      if (from != action.txn) return false;
    } else if (from != kInitialTxn) {
      // Must see the writer's final write to the entity.
      // Find the write action actually observed.
      std::size_t observed = 0;
      for (std::size_t j = i; j > 0; --j) {
        if (actions_[j - 1].is_write && actions_[j - 1].entity == action.entity) {
          observed = j - 1;
          break;
        }
      }
      if (last_write_of[{from, action.entity}] != observed) return false;
    }
  }
  return true;
}

Schedule::Augmented Schedule::augment() const {
  Augmented out{Schedule(num_txns_ + 2, num_entities_), static_cast<TxnId>(num_txns_),
                static_cast<TxnId>(num_txns_ + 1)};
  for (EntityId e = 0; e < num_entities_; ++e) {
    out.schedule.append(out.t0, /*is_write=*/true, e);
  }
  for (const Action& action : actions_) {
    out.schedule.append(action.txn, action.is_write, action.entity);
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    out.schedule.append(out.t_inf, /*is_write=*/false, e);
  }
  return out;
}

std::string Schedule::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const Action& action = actions_[i];
    if (i > 0) out << " ";
    out << (action.is_write ? "w" : "r") << action.txn << "(e" << action.entity << ")";
  }
  return out.str();
}

}  // namespace mocc::txn
