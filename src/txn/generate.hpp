// Random schedule generation for the reduction property tests and the
// NP-scaling benchmark.
#pragma once

#include "txn/schedule.hpp"
#include "util/rng.hpp"

namespace mocc::txn {

struct ScheduleParams {
  std::size_t num_txns = 4;
  std::size_t num_entities = 3;
  std::size_t min_actions_per_txn = 1;
  std::size_t max_actions_per_txn = 4;
  double write_probability = 0.5;
};

/// Serial schedule (transactions back to back, order = id order).
/// Serializable by construction.
Schedule generate_serial_schedule(const ScheduleParams& params, util::Rng& rng);

/// Random interleaving: each transaction's actions keep their internal
/// order but positions are shuffled across transactions. Mixed
/// serializable / non-serializable population.
Schedule generate_interleaved_schedule(const ScheduleParams& params, util::Rng& rng);

}  // namespace mocc::txn
