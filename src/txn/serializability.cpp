#include "txn/serializability.hpp"

#include <map>
#include <set>
#include <string>
// mocc-lint: allow(determinism): header for the membership-only failed_ memo below
#include <unordered_set>

#include "util/assert.hpp"
#include "util/relation.hpp"

namespace mocc::txn {

namespace {

/// Backtracking search for a serial order of the *augmented* schedule
/// that is view-equivalent to it, optionally constrained by a precedence
/// relation (used for strictness). Mirrors the core admissibility search
/// at transaction granularity.
class SerialSearch {
 public:
  SerialSearch(const Schedule& augmented, TxnId t0, TxnId t_inf,
               const util::BitRelation& precedence)
      : s_(augmented), t0_(t0), t_inf_(t_inf), n_(augmented.num_txns()) {
    reads_.resize(n_);
    writes_.resize(n_);
    for (TxnId t = 0; t < n_; ++t) {
      for (const auto& er : s_.external_reads(t)) {
        reads_[t].emplace_back(er.entity, er.from);
      }
      writes_[t] = s_.write_set(t);
    }
    pred_count_.assign(n_, 0);
    succs_.resize(n_);
    const util::BitRelation closed = precedence.transitive_closure();
    closed_ok_ = closed.closed_is_irreflexive();
    for (TxnId i = 0; i < n_; ++i) {
      for (TxnId j = 0; j < n_; ++j) {
        if (i != j && closed.has(i, j)) {
          ++pred_count_[j];
          succs_[i].push_back(j);
        }
      }
    }
    last_writer_.assign(s_.num_entities(), kInitialTxn);
    placed_.assign(n_, false);
  }

  SerializabilityResult run() {
    SerializabilityResult result;
    if (!closed_ok_) {
      result.states_visited = 1;
      return result;
    }
    order_.reserve(n_);
    result.serializable = extend(result);
    if (result.serializable) {
      // Strip the augmentation transactions from the witness.
      std::vector<TxnId> witness;
      for (const TxnId t : order_) {
        if (t != t0_ && t != t_inf_) witness.push_back(t);
      }
      result.witness = std::move(witness);
    }
    return result;
  }

 private:
  bool can_place(TxnId t) const {
    if (placed_[t] || pred_count_[t] != 0) return false;
    for (const auto& [entity, from] : reads_[t]) {
      if (last_writer_[entity] != from) return false;
    }
    return true;
  }

  std::string state_key() const {
    std::string key;
    key.reserve((n_ + 7) / 8 + last_writer_.size() * sizeof(TxnId));
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      acc = static_cast<std::uint8_t>(acc | (placed_[i] ? 1U << (i % 8) : 0U));
      if (i % 8 == 7) {
        key.push_back(static_cast<char>(acc));
        acc = 0;
      }
    }
    if (n_ % 8 != 0) key.push_back(static_cast<char>(acc));
    const char* raw = reinterpret_cast<const char*>(last_writer_.data());
    key.append(raw, last_writer_.size() * sizeof(TxnId));
    return key;
  }

  bool extend(SerializabilityResult& result) {
    ++result.states_visited;
    if (order_.size() == n_) return true;
    std::string key = state_key();
    if (failed_.count(key) > 0) return false;

    for (TxnId t = 0; t < n_; ++t) {
      if (!can_place(t)) continue;
      placed_[t] = true;
      order_.push_back(t);
      std::vector<std::pair<EntityId, TxnId>> saved;
      for (const EntityId e : writes_[t]) {
        saved.emplace_back(e, last_writer_[e]);
        last_writer_[e] = t;
      }
      for (const TxnId s : succs_[t]) --pred_count_[s];

      if (extend(result)) return true;

      for (const TxnId s : succs_[t]) ++pred_count_[s];
      for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
        last_writer_[it->first] = it->second;
      }
      order_.pop_back();
      placed_[t] = false;
    }
    failed_.insert(std::move(key));
    return false;
  }

  const Schedule& s_;
  TxnId t0_;
  TxnId t_inf_;
  std::size_t n_;
  bool closed_ok_ = true;

  std::vector<std::vector<std::pair<EntityId, TxnId>>> reads_;
  std::vector<std::vector<EntityId>> writes_;
  std::vector<std::size_t> pred_count_;
  std::vector<std::vector<TxnId>> succs_;
  std::vector<TxnId> last_writer_;
  std::vector<bool> placed_;
  std::vector<TxnId> order_;
  // Memo of search states already proven dead. Queried with count() and
  // grown with insert() only — never iterated, so its hash order cannot
  // reach the verdict or any artifact.
  // mocc-lint: allow(determinism): membership-only memo; never iterated
  std::unordered_set<std::string> failed_;
};

void assert_no_empty_txn(const Schedule& s) {
  for (TxnId t = 0; t < s.num_txns(); ++t) {
    MOCC_ASSERT_MSG(s.first_action(t).has_value(),
                    "serializability checkers require non-empty transactions");
  }
}

}  // namespace

SerializabilityResult view_serializable(const Schedule& s) {
  assert_no_empty_txn(s);
  if (!s.reads_are_serially_realizable()) {
    SerializabilityResult result;
    result.states_visited = 1;
    return result;
  }
  const auto aug = s.augment();
  // Only ordering constraints: T0 first, T-infinity last.
  util::BitRelation precedence(aug.schedule.num_txns());
  for (TxnId t = 0; t < aug.schedule.num_txns(); ++t) {
    if (t != aug.t0) precedence.add(aug.t0, t);
    if (t != aug.t_inf) precedence.add(t, aug.t_inf);
  }
  return SerialSearch(aug.schedule, aug.t0, aug.t_inf, precedence).run();
}

SerializabilityResult strict_view_serializable(const Schedule& s) {
  assert_no_empty_txn(s);
  if (!s.reads_are_serially_realizable()) {
    SerializabilityResult result;
    result.states_visited = 1;
    return result;
  }
  const auto aug = s.augment();
  // Non-overlapping transactions of the augmented schedule must keep
  // their schedule order (this subsumes T0-first / T-infinity-last).
  util::BitRelation precedence(aug.schedule.num_txns());
  for (TxnId a = 0; a < aug.schedule.num_txns(); ++a) {
    for (TxnId b = 0; b < aug.schedule.num_txns(); ++b) {
      if (a != b && aug.schedule.non_overlapping_before(a, b)) precedence.add(a, b);
    }
  }
  return SerialSearch(aug.schedule, aug.t0, aug.t_inf, precedence).run();
}

bool conflict_serializable(const Schedule& s) {
  assert_no_empty_txn(s);
  // Precedence graph: edge Ti -> Tj when an action of Ti conflicts with a
  // later action of Tj (same entity, at least one write, different txns).
  util::BitRelation graph(s.num_txns());
  const auto& actions = s.actions();
  for (std::size_t i = 0; i < actions.size(); ++i) {
    for (std::size_t j = i + 1; j < actions.size(); ++j) {
      const Action& x = actions[i];
      const Action& y = actions[j];
      if (x.txn == y.txn || x.entity != y.entity) continue;
      if (x.is_write || y.is_write) graph.add(x.txn, y.txn);
    }
  }
  return graph.is_acyclic();
}

bool is_view_equivalent_serial_order(const Schedule& s, const std::vector<TxnId>& order) {
  if (order.size() != s.num_txns()) return false;
  if (!s.reads_are_serially_realizable()) return false;
  const auto aug = s.augment();
  std::vector<TxnId> full;
  full.push_back(aug.t0);
  full.insert(full.end(), order.begin(), order.end());
  full.push_back(aug.t_inf);

  std::vector<TxnId> last_writer(s.num_entities(), kInitialTxn);
  std::vector<bool> placed(aug.schedule.num_txns(), false);
  for (const TxnId t : full) {
    if (t >= aug.schedule.num_txns() || placed[t]) return false;
    for (const auto& er : aug.schedule.external_reads(t)) {
      if (last_writer[er.entity] != er.from) return false;
    }
    for (const EntityId e : aug.schedule.write_set(t)) last_writer[e] = t;
    placed[t] = true;
  }
  return true;
}

}  // namespace mocc::txn
