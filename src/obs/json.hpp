// Deterministic streaming JSON writer.
//
// Benchmark artifacts (BENCH_results.json) must be byte-identical across
// fixed-seed reruns so they can be diffed and golden-tested, so this
// writer makes every formatting decision deterministically: keys are
// emitted in caller order (callers iterate sorted maps), doubles use the
// shortest round-trip representation from std::to_chars (no locale, no
// precision flags), and pretty-printing uses fixed two-space indents.
// Non-finite doubles have no JSON spelling and serialize as null.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace mocc::obs {

class JsonWriter {
 public:
  /// `pretty` adds newlines + two-space indentation (for artifacts a
  /// human diffs); compact mode is single-line (for JSONL traces).
  explicit JsonWriter(std::ostream& out, bool pretty = false);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Must be called inside an object, before the matching value.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double v);
  void null();

  template <typename T>
  void field(std::string_view name, T v) {
    key(name);
    value(v);
  }

  /// True once every container opened has been closed.
  bool done() const { return stack_.empty() && wrote_value_; }

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void separate();  // comma/newline/indent before the next element
  void write_escaped(std::string_view s);

  std::ostream& out_;
  bool pretty_;
  bool wrote_value_ = false;
  /// Per-frame flag: has the current container emitted an element yet?
  std::vector<Frame> stack_;
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace mocc::obs
