// Lightweight metrics registry: counters, gauges, and fixed-bucket
// histograms with mean/p50/p99 summaries.
//
// This is the observability substrate the benchmarks and the report
// driver (bench/report_main.cpp) register their measurements through, so
// every experiment produces the same machine-readable shape in
// BENCH_results.json regardless of which code path filled it in.
//
// Design constraints:
//   - Deterministic: every summary is a pure function of the samples, so
//     fixed-seed runs serialize byte-identically (no wall-clock state).
//   - Fixed memory: histograms never store samples, only bucket counts
//     plus exact sum/min/max, so a registry's footprint is independent of
//     run length (unlike util::Summary, which keeps every sample).
//   - Single-writer: a registry belongs to one experiment run on one
//     thread. The concurrent piece of the observability layer is the
//     TraceSink (obs/trace.hpp), not the registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace mocc::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  void set(std::uint64_t value) { value_ = value; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point-in-time value.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-width buckets over [lo, hi) with underflow/overflow capture and
/// exact sum/min/max, answering mean and bucket-resolution percentiles.
///
/// Percentiles use nearest-rank over the cumulative bucket counts and
/// report the matched bucket's midpoint, clamped to the exact [min, max]
/// observed — so the degenerate cases are exact: a single sample (or
/// all-equal samples) yields that sample for every p, and an empty
/// histogram yields 0 everywhere (schema-stable zero, not a trap).
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t buckets);

  void add(double sample);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// p in [0, 100]; 0.0 when empty.
  double percentile(double p) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// {"count":..,"mean":..,"p50":..,"p99":..,"min":..,"max":..}
  void write_summary_json(JsonWriter& json) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name → instrument map. Lookup creates on first use and returns a
/// stable reference thereafter (std::map nodes never move), so hot paths
/// can cache `Counter&` across calls.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Re-registering an existing name returns the existing histogram; the
  /// bounds must agree (asserted).
  FixedHistogram& histogram(std::string_view name, double lo, double hi,
                            std::size_t buckets);

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, FixedHistogram, std::less<>>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Emits three key/value fields into the currently open JSON object:
  /// "counters", "gauges", and "histograms" (summary form), each with
  /// names in sorted order (maps iterate sorted — determinism for free).
  void write_json_fields(JsonWriter& json) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, FixedHistogram, std::less<>> histograms_;
};

}  // namespace mocc::obs
