#include "obs/json.hpp"

#include <array>
#include <charconv>
#include <cmath>

#include "util/assert.hpp"

namespace mocc::obs {

JsonWriter::JsonWriter(std::ostream& out, bool pretty) : out_(out), pretty_(pretty) {}

void JsonWriter::separate() {
  if (pending_key_) {
    // The comma/indent was emitted with the key.
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (has_element_.back()) out_ << ',';
    has_element_.back() = true;
    if (pretty_) {
      out_ << '\n';
      for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
    }
  }
}

void JsonWriter::begin_object() {
  separate();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  has_element_.push_back(false);
}

void JsonWriter::end_object() {
  MOCC_ASSERT_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "end_object without matching begin_object");
  const bool had_elements = has_element_.back();
  stack_.pop_back();
  has_element_.pop_back();
  if (pretty_ && had_elements) {
    out_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
  }
  out_ << '}';
  wrote_value_ = true;
}

void JsonWriter::begin_array() {
  separate();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  has_element_.push_back(false);
}

void JsonWriter::end_array() {
  MOCC_ASSERT_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                  "end_array without matching begin_array");
  const bool had_elements = has_element_.back();
  stack_.pop_back();
  has_element_.pop_back();
  if (pretty_ && had_elements) {
    out_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
  }
  out_ << ']';
  wrote_value_ = true;
}

void JsonWriter::key(std::string_view name) {
  MOCC_ASSERT_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "key outside an object");
  separate();
  write_escaped(name);
  out_ << (pretty_ ? ": " : ":");
  pending_key_ = true;
}

void JsonWriter::write_escaped(std::string_view s) {
  out_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out_ << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

void JsonWriter::value(std::string_view s) {
  separate();
  write_escaped(s);
  wrote_value_ = true;
}

void JsonWriter::value(bool b) {
  separate();
  out_ << (b ? "true" : "false");
  wrote_value_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  out_ << v;
  wrote_value_ = true;
}

void JsonWriter::value(std::int64_t v) {
  separate();
  out_ << v;
  wrote_value_ = true;
}

void JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no NaN/Inf spelling
  } else {
    // Shortest round-trip representation: locale-independent and
    // byte-stable across reruns, which the golden tests rely on.
    std::array<char, 32> buf{};
    const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
    MOCC_ASSERT(res.ec == std::errc());
    out_ << std::string_view(buf.data(), static_cast<std::size_t>(res.ptr - buf.data()));
  }
  wrote_value_ = true;
}

void JsonWriter::null() {
  separate();
  out_ << "null";
  wrote_value_ = true;
}

}  // namespace mocc::obs
