// Streaming online auditor: the paper's admissibility verdict, while
// the run is still executing.
//
// Every checker so far is post-hoc — the recorder or a JSONL trace is
// judged after the run finishes, so a violation at minute 2 of an
// hour-long chaos run burns the remaining 58. StreamingAuditor consumes
// completed m-operations online (as a TraceSink tapped into the
// simulator's trace path, or fed the exec engine's merged log through
// exec::stream_execution) and re-runs the full per-window verdict of
// exec::verify_execution, generalized to the simulated protocols:
//
//   - global checks, exact and windowless: well-formedness (each
//     process's m-operations respond before the next invokes), value
//     coherence (every external read returns its writer's final value —
//     writers are retained up to a bounded horizon), and duplicate
//     abcast positions;
//   - per window of `window` completed m-operations: a core::History is
//     built from the window's members plus GHOST m-operations — retained
//     pre-window writers that window reads reference, and any retained
//     same-object writer with a later abcast position (the interfering
//     writers the legality check needs). Ghosts keep their ORIGINAL
//     invocation/response times and ww positions, so the window history
//     is a true sub-history projection of the full execution: a witness
//     for the full history restricts to a witness for every window, and
//     the window checks therefore never flag an admissible run. The
//     window then runs History::well_formed + value_coherent + the
//     Theorem-7 fast check (or the bounded exact checker when no abcast
//     order exists — 2PL runs), exactly like the post-hoc auditors.
//
// Where exec::verify_execution seeds each window with a snapshot
// m-operation (sound there because commit-tid order refines real time),
// the simulated protocols allow STALE reads — a query may read a value
// three updates old — so the snapshot trick does not transfer; carrying
// the actual pre-window writers with their true times does, at the cost
// of a bounded writer-retention horizon (`retain_updates`).
//
// Verdicts form a one-way lattice: ok < inconclusive < violation. A
// dropped trace event (ring-buffer overwrite), an evicted writer, or an
// unresolvable read can only move the verdict to `inconclusive` — the
// same truncation-gate contract as obs::analysis — and nothing moves it
// back down. The first violation fires an optional callback (chaos
// --stream uses it to stop the simulator mid-run) and captures a
// bounded causal-span excerpt around the offending window.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/relations.hpp"
#include "core/types.hpp"
#include "obs/trace.hpp"

namespace mocc::obs {

class Registry;

enum class StreamVerdict : std::uint8_t {
  kOk = 0,
  kViolation = 1,
  kInconclusive = 2,
};

std::string_view to_string(StreamVerdict verdict);

struct StreamingAuditorOptions {
  core::Condition condition = core::Condition::kMLinearizability;
  /// Completed m-operations per window cut (the exec::verify default).
  std::size_t window = 512;
  /// Completed updates whose final writes stay resolvable. A read that
  /// references a writer older than this horizon makes the verdict
  /// inconclusive, never wrong. Clamped up to `window`.
  std::size_t retain_updates = 8192;
  /// State budget for the per-window exact checker when the stream
  /// carries no abcast order (2PL). Exhaustion counts the window as
  /// undecided — not a violation — matching audit_from_trace. 0 skips
  /// the exact check entirely.
  std::uint64_t exact_budget = 200'000;
  core::Value initial_value = 0;
  /// Bound on the causal-span excerpt captured at the first violation.
  std::size_t excerpt_spans = 32;
};

inline constexpr std::size_t kNoWindow = std::numeric_limits<std::size_t>::max();

struct StreamingReport {
  StreamVerdict verdict = StreamVerdict::kOk;
  std::size_t mops = 0;             ///< completed m-operations observed
  std::size_t windows = 0;          ///< window cuts performed
  std::size_t windows_passed = 0;   ///< cuts with a clean verdict
  std::size_t windows_failed = 0;   ///< cuts that found a violation
  std::size_t windows_undecided = 0;  ///< exact-checker budget exhausted
  std::size_t first_violation_window = kNoWindow;
  /// First violation / first inconclusive reason (empty while ok).
  std::string detail;
  /// Bounded causal-span excerpt ending at the offending window
  /// (violations only; oldest first).
  std::vector<Span> excerpt;

  bool ok() const { return verdict == StreamVerdict::kOk; }
  std::string to_string() const;
};

class StreamingAuditor final : public TraceSink {
 public:
  /// Sentinel writer key for the paper's imaginary initializing write.
  static constexpr std::uint64_t kInitialWriter = ~std::uint64_t{0};

  struct ObservedOp {
    core::OpType type = core::OpType::kRead;
    core::ObjectId object = 0;
    core::Value value = 0;
    /// Reads: key of the writer whose value was observed (kInitialWriter
    /// for the initializing write). Ignored for writes.
    std::uint64_t writer = kInitialWriter;
    /// Read satisfied by this m-operation's own earlier write (internal
    /// in the paper's sense; constrains nothing across m-operations).
    bool internal = false;
  };

  /// One completed m-operation, in completion order. `key` is the
  /// stream-wide name reads use to reference this writer: the trace
  /// m-operation id for simulator streams, the commit tid for the exec
  /// engine. Keys of updates must be unique within the retention
  /// horizon.
  struct ObservedMop {
    core::ProcessId process = 0;
    std::uint64_t key = 0;
    core::Time invoke = 0;
    core::Time respond = 0;
    bool is_update = false;
    /// Abcast delivery rank / commit tid; absent for queries and for
    /// protocols with no broadcast order (2PL).
    std::optional<std::uint64_t> ww;
    std::vector<ObservedOp> ops;
  };

  explicit StreamingAuditor(StreamingAuditorOptions options = {});

  /// TraceSink: op_read / op_write events and the root `mop` span (the
  /// same audit trail trace_query rebuilds from) drive the audit. Other
  /// event and span types pass through untouched. NOT internally
  /// synchronized — attach to one simulator, not a ParallelRunner pool.
  void on_event(const TraceEvent& event) override;
  void on_span(const Span& span) override;

  /// Generic ingest for producers with no trace path (the exec engine's
  /// merged log). Call in completion order.
  void observe(ObservedMop mop);

  /// Records upstream loss: any dropped event or span means the stream
  /// truncates the execution, and the verdict becomes (at least)
  /// inconclusive — drops NEVER yield a silent pass. Pass cumulative
  /// totals; repeated calls with the same totals are idempotent.
  void note_drops(std::uint64_t events_dropped, std::uint64_t spans_dropped);
  /// Convenience: reads `sink`'s cumulative drop accounting.
  void note_sink(const RingBufferSink& sink);

  /// Fires once, at the first violation (inside the producing call).
  void set_violation_callback(std::function<void(const StreamingReport&)> cb);

  /// Forwards every consumed event/span downstream (tee), and emits one
  /// kAuditWindow event per cut. Null (default) disables both.
  void set_downstream(TraceSink* sink);

  /// Cuts the final partial window and resolves stragglers; idempotent.
  /// m-operations still waiting for a writer that never completed leave
  /// the verdict inconclusive.
  const StreamingReport& finish();

  /// Running snapshot (no final cut).
  const StreamingReport& report() const { return report_; }
  StreamVerdict verdict() const { return report_.verdict; }
  bool violated() const { return report_.verdict == StreamVerdict::kViolation; }

  /// Publishes progress as counters "audit_mops", "audit_windows",
  /// "audit_windows_passed" / "_failed" / "_undecided" and gauge
  /// "audit_verdict" (set, not incremented — idempotent).
  void export_metrics(Registry& registry) const;

 private:
  struct WriterRecord {
    core::ProcessId process = 0;
    core::Time invoke = 0;
    core::Time respond = 0;
    std::optional<std::uint64_t> ww;
    /// Final write per object (earlier same-object writes are invisible
    /// across m-operations).
    std::vector<std::pair<core::ObjectId, core::Value>> writes;
  };

  struct Waiting {
    ObservedMop mop;
    std::vector<std::uint64_t> missing;  ///< writer keys not yet completed
    std::size_t enqueued_at = 0;         ///< completions_ when parked
  };

  void admit(ObservedMop mop);        // readiness reached: validate + buffer
  bool record_update(const ObservedMop& mop);
  void retire_waiting(std::uint64_t completed_key);
  void expire_waiting();
  void evict_writers();
  void cut_window();
  void mark_violation(std::size_t window_id, const std::string& why);
  void mark_inconclusive(const std::string& why);
  void push_recent(const ObservedMop& mop);

  StreamingAuditorOptions options_;
  StreamingReport report_;
  bool finished_ = false;
  /// Real spans flow through on_span; the generic observe() path
  /// synthesizes excerpt spans only when none do.
  bool trace_spans_seen_ = false;

  // Trace-mode assembly: op events buffered until the root span closes.
  std::map<std::uint64_t, std::vector<ObservedOp>> pending_ops_;

  // Retained writers, bounded by the horizon.
  std::map<std::uint64_t, WriterRecord> writers_;
  std::deque<std::uint64_t> writer_order_;  ///< completion order, for eviction
  /// Per object: retained writers with an abcast position, ascending by
  /// position — the index the interfering-ghost closure walks.
  std::map<core::ObjectId, std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      by_object_ww_;
  /// Abcast position -> writer key, pruned with the horizon (global
  /// duplicate-position detection within it).
  std::map<std::uint64_t, std::uint64_t> ww_to_key_;

  std::vector<ObservedMop> buffer_;   ///< current window, readiness order
  std::vector<Waiting> waiting_;      ///< completed, writer not yet seen

  std::vector<core::Time> last_respond_;  ///< per process, well-formedness
  core::ProcessId max_process_ = 0;
  core::ObjectId max_object_ = 0;
  std::size_t completions_ = 0;  ///< total observe() calls, horizon clock

  std::uint64_t noted_event_drops_ = 0;
  std::uint64_t noted_span_drops_ = 0;

  std::deque<Span> recent_spans_;  ///< excerpt ring (bounded)
  std::function<void(const StreamingReport&)> violation_cb_;
  TraceSink* downstream_ = nullptr;
};

}  // namespace mocc::obs
