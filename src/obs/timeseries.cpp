#include "obs/timeseries.hpp"

#include <cctype>
#include <charconv>
#include <sstream>
#include <system_error>

#include "obs/json.hpp"

namespace mocc::obs {

TimeSeriesWriter::TimeSeriesWriter(std::ostream& out) : out_(out) {}

void TimeSeriesWriter::add_collector(std::function<void(Registry&)> collector) {
  collectors_.push_back(std::move(collector));
}

void TimeSeriesWriter::sample(Registry& registry, std::uint64_t t) {
  for (const auto& collector : collectors_) collector(registry);
  if (!wrote_header_) {
    wrote_header_ = true;
    JsonWriter header(out_);
    header.begin_object();
    header.field("type", "ts_header");
    header.field("schema_version", kTimeSeriesSchemaVersion);
    header.end_object();
    out_ << '\n';
  }
  JsonWriter json(out_);
  json.begin_object();
  json.field("type", "ts_sample");
  json.field("t", t);
  json.field("seq", static_cast<std::uint64_t>(samples_));
  registry.write_json_fields(json);
  json.end_object();
  out_ << '\n';
  ++samples_;
}

double TimeSeriesPoint::value(const std::string& path, double fallback) const {
  const auto it = values.find(path);
  return it == values.end() ? fallback : it->second;
}

std::string registry_fields_json(const Registry& registry) {
  std::ostringstream oss;
  JsonWriter json(oss);
  json.begin_object();
  registry.write_json_fields(json);
  json.end_object();
  std::string wrapped = oss.str();
  // Compact mode wraps the fields in exactly "{...}".
  if (wrapped.size() < 2) return {};
  return wrapped.substr(1, wrapped.size() - 2);
}

namespace {

/// Minimal recursive-descent parser for the JSON subset JsonWriter
/// emits (objects, arrays, strings, numbers, booleans, null). Numeric
/// leaves are flattened into `values` under '/'-joined key paths;
/// string leaves land in `strings` (the envelope's "type" field).
class FlattenParser {
 public:
  FlattenParser(std::string_view text, std::map<std::string, double>& values,
                std::map<std::string, std::string>& strings)
      : text_(text), values_(values), strings_(strings) {}

  bool parse() {
    skip_ws();
    if (!parse_value("")) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  const std::string& error() const { return error_; }

 private:
  bool fail(const char* message) {
    if (error_.empty()) {
      std::ostringstream oss;
      oss << message << " at offset " << pos_;
      error_ = oss.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // JsonWriter only \u-escapes control characters; decode the
            // low byte and drop the rest (paths never contain these).
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            pos_ += 4;
            c = '?';
            break;
          }
          default:
            return fail("bad escape");
        }
      }
      s.push_back(c);
    }
    if (!consume('"')) return fail("unterminated string");
    *out = std::move(s);
    return true;
  }

  bool parse_value(const std::string& path) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return parse_object(path);
    if (c == '[') return parse_array(path);
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      strings_[path] = std::move(s);
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      values_[path] = 1.0;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      values_[path] = 0.0;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return parse_number(path);
  }

  bool parse_number(const std::string& path) {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected number");
    double parsed = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, parsed);
    if (ec != std::errc() || end != last) return fail("malformed number");
    values_[path] = parsed;
    return true;
  }

  bool parse_object(const std::string& path) {
    if (!consume('{')) return fail("expected object");
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      const std::string child = path.empty() ? key : path + "/" + key;
      if (!parse_value(child)) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(const std::string& path) {
    if (!consume('[')) return fail("expected array");
    skip_ws();
    if (consume(']')) return true;
    std::size_t index = 0;
    while (true) {
      std::ostringstream child;
      child << path << "/" << index++;
      if (!parse_value(child.str())) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::map<std::string, double>& values_;
  std::map<std::string, std::string>& strings_;
  std::string error_;
};

}  // namespace

bool load_timeseries_jsonl(std::istream& in, TimeSeriesFile* out,
                           std::string* error) {
  *out = TimeSeriesFile{};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::map<std::string, double> values;
    std::map<std::string, std::string> strings;
    FlattenParser parser(line, values, strings);
    if (!parser.parse()) {
      if (error != nullptr) {
        std::ostringstream oss;
        oss << "line " << line_no << ": " << parser.error();
        *error = oss.str();
      }
      return false;
    }
    const auto type = strings.find("type");
    if (type == strings.end()) continue;
    if (type->second == "ts_header") {
      out->has_header = true;
      out->schema_version = static_cast<int>(
          values.count("schema_version") != 0 ? values["schema_version"] : 0);
      continue;
    }
    if (type->second != "ts_sample") continue;  // foreign line: skip
    TimeSeriesPoint point;
    point.t = static_cast<std::uint64_t>(values.count("t") != 0 ? values["t"] : 0);
    point.seq =
        static_cast<std::uint64_t>(values.count("seq") != 0 ? values["seq"] : 0);
    values.erase("t");
    values.erase("seq");
    point.values = std::move(values);
    out->points.push_back(std::move(point));
  }
  return true;
}

}  // namespace mocc::obs
