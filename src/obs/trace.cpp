#include "obs/trace.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace mocc::obs {

std::string_view to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kMessageSend: return "message_send";
    case TraceEventType::kMessageDeliver: return "message_deliver";
    case TraceEventType::kMOpInvoke: return "mop_invoke";
    case TraceEventType::kMOpRespond: return "mop_respond";
    case TraceEventType::kLockAcquire: return "lock_acquire";
    case TraceEventType::kLockRelease: return "lock_release";
    case TraceEventType::kAbcastSequence: return "abcast_sequence";
    case TraceEventType::kFaultDrop: return "fault_drop";
    case TraceEventType::kFaultDuplicate: return "fault_duplicate";
    case TraceEventType::kFaultDelay: return "fault_delay";
    case TraceEventType::kFaultCrashDiscard: return "fault_crash_discard";
    case TraceEventType::kLinkRetransmit: return "link_retransmit";
    case TraceEventType::kLinkDuplicate: return "link_duplicate";
    case TraceEventType::kLinkExhausted: return "link_exhausted";
    case TraceEventType::kOpRead: return "op_read";
    case TraceEventType::kOpWrite: return "op_write";
    case TraceEventType::kBacklogSample: return "backlog_sample";
    case TraceEventType::kBatchAssign: return "batch_assign";
    case TraceEventType::kBatchFlush: return "batch_flush";
    case TraceEventType::kExecCommit: return "exec_commit";
    case TraceEventType::kExecAbort: return "exec_abort";
    case TraceEventType::kAuditWindow: return "audit_window";
  }
  MOCC_ASSERT_MSG(false, "unknown trace event type");
  return "unknown";
}

std::string_view to_string(SpanType type) {
  switch (type) {
    case SpanType::kMOp: return "mop";
    case SpanType::kAbcastAgree: return "abcast_agree";
    case SpanType::kLockWait: return "lock_wait";
    case SpanType::kNetHop: return "net_hop";
    case SpanType::kRetransmit: return "retransmit";
  }
  MOCC_ASSERT_MSG(false, "unknown span type");
  return "unknown";
}

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  MOCC_ASSERT_MSG(capacity > 0, "ring buffer needs capacity >= 1");
}

void RingBufferSink::on_event(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

void RingBufferSink::on_span(const Span& span) {
  std::lock_guard<std::mutex> lock(mu_);
  ++span_total_;
  if (span_ring_.size() < capacity_) {
    span_ring_.push_back(span);
    return;
  }
  span_ring_[span_next_] = span;
  span_next_ = (span_next_ + 1) % capacity_;
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Span> RingBufferSink::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(span_ring_.size());
  for (std::size_t i = 0; i < span_ring_.size(); ++i) {
    out.push_back(span_ring_[(span_next_ + i) % span_ring_.size()]);
  }
  return out;
}

std::uint64_t RingBufferSink::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t RingBufferSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

std::uint64_t RingBufferSink::spans_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return span_total_;
}

std::uint64_t RingBufferSink::spans_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return span_total_ - span_ring_.size();
}

void RingBufferSink::export_metrics(Registry& registry) const {
  std::lock_guard<std::mutex> lock(mu_);
  registry.counter("trace_events_total").set(total_);
  registry.counter("trace_events_dropped").set(total_ - ring_.size());
  registry.counter("trace_spans_total").set(span_total_);
  registry.counter("trace_spans_dropped").set(span_total_ - span_ring_.size());
}

void RingBufferSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  span_ring_.clear();
  span_next_ = 0;
  span_total_ = 0;
}

void write_jsonl(std::ostream& out, const std::vector<TraceEvent>& events) {
  for (const TraceEvent& event : events) {
    JsonWriter json(out);
    json.begin_object();
    json.field("type", to_string(event.type));
    json.field("t", event.time);
    json.field("node", event.node);
    json.field("peer", event.peer);
    json.field("kind", event.kind);
    json.field("id", event.id);
    json.field("arg", event.arg);
    json.end_object();
    out << '\n';
  }
}

void write_jsonl(std::ostream& out, const std::vector<Span>& spans) {
  for (const Span& span : spans) {
    JsonWriter json(out);
    json.begin_object();
    json.field("type", std::string_view("span"));
    json.field("span", to_string(span.type));
    json.field("trace", span.trace_id);
    json.field("sid", span.span_id);
    json.field("parent", span.parent_span);
    json.field("begin", span.begin);
    json.field("end", span.end);
    json.field("node", span.node);
    json.field("peer", span.peer);
    json.field("kind", span.kind);
    json.field("id", span.id);
    json.field("arg", span.arg);
    json.end_object();
    out << '\n';
  }
}

void write_trace_jsonl(std::ostream& out, const RingBufferSink& sink) {
  {
    JsonWriter json(out);
    json.begin_object();
    json.field("type", std::string_view("header"));
    json.field("events_total", sink.total());
    json.field("events_dropped", sink.dropped());
    json.field("spans_total", sink.spans_total());
    json.field("spans_dropped", sink.spans_dropped());
    json.end_object();
    out << '\n';
  }
  write_jsonl(out, sink.events());
  write_jsonl(out, sink.spans());
}

}  // namespace mocc::obs
