#include "obs/trace.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace mocc::obs {

std::string_view to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kMessageSend: return "message_send";
    case TraceEventType::kMessageDeliver: return "message_deliver";
    case TraceEventType::kMOpInvoke: return "mop_invoke";
    case TraceEventType::kMOpRespond: return "mop_respond";
    case TraceEventType::kLockAcquire: return "lock_acquire";
    case TraceEventType::kLockRelease: return "lock_release";
    case TraceEventType::kAbcastSequence: return "abcast_sequence";
    case TraceEventType::kFaultDrop: return "fault_drop";
    case TraceEventType::kFaultDuplicate: return "fault_duplicate";
    case TraceEventType::kFaultDelay: return "fault_delay";
    case TraceEventType::kFaultCrashDiscard: return "fault_crash_discard";
    case TraceEventType::kLinkRetransmit: return "link_retransmit";
    case TraceEventType::kLinkDuplicate: return "link_duplicate";
    case TraceEventType::kLinkExhausted: return "link_exhausted";
  }
  MOCC_ASSERT_MSG(false, "unknown trace event type");
  return "unknown";
}

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  MOCC_ASSERT_MSG(capacity > 0, "ring buffer needs capacity >= 1");
}

void RingBufferSink::on_event(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t RingBufferSink::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t RingBufferSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

void RingBufferSink::export_metrics(Registry& registry) const {
  std::lock_guard<std::mutex> lock(mu_);
  registry.counter("trace_events_total").set(total_);
  registry.counter("trace_events_dropped").set(total_ - ring_.size());
}

void RingBufferSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

void write_jsonl(std::ostream& out, const std::vector<TraceEvent>& events) {
  for (const TraceEvent& event : events) {
    JsonWriter json(out);
    json.begin_object();
    json.field("type", to_string(event.type));
    json.field("t", event.time);
    json.field("node", event.node);
    json.field("peer", event.peer);
    json.field("kind", event.kind);
    json.field("id", event.id);
    json.field("arg", event.arg);
    json.end_object();
    out << '\n';
  }
}

}  // namespace mocc::obs
