// Schema-versioned JSONL time series over a metrics Registry.
//
// A TimeSeriesWriter turns the registry's point-in-time state into a
// stream of samples a run emits WHILE it executes, so long-horizon runs
// (chaos sweeps, exec-engine soaks) are observable before they finish.
// Each sample line serializes the registry through the exact same
// Registry::write_json_fields path the end-of-run export uses, which
// makes the final sample byte-identical to a fresh export of the same
// registry — the invariant tools/mocc_live and the tests lean on.
//
// Timestamps are caller-provided: simulator-driven producers pass
// virtual time (deterministic — the stream golden-tests like any other
// artifact), the exec engine may pass wallclock milliseconds (its runs
// have no virtual clock; see exec::stream_execution).
//
// Line shapes (one JSON object per line):
//   {"type":"ts_header","schema_version":1}
//   {"type":"ts_sample","t":<time>,"seq":<n>,"counters":{...},
//    "gauges":{...},"histograms":{...}}
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mocc::obs {

/// Bumped when a sample line's shape changes incompatibly.
inline constexpr int kTimeSeriesSchemaVersion = 1;

class TimeSeriesWriter {
 public:
  /// The header line is written on the first sample (not at
  /// construction), so a writer that never fires leaves the stream
  /// empty. `out` must outlive the writer.
  explicit TimeSeriesWriter(std::ostream& out);

  /// Collectors run at the start of every sample, in registration order,
  /// to freshen the registry from sources that do not push continuously
  /// (ring-sink drop accounting, streaming-audit progress, link stats).
  void add_collector(std::function<void(Registry&)> collector);

  /// Emits one sample line for `registry` stamped `t`. Times should be
  /// non-decreasing across calls; the writer does not reorder.
  void sample(Registry& registry, std::uint64_t t);

  std::size_t samples() const { return samples_; }

 private:
  std::ostream& out_;
  bool wrote_header_ = false;
  std::vector<std::function<void(Registry&)>> collectors_;
  std::size_t samples_ = 0;
};

/// One parsed sample: every numeric leaf flattened to a '/'-joined path
/// ("counters/mops", "histograms/q_latency/p99", ...).
struct TimeSeriesPoint {
  std::uint64_t t = 0;
  std::uint64_t seq = 0;
  std::map<std::string, double> values;

  /// Value at `path`, or `fallback` when the sample lacks it.
  double value(const std::string& path, double fallback = 0.0) const;
};

struct TimeSeriesFile {
  bool has_header = false;
  int schema_version = 0;
  std::vector<TimeSeriesPoint> points;
};

/// Parses a stream written by TimeSeriesWriter. Unknown line types are
/// skipped (forward compatibility); a malformed line fails the load.
/// Returns false and fills `error` on failure.
bool load_timeseries_jsonl(std::istream& in, TimeSeriesFile* out,
                           std::string* error);

/// The canonical end-of-run export this stream's final sample must
/// byte-match (modulo the sample envelope): the registry's three field
/// groups serialized compactly WITHOUT surrounding braces, exactly as
/// they appear inside a sample line.
std::string registry_fields_json(const Registry& registry);

}  // namespace mocc::obs
