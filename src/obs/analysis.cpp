#include "obs/analysis.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

#include "obs/json.hpp"

namespace mocc::obs {

namespace {

// --- JSONL line parsing ----------------------------------------------
//
// write_trace_jsonl emits flat one-line objects whose values are
// unsigned integers or plain strings, so a minimal recursive-descent
// scanner suffices — no general JSON dependency. The parser is strict
// about structure (an artifact either round-trips or is rejected) but
// ignores unknown keys, keeping the schema additive.

struct Field {
  bool is_string = false;
  std::string str;
  std::uint64_t num = 0;
};

using Line = std::map<std::string, Field, std::less<>>;

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

bool parse_string(std::string_view s, std::size_t& i, std::string* out,
                  std::string* error) {
  if (i >= s.size() || s[i] != '"') {
    *error = "expected '\"'";
    return false;
  }
  ++i;
  out->clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      if (i + 1 >= s.size()) {
        *error = "dangling escape";
        return false;
      }
      const char c = s[i + 1];
      switch (c) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        default:
          *error = "unsupported escape";
          return false;
      }
      i += 2;
      continue;
    }
    out->push_back(s[i]);
    ++i;
  }
  if (i >= s.size()) {
    *error = "unterminated string";
    return false;
  }
  ++i;  // closing quote
  return true;
}

bool parse_number(std::string_view s, std::size_t& i, std::uint64_t* out,
                  std::string* error) {
  const bool negative = i < s.size() && s[i] == '-';
  if (negative) ++i;
  if (i >= s.size() || s[i] < '0' || s[i] > '9') {
    *error = "expected a number";
    return false;
  }
  std::uint64_t value = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  // The writers only emit integers; reject fractions/exponents loudly
  // rather than silently truncating.
  if (i < s.size() && (s[i] == '.' || s[i] == 'e' || s[i] == 'E')) {
    *error = "unexpected non-integer number";
    return false;
  }
  *out = negative ? static_cast<std::uint64_t>(-static_cast<std::int64_t>(value))
                  : value;
  return true;
}

bool parse_line(std::string_view s, Line* out, std::string* error) {
  out->clear();
  std::size_t i = 0;
  skip_ws(s, i);
  if (i >= s.size() || s[i] != '{') {
    *error = "expected '{'";
    return false;
  }
  ++i;
  skip_ws(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    return true;
  }
  for (;;) {
    skip_ws(s, i);
    std::string key;
    if (!parse_string(s, i, &key, error)) return false;
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') {
      *error = "expected ':' after key '" + key + "'";
      return false;
    }
    ++i;
    skip_ws(s, i);
    Field field;
    if (i < s.size() && s[i] == '"') {
      field.is_string = true;
      if (!parse_string(s, i, &field.str, error)) return false;
    } else {
      if (!parse_number(s, i, &field.num, error)) return false;
    }
    (*out)[key] = std::move(field);
    skip_ws(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') {
      ++i;
      skip_ws(s, i);
      if (i != s.size()) {
        *error = "trailing bytes after '}'";
        return false;
      }
      return true;
    }
    *error = "expected ',' or '}'";
    return false;
  }
}

// --- Name registries (round-tripped, never re-spelled) ----------------

const std::map<std::string, TraceEventType, std::less<>>& event_by_name() {
  static const std::map<std::string, TraceEventType, std::less<>> kMap = [] {
    constexpr TraceEventType kAll[] = {
        TraceEventType::kMessageSend,    TraceEventType::kMessageDeliver,
        TraceEventType::kMOpInvoke,      TraceEventType::kMOpRespond,
        TraceEventType::kLockAcquire,    TraceEventType::kLockRelease,
        TraceEventType::kAbcastSequence, TraceEventType::kFaultDrop,
        TraceEventType::kFaultDuplicate, TraceEventType::kFaultDelay,
        TraceEventType::kFaultCrashDiscard, TraceEventType::kLinkRetransmit,
        TraceEventType::kLinkDuplicate,  TraceEventType::kLinkExhausted,
        TraceEventType::kOpRead,         TraceEventType::kOpWrite,
        TraceEventType::kBacklogSample,  TraceEventType::kBatchAssign,
        TraceEventType::kBatchFlush,     TraceEventType::kExecCommit,
        TraceEventType::kExecAbort,      TraceEventType::kAuditWindow,
    };
    std::map<std::string, TraceEventType, std::less<>> map;
    for (const TraceEventType type : kAll) map.emplace(to_string(type), type);
    return map;
  }();
  return kMap;
}

const std::map<std::string, SpanType, std::less<>>& span_by_name() {
  static const std::map<std::string, SpanType, std::less<>> kMap = [] {
    constexpr SpanType kAll[] = {
        SpanType::kMOp,    SpanType::kAbcastAgree, SpanType::kLockWait,
        SpanType::kNetHop, SpanType::kRetransmit,
    };
    std::map<std::string, SpanType, std::less<>> map;
    for (const SpanType type : kAll) map.emplace(to_string(type), type);
    return map;
  }();
  return kMap;
}

std::uint64_t get_num(const Line& line, std::string_view key) {
  const auto it = line.find(key);
  return it == line.end() ? 0 : it->second.num;
}

std::string line_error(std::size_t lineno, const std::string& why) {
  std::ostringstream out;
  out << "line " << lineno << ": " << why;
  return out.str();
}

}  // namespace

bool load_trace_jsonl(std::istream& in, TraceFile* out, std::string* error) {
  *out = TraceFile{};
  std::string text;
  std::size_t lineno = 0;
  while (std::getline(in, text)) {
    ++lineno;
    if (text.empty()) continue;
    Line line;
    std::string why;
    if (!parse_line(text, &line, &why)) {
      *error = line_error(lineno, why);
      return false;
    }
    const auto type_it = line.find(std::string_view("type"));
    if (type_it == line.end() || !type_it->second.is_string) {
      *error = line_error(lineno, "missing string field 'type'");
      return false;
    }
    const std::string& type_name = type_it->second.str;
    if (type_name == "header") {
      if (out->has_header || !out->events.empty() || !out->spans.empty()) {
        *error = line_error(lineno, "header line must come first, once");
        return false;
      }
      out->has_header = true;
      out->events_total = get_num(line, "events_total");
      out->events_dropped = get_num(line, "events_dropped");
      out->spans_total = get_num(line, "spans_total");
      out->spans_dropped = get_num(line, "spans_dropped");
      continue;
    }
    if (type_name == "span") {
      const auto span_it = line.find(std::string_view("span"));
      if (span_it == line.end() || !span_it->second.is_string) {
        *error = line_error(lineno, "span line missing string field 'span'");
        return false;
      }
      const auto name_it = span_by_name().find(span_it->second.str);
      if (name_it == span_by_name().end()) {
        *error =
            line_error(lineno, "unknown span name '" + span_it->second.str + "'");
        return false;
      }
      Span span;
      span.type = name_it->second;
      span.trace_id = get_num(line, "trace");
      span.span_id = get_num(line, "sid");
      span.parent_span = get_num(line, "parent");
      span.begin = get_num(line, "begin");
      span.end = get_num(line, "end");
      span.node = static_cast<std::uint32_t>(get_num(line, "node"));
      span.peer = static_cast<std::uint32_t>(get_num(line, "peer"));
      span.kind = static_cast<std::uint32_t>(get_num(line, "kind"));
      span.id = get_num(line, "id");
      span.arg = get_num(line, "arg");
      out->spans.push_back(span);
      continue;
    }
    const auto name_it = event_by_name().find(type_name);
    if (name_it == event_by_name().end()) {
      *error = line_error(lineno, "unknown event type '" + type_name + "'");
      return false;
    }
    TraceEvent event;
    event.type = name_it->second;
    event.time = get_num(line, "t");
    event.node = static_cast<std::uint32_t>(get_num(line, "node"));
    event.peer = static_cast<std::uint32_t>(get_num(line, "peer"));
    event.kind = static_cast<std::uint32_t>(get_num(line, "kind"));
    event.id = get_num(line, "id");
    event.arg = get_num(line, "arg");
    out->events.push_back(event);
  }
  return true;
}

std::string truncation_reason(const TraceFile& trace, bool require_header) {
  if (!trace.has_header) {
    if (require_header) {
      return "trace has no header line: drop accounting unknown, cannot prove "
             "the window is complete";
    }
    return "";
  }
  if (trace.events_dropped != 0 || trace.spans_dropped != 0) {
    std::ostringstream out;
    out << "trace is truncated: the sink dropped " << trace.events_dropped
        << " events and " << trace.spans_dropped
        << " spans (size the RingBufferSink to the run)";
    return out.str();
  }
  return "";
}

bool build_forest(const TraceFile& trace, Forest* out, std::string* error) {
  out->traces.clear();
  std::map<std::uint64_t, SpanTree> by_trace;
  for (const Span& span : trace.spans) {
    if (span.trace_id == 0) {
      *error = "span with trace id 0 (the reserved 'no trace' id)";
      return false;
    }
    if (span.end < span.begin) {
      std::ostringstream why;
      why << "span " << span.span_id << " of trace " << span.trace_id
          << " ends at " << span.end << " before it begins at " << span.begin;
      *error = why.str();
      return false;
    }
    SpanTree& tree = by_trace[span.trace_id];
    tree.trace_id = span.trace_id;
    if (span.parent_span == 0) {
      if (span.type != SpanType::kMOp) {
        std::ostringstream why;
        why << "span " << span.span_id << " of trace " << span.trace_id
            << " has no parent but is not the root mop span";
        *error = why.str();
        return false;
      }
      if (tree.root.has_value()) {
        std::ostringstream why;
        why << "trace " << span.trace_id << " has two root spans ("
            << tree.root->span_id << " and " << span.span_id << ")";
        *error = why.str();
        return false;
      }
      tree.root = span;
    }
    tree.spans.push_back(span);
  }

  for (const auto& [trace_id, tree] : by_trace) {
    std::set<std::uint64_t> ids;
    for (const Span& span : tree.spans) {
      if (!ids.insert(span.span_id).second) {
        std::ostringstream why;
        why << "trace " << trace_id << " has two spans with id "
            << span.span_id;
        *error = why.str();
        return false;
      }
    }
    // Every parent must resolve inside the trace. A rootless trace (the
    // m-operation never completed, so its mop span was never emitted)
    // may dangle — but only from the one never-emitted root id.
    std::set<std::uint64_t> unresolved;
    for (const Span& span : tree.spans) {
      if (span.parent_span != 0 && ids.count(span.parent_span) == 0) {
        unresolved.insert(span.parent_span);
      }
    }
    if (tree.root.has_value() && !unresolved.empty()) {
      std::ostringstream why;
      why << "trace " << trace_id << ": parent span " << *unresolved.begin()
          << " was never emitted";
      *error = why.str();
      return false;
    }
    if (unresolved.size() > 1) {
      std::ostringstream why;
      why << "rootless trace " << trace_id << " dangles from "
          << unresolved.size() << " distinct unknown parents";
      *error = why.str();
      return false;
    }
  }

  out->traces.reserve(by_trace.size());
  for (auto& [trace_id, tree] : by_trace) {
    out->traces.push_back(std::move(tree));
  }
  return true;
}

std::vector<MOpLatency> attribute_latency(const Forest& forest) {
  std::vector<MOpLatency> out;
  for (const SpanTree& tree : forest.traces) {
    if (!tree.root.has_value()) continue;  // nothing to attribute
    const Span& root = *tree.root;
    MOpLatency entry;
    entry.trace_id = tree.trace_id;
    entry.mop_id = root.id;
    entry.process = root.node;
    entry.invoke = root.begin;
    entry.respond = root.end;
    entry.is_update = (root.arg & 1) != 0;
    if ((root.arg >> 1) != 0) entry.ww_seq = (root.arg >> 1) - 1;

    // Breakpoint sweep over the root window: every segment is charged to
    // the highest-priority non-root span covering it; uncovered time is
    // queueing. Integer endpoints, so the four phases sum exactly.
    std::vector<std::uint64_t> cuts;
    cuts.push_back(root.begin);
    cuts.push_back(root.end);
    for (const Span& span : tree.spans) {
      if (span.parent_span == 0) continue;
      const std::uint64_t b = std::max(span.begin, root.begin);
      const std::uint64_t e = std::min(span.end, root.end);
      if (b >= e) continue;
      cuts.push_back(b);
      cuts.push_back(e);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const std::uint64_t b = cuts[i];
      const std::uint64_t e = cuts[i + 1];
      int best = 0;  // 0 queue < 1 net < 2 agree < 3 lock
      for (const Span& span : tree.spans) {
        if (span.parent_span == 0) continue;
        if (span.begin > b || span.end < e) continue;
        int priority = 0;
        switch (span.type) {
          case SpanType::kLockWait: priority = 3; break;
          case SpanType::kAbcastAgree: priority = 2; break;
          case SpanType::kNetHop:
          case SpanType::kRetransmit: priority = 1; break;
          case SpanType::kMOp: priority = 0; break;
        }
        best = std::max(best, priority);
      }
      const std::uint64_t width = e - b;
      switch (best) {
        case 3: entry.phases.lock += width; break;
        case 2: entry.phases.agree += width; break;
        case 1: entry.phases.net += width; break;
        default: entry.phases.queue += width; break;
      }
    }
    out.push_back(entry);
  }
  return out;
}

void write_perfetto_json(std::ostream& out, const TraceFile& trace) {
  JsonWriter json(out, /*pretty=*/true);
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();
  for (const TraceEvent& event : trace.events) {
    json.begin_object();
    json.field("name", to_string(event.type));
    json.field("cat", std::string_view("event"));
    json.field("ph", std::string_view("i"));
    json.field("s", std::string_view("g"));
    json.field("ts", event.time);
    json.field("pid", std::uint64_t{0});
    json.field("tid", event.node);
    json.key("args");
    json.begin_object();
    json.field("peer", event.peer);
    json.field("kind", event.kind);
    json.field("id", event.id);
    json.field("arg", event.arg);
    json.end_object();
    json.end_object();
  }
  for (const Span& span : trace.spans) {
    json.begin_object();
    json.field("name", to_string(span.type));
    json.field("cat", std::string_view("span"));
    json.field("ph", std::string_view("X"));
    json.field("ts", span.begin);
    json.field("dur", span.end - span.begin);
    json.field("pid", span.trace_id);
    json.field("tid", span.node);
    json.key("args");
    json.begin_object();
    json.field("sid", span.span_id);
    json.field("parent", span.parent_span);
    json.field("peer", span.peer);
    json.field("kind", span.kind);
    json.field("id", span.id);
    json.field("arg", span.arg);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

RebuiltExecution rebuild_execution(const TraceFile& trace,
                                   std::size_t num_processes,
                                   std::size_t num_objects) {
  RebuiltExecution result;

  std::map<std::uint64_t, const Span*> roots;
  for (const Span& span : trace.spans) {
    if (span.type != SpanType::kMOp) continue;
    if (!roots.emplace(span.id, &span).second) {
      std::ostringstream why;
      why << "two mop spans claim m-operation id " << span.id;
      result.error = why.str();
      return result;
    }
  }
  const std::size_t n = roots.size();
  if (n != 0 && (roots.begin()->first != 0 || roots.rbegin()->first != n - 1)) {
    result.error =
        "m-operation ids are not dense 0..n-1 (the trace window lost "
        "completions)";
    return result;
  }

  std::map<std::uint64_t, std::vector<core::Operation>> ops_by_id;
  for (const TraceEvent& event : trace.events) {
    if (event.type == TraceEventType::kOpRead) {
      ops_by_id[event.id].push_back(core::Operation::read(
          event.kind, static_cast<core::Value>(static_cast<std::int64_t>(event.arg)),
          event.peer));
    } else if (event.type == TraceEventType::kOpWrite) {
      ops_by_id[event.id].push_back(core::Operation::write(
          event.kind,
          static_cast<core::Value>(static_cast<std::int64_t>(event.arg))));
    }
  }

  if (num_processes == 0) {
    for (const auto& [id, span] : roots) {
      num_processes = std::max(num_processes, std::size_t{span->node} + 1);
    }
    if (num_processes == 0) num_processes = 1;
  }
  if (num_objects == 0) {
    for (const auto& [id, ops] : ops_by_id) {
      for (const core::Operation& op : ops) {
        num_objects = std::max(num_objects, std::size_t{op.object} + 1);
      }
    }
    if (num_objects == 0) num_objects = 1;
  }

  // Pre-validate everything History::add would assert on, so a corrupt
  // trace yields an error string instead of an abort.
  std::map<std::uint32_t, std::uint64_t> last_response;
  for (const auto& [id, span] : roots) {
    if (span->node >= num_processes) {
      std::ostringstream why;
      why << "m-operation " << id << " ran on process " << span->node
          << " but the system has " << num_processes;
      result.error = why.str();
      return result;
    }
    const auto last = last_response.find(span->node);
    if (last != last_response.end() && last->second > span->begin) {
      std::ostringstream why;
      why << "process " << span->node
          << " subhistory not sequential at m-operation " << id;
      result.error = why.str();
      return result;
    }
    last_response[span->node] = span->end;
    const auto ops_it = ops_by_id.find(id);
    if (ops_it != ops_by_id.end()) {
      for (const core::Operation& op : ops_it->second) {
        if (op.object >= num_objects) {
          std::ostringstream why;
          why << "m-operation " << id << " touches object " << op.object
              << " but the system has " << num_objects;
          result.error = why.str();
          return result;
        }
      }
    }
  }

  core::History history(num_processes, num_objects);
  std::map<std::uint64_t, core::MOpId> by_ww_seq;
  for (const auto& [id, span] : roots) {
    std::vector<core::Operation> ops;
    if (const auto ops_it = ops_by_id.find(id); ops_it != ops_by_id.end()) {
      ops = ops_it->second;
    }
    const core::MOpId added = history.add(core::MOperation(
        span->node, std::move(ops), span->begin, span->end));
    if ((span->arg >> 1) != 0) {
      const std::uint64_t seq = (span->arg >> 1) - 1;
      if (!by_ww_seq.emplace(seq, added).second) {
        std::ostringstream why;
        why << "two m-operations claim abcast position " << seq;
        result.error = why.str();
        return result;
      }
    }
  }

  result.ww = util::BitRelation(n);
  result.has_ww = !by_ww_seq.empty();
  for (auto it = by_ww_seq.begin(); it != by_ww_seq.end(); ++it) {
    for (auto later = std::next(it); later != by_ww_seq.end(); ++later) {
      result.ww.add(it->second, later->second);
    }
  }
  result.history = std::move(history);
  return result;
}

TraceAudit audit_from_trace(const TraceFile& trace, core::Condition condition,
                            std::uint64_t exact_budget) {
  TraceAudit audit;
  const RebuiltExecution rebuilt =
      rebuild_execution(trace, /*num_processes=*/0, /*num_objects=*/0);
  if (!rebuilt.history.has_value()) {
    audit.detail = rebuilt.error;
    return audit;
  }
  audit.mops = rebuilt.history->size();
  std::string why;
  if (!rebuilt.history->well_formed(&why)) {
    audit.detail = "rebuilt history is not well-formed: " + why;
    return audit;
  }
  if (!rebuilt.history->value_coherent(&why)) {
    audit.detail = "rebuilt history is not value-coherent: " + why;
    return audit;
  }
  if (!rebuilt.has_ww) {
    // No abcast order in the trace (2PL runs): no fast check — fall back
    // to the exponential exact checker, bounded by exact_budget states.
    if (exact_budget == 0) {
      audit.ok = true;
      audit.detail = "well-formed; no abcast order in trace, fast check skipped";
      return audit;
    }
    core::AdmissibilityOptions options;
    options.max_states = exact_budget;
    audit.exact = core::check_condition(*rebuilt.history, condition, options);
    std::ostringstream detail;
    if (!audit.exact->completed) {
      audit.ok = true;  // undecided is not a violation
      detail << "well-formed; no abcast order in trace; exact check undecided "
                "within "
             << exact_budget << " states";
      audit.detail = detail.str();
      return audit;
    }
    audit.ok = audit.exact->admissible;
    detail << core::condition_name(condition)
           << " (exact check, no abcast order in trace): "
           << (audit.ok ? "admissible" : "VIOLATION") << " ("
           << audit.exact->states_visited << " states searched)";
    audit.detail = detail.str();
    return audit;
  }
  audit.fast = core::fast_check_condition(*rebuilt.history, condition,
                                          rebuilt.ww, core::Constraint::kWW);
  audit.ok = audit.fast->constraint_holds && audit.fast->legal &&
             audit.fast->admissible;
  std::ostringstream detail;
  detail << core::condition_name(condition) << ": "
         << (audit.ok ? "admissible" : "VIOLATION");
  if (!audit.ok && !audit.fast->detail.empty()) {
    detail << " (" << audit.fast->detail << ")";
  }
  audit.detail = detail.str();
  return audit;
}

}  // namespace mocc::obs
