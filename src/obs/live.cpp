#include "obs/live.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/admissibility.hpp"
#include "core/fast_check.hpp"
#include "core/history.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace mocc::obs {

std::string_view to_string(StreamVerdict verdict) {
  switch (verdict) {
    case StreamVerdict::kOk:
      return "ok";
    case StreamVerdict::kViolation:
      return "violation";
    case StreamVerdict::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

std::string StreamingReport::to_string() const {
  std::ostringstream oss;
  oss << "verdict=" << obs::to_string(verdict) << " mops=" << mops
      << " windows=" << windows << " passed=" << windows_passed
      << " failed=" << windows_failed << " undecided=" << windows_undecided;
  if (!detail.empty()) oss << " — " << detail;
  return oss.str();
}

StreamingAuditor::StreamingAuditor(StreamingAuditorOptions options)
    : options_(options) {
  if (options_.window == 0) options_.window = 1;
  if (options_.retain_updates < options_.window) {
    options_.retain_updates = options_.window;
  }
}

void StreamingAuditor::set_violation_callback(
    std::function<void(const StreamingReport&)> cb) {
  violation_cb_ = std::move(cb);
}

void StreamingAuditor::set_downstream(TraceSink* sink) { downstream_ = sink; }

void StreamingAuditor::on_event(const TraceEvent& event) {
  if (downstream_ != nullptr) downstream_->on_event(event);
  if (event.type != TraceEventType::kOpRead &&
      event.type != TraceEventType::kOpWrite) {
    return;
  }
  ObservedOp op;
  op.object = event.kind;
  op.value = static_cast<core::Value>(event.arg);
  if (event.type == TraceEventType::kOpRead) {
    op.type = core::OpType::kRead;
    // Reads preceded by this m-operation's own write record themselves as
    // the writer (RecordingStore); those are internal in the paper's
    // sense and constrain nothing across m-operations.
    op.internal = event.peer == event.id;
    op.writer = event.peer == core::kInitialMOp
                    ? kInitialWriter
                    : static_cast<std::uint64_t>(event.peer);
  } else {
    op.type = core::OpType::kWrite;
  }
  pending_ops_[event.id].push_back(op);
}

void StreamingAuditor::on_span(const Span& span) {
  if (downstream_ != nullptr) downstream_->on_span(span);
  recent_spans_.push_back(span);
  while (recent_spans_.size() > options_.excerpt_spans) {
    recent_spans_.pop_front();
  }
  if (span.type != SpanType::kMOp || span.parent_span != 0) return;
  trace_spans_seen_ = true;
  ObservedMop mop;
  mop.process = span.node;
  mop.key = span.id;
  mop.invoke = span.begin;
  mop.respond = span.end;
  mop.is_update = (span.arg & 1) != 0;
  if ((span.arg >> 1) != 0) mop.ww = (span.arg >> 1) - 1;
  if (const auto it = pending_ops_.find(span.id); it != pending_ops_.end()) {
    mop.ops = std::move(it->second);
    pending_ops_.erase(it);
  }
  observe(std::move(mop));
}

void StreamingAuditor::push_recent(const ObservedMop& mop) {
  Span span;
  span.type = SpanType::kMOp;
  span.span_id = mop.key;
  span.begin = mop.invoke;
  span.end = mop.respond;
  span.node = mop.process;
  span.id = mop.key;
  span.arg = (mop.is_update ? 1u : 0u) |
             ((mop.ww.has_value() ? *mop.ww + 1 : 0) << 1);
  recent_spans_.push_back(span);
  while (recent_spans_.size() > options_.excerpt_spans) {
    recent_spans_.pop_front();
  }
}

void StreamingAuditor::observe(ObservedMop mop) {
  ++completions_;
  ++report_.mops;
  if (!trace_spans_seen_) push_recent(mop);
  if (violated()) return;  // verdict is final; stop paying for analysis

  max_process_ = std::max(max_process_, mop.process);
  for (const ObservedOp& op : mop.ops) {
    max_object_ = std::max(max_object_, op.object);
  }

  // Global well-formedness: each process's m-operations must respond
  // before its next invokes (§2.2). Exact and windowless.
  if (last_respond_.size() <= mop.process) {
    last_respond_.resize(mop.process + 1, 0);
  }
  if (mop.invoke < last_respond_[mop.process]) {
    std::ostringstream why;
    why << "process " << mop.process
        << " subhistory not sequential: m-operation key " << mop.key
        << " invoked at " << mop.invoke << " before the previous response at "
        << last_respond_[mop.process];
    mark_violation(report_.windows, why.str());
    return;
  }
  last_respond_[mop.process] = mop.respond;

  if (mop.is_update) {
    if (!record_update(mop)) return;  // duplicate key / duplicate position
  }

  // Readiness: every external read's writer must have completed before
  // the m-operation can be value-checked and windowed. Overlapping
  // responses make forward references routine (a query can read an
  // update's value before the update's origin responds), so unresolved
  // m-operations park until their writers land.
  std::vector<std::uint64_t> missing;
  for (const ObservedOp& op : mop.ops) {
    if (op.type != core::OpType::kRead || op.internal) continue;
    if (op.writer == kInitialWriter) continue;
    if (writers_.count(op.writer) != 0) continue;
    if (std::find(missing.begin(), missing.end(), op.writer) == missing.end()) {
      missing.push_back(op.writer);
    }
  }
  const std::uint64_t completed_key = mop.is_update ? mop.key : kInitialWriter;
  if (missing.empty()) {
    admit(std::move(mop));
  } else {
    Waiting parked;
    parked.mop = std::move(mop);
    parked.missing = std::move(missing);
    parked.enqueued_at = completions_;
    waiting_.push_back(std::move(parked));
  }
  if (completed_key != kInitialWriter) retire_waiting(completed_key);
  expire_waiting();
  evict_writers();
}

bool StreamingAuditor::record_update(const ObservedMop& mop) {
  WriterRecord record;
  record.process = mop.process;
  record.invoke = mop.invoke;
  record.respond = mop.respond;
  record.ww = mop.ww;
  for (const ObservedOp& op : mop.ops) {
    if (op.type != core::OpType::kWrite) continue;
    bool replaced = false;
    for (auto& [object, value] : record.writes) {
      if (object == op.object) {
        value = op.value;  // later write wins: only the final value is visible
        replaced = true;
        break;
      }
    }
    if (!replaced) record.writes.emplace_back(op.object, op.value);
  }
  if (!writers_.emplace(mop.key, std::move(record)).second) {
    std::ostringstream why;
    why << "two update m-operations carry the same key " << mop.key;
    mark_violation(report_.windows, why.str());
    return false;
  }
  writer_order_.push_back(mop.key);
  if (mop.ww.has_value()) {
    if (!ww_to_key_.emplace(*mop.ww, mop.key).second) {
      std::ostringstream why;
      why << "two m-operations claim abcast position " << *mop.ww;
      mark_violation(report_.windows, why.str());
      return false;
    }
    for (const auto& [object, value] : writers_[mop.key].writes) {
      (void)value;
      auto& index = by_object_ww_[object];
      const auto pos = std::lower_bound(
          index.begin(), index.end(), std::make_pair(*mop.ww, std::uint64_t{0}));
      index.insert(pos, {*mop.ww, mop.key});
    }
  }
  return true;
}

void StreamingAuditor::retire_waiting(std::uint64_t completed_key) {
  for (std::size_t i = 0; i < waiting_.size();) {
    auto& missing = waiting_[i].missing;
    missing.erase(std::remove(missing.begin(), missing.end(), completed_key),
                  missing.end());
    if (missing.empty()) {
      ObservedMop ready = std::move(waiting_[i].mop);
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
      admit(std::move(ready));
      if (violated()) return;
    } else {
      ++i;
    }
  }
}

void StreamingAuditor::expire_waiting() {
  for (std::size_t i = 0; i < waiting_.size();) {
    if (completions_ - waiting_[i].enqueued_at > options_.retain_updates) {
      std::ostringstream why;
      why << "m-operation key " << waiting_[i].mop.key
          << " reads from writer key " << waiting_[i].missing.front()
          << " which did not complete within the retention horizon ("
          << options_.retain_updates << " completions)";
      mark_inconclusive(why.str());
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void StreamingAuditor::admit(ObservedMop mop) {
  // Value coherence, exact and windowless: every external read must
  // return exactly the value its writer's final write stored (and the
  // writer must actually write the object). Retained writer values play
  // the role exec::verify_execution's replayed store plays.
  for (const ObservedOp& op : mop.ops) {
    if (op.type != core::OpType::kRead || op.internal) continue;
    if (op.writer == kInitialWriter) {
      if (op.value != options_.initial_value) {
        std::ostringstream why;
        why << "m-operation key " << mop.key << " reads object " << op.object
            << " = " << op.value << " from the initializing write, expected "
            << options_.initial_value;
        mark_violation(report_.windows, why.str());
        return;
      }
      continue;
    }
    const auto it = writers_.find(op.writer);
    MOCC_ASSERT(it != writers_.end());  // readiness guarantees completion
    const WriterRecord& writer = it->second;
    bool matched = false;
    bool writes_object = false;
    for (const auto& [object, value] : writer.writes) {
      if (object != op.object) continue;
      writes_object = true;
      matched = value == op.value;
      break;
    }
    if (!writes_object || !matched) {
      std::ostringstream why;
      why << "m-operation key " << mop.key << " reads object " << op.object
          << " = " << op.value << " from writer key " << op.writer << " which "
          << (writes_object ? "stored a different final value"
                            : "never writes that object");
      mark_violation(report_.windows, why.str());
      return;
    }
  }
  buffer_.push_back(std::move(mop));
  if (buffer_.size() >= options_.window) cut_window();
}

void StreamingAuditor::evict_writers() {
  if (writer_order_.size() <= options_.retain_updates) return;
  // Writers a parked m-operation will need at admission stay pinned.
  std::set<std::uint64_t> pinned;
  const auto pin_reads = [&](const ObservedMop& mop) {
    if (mop.is_update) pinned.insert(mop.key);
    for (const ObservedOp& op : mop.ops) {
      if (op.type == core::OpType::kRead && !op.internal &&
          op.writer != kInitialWriter) {
        pinned.insert(op.writer);
      }
    }
  };
  for (const Waiting& parked : waiting_) pin_reads(parked.mop);
  for (const ObservedMop& mop : buffer_) pin_reads(mop);
  std::deque<std::uint64_t> kept;
  while (writer_order_.size() + kept.size() > options_.retain_updates &&
         !writer_order_.empty()) {
    const std::uint64_t key = writer_order_.front();
    writer_order_.pop_front();
    if (pinned.count(key) != 0) {
      kept.push_back(key);
      continue;
    }
    const auto it = writers_.find(key);
    if (it != writers_.end()) {
      if (it->second.ww.has_value()) {
        ww_to_key_.erase(*it->second.ww);
        for (const auto& [object, value] : it->second.writes) {
          (void)value;
          auto& index = by_object_ww_[object];
          index.erase(std::remove(index.begin(), index.end(),
                                  std::make_pair(*it->second.ww, key)),
                      index.end());
        }
      }
      writers_.erase(it);
    }
  }
  for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
    writer_order_.push_front(*it);
  }
}

void StreamingAuditor::cut_window() {
  const std::size_t wid = report_.windows;
  ++report_.windows;

  struct Entry {
    core::ProcessId process;
    core::Time invoke;
    core::Time respond;
    std::optional<std::uint64_t> ww;
    const ObservedMop* member;        ///< null for ghosts
    const WriterRecord* ghost;        ///< null for members
    std::uint64_t key;
  };

  std::set<std::uint64_t> member_update_keys;
  for (const ObservedMop& mop : buffer_) {
    if (mop.is_update) member_update_keys.insert(mop.key);
  }

  // Ghosts: every referenced pre-window writer, plus — per external read
  // of object x from writer w — every retained x-writer with an abcast
  // position after w's (the interfering writers the legality check must
  // see). Ghosts keep their original times and positions, so the window
  // history is a sub-history projection of the full execution and the
  // checks below cannot flag an admissible run.
  std::map<std::uint64_t, const WriterRecord*> ghosts;
  const std::size_t ghost_cap = 4 * options_.window + 64;
  bool overflow = false;
  const auto add_ghost = [&](std::uint64_t key) -> bool {
    if (member_update_keys.count(key) != 0 || ghosts.count(key) != 0) {
      return true;
    }
    const auto it = writers_.find(key);
    if (it == writers_.end()) return false;
    ghosts.emplace(key, &it->second);
    return true;
  };
  for (const ObservedMop& mop : buffer_) {
    for (const ObservedOp& op : mop.ops) {
      if (op.type != core::OpType::kRead || op.internal) continue;
      std::optional<std::uint64_t> after;  // include x-writers after this rank
      if (op.writer != kInitialWriter) {
        if (!add_ghost(op.writer)) {
          std::ostringstream why;
          why << "window " << wid << ": writer key " << op.writer
              << " was evicted before the window cut";
          mark_inconclusive(why.str());
          buffer_.clear();
          return;
        }
        // Every completed update — member or pre-window — lives in
        // writers_ until evicted, and add_ghost just proved this one is
        // a member or retained.
        const auto wit = writers_.find(op.writer);
        if (wit != writers_.end()) after = wit->second.ww;
      }
      const auto idx = by_object_ww_.find(op.object);
      if (idx == by_object_ww_.end()) continue;
      auto from = idx->second.begin();
      if (after.has_value()) {
        from = std::upper_bound(
            idx->second.begin(), idx->second.end(),
            std::make_pair(*after, std::numeric_limits<std::uint64_t>::max()));
      }
      for (auto it = from; it != idx->second.end(); ++it) {
        (void)add_ghost(it->second);  // absent = evicted mid-index; skip
        if (ghosts.size() > ghost_cap) {
          overflow = true;
          break;
        }
      }
      if (overflow) break;
    }
    if (overflow) break;
  }
  if (overflow) {
    std::ostringstream why;
    why << "window " << wid << ": interfering-writer closure exceeds "
        << ghost_cap << " ghosts";
    mark_inconclusive(why.str());
    buffer_.clear();
    return;
  }

  std::vector<Entry> entries;
  entries.reserve(buffer_.size() + ghosts.size());
  for (const ObservedMop& mop : buffer_) {
    entries.push_back({mop.process, mop.invoke, mop.respond, mop.ww, &mop,
                       nullptr, mop.key});
  }
  for (const auto& [key, record] : ghosts) {
    entries.push_back({record->process, record->invoke, record->respond,
                       record->ww, nullptr, record, key});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.invoke != b.invoke) return a.invoke < b.invoke;
    if (a.respond != b.respond) return a.respond < b.respond;
    return a.key < b.key;
  });

  // Pre-validate per-process sequencing before History::add (which
  // asserts). The global streaming check already enforced it over the
  // full stream, and members ∪ ghosts is a subset — this only fires on a
  // producer handing inconsistent times, so it gates, not flags.
  {
    std::map<core::ProcessId, core::Time> last;
    for (const Entry& entry : entries) {
      const auto it = last.find(entry.process);
      if (it != last.end() && entry.invoke < it->second) {
        std::ostringstream why;
        why << "window " << wid
            << ": member and ghost m-operations overlap on process "
            << entry.process;
        mark_inconclusive(why.str());
        buffer_.clear();
        return;
      }
      last[entry.process] = entry.respond;
    }
  }

  std::map<std::uint64_t, core::MOpId> local_id;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    local_id[entries[i].key] = static_cast<core::MOpId>(i);
  }

  core::History h(max_process_ + 1, max_object_ + 1);
  std::vector<std::pair<std::uint64_t, core::MOpId>> ww_members;
  core::Time window_end = 0;
  for (const Entry& entry : entries) {
    std::vector<core::Operation> ops;
    if (entry.ghost != nullptr) {
      for (const auto& [object, value] : entry.ghost->writes) {
        ops.push_back(core::Operation::write(object, value));
      }
    } else {
      for (const ObservedOp& op : entry.member->ops) {
        if (op.type == core::OpType::kWrite) {
          ops.push_back(core::Operation::write(op.object, op.value));
          continue;
        }
        core::MOpId rf = core::kInitialMOp;
        if (op.internal) {
          rf = local_id[entry.key];
        } else if (op.writer != kInitialWriter) {
          rf = local_id[op.writer];
        }
        ops.push_back(core::Operation::read(op.object, op.value, rf));
      }
      window_end = std::max(window_end, entry.respond);
    }
    const core::MOpId added =
        h.add(core::MOperation(entry.process, std::move(ops), entry.invoke,
                               entry.respond,
                               entry.ghost != nullptr ? "ghost" : ""));
    if (entry.ww.has_value() && (entry.member == nullptr
                                     ? !entry.ghost->writes.empty()
                                     : entry.member->is_update)) {
      ww_members.emplace_back(*entry.ww, added);
    }
  }

  std::string why;
  bool window_ok = true;
  bool undecided = false;
  std::ostringstream fail;
  if (!h.well_formed(&why)) {
    window_ok = false;
    fail << "window history is not well-formed: " << why;
  } else if (!h.value_coherent(&why, options_.initial_value)) {
    window_ok = false;
    fail << "window history is not value-coherent: " << why;
  } else if (ww_members.empty()) {
    // No abcast order in the stream (2PL runs): bounded exact check.
    if (options_.exact_budget != 0) {
      core::AdmissibilityOptions exact_options;
      exact_options.max_states = options_.exact_budget;
      const core::AdmissibilityResult exact =
          core::check_condition(h, options_.condition, exact_options);
      if (!exact.completed) {
        undecided = true;  // budget exhausted: undecided, not a violation
      } else if (!exact.admissible) {
        window_ok = false;
        fail << core::condition_name(options_.condition)
             << " VIOLATION (exact check, " << exact.states_visited
             << " states searched)";
      }
    }
  } else {
    std::sort(ww_members.begin(), ww_members.end());
    util::BitRelation ww(h.size());
    for (std::size_t i = 0; i < ww_members.size(); ++i) {
      for (std::size_t j = i + 1; j < ww_members.size(); ++j) {
        ww.add(ww_members[i].second, ww_members[j].second);
      }
    }
    const core::FastCheckResult fast = core::fast_check_condition(
        h, options_.condition, ww, core::Constraint::kWW);
    if (!fast.constraint_holds || !fast.legal || !fast.admissible) {
      window_ok = false;
      fail << core::condition_name(options_.condition) << " VIOLATION";
      if (!fast.detail.empty()) fail << " (" << fast.detail << ")";
    }
  }

  if (downstream_ != nullptr) {
    TraceEvent event;
    event.type = TraceEventType::kAuditWindow;
    event.time = window_end;
    event.kind = static_cast<std::uint32_t>(entries.size());
    event.id = wid;
    event.arg = window_ok ? (undecided ? 2 : 0) : 1;
    downstream_->on_event(event);
  }

  if (!window_ok) {
    std::ostringstream why_window;
    why_window << fail.str() << " [" << buffer_.size() << " m-operations, "
               << ghosts.size() << " ghosts]";
    mark_violation(wid, why_window.str());
  } else if (undecided) {
    ++report_.windows_undecided;
    ++report_.windows_passed;
  } else {
    ++report_.windows_passed;
  }

  buffer_.clear();
}

void StreamingAuditor::mark_violation(std::size_t window_id,
                                      const std::string& why) {
  if (violated()) return;
  report_.verdict = StreamVerdict::kViolation;
  ++report_.windows_failed;
  report_.first_violation_window = window_id;
  std::ostringstream detail;
  detail << "window " << window_id << ": " << why;
  report_.detail = detail.str();
  report_.excerpt.assign(recent_spans_.begin(), recent_spans_.end());
  if (violation_cb_) violation_cb_(report_);
}

void StreamingAuditor::mark_inconclusive(const std::string& why) {
  if (report_.verdict != StreamVerdict::kOk) return;
  report_.verdict = StreamVerdict::kInconclusive;
  report_.detail = why;
}

void StreamingAuditor::note_drops(std::uint64_t events_dropped,
                                  std::uint64_t spans_dropped) {
  if (events_dropped <= noted_event_drops_ &&
      spans_dropped <= noted_span_drops_) {
    return;
  }
  noted_event_drops_ = std::max(noted_event_drops_, events_dropped);
  noted_span_drops_ = std::max(noted_span_drops_, spans_dropped);
  if (noted_event_drops_ == 0 && noted_span_drops_ == 0) return;
  std::ostringstream why;
  why << "trace sink dropped " << noted_event_drops_ << " events and "
      << noted_span_drops_
      << " spans — the stream truncates the execution (same gate as "
         "post-hoc analysis)";
  mark_inconclusive(why.str());
}

void StreamingAuditor::note_sink(const RingBufferSink& sink) {
  note_drops(sink.dropped(), sink.spans_dropped());
}

const StreamingReport& StreamingAuditor::finish() {
  if (finished_) return report_;
  finished_ = true;
  if (!violated()) {
    for (const Waiting& parked : waiting_) {
      std::ostringstream why;
      why << "m-operation key " << parked.mop.key
          << " reads from writer key " << parked.missing.front()
          << " which never completed before the stream ended";
      mark_inconclusive(why.str());
    }
    waiting_.clear();
    if (!buffer_.empty()) cut_window();
  }
  return report_;
}

void StreamingAuditor::export_metrics(Registry& registry) const {
  registry.counter("audit_mops").set(report_.mops);
  registry.counter("audit_windows").set(report_.windows);
  registry.counter("audit_windows_passed").set(report_.windows_passed);
  registry.counter("audit_windows_failed").set(report_.windows_failed);
  registry.counter("audit_windows_undecided").set(report_.windows_undecided);
  registry.gauge("audit_verdict")
      .set(static_cast<double>(static_cast<int>(report_.verdict)));
}

}  // namespace mocc::obs
