// Trace analysis: the read side of the causal-span layer.
//
// Everything in obs/trace.hpp is write-path — emission, ring buffering,
// JSONL export. This header is the consumer: it loads a trace written by
// write_trace_jsonl back into memory, reconstructs the per-trace span
// trees, attributes each m-operation's end-to-end virtual latency to
// phases along its critical path, exports Chrome/Perfetto trace_event
// JSON, and — the strongest check — rebuilds the core::History purely
// from op_read/op_write events plus mop spans so the paper's checkers
// can audit an execution from its trace alone (tools/trace_query is the
// CLI over these functions).
//
// Name handling: JSONL type names are resolved by round-tripping through
// the obs::to_string registries, never by re-spelling the strings — the
// trace-registry lint check enforces that the registry stays the single
// source of the schema.
//
// Determinism: every function is a pure function of its input bytes
// (ordered containers only, no wall clock), so analyzing the same trace
// twice yields byte-identical reports and Perfetto exports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/admissibility.hpp"
#include "core/fast_check.hpp"
#include "core/history.hpp"
#include "core/relations.hpp"
#include "obs/trace.hpp"
#include "util/relation.hpp"

namespace mocc::obs {

/// A parsed trace file: the header accounting plus every event and span
/// line, in file order.
struct TraceFile {
  bool has_header = false;
  std::uint64_t events_total = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t spans_total = 0;
  std::uint64_t spans_dropped = 0;
  std::vector<TraceEvent> events;
  std::vector<Span> spans;
};

/// Parses write_trace_jsonl output (the header line is optional, so
/// plain write_jsonl event dumps load too). Returns false and sets
/// `error` ("line N: why") on malformed JSON, unknown type/span names,
/// or missing fields. Unknown keys are ignored (additive schema).
bool load_trace_jsonl(std::istream& in, TraceFile* out, std::string* error);

/// Empty when the trace is complete; otherwise a human-readable reason
/// the retained window truncates the execution (nonzero drop counts, or
/// a missing header when `require_header`). Analysis of a truncated
/// trace is refused by trace_query: span trees would have holes and the
/// latency attribution would lie.
std::string truncation_reason(const TraceFile& trace, bool require_header);

/// The spans of one trace id, in emission order, plus its root mop span
/// when the m-operation completed inside the retained window.
struct SpanTree {
  std::uint64_t trace_id = 0;
  std::vector<Span> spans;  ///< every span of the trace, emission order
  std::optional<Span> root;  ///< the mop span (parent_span == 0)
};

struct Forest {
  std::vector<SpanTree> traces;  ///< sorted by trace_id
};

/// Groups spans by trace id and verifies well-formedness: spans end no
/// earlier than they begin, each trace has at most one root, every
/// parent id resolves within its trace (rootless traces — m-operations
/// still in flight when the run ended — may dangle from exactly one
/// never-emitted root id). Returns false and sets `error` on the first
/// violation.
bool build_forest(const TraceFile& trace, Forest* out, std::string* error);

/// Critical-path phase totals for one m-operation, in virtual ticks.
/// queue + agree + lock + net == respond - invoke, exactly: every
/// breakpoint segment of the root window is charged to the
/// highest-priority span covering it (lock_wait > abcast_agree >
/// net_hop/retransmit > uncovered = queue).
struct PhaseBreakdown {
  std::uint64_t queue = 0;
  std::uint64_t agree = 0;
  std::uint64_t lock = 0;
  std::uint64_t net = 0;
  std::uint64_t total() const { return queue + agree + lock + net; }
};

struct MOpLatency {
  std::uint64_t trace_id = 0;
  std::uint64_t mop_id = 0;  ///< root span id field (core::MOpId)
  std::uint32_t process = 0;
  std::uint64_t invoke = 0;
  std::uint64_t respond = 0;
  bool is_update = false;
  std::optional<std::uint64_t> ww_seq;  ///< abcast position, updates only
  PhaseBreakdown phases;
};

/// One entry per rooted trace (completed m-operation), in trace-id
/// order. Rootless trees are skipped: with no [invoke, respond] window
/// there is nothing to attribute.
std::vector<MOpLatency> attribute_latency(const Forest& forest);

/// Chrome/Perfetto trace_event JSON: spans as complete ("X") slices
/// keyed pid=trace id / tid=node, events as instants. Byte-stable for a
/// given trace (golden-tested).
void write_perfetto_json(std::ostream& out, const TraceFile& trace);

/// A history rebuilt from the trace alone: mop spans supply process,
/// invoke/respond times, and the abcast position; op_read/op_write
/// events supply the operations (in emission = program order) including
/// reads-from. Ids must be dense 0..n-1 (they are the recorder's).
struct RebuiltExecution {
  std::optional<core::History> history;  ///< empty on failure
  util::BitRelation ww;  ///< abcast order over the rebuilt ids
  bool has_ww = false;   ///< any m-operation carried a ww position
  std::string error;     ///< set when history is empty
};

/// Pass 0 for `num_processes` / `num_objects` to infer them from the
/// trace (max node / object seen + 1); pass the system's real values to
/// compare against a recorder-built history with History::equivalent.
RebuiltExecution rebuild_execution(const TraceFile& trace,
                                   std::size_t num_processes,
                                   std::size_t num_objects);

/// Audit-from-trace: rebuild, verify well-formedness, and — when the
/// trace carries an abcast order — run the Theorem-7 fast check of
/// `condition` with the rebuilt ~ww as the synchronization order,
/// exactly as api::System::check_fast does from the recorder. Traces
/// with no abcast order (2PL runs, mocc-check locking counterexamples)
/// fall back to the exact admissibility search, bounded by
/// `exact_budget` states — 0 skips it (the pre-exact behavior: only the
/// structural checks run and the audit trivially passes). An exhausted
/// budget is reported as undecided, not as a violation.
struct TraceAudit {
  bool ok = false;
  std::size_t mops = 0;
  std::string detail;  ///< why !ok, or a one-line verdict
  std::optional<core::FastCheckResult> fast;  ///< set when ~ww present
  /// Set when the exact fallback ran (no ~ww, nonzero budget).
  std::optional<core::AdmissibilityResult> exact;
};

TraceAudit audit_from_trace(const TraceFile& trace, core::Condition condition,
                            std::uint64_t exact_budget = 1'000'000);

}  // namespace mocc::obs
