// Structured execution tracing.
//
// The simulator, the abcast layer, and every replica protocol emit
// TraceEvents describing *why* a run behaved as it did: each message
// send/delivery, each m-operation invocation/response, each lock
// acquire/release at a 2PL home, and each atomic-broadcast delivery
// position. Emission goes through a TraceSink pointer that is null by
// default — the instrumentation is always compiled in, and the only cost
// with no sink attached is one pointer test per event site (overhead
// policy in docs/observability.md).
//
// TraceEvent is a flat POD with generic fields so this layer depends on
// nothing above util; the per-type field meanings are documented on the
// enum below and mirrored by the JSONL exporter.
//
// Thread safety: one Simulator emits from a single thread, but parallel
// sweeps (sim::ParallelRunner) may attach the SAME sink to many
// concurrently-running simulators, so sink implementations must be
// internally synchronized. RingBufferSink locks a mutex per event; the
// ordering guarantee under sharing is per-simulator order preservation
// (each simulator's events appear in emission order; events from
// different simulators interleave arbitrarily).
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace mocc::obs {

class Registry;

enum class TraceEventType : std::uint8_t {
  /// node=sender, peer=receiver, kind=message kind, arg=payload bytes.
  kMessageSend = 0,
  /// node=receiver, peer=sender, kind=message kind, arg=payload bytes.
  kMessageDeliver,
  /// node=process, id=m-operation id, arg=1 if the program is an update.
  kMOpInvoke,
  /// node=process, id=m-operation id, arg=invocation virtual time.
  kMOpRespond,
  /// node=lock home, peer=client, kind=lock id, id=token, arg=1 if exclusive.
  kLockAcquire,
  /// node=lock home, kind=lock id, id=token, arg=1 if exclusive.
  kLockRelease,
  /// node=delivering replica, peer=origin, id=agreed sequence position,
  /// arg=payload bytes.
  kAbcastSequence,
  /// Fault injection (src/fault): message discarded at send time.
  /// node=sender, peer=receiver, kind=message kind, arg=payload bytes.
  kFaultDrop,
  /// One injected extra copy. node=sender, peer=receiver, kind=message
  /// kind, arg=payload bytes.
  kFaultDuplicate,
  /// Delay spike applied to a send. node=sender, peer=receiver,
  /// kind=message kind, id=extra ticks, arg=payload bytes.
  kFaultDelay,
  /// Delivery or timer discarded at a crashed node. node=crashed node,
  /// peer=sender (0 for timers), kind=message kind (0 for timers),
  /// id=timer id (0 for messages), arg=1 for timers else 0.
  kFaultCrashDiscard,
  /// Reliable link (src/fault): retransmission of an unacked message.
  /// node=sender, peer=receiver, kind=inner kind, id=link sequence
  /// number, arg=attempt count so far.
  kLinkRetransmit,
  /// Duplicate data suppressed by receiver-side dedup. node=receiver,
  /// peer=sender, kind=inner kind, id=link sequence number.
  kLinkDuplicate,
  /// Retry budget exhausted; the link stopped retransmitting.
  /// node=sender, peer=receiver, kind=inner kind, id=link sequence
  /// number, arg=attempts made.
  kLinkExhausted,
  /// One read performed by an m-operation, emitted at response time in
  /// program order. node=process, kind=object, id=m-operation id,
  /// peer=the m-operation read from (core::kInitialMOp for the
  /// initializing write), arg=value read (two's-complement).
  kOpRead,
  /// One write performed by an m-operation, emitted at response time in
  /// program order. node=process, kind=object, id=m-operation id,
  /// arg=value written (two's-complement).
  kOpWrite,
  /// Deterministic backlog probe, sampled when virtual time crosses a
  /// configured interval. id=simulator event-queue depth,
  /// arg=reliable-link retransmit-buffer bytes across all nodes.
  kBacklogSample,
  /// Sequencer group-commit: a contiguous position block assigned to a
  /// batch of pending updates in one round. node=sequencer, id=first
  /// position of the block, arg=block size (updates in the batch),
  /// kind=flush trigger (0=size, 1=age, 2=drain).
  kBatchAssign,
  /// Batching-layer flush: a pending queue emitted as one frame.
  /// node=sender, peer=destination (0 for broadcast batches), kind=flush
  /// trigger (0=size/bytes, 1=age, 2=drain), id=frame payload bytes,
  /// arg=items in the frame.
  kBatchFlush,
  /// Multicore engine (src/exec) OCC commit. time=logical-clock response
  /// stamp (NOT virtual time — the engine has no simulator), node=worker,
  /// id=commit tid, arg=attempts the m-operation took (1 = first try).
  kExecCommit,
  /// Multicore engine OCC abort of one attempt. time=logical clock when
  /// the abort was observed, node=worker, kind=reason (0=lock-spin
  /// budget, 1=read-set validation), id=attempt number aborted.
  kExecAbort,
  /// Streaming-auditor window cut (obs::StreamingAuditor). time=latest
  /// response in the window, kind=history size checked (members +
  /// ghosts), id=window number, arg=verdict (0=passed, 1=violation,
  /// 2=undecided exact check).
  kAuditWindow,
};

/// Stable lowercase name used by the JSONL exporter ("message_send", ...).
std::string_view to_string(TraceEventType type);

struct TraceEvent {
  TraceEventType type{};
  std::uint64_t time = 0;  ///< virtual time of the emitting simulator
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::uint32_t kind = 0;
  std::uint64_t id = 0;
  std::uint64_t arg = 0;
};

/// Causal trace context, propagated Dapper-style: a trace id names the
/// end-to-end m-operation, a span id names the causally-latest span on
/// the path that carried the context here. Trace id 0 means "no trace"
/// (context-free work: simulator bootstrap calls, background timers).
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// The phases a traced m-operation decomposes into. Names are kept in
/// three-way sync (enum / to_string / docs table) by the same
/// trace-registry lint check that guards TraceEventType.
enum class SpanType : std::uint8_t {
  /// Whole m-operation, invoke to respond; the root span of its trace.
  /// node=process, id=m-operation id, arg = (is_update ? 1 : 0) |
  /// ((ww_seq + 1) << 1) — ww_seq is the abcast delivery rank for
  /// updates, arg >> 1 == 0 when the m-operation has no ww position.
  kMOp = 0,
  /// Atomic-broadcast agreement: first sighting of the payload at the
  /// delivering node until its agreed-position delivery. node=delivering
  /// replica, peer=origin, id=agreed position.
  kAbcastAgree,
  /// 2PL lock-queue wait at the lock home, enqueue to grant.
  /// node=lock home, peer=client, kind=lock id, id=token,
  /// arg=1 if exclusive.
  kLockWait,
  /// One network hop, send to delivery. node=receiver, peer=sender,
  /// kind=message kind, arg=payload bytes.
  kNetHop,
  /// Reliable-link retransmission delay: previous transmission until the
  /// retry timer resent the frame. node=sender, peer=receiver,
  /// kind=inner kind, id=link sequence number, arg=attempt count.
  kRetransmit,
};

/// Stable lowercase name used by the JSONL exporter ("mop", ...).
std::string_view to_string(SpanType type);

/// A completed span: one timed phase of one trace. Emitted once, at the
/// span's end, with both virtual timestamps filled in.
struct Span {
  SpanType type{};
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  ///< 0 for the root span of a trace
  std::uint64_t begin = 0;       ///< virtual time
  std::uint64_t end = 0;         ///< virtual time, >= begin
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::uint32_t kind = 0;
  std::uint64_t id = 0;
  std::uint64_t arg = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// May be called concurrently from multiple simulator threads.
  virtual void on_event(const TraceEvent& event) = 0;
  /// Completed spans; default no-op so event-only sinks stay untouched.
  /// May be called concurrently from multiple simulator threads.
  virtual void on_span(const Span& span) { (void)span; }
};

/// Bounded in-memory sink: keeps the newest `capacity` events, counts
/// everything. Internally synchronized (shareable across a
/// sim::ParallelRunner pool).
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void on_event(const TraceEvent& event) override MOCC_EXCLUDES(mu_);
  void on_span(const Span& span) override MOCC_EXCLUDES(mu_);

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const MOCC_EXCLUDES(mu_);
  /// Retained spans, oldest first (spans have their own ring of the same
  /// capacity, so event bursts cannot evict span history or vice versa).
  std::vector<Span> spans() const MOCC_EXCLUDES(mu_);
  /// All events ever offered (retained + dropped).
  std::uint64_t total() const MOCC_EXCLUDES(mu_);
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const MOCC_EXCLUDES(mu_);
  /// All spans ever offered (retained + dropped).
  std::uint64_t spans_total() const MOCC_EXCLUDES(mu_);
  /// Spans overwritten because the span ring was full.
  std::uint64_t spans_dropped() const MOCC_EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }
  void clear() MOCC_EXCLUDES(mu_);

  /// Publishes the sink's accounting into `registry` as counters
  /// "trace_events_total" / "trace_events_dropped" and
  /// "trace_spans_total" / "trace_spans_dropped" (set, not incremented,
  /// so repeated exports stay idempotent). A nonzero dropped count in a
  /// report means the retained window truncates the execution.
  void export_metrics(Registry& registry) const MOCC_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_ MOCC_GUARDED_BY(mu_);
  std::size_t next_ MOCC_GUARDED_BY(mu_) = 0;  ///< overwrite cursor once full
  std::uint64_t total_ MOCC_GUARDED_BY(mu_) = 0;
  std::vector<Span> span_ring_ MOCC_GUARDED_BY(mu_);
  std::size_t span_next_ MOCC_GUARDED_BY(mu_) = 0;
  std::uint64_t span_total_ MOCC_GUARDED_BY(mu_) = 0;
};

/// One compact JSON object per line:
/// {"type":"message_send","t":12,"node":0,"peer":1,"kind":100,"id":0,"arg":17}
void write_jsonl(std::ostream& out, const std::vector<TraceEvent>& events);

/// One compact JSON object per line:
/// {"type":"span","span":"mop","trace":1,"sid":2,"parent":0,"begin":0,
///  "end":17,"node":0,"peer":0,"kind":0,"id":0,"arg":1}
void write_jsonl(std::ostream& out, const std::vector<Span>& spans);

/// Full trace export: one header line carrying the sink's drop
/// accounting ({"type":"header","events_total":...,"events_dropped":...,
/// "spans_total":...,"spans_dropped":...}), then every retained event,
/// then every retained span. trace_query refuses to analyze traces whose
/// header reports drops (the retained window truncates the execution).
void write_trace_jsonl(std::ostream& out, const RingBufferSink& sink);

}  // namespace mocc::obs
