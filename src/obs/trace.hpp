// Structured execution tracing.
//
// The simulator, the abcast layer, and every replica protocol emit
// TraceEvents describing *why* a run behaved as it did: each message
// send/delivery, each m-operation invocation/response, each lock
// acquire/release at a 2PL home, and each atomic-broadcast delivery
// position. Emission goes through a TraceSink pointer that is null by
// default — the instrumentation is always compiled in, and the only cost
// with no sink attached is one pointer test per event site (overhead
// policy in docs/observability.md).
//
// TraceEvent is a flat POD with generic fields so this layer depends on
// nothing above util; the per-type field meanings are documented on the
// enum below and mirrored by the JSONL exporter.
//
// Thread safety: one Simulator emits from a single thread, but parallel
// sweeps (sim::ParallelRunner) may attach the SAME sink to many
// concurrently-running simulators, so sink implementations must be
// internally synchronized. RingBufferSink locks a mutex per event; the
// ordering guarantee under sharing is per-simulator order preservation
// (each simulator's events appear in emission order; events from
// different simulators interleave arbitrarily).
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace mocc::obs {

class Registry;

enum class TraceEventType : std::uint8_t {
  /// node=sender, peer=receiver, kind=message kind, arg=payload bytes.
  kMessageSend = 0,
  /// node=receiver, peer=sender, kind=message kind, arg=payload bytes.
  kMessageDeliver,
  /// node=process, id=m-operation id, arg=1 if the program is an update.
  kMOpInvoke,
  /// node=process, id=m-operation id, arg=invocation virtual time.
  kMOpRespond,
  /// node=lock home, peer=client, kind=lock id, id=token, arg=1 if exclusive.
  kLockAcquire,
  /// node=lock home, kind=lock id, id=token, arg=1 if exclusive.
  kLockRelease,
  /// node=delivering replica, peer=origin, id=agreed sequence position,
  /// arg=payload bytes.
  kAbcastSequence,
  /// Fault injection (src/fault): message discarded at send time.
  /// node=sender, peer=receiver, kind=message kind, arg=payload bytes.
  kFaultDrop,
  /// One injected extra copy. node=sender, peer=receiver, kind=message
  /// kind, arg=payload bytes.
  kFaultDuplicate,
  /// Delay spike applied to a send. node=sender, peer=receiver,
  /// kind=message kind, id=extra ticks, arg=payload bytes.
  kFaultDelay,
  /// Delivery or timer discarded at a crashed node. node=crashed node,
  /// peer=sender (0 for timers), kind=message kind (0 for timers),
  /// id=timer id (0 for messages), arg=1 for timers else 0.
  kFaultCrashDiscard,
  /// Reliable link (src/fault): retransmission of an unacked message.
  /// node=sender, peer=receiver, kind=inner kind, id=link sequence
  /// number, arg=attempt count so far.
  kLinkRetransmit,
  /// Duplicate data suppressed by receiver-side dedup. node=receiver,
  /// peer=sender, kind=inner kind, id=link sequence number.
  kLinkDuplicate,
  /// Retry budget exhausted; the link stopped retransmitting.
  /// node=sender, peer=receiver, kind=inner kind, id=link sequence
  /// number, arg=attempts made.
  kLinkExhausted,
};

/// Stable lowercase name used by the JSONL exporter ("message_send", ...).
std::string_view to_string(TraceEventType type);

struct TraceEvent {
  TraceEventType type{};
  std::uint64_t time = 0;  ///< virtual time of the emitting simulator
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::uint32_t kind = 0;
  std::uint64_t id = 0;
  std::uint64_t arg = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// May be called concurrently from multiple simulator threads.
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Bounded in-memory sink: keeps the newest `capacity` events, counts
/// everything. Internally synchronized (shareable across a
/// sim::ParallelRunner pool).
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void on_event(const TraceEvent& event) override MOCC_EXCLUDES(mu_);

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const MOCC_EXCLUDES(mu_);
  /// All events ever offered (retained + dropped).
  std::uint64_t total() const MOCC_EXCLUDES(mu_);
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const MOCC_EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }
  void clear() MOCC_EXCLUDES(mu_);

  /// Publishes the sink's accounting into `registry` as counters
  /// "trace_events_total" and "trace_events_dropped" (set, not
  /// incremented, so repeated exports stay idempotent). A nonzero dropped
  /// count in a report means the retained window truncates the execution.
  void export_metrics(Registry& registry) const MOCC_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_ MOCC_GUARDED_BY(mu_);
  std::size_t next_ MOCC_GUARDED_BY(mu_) = 0;  ///< overwrite cursor once full
  std::uint64_t total_ MOCC_GUARDED_BY(mu_) = 0;
};

/// One compact JSON object per line:
/// {"type":"message_send","t":12,"node":0,"peer":1,"kind":100,"id":0,"arg":17}
void write_jsonl(std::ostream& out, const std::vector<TraceEvent>& events);

}  // namespace mocc::obs
