#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mocc::obs {

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      hi_(hi),
      bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  MOCC_ASSERT_MSG(hi > lo, "histogram range must be non-empty");
  MOCC_ASSERT_MSG(buckets > 0, "histogram needs at least one bucket");
}

void FixedHistogram::add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  if (sample < lo_) {
    ++underflow_;
  } else if (sample >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((sample - lo_) / bucket_width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double FixedHistogram::percentile(double p) const {
  MOCC_ASSERT(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0.0;
  // Nearest rank, 1-based: the smallest r with r >= p% of the samples.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  // Cumulative walk in value order: underflow (reported as min), the
  // buckets (reported as clamped midpoints), overflow (reported as max).
  std::uint64_t seen = underflow_;
  if (rank <= seen) return min_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (rank <= seen) {
      const double midpoint = lo_ + bucket_width_ * (static_cast<double>(i) + 0.5);
      return std::clamp(midpoint, min_, max_);
    }
  }
  return max_;
}

void FixedHistogram::write_summary_json(JsonWriter& json) const {
  json.begin_object();
  json.field("count", count());
  json.field("mean", mean());
  json.field("p50", percentile(50.0));
  json.field("p99", percentile(99.0));
  json.field("min", min());
  json.field("max", max());
  json.end_object();
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter()).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge()).first->second;
}

FixedHistogram& Registry::histogram(std::string_view name, double lo, double hi,
                                    std::size_t buckets) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    MOCC_ASSERT_MSG(it->second.lo() == lo && it->second.hi() == hi &&
                        it->second.bucket_count() == buckets,
                    "histogram re-registered with different bounds");
    return it->second;
  }
  return histograms_.emplace(std::string(name), FixedHistogram(lo, hi, buckets))
      .first->second;
}

void Registry::write_json_fields(JsonWriter& json) const {
  json.key("counters");
  json.begin_object();
  for (const auto& [name, counter] : counters_) json.field(name, counter.value());
  json.end_object();

  json.key("gauges");
  json.begin_object();
  for (const auto& [name, gauge] : gauges_) json.field(name, gauge.value());
  json.end_object();

  json.key("histograms");
  json.begin_object();
  for (const auto& [name, histogram] : histograms_) {
    json.key(name);
    histogram.write_summary_json(json);
  }
  json.end_object();
}

}  // namespace mocc::obs
