// Theorem-7 polynomial-time admissibility checking for constrained
// histories (§4).
//
// For a history under the OO- or WW-constraint, admissibility is
// equivalent to legality (Theorem 7), and legality is a polynomial check.
// The witness construction follows Lemmas 3–5: build the read-write
// precedence ~rw (D4.11), close ~H ∪ ~rw into the extended relation ~+
// (D4.12) — irreflexive by Lemma 3/4 — and linearize; Lemma 5 (P4.5)
// guarantees *any* linear extension of ~+ is a legal sequential history
// equivalent to the input.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/constraints.hpp"
#include "core/history.hpp"
#include "core/relations.hpp"
#include "util/relation.hpp"

namespace mocc::core {

struct FastCheckResult {
  /// Whether the claimed constraint actually holds for the history; if it
  /// does not, Theorem 7 does not apply and `admissible` is meaningless.
  bool constraint_holds = false;
  bool legal = false;
  bool admissible = false;
  /// A witness legal sequential order when admissible.
  std::optional<std::vector<MOpId>> witness;
  /// Populated with a diagnostic when something failed.
  std::string detail;
};

/// Polynomial check of admissibility w.r.t. the transitive closure of
/// `base`, valid for histories satisfying `constraint` (kOO or kWW).
FastCheckResult fast_check(const History& h, const util::BitRelation& base,
                           Constraint constraint);

/// Convenience: base order for the given consistency condition augmented
/// with an explicit synchronization order `sync` (e.g. the atomic
/// broadcast delivery order, which is what makes protocol histories
/// WW-constrained).
FastCheckResult fast_check_condition(const History& h, Condition condition,
                                     const util::BitRelation& sync,
                                     Constraint constraint);

}  // namespace mocc::core
