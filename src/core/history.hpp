// Histories: executions of the concurrent system (§2.2).
//
// A history is a set of m-operations together with the orders induced by
// the execution: per-process program order, the reads-from relation, the
// real-time order of non-overlapping m-operations, and the object order
// (real-time restricted to m-operations sharing an object). The relation
// builders live in relations.hpp; this type owns the m-operations, the
// structural predicates (well-formedness, equivalence) and the paper's
// conflict / interfere / rfobjects notions (§4, D4.1–D4.3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/moperation.hpp"
#include "core/types.hpp"

namespace mocc::core {

class History {
 public:
  History(std::size_t num_processes, std::size_t num_objects);

  /// Appends an m-operation; returns its id. Operations' reads_from
  /// fields must reference already-added m-operations or kInitialMOp.
  MOpId add(MOperation mop);

  std::size_t size() const { return mops_.size(); }
  std::size_t num_processes() const { return num_processes_; }
  std::size_t num_objects() const { return num_objects_; }

  const MOperation& mop(MOpId id) const;
  const std::vector<MOperation>& mops() const { return mops_; }

  /// Ids of the m-operations issued by `process`, in program order
  /// (order of addition; add() enforces non-overlap per process).
  const std::vector<MOpId>& process_ops(ProcessId process) const;

  /// Well-formedness (§2.2): every process subhistory is sequential —
  /// each m-operation of a process responds before the next is invoked.
  /// add() enforces this; the method re-verifies (used by tests and by
  /// code that constructs histories by deserialization).
  bool well_formed(std::string* why = nullptr) const;

  /// Value coherence: every external read labelled "reads from β" must
  /// carry exactly the value β's final write stored into that object (or
  /// `initial_value` when β is kInitialMOp), and β must actually write
  /// the object. The admissibility checkers order m-operations by the
  /// reads-from *edges* alone, so a replica that loses a delivery can
  /// still produce edge-wise legal histories where the read VALUE
  /// diverges from the writer's record — this catches those.
  bool value_coherent(std::string* why = nullptr, Value initial_value = 0) const;

  /// rfobjects(H, α, β) — the objects α reads from β (D: §4).
  /// β may be kInitialMOp.
  std::vector<ObjectId> rfobjects(MOpId alpha, MOpId beta) const;

  /// β ~rf~> α : α reads from β the value of some object (D4.3).
  bool reads_from(MOpId beta, MOpId alpha) const;

  /// conflict(α, β) (D4.1): distinct, share an object, at least one
  /// writes it.
  bool conflict(MOpId a, MOpId b) const;

  /// interfere(H, α, β, γ) (D4.2): distinct, and γ writes some object
  /// that α reads from β.
  bool interfere(MOpId alpha, MOpId beta, MOpId gamma) const;

  /// Histories are equivalent iff they have the same per-process
  /// subhistories (same m-operations in the same program order) and the
  /// same reads-from relation (§2.2). Operations are compared
  /// structurally; invocation/response times are *not* part of the
  /// subhistory content.
  bool equivalent(const History& other) const;

  /// Fills in reads_from links by matching read values to unique writer
  /// values. Requires that across the whole history every (object, value)
  /// pair is written by at most one m-operation (the standard
  /// "distinct-writes" assumption used when the reads-from relation is
  /// not recorded). Returns false if some read is unmatchable or a value
  /// is ambiguous.
  bool derive_reads_from(Value initial_value = 0);

  std::string to_string() const;

 private:
  std::size_t num_processes_;
  std::size_t num_objects_;
  std::vector<MOperation> mops_;
  std::vector<std::vector<MOpId>> by_process_;
};

}  // namespace mocc::core
