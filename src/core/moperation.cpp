#include "core/moperation.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/assert.hpp"

namespace mocc::core {

MOperation::MOperation(ProcessId process, std::vector<Operation> ops, Time invoke,
                       Time response, std::string label)
    : process_(process),
      ops_(std::move(ops)),
      invoke_(invoke),
      response_(response),
      label_(std::move(label)) {
  MOCC_ASSERT_MSG(invoke_ <= response_, "m-operation responds before it is invoked");

  std::set<ObjectId> all;
  std::set<ObjectId> read_set;
  std::set<ObjectId> write_set;
  std::set<ObjectId> written_so_far;
  std::map<ObjectId, std::size_t> last_write_pos;

  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Operation& op = ops_[i];
    all.insert(op.object);
    if (op.type == OpType::kRead) {
      read_set.insert(op.object);
      // A read preceded by an own write to the same object is internal:
      // it must return the own value and imposes no cross-m-op constraint.
      if (written_so_far.find(op.object) == written_so_far.end()) {
        external_reads_.push_back(op);
      }
    } else {
      write_set.insert(op.object);
      written_so_far.insert(op.object);
      last_write_pos[op.object] = i;
    }
  }

  objects_.assign(all.begin(), all.end());
  robjects_.assign(read_set.begin(), read_set.end());
  wobjects_.assign(write_set.begin(), write_set.end());

  // Final writes in object order (deterministic).
  for (const auto& [object, pos] : last_write_pos) {
    final_writes_.push_back(ops_[pos]);
  }
}

bool MOperation::writes(ObjectId x) const {
  return std::binary_search(wobjects_.begin(), wobjects_.end(), x);
}

bool MOperation::reads(ObjectId x) const {
  return std::binary_search(robjects_.begin(), robjects_.end(), x);
}

bool MOperation::touches(ObjectId x) const {
  return std::binary_search(objects_.begin(), objects_.end(), x);
}

Value MOperation::final_write_value(ObjectId x) const {
  for (const Operation& op : final_writes_) {
    if (op.object == x) return op.value;
  }
  MOCC_ASSERT_MSG(false, "final_write_value on object not written");
  return 0;
}

std::string MOperation::to_string() const {
  std::ostringstream out;
  out << "P" << process_;
  if (!label_.empty()) out << " '" << label_ << "'";
  out << " [" << invoke_ << "," << response_ << "]:";
  for (const Operation& op : ops_) {
    out << " " << (op.type == OpType::kRead ? "r" : "w") << "(x" << op.object << ")"
        << op.value;
    if (op.type == OpType::kRead) {
      out << "<-";
      if (op.reads_from == kInitialMOp) {
        out << "init";
      } else {
        out << "m" << op.reads_from;
      }
    }
  }
  return out.str();
}

}  // namespace mocc::core
