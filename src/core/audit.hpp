// Protocol audit: the paper's correctness properties P5.1–P5.8 (§5).
//
// Theorem 10 reduces protocol correctness to eight properties of the
// per-m-operation timestamps and the synchronization order ~>H−. The
// protocols in src/protocols record both for every execution; this audit
// re-checks the properties on the recorded run, turning the paper's proof
// obligations into machine-checked runtime oracles. Any violation means a
// protocol bug (or a broken atomic broadcast underneath).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "util/relation.hpp"
#include "util/timestamp.hpp"

namespace mocc::core {

/// Everything a protocol execution must expose for auditing.
struct ProtocolTrace {
  /// ~>H− : the union the protocol defines (Figure 4: ~P ∪ ~rf ∪ ~ww;
  /// Figure 6: ~rf ∪ ~t ∪ ~ww), NOT transitively closed.
  util::BitRelation sync_order;
  /// ts(α) = ts(finish(α)) per m-operation (D5.2 / D5.7).
  std::vector<util::VersionVector> timestamps;
  /// The paper's conservative update classification ("we treat an
  /// m-operation as an update if it can potentially write"): true for
  /// m-operations that were atomically broadcast, even when the execution
  /// happened to write nothing (e.g. a failed DCAS). P5.1 and P5.2 are
  /// stated in terms of this classification, not the recorded write sets.
  std::vector<bool> is_update;
};

struct AuditReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string message);
  std::string to_string() const;
};

/// Checks P5.1–P5.4 and P5.7–P5.8 (Theorem 10's hypotheses) plus the
/// derived WW-constraint (Lemma 8) and legality (Lemma 9) on the closed
/// relation. `trace.sync_order` must relate ids of `h`.
AuditReport audit_protocol_execution(const History& h, const ProtocolTrace& trace);

}  // namespace mocc::core
