// Execution constraints (§4, D4.8–D4.10).
//
// Verifying admissibility is NP-complete in general (Theorems 1–2), so
// implementations enforce ordering constraints that make legality — a
// polynomial check — both necessary and sufficient (Theorem 7):
//
//   OO-constraint: every pair of *conflicting* m-operations is ordered.
//   WW-constraint: every pair of *update* m-operations is ordered
//                  (globally, regardless of the objects written).
//   WO-constraint: every pair of m-operations writing a *common object*
//                  is ordered. WO is implied by both OO and WW and is the
//                  hypothesis of Lemma 5.
#pragma once

#include <optional>
#include <string>

#include "core/history.hpp"
#include "util/relation.hpp"

namespace mocc::core {

enum class Constraint { kOO, kWW, kWO };

const char* constraint_name(Constraint c);

struct ConstraintViolation {
  Constraint constraint = Constraint::kWW;
  MOpId a = 0;
  MOpId b = 0;
  std::string to_string() const;
};

/// Checks the constraint against the (transitively closed) order.
/// Returns the first unordered pair that the constraint requires to be
/// ordered, or nullopt if the constraint holds.
std::optional<ConstraintViolation> find_constraint_violation(
    const History& h, const util::BitRelation& order, Constraint constraint);

inline bool satisfies(const History& h, const util::BitRelation& order,
                      Constraint constraint) {
  return !find_constraint_violation(h, order, constraint).has_value();
}

}  // namespace mocc::core
