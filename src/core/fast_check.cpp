#include "core/fast_check.hpp"

#include "core/legality.hpp"
#include "util/assert.hpp"

namespace mocc::core {

FastCheckResult fast_check(const History& h, const util::BitRelation& base,
                           Constraint constraint) {
  FastCheckResult result;
  const util::BitRelation closed = base.transitive_closure();

  if (!closed.closed_is_irreflexive()) {
    result.detail = "base order is cyclic";
    return result;
  }

  if (const auto violation = find_constraint_violation(h, closed, constraint)) {
    result.detail = violation->to_string();
    return result;
  }
  result.constraint_holds = true;

  if (const auto violation = find_legality_violation(h, closed)) {
    result.detail = violation->to_string();
    return result;  // Lemma 6: not legal => not admissible
  }
  result.legal = true;

  // Lemmas 3/4: for a legal history under OO/WW the extended relation is
  // an irreflexive partial order; Lemma 5: any linear extension is a
  // legal sequential history.
  const util::BitRelation extended = extended_relation(h, closed);
  if (!extended.closed_is_irreflexive()) {
    // Reachable only if the claimed constraint was WO-only or the
    // precondition was otherwise violated; report rather than abort so
    // the checker can be used exploratively.
    result.detail = "extended relation ~+ is cyclic (Lemma 3/4 precondition violated)";
    result.legal = true;
    result.admissible = false;
    return result;
  }

  const auto order = extended.topological_order();
  MOCC_ASSERT_MSG(order.has_value(), "irreflexive closed relation must linearize");
  std::vector<MOpId> witness(order->begin(), order->end());
  MOCC_ASSERT_MSG(is_legal_sequential_order(h, witness),
                  "Lemma 5 witness failed replay — checker bug");
  result.admissible = true;
  result.witness = std::move(witness);
  return result;
}

FastCheckResult fast_check_condition(const History& h, Condition condition,
                                     const util::BitRelation& sync,
                                     Constraint constraint) {
  util::BitRelation base = base_order(h, condition);
  base.merge(sync);
  return fast_check(h, base, constraint);
}

}  // namespace mocc::core
