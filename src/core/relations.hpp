// Order relations over a history's m-operations (§2.1, §2.3).
//
// Each builder returns a BitRelation over m-operation ids. The consistency
// conditions are parameterized by which orders the base relation ~>H must
// contain:
//
//   m-sequential consistency : process order ∪ reads-from
//   m-linearizability        : process order ∪ reads-from ∪ real-time
//   m-normality              : process order ∪ reads-from ∪ object order
#pragma once

#include "core/history.hpp"
#include "util/relation.hpp"

namespace mocc::core {

/// Which consistency condition a check targets (§2.3).
enum class Condition {
  kMSequentialConsistency,
  kMLinearizability,
  kMNormality,
};

const char* condition_name(Condition c);

/// α ~P~> β : same process, α issued before β.
util::BitRelation process_order(const History& h);

/// β ~rf~> α : α reads from β (D4.3).
util::BitRelation reads_from_order(const History& h);

/// α ~t~> β : resp(α) < inv(β) in real time.
util::BitRelation real_time_order(const History& h);

/// α ~xo~> β : objects(α) ∩ objects(β) ≠ ∅ and resp(α) < inv(β).
util::BitRelation object_order(const History& h);

/// The base relation ~>H for the given condition (NOT transitively
/// closed; callers close it once).
util::BitRelation base_order(const History& h, Condition condition);

/// Convenience: transitively closed base order.
util::BitRelation closed_base_order(const History& h, Condition condition);

}  // namespace mocc::core
