// Plain-text history format: write histories out, read them back.
//
// Lets recorded executions be archived and re-checked offline
// (examples/history_audit --file=...), and makes failing property-test
// cases shareable. Format, one m-operation per line after the header:
//
//   # comment / blank lines ignored
//   history <num_processes> <num_objects>
//   mop <process> <invoke> <response> [label] : <op> <op> ...
//
// where <op> is
//   w(<object>)<value>                      a write
//   r(<object>)<value>@init                 read from the initial write
//   r(<object>)<value>@self                 internal read (own write)
//   r(<object>)<value>@<mop-index>          read from m-operation k
//
// m-operation indices refer to `mop` line order (0-based). Forward
// references are allowed.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/history.hpp"

namespace mocc::core {

/// Renders a parseable description of the history.
std::string serialize_history(const History& h);

/// Parses the format above. Returns nullopt and fills *error on
/// malformed input.
std::optional<History> parse_history(const std::string& text, std::string* error);

/// Convenience file wrappers. `load_history` returns nullopt (with
/// *error) if the file is unreadable or malformed.
bool save_history(const History& h, const std::string& path, std::string* error);
std::optional<History> load_history(const std::string& path, std::string* error);

}  // namespace mocc::core
