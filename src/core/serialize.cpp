#include "core/serialize.hpp"

#include <fstream>
#include <sstream>

namespace mocc::core {

namespace {

/// Parses one op token like "w(3)17" / "r(0)5@init".
bool parse_op(const std::string& token, MOpId self, Operation* op, std::string* error) {
  auto fail = [&](const std::string& why) {
    *error = "bad operation '" + token + "': " + why;
    return false;
  };
  if (token.size() < 4 || (token[0] != 'w' && token[0] != 'r') || token[1] != '(') {
    return fail("expected w(...) or r(...)");
  }
  const auto close = token.find(')');
  if (close == std::string::npos) return fail("missing ')'");
  std::size_t parsed = 0;
  unsigned long object = 0;
  try {
    object = std::stoul(token.substr(2, close - 2), &parsed);
  } catch (...) {
    return fail("object id not a number");
  }
  if (parsed != close - 2) return fail("object id not a number");

  std::string rest = token.substr(close + 1);
  if (token[0] == 'w') {
    long long value = 0;
    try {
      value = std::stoll(rest, &parsed);
    } catch (...) {
      return fail("write value not a number");
    }
    if (parsed != rest.size()) return fail("trailing junk after write value");
    *op = Operation::write(static_cast<ObjectId>(object), value);
    return true;
  }

  const auto at = rest.find('@');
  if (at == std::string::npos) return fail("read missing @writer");
  long long value = 0;
  try {
    value = std::stoll(rest.substr(0, at), &parsed);
  } catch (...) {
    return fail("read value not a number");
  }
  if (parsed != at) return fail("read value not a number");
  const std::string writer = rest.substr(at + 1);
  MOpId from = kInitialMOp;
  if (writer == "init") {
    from = kInitialMOp;
  } else if (writer == "self") {
    from = self;
  } else {
    unsigned long k = 0;
    try {
      k = std::stoul(writer, &parsed);
    } catch (...) {
      return fail("writer not init/self/<index>");
    }
    if (parsed != writer.size()) return fail("writer not init/self/<index>");
    from = static_cast<MOpId>(k);
  }
  *op = Operation::read(static_cast<ObjectId>(object), value, from);
  return true;
}

}  // namespace

std::string serialize_history(const History& h) {
  std::ostringstream out;
  out << "# mocc history\n";
  out << "history " << h.num_processes() << " " << h.num_objects() << "\n";
  for (MOpId id = 0; id < h.size(); ++id) {
    const MOperation& m = h.mop(id);
    out << "mop " << m.process() << " " << m.invoke() << " " << m.response();
    if (!m.label().empty()) out << " " << m.label();
    out << " :";
    for (const Operation& op : m.ops()) {
      if (op.type == OpType::kWrite) {
        out << " w(" << op.object << ")" << op.value;
      } else {
        out << " r(" << op.object << ")" << op.value << "@";
        if (op.reads_from == kInitialMOp) {
          out << "init";
        } else if (op.reads_from == id) {
          out << "self";
        } else {
          out << op.reads_from;
        }
      }
    }
    out << "\n";
  }
  return out.str();
}

std::optional<History> parse_history(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  std::optional<History> history;
  MOpId next_id = 0;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword) || keyword[0] == '#') continue;

    if (keyword == "history") {
      std::size_t processes = 0;
      std::size_t objects = 0;
      if (!(fields >> processes >> objects) || processes == 0 || objects == 0) {
        return fail("expected 'history <processes> <objects>'");
      }
      if (history.has_value()) return fail("duplicate history header");
      history.emplace(processes, objects);
      continue;
    }

    // mocc-lint: allow(trace-registry): mscript's record keyword happens to match the root span's name; this parses the text format, it emits no span
    if (keyword == "mop") {
      if (!history.has_value()) return fail("'mop' before 'history' header");
      unsigned long process = 0;
      Time invoke = 0;
      Time response = 0;
      if (!(fields >> process >> invoke >> response)) {
        return fail("expected 'mop <process> <invoke> <response> [label] : ops'");
      }
      if (process >= history->num_processes()) return fail("process out of range");
      if (invoke > response) return fail("invoke after response");

      // Optional label, then ':'.
      std::string token;
      std::string label;
      if (!(fields >> token)) return fail("missing ':'");
      if (token != ":") {
        label = token;
        if (!(fields >> token) || token != ":") return fail("missing ':' after label");
      }

      std::vector<Operation> ops;
      std::string op_error;
      while (fields >> token) {
        Operation op;
        if (!parse_op(token, next_id, &op, &op_error)) return fail(op_error);
        if (op.object >= history->num_objects()) return fail("object out of range");
        ops.push_back(op);
      }
      history->add(
          MOperation(static_cast<ProcessId>(process), std::move(ops), invoke,
                     response, label));
      ++next_id;
      continue;
    }

    return fail("unknown keyword '" + keyword + "'");
  }

  if (!history.has_value()) return fail("missing 'history' header");
  // Validate reads-from targets now that the count is known.
  for (MOpId id = 0; id < history->size(); ++id) {
    for (const Operation& op : history->mop(id).ops()) {
      if (op.type == OpType::kRead && op.reads_from != kInitialMOp &&
          op.reads_from >= history->size() && op.reads_from != id) {
        if (error != nullptr) {
          *error = "m-operation " + std::to_string(id) +
                   " reads from out-of-range m-operation " +
                   std::to_string(op.reads_from);
        }
        return std::nullopt;
      }
    }
  }
  return history;
}

bool save_history(const History& h, const std::string& path, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << serialize_history(h);
  return static_cast<bool>(out);
}

std::optional<History> load_history(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_history(buffer.str(), error);
}

}  // namespace mocc::core
