#include "core/relations.hpp"

namespace mocc::core {

const char* condition_name(Condition c) {
  switch (c) {
    case Condition::kMSequentialConsistency: return "m-sequential-consistency";
    case Condition::kMLinearizability: return "m-linearizability";
    case Condition::kMNormality: return "m-normality";
  }
  return "?";
}

util::BitRelation process_order(const History& h) {
  util::BitRelation rel(h.size());
  for (ProcessId p = 0; p < h.num_processes(); ++p) {
    const auto& seq = h.process_ops(p);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        rel.add(seq[i], seq[j]);
      }
    }
  }
  return rel;
}

util::BitRelation reads_from_order(const History& h) {
  util::BitRelation rel(h.size());
  for (MOpId alpha = 0; alpha < h.size(); ++alpha) {
    for (const Operation& read : h.mop(alpha).external_reads()) {
      if (read.reads_from != kInitialMOp && read.reads_from != alpha) {
        rel.add(read.reads_from, alpha);
      }
    }
  }
  return rel;
}

util::BitRelation real_time_order(const History& h) {
  util::BitRelation rel(h.size());
  for (MOpId a = 0; a < h.size(); ++a) {
    for (MOpId b = 0; b < h.size(); ++b) {
      if (a != b && h.mop(a).response() < h.mop(b).invoke()) rel.add(a, b);
    }
  }
  return rel;
}

util::BitRelation object_order(const History& h) {
  util::BitRelation rel(h.size());
  for (MOpId a = 0; a < h.size(); ++a) {
    for (MOpId b = 0; b < h.size(); ++b) {
      if (a == b || h.mop(a).response() >= h.mop(b).invoke()) continue;
      // share an object?
      const auto& xs = h.mop(a).objects();
      bool share = false;
      for (ObjectId x : xs) {
        if (h.mop(b).touches(x)) {
          share = true;
          break;
        }
      }
      if (share) rel.add(a, b);
    }
  }
  return rel;
}

util::BitRelation base_order(const History& h, Condition condition) {
  util::BitRelation rel = process_order(h);
  rel.merge(reads_from_order(h));
  switch (condition) {
    case Condition::kMSequentialConsistency:
      break;
    case Condition::kMLinearizability:
      rel.merge(real_time_order(h));
      break;
    case Condition::kMNormality:
      rel.merge(object_order(h));
      break;
  }
  return rel;
}

util::BitRelation closed_base_order(const History& h, Condition condition) {
  return base_order(h, condition).transitive_closure();
}

}  // namespace mocc::core
