#include "core/legality.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace mocc::core {

std::string LegalityViolation::to_string() const {
  std::ostringstream out;
  out << "m" << alpha << " reads x" << object << " from m" << beta << ", but m"
      << gamma << " writes x" << object << " and m" << beta << " ~> m" << gamma
      << " ~> m" << alpha;
  return out.str();
}

std::optional<LegalityViolation> find_legality_violation(
    const History& h, const util::BitRelation& order) {
  // Iterate over reads-from pairs rather than all triples: for each
  // external read (α reads x from β), scan candidate overwriters γ.
  for (MOpId alpha = 0; alpha < h.size(); ++alpha) {
    for (const Operation& read : h.mop(alpha).external_reads()) {
      const MOpId beta = read.reads_from;
      if (beta == kInitialMOp) {
        // Initial write: overwritten if any γ writing x precedes α; the
        // initializing m-op precedes everything, so the condition
        // degenerates to: no writer of x ordered before α.
        for (MOpId gamma = 0; gamma < h.size(); ++gamma) {
          if (gamma != alpha && h.mop(gamma).writes(read.object) &&
              order.has(gamma, alpha)) {
            return LegalityViolation{alpha, kInitialMOp, gamma, read.object};
          }
        }
        continue;
      }
      for (MOpId gamma = 0; gamma < h.size(); ++gamma) {
        if (gamma == alpha || gamma == beta) continue;
        if (!h.mop(gamma).writes(read.object)) continue;
        if (order.has(beta, gamma) && order.has(gamma, alpha)) {
          return LegalityViolation{alpha, beta, gamma, read.object};
        }
      }
    }
  }
  return std::nullopt;
}

util::BitRelation rw_precedence(const History& h, const util::BitRelation& order) {
  util::BitRelation rw(h.size());
  for (MOpId alpha = 0; alpha < h.size(); ++alpha) {
    for (const Operation& read : h.mop(alpha).external_reads()) {
      const MOpId beta = read.reads_from;
      for (MOpId gamma = 0; gamma < h.size(); ++gamma) {
        if (gamma == alpha || gamma == beta) continue;
        if (!h.mop(gamma).writes(read.object)) continue;
        if (beta == kInitialMOp) {
          // The initializing m-op is ordered before every m-operation, so
          // interfere(α, init, γ) yields α ~rw~> γ unconditionally.
          rw.add(alpha, gamma);
        } else if (order.has(beta, gamma)) {
          rw.add(alpha, gamma);
        }
      }
    }
  }
  return rw;
}

util::BitRelation extended_relation(const History& h, const util::BitRelation& order) {
  util::BitRelation merged = order;
  merged.merge(rw_precedence(h, order));
  return merged.transitive_closure();
}

bool is_legal_sequential_order(const History& h, const std::vector<MOpId>& order) {
  if (order.size() != h.size()) return false;
  std::vector<MOpId> last_writer(h.num_objects(), kInitialMOp);
  std::vector<bool> placed(h.size(), false);
  for (const MOpId id : order) {
    if (id >= h.size() || placed[id]) return false;
    const MOperation& m = h.mop(id);
    for (const Operation& read : m.external_reads()) {
      if (last_writer[read.object] != read.reads_from) return false;
    }
    for (const ObjectId x : m.wobjects()) last_writer[x] = id;
    placed[id] = true;
  }
  return true;
}

}  // namespace mocc::core
