// Shared identifier types for the history model.
#pragma once

#include <cstdint>
#include <limits>

namespace mocc::core {

using ObjectId = std::uint32_t;
using ProcessId = std::uint32_t;
using Value = std::int64_t;

/// Index of an m-operation within its history.
using MOpId = std::uint32_t;

/// The paper's imaginary initializing m-operation ("we assume that an
/// imaginary m-operation that writes to all objects is performed to
/// initialize the objects before the first operation by any process").
/// Reads whose value was never overwritten read from this sentinel.
inline constexpr MOpId kInitialMOp = std::numeric_limits<MOpId>::max();

/// Virtual time (simulator ticks). Only relative order matters.
using Time = std::uint64_t;

}  // namespace mocc::core
