// m-operations: the paper's unit of atomicity (§2.1).
//
// An m-operation is a sequence of read/write operations, possibly spanning
// several objects, executed by one process between an invocation event and
// a response event. This type is the *record* of one executed m-operation:
// what it read (and from whom), what it wrote, and when it ran.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace mocc::core {

enum class OpType : std::uint8_t { kRead, kWrite };

/// One read or write within an m-operation.
struct Operation {
  OpType type = OpType::kRead;
  ObjectId object = 0;
  Value value = 0;
  /// For reads: the m-operation whose write produced this value
  /// (kInitialMOp for the initializing write). Ignored for writes.
  MOpId reads_from = kInitialMOp;

  static Operation read(ObjectId object, Value value, MOpId reads_from) {
    return Operation{OpType::kRead, object, value, reads_from};
  }
  static Operation write(ObjectId object, Value value) {
    return Operation{OpType::kWrite, object, value, kInitialMOp};
  }
};

class MOperation {
 public:
  MOperation() = default;
  MOperation(ProcessId process, std::vector<Operation> ops, Time invoke, Time response,
             std::string label = "");

  ProcessId process() const { return process_; }
  const std::vector<Operation>& ops() const { return ops_; }
  Time invoke() const { return invoke_; }
  Time response() const { return response_; }
  const std::string& label() const { return label_; }

  /// objects(α): every object read or written.
  const std::vector<ObjectId>& objects() const { return objects_; }
  /// robjects(α) / wobjects(α): objects read / written (paper §4).
  const std::vector<ObjectId>& robjects() const { return robjects_; }
  const std::vector<ObjectId>& wobjects() const { return wobjects_; }

  bool writes(ObjectId x) const;
  bool reads(ObjectId x) const;
  bool touches(ObjectId x) const;

  /// Update iff it writes some object; query otherwise (D in §4).
  bool is_update() const { return !wobjects_.empty(); }
  bool is_query() const { return wobjects_.empty(); }

  /// *External* reads: the paper discards reads that are preceded by a
  /// write to the same object within the same m-operation (such reads are
  /// satisfied internally and constrain nothing across m-operations).
  /// Pairs are (object, reads_from) in program order.
  const std::vector<Operation>& external_reads() const { return external_reads_; }

  /// *Final* writes: the last write per object (earlier same-object writes
  /// are overwritten within the m-operation and cannot be read by others).
  const std::vector<Operation>& final_writes() const { return final_writes_; }

  /// The value the final write stores into x; requires writes(x).
  Value final_write_value(ObjectId x) const;

  std::string to_string() const;

 private:
  ProcessId process_ = 0;
  std::vector<Operation> ops_;
  Time invoke_ = 0;
  Time response_ = 0;
  std::string label_;

  // Derived, computed once at construction.
  std::vector<ObjectId> objects_;
  std::vector<ObjectId> robjects_;
  std::vector<ObjectId> wobjects_;
  std::vector<Operation> external_reads_;
  std::vector<Operation> final_writes_;
};

}  // namespace mocc::core
