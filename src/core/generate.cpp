#include "core/generate.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace mocc::core {

namespace {

/// Unique value for the v-th write to object x (keeps derive_reads_from
/// usable on generated histories).
Value unique_value(ObjectId x, std::uint64_t version) {
  return static_cast<Value>(x) * 1'000'000 + static_cast<Value>(version);
}

std::vector<Operation> random_ops(const GeneratorParams& params, util::Rng& rng,
                                  std::vector<MOpId>& last_writer,
                                  std::vector<std::uint64_t>& version,
                                  MOpId self) {
  const std::size_t count = static_cast<std::size_t>(
      rng.next_in(static_cast<std::int64_t>(params.min_ops_per_mop),
                  static_cast<std::int64_t>(params.max_ops_per_mop)));
  std::vector<Operation> ops;
  std::map<ObjectId, Value> own;  // own writes visible to own later reads
  for (std::size_t i = 0; i < count; ++i) {
    const auto x = static_cast<ObjectId>(rng.next_below(params.num_objects));
    if (rng.next_bool(params.write_probability)) {
      ++version[x];
      const Value v = unique_value(x, version[x]);
      ops.push_back(Operation::write(x, v));
      own[x] = v;
      last_writer[x] = self;
    } else {
      if (auto it = own.find(x); it != own.end()) {
        // Internal read; reads_from points at self but is excluded from
        // external_reads by construction.
        ops.push_back(Operation::read(x, it->second, self));
      } else {
        const Value v =
            last_writer[x] == kInitialMOp ? 0 : unique_value(x, version[x]);
        ops.push_back(Operation::read(x, v, last_writer[x]));
      }
    }
  }
  return ops;
}

}  // namespace

History generate_admissible_history(const GeneratorParams& params, util::Rng& rng) {
  MOCC_ASSERT(params.num_processes >= 1);
  MOCC_ASSERT(params.num_objects >= 1);
  History h(params.num_processes, params.num_objects);

  std::vector<MOpId> last_writer(params.num_objects, kInitialMOp);
  std::vector<std::uint64_t> version(params.num_objects, 0);
  std::vector<Time> process_free_at(params.num_processes, 0);

  constexpr Time kStep = 100;
  const auto spread =
      static_cast<Time>(params.overlap * static_cast<double>(kStep));

  for (MOpId k = 0; k < params.num_mops; ++k) {
    const auto p = static_cast<ProcessId>(rng.next_below(params.num_processes));
    const Time center = static_cast<Time>(k + 1) * kStep;
    // Real-time interval containing `center`; since centers are strictly
    // increasing and intervals extend at most `spread < kStep/2` either
    // side, a later m-operation can never respond before an earlier one
    // is invoked, so real-time order is a suborder of the construction
    // order — the execution stays m-linearizable.
    Time invoke = center - (spread == 0 ? 0 : rng.next_below(spread + 1));
    const Time respond = center + (spread == 0 ? 0 : rng.next_below(spread + 1));
    // Per-process sequentiality.
    invoke = std::max(invoke, process_free_at[p]);
    MOCC_ASSERT(invoke <= respond);
    process_free_at[p] = respond + 1;

    std::vector<Operation> ops = random_ops(params, rng, last_writer, version, k);
    h.add(MOperation(p, std::move(ops), invoke, respond, "gen"));
  }
  return h;
}

std::size_t perturb_reads_from(History& h, util::Rng& rng, std::size_t rewires) {
  // Collect all (object -> writers) across the history.
  std::map<ObjectId, std::vector<MOpId>> writers;
  for (MOpId id = 0; id < h.size(); ++id) {
    for (const ObjectId x : h.mop(id).wobjects()) writers[x].push_back(id);
  }
  // Candidate reads: external reads of objects with >= 2 potential sources
  // (counting the initial write as a source).
  struct Candidate {
    MOpId mop;
    std::size_t op_index;
  };
  std::vector<Candidate> candidates;
  for (MOpId id = 0; id < h.size(); ++id) {
    const auto& ops = h.mop(id).ops();
    std::map<ObjectId, bool> own_written;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Operation& op = ops[i];
      if (op.type == OpType::kWrite) {
        own_written[op.object] = true;
        continue;
      }
      if (own_written.count(op.object) > 0) continue;  // internal read
      const auto it = writers.find(op.object);
      const std::size_t sources = 1 + (it == writers.end() ? 0 : it->second.size());
      if (sources >= 2) candidates.push_back({id, i});
    }
  }
  if (candidates.empty()) return 0;

  std::size_t done = 0;
  History rebuilt(h.num_processes(), h.num_objects());
  // Apply rewires by rebuilding m-operations with patched reads.
  std::map<std::pair<MOpId, std::size_t>, MOpId> patches;
  for (std::size_t r = 0; r < rewires && !candidates.empty(); ++r) {
    const std::size_t pick = rng.next_below(candidates.size());
    const Candidate c = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    const Operation& op = h.mop(c.mop).ops()[c.op_index];
    // Choose a different source among {writers of x, initial} \ {current}.
    std::vector<MOpId> sources;
    if (op.reads_from != kInitialMOp) sources.push_back(kInitialMOp);
    for (const MOpId w : writers[op.object]) {
      if (w != op.reads_from && w != c.mop) sources.push_back(w);
    }
    if (sources.empty()) continue;
    patches[{c.mop, c.op_index}] = sources[rng.next_below(sources.size())];
    ++done;
  }

  for (MOpId id = 0; id < h.size(); ++id) {
    const MOperation& m = h.mop(id);
    std::vector<Operation> ops = m.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto it = patches.find({id, i});
      if (it == patches.end()) continue;
      Operation& op = ops[i];
      op.reads_from = it->second;
      op.value = it->second == kInitialMOp
                     ? 0
                     : h.mop(it->second).final_write_value(op.object);
    }
    rebuilt.add(MOperation(m.process(), std::move(ops), m.invoke(), m.response(),
                           m.label()));
  }
  h = std::move(rebuilt);
  return done;
}

History generate_free_history(const GeneratorParams& params, util::Rng& rng) {
  // First generate structure (who writes what), then wire reads randomly.
  History h(params.num_processes, params.num_objects);
  std::vector<std::uint64_t> version(params.num_objects, 0);
  std::vector<Time> process_free_at(params.num_processes, 0);
  // Writers of each object among already-created m-ops.
  std::map<ObjectId, std::vector<MOpId>> writers;

  constexpr Time kStep = 100;
  const auto spread =
      static_cast<Time>(params.overlap * static_cast<double>(kStep));

  for (MOpId k = 0; k < params.num_mops; ++k) {
    const auto p = static_cast<ProcessId>(rng.next_below(params.num_processes));
    const Time center = static_cast<Time>(k + 1) * kStep;
    Time invoke = center - (spread == 0 ? 0 : rng.next_below(spread + 1));
    const Time respond = center + (spread == 0 ? 0 : rng.next_below(spread + 1));
    invoke = std::max(invoke, process_free_at[p]);
    process_free_at[p] = respond + 1;

    const std::size_t count = static_cast<std::size_t>(
        rng.next_in(static_cast<std::int64_t>(params.min_ops_per_mop),
                    static_cast<std::int64_t>(params.max_ops_per_mop)));
    std::vector<Operation> ops;
    std::map<ObjectId, Value> own;
    std::vector<std::pair<ObjectId, Value>> writes_this_mop;
    for (std::size_t i = 0; i < count; ++i) {
      const auto x = static_cast<ObjectId>(rng.next_below(params.num_objects));
      if (rng.next_bool(params.write_probability)) {
        ++version[x];
        const Value v = unique_value(x, version[x]);
        ops.push_back(Operation::write(x, v));
        own[x] = v;
        writes_this_mop.emplace_back(x, v);
      } else if (auto it = own.find(x); it != own.end()) {
        ops.push_back(Operation::read(x, it->second, k));
      } else {
        // Random source: initial or any *earlier* writer of x (keeps
        // History::add's forward-reference check satisfied; reading from
        // a future writer is representable by construction order anyway
        // since ids are arbitrary labels here).
        const auto& ws = writers[x];
        const std::size_t sources = ws.size() + 1;
        const std::size_t pick = rng.next_below(sources);
        if (pick == ws.size()) {
          ops.push_back(Operation::read(x, 0, kInitialMOp));
        } else {
          const MOpId w = ws[pick];
          ops.push_back(Operation::read(x, h.mop(w).final_write_value(x), w));
        }
      }
    }
    h.add(MOperation(p, std::move(ops), invoke, respond, "free"));
    for (const auto& [x, v] : writes_this_mop) writers[x].push_back(k);
  }
  return h;
}

}  // namespace mocc::core
