// Synthetic history generation for property tests and the NP-scaling
// experiment (E4).
//
// Three families:
//   - known-admissible histories, built by simulating one global legal
//     sequential execution and assigning real-time intervals consistent
//     with it (so they satisfy even m-linearizability);
//   - perturbed histories: admissible ones with some reads rewired to a
//     different writer of the same object — overwhelmingly inadmissible
//     and never trivially so (reads still reference real writers);
//   - free histories: reads-from chosen uniformly among writers of the
//     object, real-time intervals random — the mixed population whose
//     exact checking cost the E4 benchmark measures.
#pragma once

#include "core/history.hpp"
#include "util/rng.hpp"

namespace mocc::core {

struct GeneratorParams {
  std::size_t num_processes = 3;
  std::size_t num_objects = 4;
  std::size_t num_mops = 10;
  std::size_t min_ops_per_mop = 1;
  std::size_t max_ops_per_mop = 3;
  /// Probability that an individual operation is a write.
  double write_probability = 0.5;
  /// Fraction of an m-operation's duration that overlaps its neighbours
  /// in the admissible generator (0 = serial execution, values close to
  /// 0.5 give heavy overlap).
  double overlap = 0.3;
};

/// A history admissible w.r.t. m-linearizability (hence also m-normality
/// and m-sequential consistency) by construction.
History generate_admissible_history(const GeneratorParams& params, util::Rng& rng);

/// Rewires up to `rewires` external reads to a different writer of the
/// same object. Returns the number of reads actually rewired (0 means the
/// history had no rewirable read and is returned unchanged).
std::size_t perturb_reads_from(History& h, util::Rng& rng, std::size_t rewires = 1);

/// Fully random history: arbitrary reads-from among writers, random
/// overlapping intervals (per-process well-formedness maintained).
History generate_free_history(const GeneratorParams& params, util::Rng& rng);

}  // namespace mocc::core
