#include "core/audit.hpp"

#include <sstream>

#include "core/constraints.hpp"
#include "core/legality.hpp"
#include "util/assert.hpp"

namespace mocc::core {

void AuditReport::fail(std::string message) {
  ok = false;
  violations.push_back(std::move(message));
}

std::string AuditReport::to_string() const {
  if (ok) return "audit: ok";
  std::ostringstream out;
  out << "audit: " << violations.size() << " violation(s)\n";
  for (const auto& v : violations) out << "  - " << v << "\n";
  return out.str();
}

AuditReport audit_protocol_execution(const History& h, const ProtocolTrace& trace) {
  AuditReport report;
  const std::size_t n = h.size();
  MOCC_ASSERT(trace.sync_order.size() == n);
  MOCC_ASSERT(trace.timestamps.size() == n);
  MOCC_ASSERT(trace.is_update.size() == n);

  const util::BitRelation closed = trace.sync_order.transitive_closure();

  if (!closed.closed_is_irreflexive()) {
    report.fail("sync order ~>H- is cyclic");
    return report;
  }

  auto ts = [&](MOpId id) -> const util::VersionVector& { return trace.timestamps[id]; };

  // P5.1: β ~>H− α with both queries must come from real-time order
  // (resp(β) < inv(α)). We check the closed consequence the lemma needs:
  // two queries ordered by the closure must be real-time ordered — on a
  // recorded execution this is checkable directly from the time stamps.
  for (MOpId b = 0; b < n; ++b) {
    for (MOpId a = 0; a < n; ++a) {
      if (a == b || !trace.sync_order.has(b, a)) continue;
      if (!trace.is_update[b] && !trace.is_update[a]) {
        if (!(h.mop(b).response() < h.mop(a).invoke())) {
          std::ostringstream out;
          out << "P5.1: queries m" << b << " ~> m" << a
              << " ordered without real-time precedence";
          report.fail(out.str());
        }
      }
    }
  }

  // P5.2: any two (conservatively classified) updates are ordered.
  for (MOpId a = 0; a < n; ++a) {
    for (MOpId b = a + 1; b < n; ++b) {
      if (trace.is_update[a] && trace.is_update[b]) {
        if (!closed.has(a, b) && !closed.has(b, a)) {
          std::ostringstream out;
          out << "P5.2: updates m" << a << ", m" << b << " unordered";
          report.fail(out.str());
        }
      }
    }
  }

  // P5.3 / P5.4 on the closed relation (P5.5/P5.6 in the paper): ts is
  // monotonic along ~>H and strictly increases on written components.
  for (MOpId b = 0; b < n; ++b) {
    for (MOpId a = 0; a < n; ++a) {
      if (a == b || !closed.has(b, a)) continue;
      if (!ts(b).pointwise_leq(ts(a))) {
        std::ostringstream out;
        out << "P5.3: m" << b << " ~> m" << a << " but ts(m" << b << ")="
            << ts(b).to_string() << " !<= ts(m" << a << ")=" << ts(a).to_string();
        report.fail(out.str());
      }
      for (const ObjectId x : h.mop(a).wobjects()) {
        if (!(ts(b)[x] < ts(a)[x])) {
          std::ostringstream out;
          out << "P5.4: m" << b << " ~> m" << a << ", x" << x << " in wobjects(m" << a
              << ") but ts[x] not strictly increasing";
          report.fail(out.str());
        }
      }
    }
  }

  // P5.7 / P5.8: reads-from pins versions.
  for (MOpId alpha = 0; alpha < n; ++alpha) {
    for (const Operation& read : h.mop(alpha).external_reads()) {
      if (read.reads_from == kInitialMOp) {
        // Version 0: the reader must not have advanced x past the write
        // it (possibly) performs itself.
        const std::uint64_t expected = h.mop(alpha).writes(read.object) ? 1 : 0;
        if (ts(alpha)[read.object] < expected) {
          std::ostringstream out;
          out << "P5.7/8(init): m" << alpha << " reads x" << read.object
              << " from init but ts[x]=" << ts(alpha)[read.object];
          report.fail(out.str());
        }
        continue;
      }
      const MOpId beta = read.reads_from;
      const ObjectId x = read.object;
      if (!h.mop(alpha).writes(x)) {
        if (ts(beta)[x] != ts(alpha)[x]) {
          std::ostringstream out;
          out << "P5.7: m" << alpha << " reads x" << x << " from m" << beta
              << " but ts(beta)[x]=" << ts(beta)[x] << " != ts(alpha)[x]="
              << ts(alpha)[x];
          report.fail(out.str());
        }
      } else {
        if (ts(beta)[x] + 1 != ts(alpha)[x]) {
          std::ostringstream out;
          out << "P5.8: m" << alpha << " reads+writes x" << x << " from m" << beta
              << " but ts(beta)[x]=" << ts(beta)[x] << ", ts(alpha)[x]="
              << ts(alpha)[x];
          report.fail(out.str());
        }
      }
    }
  }

  // Derived guarantees: Lemma 8 (WW-constraint) and Lemma 9 (legality).
  if (auto violation = find_constraint_violation(h, closed, Constraint::kWW)) {
    report.fail("Lemma 8 consequence failed: " + violation->to_string());
  }
  if (auto violation = find_legality_violation(h, closed)) {
    report.fail("Lemma 9 consequence failed: " + violation->to_string());
  }

  return report;
}

}  // namespace mocc::core
