#include "core/admissibility.hpp"

#include <cstring>
#include <string>
#include <unordered_set>

#include "core/legality.hpp"
#include "util/assert.hpp"

namespace mocc::core {

namespace {

class Search {
 public:
  Search(const History& h, const util::BitRelation& closed,
         const AdmissibilityOptions& options)
      : h_(h), closed_(closed), options_(options), n_(h.size()) {
    // Per m-op: predecessor count and successor lists from the closed
    // relation (the closure is what linear extensions must respect; using
    // it directly keeps the "all preds placed" test exact).
    pred_count_.assign(n_, 0);
    succs_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) {
        if (i != j && closed_.has(i, j)) {
          ++pred_count_[j];
          succs_[i].push_back(static_cast<MOpId>(j));
        }
      }
    }
    last_writer_.assign(h_.num_objects(), kInitialMOp);
    placed_.assign(n_, false);
  }

  AdmissibilityResult run() {
    AdmissibilityResult result;
    if (!closed_.closed_is_irreflexive()) {
      // ~>H itself is cyclic: no sequential extension exists.
      result.admissible = false;
      result.states_visited = 1;
      return result;
    }
    order_.reserve(n_);
    const bool found = extend(result);
    result.admissible = found;
    if (found) {
      MOCC_DEBUG_ASSERT(is_legal_sequential_order(h_, order_));
      result.witness = order_;
    }
    return result;
  }

 private:
  bool budget_exceeded(AdmissibilityResult& result) {
    if (options_.max_states != 0 && result.states_visited >= options_.max_states) {
      result.completed = false;
      return true;
    }
    return false;
  }

  /// Can α be appended to the current prefix?
  bool can_place(MOpId alpha) const {
    if (placed_[alpha] || pred_count_[alpha] != 0) return false;
    for (const Operation& read : h_.mop(alpha).external_reads()) {
      if (last_writer_[read.object] != read.reads_from) return false;
    }
    return true;
  }

  std::string state_key() const {
    // Exact key: placement bitmap + last-writer table. Exactness matters —
    // a hash collision would make the checker unsound.
    std::string key;
    key.reserve((n_ + 7) / 8 + last_writer_.size() * sizeof(MOpId));
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      acc = static_cast<std::uint8_t>(acc | (placed_[i] ? 1U << (i % 8) : 0U));
      if (i % 8 == 7) {
        key.push_back(static_cast<char>(acc));
        acc = 0;
      }
    }
    if (n_ % 8 != 0) key.push_back(static_cast<char>(acc));
    const char* raw = reinterpret_cast<const char*>(last_writer_.data());
    key.append(raw, last_writer_.size() * sizeof(MOpId));
    return key;
  }

  bool extend(AdmissibilityResult& result) {
    ++result.states_visited;
    if (order_.size() == n_) return true;
    if (budget_exceeded(result)) return false;

    std::string key;
    if (options_.use_memoization) {
      key = state_key();
      if (failed_states_.count(key) > 0) return false;
    }

    for (MOpId candidate = 0; candidate < n_; ++candidate) {
      if (!can_place(candidate)) continue;

      // Place.
      placed_[candidate] = true;
      order_.push_back(candidate);
      std::vector<std::pair<ObjectId, MOpId>> saved_writers;
      for (const ObjectId x : h_.mop(candidate).wobjects()) {
        saved_writers.emplace_back(x, last_writer_[x]);
        last_writer_[x] = candidate;
      }
      for (const MOpId s : succs_[candidate]) --pred_count_[s];

      if (extend(result)) return true;

      // Undo.
      for (const MOpId s : succs_[candidate]) ++pred_count_[s];
      for (auto it = saved_writers.rbegin(); it != saved_writers.rend(); ++it) {
        last_writer_[it->first] = it->second;
      }
      order_.pop_back();
      placed_[candidate] = false;

      if (!result.completed) return false;
    }

    if (options_.use_memoization && result.completed) {
      failed_states_.insert(std::move(key));
    }
    return false;
  }

  const History& h_;
  const util::BitRelation& closed_;
  const AdmissibilityOptions& options_;
  std::size_t n_;

  std::vector<std::size_t> pred_count_;
  std::vector<std::vector<MOpId>> succs_;
  std::vector<MOpId> last_writer_;
  std::vector<bool> placed_;
  std::vector<MOpId> order_;
  std::unordered_set<std::string> failed_states_;
};

}  // namespace

AdmissibilityResult check_admissible(const History& h, const util::BitRelation& base,
                                     const AdmissibilityOptions& options) {
  util::BitRelation closed = base.transitive_closure();

  if (options.use_rw_pruning) {
    // Forced edges: Lemma 5's intuition runs both ways — in any legal
    // sequential extension, an overwriter γ of a value α read must land
    // after α whenever it lands after the writer β. Iterating to a fixed
    // point is sound (each added edge is implied by legality of the
    // extension) and sharpens the closure the search must respect.
    for (;;) {
      util::BitRelation extended = extended_relation(h, closed);
      if (!extended.closed_is_irreflexive()) {
        // Every sequential extension would be illegal.
        AdmissibilityResult result;
        result.admissible = false;
        result.states_visited = 1;
        return result;
      }
      if (extended.pair_count() == closed.pair_count()) break;
      closed = std::move(extended);
    }
  }

  Search search(h, closed, options);
  return search.run();
}

AdmissibilityResult check_condition(const History& h, Condition condition,
                                    const AdmissibilityOptions& options) {
  return check_admissible(h, base_order(h, condition), options);
}

}  // namespace mocc::core
