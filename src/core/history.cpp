#include "core/history.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/assert.hpp"

namespace mocc::core {

History::History(std::size_t num_processes, std::size_t num_objects)
    : num_processes_(num_processes),
      num_objects_(num_objects),
      by_process_(num_processes) {}

MOpId History::add(MOperation mop) {
  MOCC_ASSERT(mop.process() < num_processes_);
  // Forward reads-from references are allowed (m-operations can mutually
  // read from each other across processes); relation builders bound-check
  // the ids when the history is consumed.
  for (const Operation& op : mop.ops()) {
    MOCC_ASSERT(op.object < num_objects_);
  }
  auto& sequence = by_process_[mop.process()];
  if (!sequence.empty()) {
    const MOperation& prev = mops_[sequence.back()];
    MOCC_ASSERT_MSG(prev.response() <= mop.invoke(),
                    "process subhistory not sequential (overlapping m-operations)");
  }
  const auto id = static_cast<MOpId>(mops_.size());
  sequence.push_back(id);
  mops_.push_back(std::move(mop));
  return id;
}

const MOperation& History::mop(MOpId id) const {
  MOCC_ASSERT(id < mops_.size());
  return mops_[id];
}

const std::vector<MOpId>& History::process_ops(ProcessId process) const {
  MOCC_ASSERT(process < num_processes_);
  return by_process_[process];
}

bool History::well_formed(std::string* why) const {
  for (ProcessId p = 0; p < num_processes_; ++p) {
    const auto& sequence = by_process_[p];
    for (std::size_t i = 1; i < sequence.size(); ++i) {
      const MOperation& prev = mops_[sequence[i - 1]];
      const MOperation& next = mops_[sequence[i]];
      if (prev.response() > next.invoke()) {
        if (why != nullptr) {
          std::ostringstream out;
          out << "process P" << p << ": m-operation " << sequence[i - 1]
              << " responds at " << prev.response() << " after m-operation "
              << sequence[i] << " is invoked at " << next.invoke();
          *why = out.str();
        }
        return false;
      }
    }
  }
  return true;
}

bool History::value_coherent(std::string* why, Value initial_value) const {
  const auto complain = [why](std::string message) {
    if (why != nullptr) *why = std::move(message);
    return false;
  };
  for (MOpId id = 0; id < mops_.size(); ++id) {
    for (const Operation& read : mops_[id].external_reads()) {
      std::ostringstream out;
      out << "m" << id << " reads x" << read.object << " = " << read.value
          << " from ";
      if (read.reads_from == kInitialMOp) {
        if (read.value != initial_value) {
          out << "the initial write, whose value is " << initial_value;
          return complain(out.str());
        }
        continue;
      }
      if (read.reads_from >= mops_.size()) {
        out << "m" << read.reads_from << ", which does not exist";
        return complain(out.str());
      }
      const MOperation& writer = mops_[read.reads_from];
      if (!writer.writes(read.object)) {
        out << "m" << read.reads_from << ", which never writes x"
            << read.object;
        return complain(out.str());
      }
      if (writer.final_write_value(read.object) != read.value) {
        out << "m" << read.reads_from << ", whose final write stores "
            << writer.final_write_value(read.object);
        return complain(out.str());
      }
    }
  }
  return true;
}

std::vector<ObjectId> History::rfobjects(MOpId alpha, MOpId beta) const {
  const MOperation& a = mop(alpha);
  std::vector<ObjectId> out;
  for (const Operation& read : a.external_reads()) {
    if (read.reads_from == beta) out.push_back(read.object);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool History::reads_from(MOpId beta, MOpId alpha) const {
  if (beta == alpha) return false;
  for (const Operation& read : mop(alpha).external_reads()) {
    if (read.reads_from == beta) return true;
  }
  return false;
}

bool History::conflict(MOpId a, MOpId b) const {
  if (a == b) return false;
  const MOperation& x = mop(a);
  const MOperation& y = mop(b);
  // (objects(a) ∩ wobjects(b)) ∪ (objects(b) ∩ wobjects(a)) ≠ ∅
  for (ObjectId obj : y.wobjects()) {
    if (x.touches(obj)) return true;
  }
  for (ObjectId obj : x.wobjects()) {
    if (y.touches(obj)) return true;
  }
  return false;
}

bool History::interfere(MOpId alpha, MOpId beta, MOpId gamma) const {
  if (alpha == beta || beta == gamma || alpha == gamma) return false;
  const MOperation& g = mop(gamma);
  for (const Operation& read : mop(alpha).external_reads()) {
    if (read.reads_from == beta && g.writes(read.object)) return true;
  }
  return false;
}

bool History::equivalent(const History& other) const {
  if (num_processes_ != other.num_processes_ || size() != other.size()) return false;
  // Build the correspondence between m-op ids: position-in-process-order.
  // Histories are equivalent iff each process issues the same sequence of
  // m-operations (same operations, same values) and corresponding reads
  // read from corresponding writers.
  std::vector<MOpId> map_to_other(size(), 0);
  for (ProcessId p = 0; p < num_processes_; ++p) {
    const auto& mine = by_process_[p];
    const auto& theirs = other.by_process_[p];
    if (mine.size() != theirs.size()) return false;
    for (std::size_t i = 0; i < mine.size(); ++i) map_to_other[mine[i]] = theirs[i];
  }
  for (ProcessId p = 0; p < num_processes_; ++p) {
    const auto& mine = by_process_[p];
    const auto& theirs = other.by_process_[p];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const MOperation& a = mops_[mine[i]];
      const MOperation& b = other.mops_[theirs[i]];
      if (a.ops().size() != b.ops().size()) return false;
      for (std::size_t k = 0; k < a.ops().size(); ++k) {
        const Operation& x = a.ops()[k];
        const Operation& y = b.ops()[k];
        if (x.type != y.type || x.object != y.object || x.value != y.value) return false;
        if (x.type == OpType::kRead) {
          const MOpId mapped =
              x.reads_from == kInitialMOp ? kInitialMOp : map_to_other[x.reads_from];
          if (mapped != y.reads_from) return false;
        }
      }
    }
  }
  return true;
}

bool History::derive_reads_from(Value initial_value) {
  // (object, value) -> writer id; must be unique.
  std::map<std::pair<ObjectId, Value>, MOpId> writer_of;
  for (MOpId id = 0; id < mops_.size(); ++id) {
    for (const Operation& op : mops_[id].final_writes()) {
      auto [it, inserted] = writer_of.insert({{op.object, op.value}, id});
      if (!inserted) return false;  // ambiguous value
    }
  }
  for (MOpId id = 0; id < mops_.size(); ++id) {
    MOperation& m = mops_[id];
    // Rebuild the m-operation with reads_from links patched in.
    std::vector<Operation> ops = m.ops();
    std::map<ObjectId, Value> own_writes;
    for (Operation& op : ops) {
      if (op.type == OpType::kWrite) {
        own_writes[op.object] = op.value;
        continue;
      }
      if (auto it = own_writes.find(op.object); it != own_writes.end()) {
        // Internal read: must match own preceding write; no external link.
        if (op.value != it->second) return false;
        op.reads_from = id;
        continue;
      }
      if (op.value == initial_value &&
          writer_of.find({op.object, op.value}) == writer_of.end()) {
        op.reads_from = kInitialMOp;
        continue;
      }
      const auto it = writer_of.find({op.object, op.value});
      if (it == writer_of.end()) return false;  // reads a value nobody wrote
      if (it->second == id) return false;       // would read own overwritten value
      op.reads_from = it->second;
    }
    mops_[id] = MOperation(m.process(), std::move(ops), m.invoke(), m.response(),
                           m.label());
  }
  return true;
}

std::string History::to_string() const {
  std::ostringstream out;
  out << "history: " << size() << " m-operations, " << num_processes_
      << " processes, " << num_objects_ << " objects\n";
  for (MOpId id = 0; id < mops_.size(); ++id) {
    out << "  m" << id << ": " << mops_[id].to_string() << "\n";
  }
  return out.str();
}

}  // namespace mocc::core
