#include "core/constraints.hpp"

#include <sstream>

namespace mocc::core {

const char* constraint_name(Constraint c) {
  switch (c) {
    case Constraint::kOO: return "OO";
    case Constraint::kWW: return "WW";
    case Constraint::kWO: return "WO";
  }
  return "?";
}

std::string ConstraintViolation::to_string() const {
  std::ostringstream out;
  out << constraint_name(constraint) << "-constraint requires m" << a << " and m" << b
      << " to be ordered, but they are not";
  return out.str();
}

namespace {

bool write_common_object(const MOperation& x, const MOperation& y) {
  for (const ObjectId obj : x.wobjects()) {
    if (y.writes(obj)) return true;
  }
  return false;
}

bool requires_ordering(const History& h, MOpId a, MOpId b, Constraint constraint) {
  const MOperation& x = h.mop(a);
  const MOperation& y = h.mop(b);
  switch (constraint) {
    case Constraint::kOO:
      return h.conflict(a, b);
    case Constraint::kWW:
      return x.is_update() && y.is_update();
    case Constraint::kWO:
      return write_common_object(x, y);
  }
  return false;
}

}  // namespace

std::optional<ConstraintViolation> find_constraint_violation(
    const History& h, const util::BitRelation& order, Constraint constraint) {
  for (MOpId a = 0; a < h.size(); ++a) {
    for (MOpId b = a + 1; b < h.size(); ++b) {
      if (!requires_ordering(h, a, b, constraint)) continue;
      if (!order.has(a, b) && !order.has(b, a)) {
        return ConstraintViolation{constraint, a, b};
      }
    }
  }
  return std::nullopt;
}

}  // namespace mocc::core
