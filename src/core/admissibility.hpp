// Exact admissibility checking (D4.7) — the NP-complete problem.
//
// A history is admissible w.r.t. ~>H iff some legal sequential history
// extends it (same m-operations, same process subhistories and reads-from,
// total order respecting ~>H). Theorems 1–2 show deciding this is
// NP-complete even with the reads-from relation known, so this checker is
// necessarily worst-case exponential: it backtracks over linear extensions
// of ~>H, placing one minimal m-operation at a time.
//
// Soundness of the incremental test: a prefix of a legal sequential order
// is characterized by (set of placed m-ops, last-writer per object);
// an m-operation α may be appended iff every predecessor under ~>H is
// placed and every external read (x from β) of α satisfies
// last_writer[x] == β. Failed (set, last-writer) states are memoized —
// revisiting one through a different placement order cannot succeed
// either, because future feasibility depends only on that pair.
//
// The search also seeds itself with the extended relation ~+ (D4.12):
// the ~rw edges are *forced* in every legal extension, so adding them up
// front prunes without losing completeness; if ~+ is cyclic the history
// is immediately inadmissible.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/history.hpp"
#include "core/relations.hpp"
#include "util/relation.hpp"

namespace mocc::core {

struct AdmissibilityOptions {
  /// Abort the search after this many visited states (0 = unlimited).
  std::uint64_t max_states = 0;
  /// Pre-extend the base order with forced ~rw edges (D4.11/D4.12).
  /// On by default; the NP-scaling benchmark disables it to measure the
  /// raw search.
  bool use_rw_pruning = true;
  /// Memoize failed states. Disabling exposes the raw backtracking cost.
  bool use_memoization = true;
};

struct AdmissibilityResult {
  /// Meaningful only when completed.
  bool admissible = false;
  /// False iff the state budget was exhausted before an answer was found.
  bool completed = true;
  /// A witness legal sequential order (total order of m-op ids) when
  /// admissible.
  std::optional<std::vector<MOpId>> witness;
  std::uint64_t states_visited = 0;
};

/// Decides admissibility of `h` w.r.t. the transitive closure of `base`.
AdmissibilityResult check_admissible(const History& h, const util::BitRelation& base,
                                     const AdmissibilityOptions& options = {});

/// Convenience wrappers for the three consistency conditions (§2.3).
AdmissibilityResult check_condition(const History& h, Condition condition,
                                    const AdmissibilityOptions& options = {});

inline AdmissibilityResult check_m_sequentially_consistent(
    const History& h, const AdmissibilityOptions& options = {}) {
  return check_condition(h, Condition::kMSequentialConsistency, options);
}

inline AdmissibilityResult check_m_linearizable(const History& h,
                                                const AdmissibilityOptions& options = {}) {
  return check_condition(h, Condition::kMLinearizability, options);
}

inline AdmissibilityResult check_m_normal(const History& h,
                                          const AdmissibilityOptions& options = {}) {
  return check_condition(h, Condition::kMNormality, options);
}

}  // namespace mocc::core
