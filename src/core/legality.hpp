// Legality, the read-write precedence ~rw, and the extended relation ~+
// (§2.2 and §4, D4.6 / D4.11 / D4.12).
//
// A read is legal if it does not read from an overwritten write: for every
// triple of interfering m-operations (α reads X from β, γ writes into X),
// the ordering β ~> γ ~> α must not hold. D4.6 phrases legality of a whole
// history as: for all interfering (α, β, γ), ¬(β ~>H γ) ∨ ¬(γ ~>H α).
#pragma once

#include <optional>
#include <string>

#include "core/history.hpp"
#include "util/relation.hpp"

namespace mocc::core {

struct LegalityViolation {
  MOpId alpha = 0;  // the reader
  MOpId beta = 0;   // the writer read from
  MOpId gamma = 0;  // the interposed overwriter
  ObjectId object = 0;
  std::string to_string() const;
};

/// D4.6 over the (transitively closed) relation `order`. Returns the
/// first violation found, or nullopt if the history is legal.
std::optional<LegalityViolation> find_legality_violation(const History& h,
                                                         const util::BitRelation& order);

inline bool legal(const History& h, const util::BitRelation& order) {
  return !find_legality_violation(h, order).has_value();
}

/// D4.11: α ~rw~> γ iff some β interferes with them and β ~>H γ. Intuition:
/// in any legal sequential extension γ (which overwrites what α read) must
/// come after α.
util::BitRelation rw_precedence(const History& h, const util::BitRelation& order);

/// D4.12: the extended relation ~+H = (~H ∪ ~rw)+ . Returned transitively
/// closed; Lemmas 3 and 4 guarantee irreflexivity when the history is
/// legal and under OO- or WW-constraint (callers should still check
/// closed_is_irreflexive when the precondition is not established).
util::BitRelation extended_relation(const History& h, const util::BitRelation& order);

/// Replay check: is the given total order of all m-operations a *legal
/// sequential* history equivalent to h? Every external read must see the
/// most recent preceding (or initial) write to its object.
bool is_legal_sequential_order(const History& h, const std::vector<MOpId>& order);

}  // namespace mocc::core
