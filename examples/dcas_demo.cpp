// DCAS and custom multi-object operations: an optimistic shared stack.
//
//   ./dcas_demo [--protocol=mlin] [--processes=4] [--pushes=6]
//               [--capacity=64] [--delay=lan] [--seed=11]
//
// The paper motivates multi-object operations with DCAS ("DCAS reduces
// the allocation and copy cost thereby permitting a more efficient
// implementation of concurrent objects", §1). This demo builds the
// classic DCAS client: a shared stack whose push must atomically
//   (a) check the top-of-stack index it observed is still current,
//   (b) write the value into the next cell, and
//   (c) bump the top index
// — a THREE-object conditional m-operation, written directly against the
// MScript builder (the stock library covers the common shapes; arbitrary
// deterministic procedures are first-class). Processes race pushes with
// optimistic retry; afterwards the stack is drained and the demo checks
// that every successful push is present exactly once.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "api/system.hpp"
#include "mscript/builder.hpp"
#include "mscript/library.hpp"
#include "util/cli.hpp"

namespace {

using namespace mocc;

constexpr mscript::ObjectId kTop = 0;  // stack pointer; cells follow
constexpr mscript::Value kPopEmpty = -1;

mscript::ObjectId cell(std::int64_t index) {
  return static_cast<mscript::ObjectId>(1 + index);
}

/// push(expected_top, value): atomically { if top == expected_top then
/// cells[top] := value; top := top+1; return 1 else return 0 }.
mscript::Program make_push(std::int64_t expected_top, mscript::Value value) {
  mscript::Builder b("stack_push");
  const auto top = b.reg();
  const auto expect = b.reg();
  const auto cond = b.reg();
  const auto val = b.reg();
  b.read(top, kTop)
      .load_const(expect, expected_top)
      .cmp_eq(cond, top, expect)
      .jump_if_zero(cond, "stale")
      .load_const(val, value)
      .write(cell(expected_top), val)
      .load_const(val, expected_top + 1)
      .write(kTop, val)
      .ret_const(1)
      .label("stale")
      .ret_const(0);
  return b.build();
}

/// pop(expected_top): atomically { if top == expected_top && top > 0 then
/// top := top-1; return cells[top-1] else return kPopEmpty-or-stale }.
mscript::Program make_pop(std::int64_t expected_top) {
  mscript::Builder b("stack_pop");
  const auto top = b.reg();
  const auto expect = b.reg();
  const auto cond = b.reg();
  const auto zero = b.reg();
  const auto val = b.reg();
  b.read(top, kTop)
      .load_const(expect, expected_top)
      .cmp_eq(cond, top, expect)
      .jump_if_zero(cond, "stale")
      .load_const(zero, 0)
      .cmp_lt(cond, zero, top)
      .jump_if_zero(cond, "stale");
  if (expected_top > 0) {
    b.read(val, cell(expected_top - 1))
        .load_const(zero, expected_top - 1)
        .write(kTop, zero)
        .ret(val);
  } else {
    b.ret_const(kPopEmpty);
  }
  b.label("stale").ret_const(kPopEmpty);
  return b.build();
}

/// Optimistic retry driver: read top (query), attempt the conditional
/// update, retry on staleness.
struct Pusher : std::enable_shared_from_this<Pusher> {
  api::System& system;
  core::ProcessId process;
  std::vector<mscript::Value> to_push;
  std::size_t next = 0;
  std::size_t attempts = 0;
  std::function<void()> on_done;

  Pusher(api::System& s, core::ProcessId p, std::vector<mscript::Value> values,
         std::function<void()> done)
      : system(s), process(p), to_push(std::move(values)), on_done(std::move(done)) {}

  void step() {
    if (next == to_push.size()) {
      on_done();
      return;
    }
    auto self = shared_from_this();
    // 1. Observe the top (a query m-operation).
    system.submit(process, 1, mscript::lib::make_read(kTop),
                  [self](const protocols::InvocationOutcome& out) {
                    self->attempt(out.return_value);
                  });
  }

  void attempt(std::int64_t observed_top) {
    auto self = shared_from_this();
    ++attempts;
    // 2. Conditional push against the observed top (an update).
    system.submit(process, 1, make_push(observed_top, to_push[next]),
                  [self](const protocols::InvocationOutcome& out) {
                    if (out.return_value == 1) ++self->next;
                    self->step();  // retry on staleness, continue on success
                  });
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);

  api::SystemConfig config;
  config.protocol = args.get_string("protocol", "mlin");
  config.num_processes = static_cast<std::size_t>(args.get_int("processes", 4));
  const auto pushes = static_cast<std::size_t>(args.get_int("pushes", 6));
  const auto capacity = static_cast<std::size_t>(args.get_int("capacity", 64));
  config.num_objects = 1 + capacity;
  config.delay = args.get_string("delay", "lan");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  const std::size_t total = config.num_processes * pushes;
  if (total > capacity) {
    std::fprintf(stderr, "capacity too small for %zu pushes\n", total);
    return 2;
  }

  std::printf("dcas_demo: %zu processes x %zu pushes, protocol=%s\n",
              config.num_processes, pushes, config.protocol.c_str());

  api::System system(config);

  // Every process pushes its own tagged values: value = process*1000+i.
  std::vector<std::shared_ptr<Pusher>> pushers;
  std::size_t done = 0;
  std::size_t total_attempts = 0;
  for (core::ProcessId p = 0; p < config.num_processes; ++p) {
    std::vector<mscript::Value> values;
    for (std::size_t i = 0; i < pushes; ++i) {
      values.push_back(static_cast<mscript::Value>(p) * 1000 +
                       static_cast<mscript::Value>(i));
    }
    pushers.push_back(std::make_shared<Pusher>(system, p, std::move(values),
                                               [&] { ++done; }));
  }
  for (const auto& pusher : pushers) pusher->step();
  system.run();

  for (const auto& pusher : pushers) total_attempts += pusher->attempts;
  std::printf("all %zu pushers finished: %zu pushes in %zu attempts "
              "(%.2f attempts/push under contention)\n",
              done, total, total_attempts,
              static_cast<double>(total_attempts) / static_cast<double>(total));

  // Drain the stack from process 0 with the same optimistic pattern.
  std::vector<mscript::Value> popped;
  std::function<void()> drain = [&] {
    system.submit(0, 1, mscript::lib::make_read(kTop),
                  [&](const protocols::InvocationOutcome& out) {
                    const auto top = out.return_value;
                    if (top == 0) return;  // empty: stop
                    system.submit(0, 1, make_pop(top),
                                  [&](const protocols::InvocationOutcome& pop_out) {
                                    if (pop_out.return_value != kPopEmpty) {
                                      popped.push_back(pop_out.return_value);
                                    }
                                    drain();
                                  });
                  });
  };
  drain();
  system.run();

  std::printf("drained %zu values\n", popped.size());

  // Every pushed value must come back exactly once.
  std::map<mscript::Value, int> counts;
  for (const auto v : popped) ++counts[v];
  bool ok = popped.size() == total;
  for (core::ProcessId p = 0; p < config.num_processes; ++p) {
    for (std::size_t i = 0; i < pushes; ++i) {
      const auto v = static_cast<mscript::Value>(p) * 1000 +
                     static_cast<mscript::Value>(i);
      if (counts[v] != 1) {
        std::printf("LOST OR DUPLICATED value %lld (count %d)\n",
                    static_cast<long long>(v), counts[v]);
        ok = false;
      }
    }
  }
  if (ok) std::printf("multiset check: every push present exactly once\n");

  // Per-process LIFO: each process's own values must pop in reverse
  // push order (its pushes are totally ordered by its program order).
  for (core::ProcessId p = 0; p < config.num_processes; ++p) {
    std::vector<mscript::Value> mine;
    for (const auto v : popped) {
      if (v / 1000 == static_cast<mscript::Value>(p)) mine.push_back(v);
    }
    if (!std::is_sorted(mine.rbegin(), mine.rend())) {
      std::printf("LIFO ORDER VIOLATED for process %u\n", p);
      ok = false;
    }
  }
  if (ok) std::printf("per-process LIFO order holds\n");
  return ok ? 0 : 1;
}
