// history_audit: the consistency checkers as a command-line playground.
//
//   ./history_audit --mode=demo
//   ./history_audit --mode=random  [--mops=12] [--processes=4]
//                   [--objects=3] [--trials=20] [--seed=1]
//   ./history_audit --mode=perturbed [--rewires=2] ...same flags...
//   ./history_audit --file=history.txt [--dump-example=path]
//
// demo      — walks through the paper's Figure 2/3 example (H1, its
//             illegal extension S1, the ~rw edge that forbids it).
// random    — generates admissible-by-construction histories, perturbs
//             nothing, and shows the three conditions' verdicts plus
//             exact-checker effort.
// perturbed — rewires reads-from links and reports how often each
//             consistency condition catches the corruption (a miniature
//             fault-injection study).
// --file    — loads a history in the text format of core/serialize.hpp
//             and reports all three verdicts plus a witness.
// --dump-example writes a commented example file to get started.
#include <cstdio>
#include <string>

#include "core/admissibility.hpp"
#include "core/fast_check.hpp"
#include "core/generate.hpp"
#include "core/legality.hpp"
#include "core/relations.hpp"
#include "core/serialize.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace mocc;
using core::Condition;

const char* verdict(bool admissible) { return admissible ? "yes" : "NO"; }

int run_demo() {
  std::printf("== Figure 2: history H1 under WW-constraint ==\n\n");
  core::History h(2, 2);
  const auto alpha = h.add(core::MOperation(
      0, {core::Operation::read(0, 0, core::kInitialMOp), core::Operation::write(1, 2)},
      1, 2, "alpha"));
  const auto gamma =
      h.add(core::MOperation(1, {core::Operation::write(0, 1)}, 1, 4, "gamma"));
  const auto beta =
      h.add(core::MOperation(0, {core::Operation::read(1, 2, alpha)}, 5, 6, "beta"));
  const auto delta =
      h.add(core::MOperation(1, {core::Operation::write(1, 3)}, 5, 8, "delta"));
  std::printf("%s\n", h.to_string().c_str());

  auto base = core::base_order(h, Condition::kMSequentialConsistency);
  base.add(alpha, gamma);
  base.add(gamma, delta);
  std::printf("WW-constraint edges: alpha -> gamma -> delta\n\n");

  const auto closed = base.transitive_closure();
  std::printf("H1 legal?            %s\n",
              core::legal(h, closed) ? "yes" : "no");
  const auto rw = core::rw_precedence(h, closed);
  std::printf("~rw edge beta->delta? %s   (interfere(beta, alpha, delta))\n",
              rw.has(beta, delta) ? "yes" : "no");

  const std::vector<core::MOpId> s1{alpha, gamma, delta, beta};
  std::printf("S1 = alpha gamma delta beta legal? %s   (Figure 3's point)\n",
              core::is_legal_sequential_order(h, s1) ? "yes" : "no");

  const auto fast = core::fast_check(h, base, core::Constraint::kWW);
  std::printf("Theorem 7: admissible? %s", verdict(fast.admissible));
  if (fast.witness) {
    std::printf("   witness:");
    for (const auto id : *fast.witness) {
      std::printf(" %s", h.mop(id).label().c_str());
    }
  }
  std::printf("\n");
  return 0;
}

int run_random(const util::CliArgs& args) {
  core::GeneratorParams params;
  params.num_mops = static_cast<std::size_t>(args.get_int("mops", 12));
  params.num_processes = static_cast<std::size_t>(args.get_int("processes", 4));
  params.num_objects = static_cast<std::size_t>(args.get_int("objects", 3));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 20));
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  util::Table table({"trial", "m-SC", "m-normal", "m-lin", "states(m-lin)"});
  for (std::size_t t = 0; t < trials; ++t) {
    const auto h = core::generate_admissible_history(params, rng);
    const auto msc = core::check_m_sequentially_consistent(h);
    const auto mnorm = core::check_m_normal(h);
    const auto mlin = core::check_m_linearizable(h);
    table.add_row({std::to_string(t), verdict(msc.admissible),
                   verdict(mnorm.admissible), verdict(mlin.admissible),
                   std::to_string(mlin.states_visited)});
  }
  table.print();
  std::printf("\n(admissible-by-construction: every row should be yes/yes/yes)\n");
  return 0;
}

int run_perturbed(const util::CliArgs& args) {
  core::GeneratorParams params;
  params.num_mops = static_cast<std::size_t>(args.get_int("mops", 12));
  params.num_processes = static_cast<std::size_t>(args.get_int("processes", 4));
  params.num_objects = static_cast<std::size_t>(args.get_int("objects", 3));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 50));
  const auto rewires = static_cast<std::size_t>(args.get_int("rewires", 2));
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  std::size_t caught_msc = 0;
  std::size_t caught_mnorm = 0;
  std::size_t caught_mlin = 0;
  std::size_t actually_perturbed = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    auto h = core::generate_admissible_history(params, rng);
    if (core::perturb_reads_from(h, rng, rewires) == 0) continue;
    ++actually_perturbed;
    if (!core::check_m_sequentially_consistent(h).admissible) ++caught_msc;
    if (!core::check_m_normal(h).admissible) ++caught_mnorm;
    if (!core::check_m_linearizable(h).admissible) ++caught_mlin;
  }
  std::printf("fault injection: %zu histories, %zu reads rewired each\n",
              actually_perturbed, rewires);
  util::Table table({"condition", "corruptions caught", "rate"});
  auto rate = [&](std::size_t caught) {
    return util::Table::num(100.0 * static_cast<double>(caught) /
                                static_cast<double>(actually_perturbed),
                            1) +
           "%";
  };
  table.add_row({"m-sequential consistency", std::to_string(caught_msc),
                 rate(caught_msc)});
  table.add_row({"m-normality", std::to_string(caught_mnorm), rate(caught_mnorm)});
  table.add_row({"m-linearizability", std::to_string(caught_mlin), rate(caught_mlin)});
  table.print();
  std::printf("\n(stronger conditions catch at least as much: "
              "m-lin >= m-normal >= m-SC)\n");
  return 0;
}

int run_file(const std::string& path) {
  std::string error;
  const auto loaded = core::load_history(path, &error);
  if (!loaded) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  const core::History& h = *loaded;
  std::printf("%s\n", h.to_string().c_str());

  util::Table table({"condition", "admissible", "states", "witness"});
  for (const Condition c :
       {Condition::kMSequentialConsistency, Condition::kMNormality,
        Condition::kMLinearizability}) {
    core::AdmissibilityOptions options;
    options.max_states = 20'000'000;
    const auto result = core::check_condition(h, c, options);
    std::string witness = "-";
    if (result.witness) {
      witness.clear();
      for (const auto id : *result.witness) {
        if (!witness.empty()) witness += " ";
        witness += "m" + std::to_string(id);
      }
    }
    table.add_row({core::condition_name(c),
                   !result.completed ? "budget exceeded" : verdict(result.admissible),
                   std::to_string(result.states_visited), witness});
  }
  table.print();
  return 0;
}

int dump_example(const std::string& path) {
  // Figure 2's H1 as a starting template.
  core::History h(2, 2);
  const auto alpha = h.add(core::MOperation(
      0, {core::Operation::read(0, 0, core::kInitialMOp), core::Operation::write(1, 2)},
      1, 2, "alpha"));
  h.add(core::MOperation(1, {core::Operation::write(0, 1)}, 1, 4, "gamma"));
  h.add(core::MOperation(0, {core::Operation::read(1, 2, alpha)}, 5, 6, "beta"));
  h.add(core::MOperation(1, {core::Operation::write(1, 3)}, 5, 8, "delta"));
  std::string error;
  if (!core::save_history(h, path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  std::printf("wrote example history (paper Figure 2) to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  if (args.has("dump-example")) {
    return dump_example(args.get_string("dump-example", "history_example.txt"));
  }
  if (args.has("file")) return run_file(args.get_string("file", ""));
  const std::string mode = args.get_string("mode", "demo");
  if (mode == "demo") return run_demo();
  if (mode == "random") return run_random(args);
  if (mode == "perturbed") return run_perturbed(args);
  std::fprintf(stderr, "unknown --mode=%s (demo|random|perturbed)\n", mode.c_str());
  return 2;
}
