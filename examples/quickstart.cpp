// Quickstart: a replicated multi-object store under m-linearizability.
//
//   ./quickstart [--protocol=mlin] [--processes=4] [--objects=8]
//                [--delay=lan] [--seed=42]
//
// Creates a system, performs a handful of multi-object operations (an
// atomic m-register assignment, a DCAS, a cross-object sum), prints the
// outcomes, then audits the recorded execution against the paper's
// correctness properties and checks the claimed consistency condition.
#include <cstdio>
#include <vector>

#include "api/system.hpp"
#include "mscript/library.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace mocc;
  util::CliArgs args(argc, argv);

  api::SystemConfig config;
  config.protocol = args.get_string("protocol", "mlin");
  config.num_processes = static_cast<std::size_t>(args.get_int("processes", 4));
  config.num_objects = static_cast<std::size_t>(args.get_int("objects", 8));
  config.delay = args.get_string("delay", "lan");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::printf("mocc quickstart: protocol=%s processes=%zu objects=%zu delay=%s\n\n",
              config.protocol.c_str(), config.num_processes, config.num_objects,
              config.delay.c_str());

  api::System system(config);

  // 1. Process 0 atomically initializes objects 0..2 in ONE m-operation.
  const std::vector<mscript::ObjectId> objs{0, 1, 2};
  const std::vector<mscript::Value> vals{10, 20, 30};
  system.submit(0, 1, mscript::lib::make_m_assign(objs, vals),
                [](const protocols::InvocationOutcome& out) {
                  std::printf("[t=%llu] P0 m-assign {x0,x1,x2} := {10,20,30}\n",
                              static_cast<unsigned long long>(out.response));
                });

  // 2. Process 1 tries DCAS(x0: 10 -> 11, x1: 20 -> 21).
  system.submit(1, 2, mscript::lib::make_dcas(0, 1, 10, 20, 11, 21),
                [](const protocols::InvocationOutcome& out) {
                  std::printf("[t=%llu] P1 DCAS -> %s\n",
                              static_cast<unsigned long long>(out.response),
                              out.return_value == 1 ? "succeeded" : "failed");
                });

  // 3. Process 2 reads the sum of all three — one atomic multi-object
  //    query, not three separate reads.
  system.submit(2, 3, mscript::lib::make_sum(objs),
                [](const protocols::InvocationOutcome& out) {
                  std::printf("[t=%llu] P2 sum(x0,x1,x2) = %lld\n",
                              static_cast<unsigned long long>(out.response),
                              static_cast<long long>(out.return_value));
                });

  // 4. Process 3 transfers 5 from x2 to x0 (conditional on funds).
  system.submit(3, 4, mscript::lib::make_transfer(2, 0, 5),
                [](const protocols::InvocationOutcome& out) {
                  std::printf("[t=%llu] P3 transfer x2 -> x0 (5): %s\n",
                              static_cast<unsigned long long>(out.response),
                              out.return_value == 1 ? "ok" : "insufficient");
                });

  system.run();

  std::printf("\nmessages on the wire: %llu (%llu bytes)\n",
              static_cast<unsigned long long>(system.traffic().messages),
              static_cast<unsigned long long>(system.traffic().bytes));

  // Every run is recorded as a checkable history.
  const auto history = system.history();
  std::printf("recorded history: %zu m-operations\n", history.size());

  // Check the condition this protocol actually claims: Figure 4 (mseq)
  // guarantees m-sequential consistency; everything else here is
  // m-linearizable.
  const core::Condition claimed = config.protocol == "mseq"
                                      ? core::Condition::kMSequentialConsistency
                                      : core::Condition::kMLinearizability;
  if (system.supports_audit()) {
    const auto audit = system.audit();
    std::printf("P5.x audit: %s\n", audit.ok ? "ok" : audit.to_string().c_str());
    const auto fast = system.check_fast(claimed);
    std::printf("Theorem-7 check (%s): %s\n", core::condition_name(claimed),
                fast.admissible ? "admissible" : fast.detail.c_str());
  }
  const auto exact = system.check_exact(claimed);
  std::printf("exact check (%s): %s (%llu states)\n", core::condition_name(claimed),
              exact.admissible ? "admissible" : "NOT admissible",
              static_cast<unsigned long long>(exact.states_visited));

  const auto unused = args.unused();
  for (const auto& flag : unused) {
    std::fprintf(stderr, "warning: unused flag --%s\n", flag.c_str());
  }
  return exact.admissible ? 0 : 1;
}
