// task_queue: a distributed work queue on the typed objects layer.
//
//   ./task_queue [--protocol=mlin] [--producers=2] [--workers=3]
//                [--tasks=20] [--capacity=16] [--delay=lan] [--seed=3]
//
// Producers push tasks into a bounded FIFO queue; workers pull and
// "execute" them (bump a per-worker counter and a global done-counter).
// The queue, the counters, and the completion register are all shared
// objects replicated by the chosen protocol; the queue's enqueue and
// dequeue are conditional multi-object m-operations (validate cursor +
// move value + bump cursor in one atomic step).
//
// Invariants checked at the end: every task executed exactly once
// (no loss, no double-execution — the queue's atomicity at work), and
// per-producer task order is preserved in execution order per the FIFO
// guarantee.
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "objects/objects.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace mocc;
  util::CliArgs args(argc, argv);

  const auto producers = static_cast<std::size_t>(args.get_int("producers", 2));
  const auto workers = static_cast<std::size_t>(args.get_int("workers", 3));
  const auto tasks_per_producer = static_cast<std::size_t>(args.get_int("tasks", 20));
  const auto capacity = static_cast<std::size_t>(args.get_int("capacity", 16));

  api::SystemConfig config;
  config.protocol = args.get_string("protocol", "mlin");
  config.num_processes = producers + workers;
  // Layout: queue at 0, done-counter after it.
  const objects::ObjectId counter_base =
      static_cast<objects::ObjectId>(objects::BoundedQueue::objects_needed(capacity));
  config.num_objects = counter_base + 1;
  config.delay = args.get_string("delay", "lan");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  std::printf("task_queue: %zu producers x %zu tasks -> %zu workers (queue cap %zu, "
              "protocol=%s)\n",
              producers, tasks_per_producer, workers, capacity,
              config.protocol.c_str());

  api::System system(config);
  objects::BoundedQueue queue(system, 0, capacity);
  objects::Counter done_counter(system, counter_base);

  const std::size_t total_tasks = producers * tasks_per_producer;

  // Producers: chained enqueues (issue next after previous commits);
  // a full queue backs off by retrying the same task.
  std::size_t produced = 0;
  std::function<void(core::ProcessId, std::size_t)> produce =
      [&](core::ProcessId p, std::size_t i) {
        if (i == tasks_per_producer) return;
        const auto task = static_cast<objects::Value>(p) * 100000 +
                          static_cast<objects::Value>(i);
        queue.enqueue(p, task, [&, p, i](bool ok) {
          if (!ok) {
            produce(p, i);  // full: retry the same task
            return;
          }
          ++produced;
          produce(p, i + 1);
        });
      };

  // Workers: pull until the queue is empty AND all tasks were produced.
  std::vector<objects::Value> executed;
  std::map<core::ProcessId, std::size_t> per_worker;
  std::function<void(core::ProcessId)> work = [&](core::ProcessId w) {
    queue.dequeue(w, [&, w](std::optional<objects::Value> task) {
      if (!task.has_value()) {
        if (produced < total_tasks || executed.size() < total_tasks) {
          work(w);  // queue momentarily empty; keep polling
        }
        return;
      }
      executed.push_back(*task);
      ++per_worker[w];
      done_counter.fetch_add(w, 1, [&, w](objects::Value) { work(w); });
    });
  };

  for (core::ProcessId p = 0; p < producers; ++p) produce(p, 0);
  for (std::size_t i = 0; i < workers; ++i) {
    work(static_cast<core::ProcessId>(producers + i));
  }
  system.run();

  // ---- invariants ----
  bool ok = true;
  std::map<objects::Value, int> counts;
  for (const auto t : executed) ++counts[t];
  if (executed.size() != total_tasks) {
    std::printf("TASK COUNT MISMATCH: executed %zu of %zu\n", executed.size(),
                total_tasks);
    ok = false;
  }
  for (core::ProcessId p = 0; p < producers; ++p) {
    objects::Value prev = -1;
    for (const auto t : executed) {
      if (t / 100000 != static_cast<objects::Value>(p)) continue;
      if (t <= prev) {
        std::printf("FIFO VIOLATED for producer %u (%lld after %lld)\n", p,
                    static_cast<long long>(t), static_cast<long long>(prev));
        ok = false;
      }
      prev = t;
    }
    for (std::size_t i = 0; i < tasks_per_producer; ++i) {
      const auto t = static_cast<objects::Value>(p) * 100000 +
                     static_cast<objects::Value>(i);
      if (counts[t] != 1) {
        std::printf("task %lld executed %d times\n", static_cast<long long>(t),
                    counts[t]);
        ok = false;
      }
    }
  }
  objects::Value done_total = -1;
  done_counter.get(0, [&](objects::Value v) { done_total = v; });
  system.run();
  if (done_total != static_cast<objects::Value>(total_tasks)) {
    std::printf("done-counter mismatch: %lld\n", static_cast<long long>(done_total));
    ok = false;
  }

  std::printf("executed %zu tasks, split:", executed.size());
  for (const auto& [w, n] : per_worker) std::printf(" P%u=%zu", w, n);
  std::printf("\n%s\n", ok ? "all invariants hold (exactly-once, per-producer FIFO)"
                           : "INVARIANT VIOLATIONS — see above");
  return ok ? 0 : 1;
}
