// Bank-transfer workload: database-style transactions as m-operations.
//
//   ./bank_transfer [--protocol=mlin] [--processes=4] [--accounts=16]
//                   [--transfers=200] [--initial=100] [--delay=lan]
//                   [--seed=7] [--audit-every=0]
//
// Each transfer is ONE m-operation — r(from) w(from) r(to) w(to) executed
// atomically — exactly the "transaction as an atomic operation on
// multiple data items" the paper's introduction motivates. The demo
// hammers random transfers from every process, then verifies the two
// properties that only hold if multi-object atomicity actually worked:
//   1. conservation: the sum of all balances is unchanged;
//   2. no overdraft: no balance ever goes negative (each transfer checks
//      funds and the check and the debit are in the same m-operation).
// Finally the recorded history is checked against m-linearizability.
#include <cstdio>
#include <vector>

#include "api/system.hpp"
#include "mscript/library.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace mocc;
  util::CliArgs args(argc, argv);

  const auto accounts = static_cast<std::size_t>(args.get_int("accounts", 16));
  const auto transfers = static_cast<std::size_t>(args.get_int("transfers", 200));
  const auto initial = args.get_int("initial", 100);

  api::SystemConfig config;
  config.protocol = args.get_string("protocol", "mlin");
  config.num_processes = static_cast<std::size_t>(args.get_int("processes", 4));
  config.num_objects = accounts;
  config.delay = args.get_string("delay", "lan");
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::printf("bank_transfer: %zu accounts x %lld, %zu transfers, protocol=%s\n",
              accounts, static_cast<long long>(initial), transfers,
              config.protocol.c_str());

  api::System system(config);
  util::Rng rng(config.seed);

  // Seed all balances with one atomic m-register assignment.
  std::vector<mscript::ObjectId> all(accounts);
  std::vector<mscript::Value> balances(accounts, initial);
  for (std::size_t i = 0; i < accounts; ++i) all[i] = static_cast<mscript::ObjectId>(i);
  system.submit(0, 1, mscript::lib::make_m_assign(all, balances));
  system.run();

  // Random transfers from every process, plus periodic auditors reading
  // the global sum mid-flight: under m-linearizability every such read
  // must see exactly the conserved total.
  std::size_t succeeded = 0;
  std::size_t refused = 0;
  std::vector<std::int64_t> audit_sums;
  util::Summary latency;
  for (std::size_t i = 0; i < transfers; ++i) {
    const auto p = static_cast<core::ProcessId>(i % config.num_processes);
    auto from = static_cast<mscript::ObjectId>(rng.next_below(accounts));
    auto to = static_cast<mscript::ObjectId>(rng.next_below(accounts));
    if (to == from) to = static_cast<mscript::ObjectId>((to + 1) % accounts);
    const auto amount = rng.next_in(1, initial / 2);
    system.submit(p, 10, mscript::lib::make_transfer(from, to, amount),
                  [&](const protocols::InvocationOutcome& out) {
                    latency.add(static_cast<double>(out.response - out.invoke));
                    if (out.return_value == 1) {
                      ++succeeded;
                    } else {
                      ++refused;
                    }
                  });
    if (i % 25 == 24) {
      system.submit(p, 10, mscript::lib::make_sum(all),
                    [&](const protocols::InvocationOutcome& out) {
                      audit_sums.push_back(out.return_value);
                    });
    }
  }
  system.run();

  // Final balance sheet.
  std::int64_t total = -1;
  std::vector<std::int64_t> final_balances;
  system.submit(0, 1'000'000, mscript::lib::make_sum(all),
                [&](const protocols::InvocationOutcome& out) {
                  total = out.return_value;
                });
  for (std::size_t i = 0; i < accounts; ++i) {
    system.submit(0, 1'000'001, mscript::lib::make_read(static_cast<mscript::ObjectId>(i)),
                  [&](const protocols::InvocationOutcome& out) {
                    final_balances.push_back(out.return_value);
                  });
  }
  system.run();

  std::printf("transfers: %zu ok, %zu refused (insufficient funds)\n", succeeded,
              refused);
  std::printf("transfer latency (virtual ticks): %s\n", latency.brief().c_str());

  const std::int64_t expected = static_cast<std::int64_t>(accounts) * initial;
  bool ok = true;
  if (total != expected) {
    std::printf("CONSERVATION VIOLATED: total=%lld expected=%lld\n",
                static_cast<long long>(total), static_cast<long long>(expected));
    ok = false;
  } else {
    std::printf("conservation holds: total=%lld\n", static_cast<long long>(total));
  }
  for (const auto sum : audit_sums) {
    if (sum != expected) {
      std::printf("MID-FLIGHT AUDIT SAW TORN STATE: sum=%lld\n",
                  static_cast<long long>(sum));
      ok = false;
    }
  }
  std::printf("%zu mid-flight audits all saw the conserved total\n",
              audit_sums.size());
  for (const auto b : final_balances) {
    if (b < 0) {
      std::printf("OVERDRAFT: balance=%lld\n", static_cast<long long>(b));
      ok = false;
    }
  }

  // The recorded history is large; the Theorem-7 polynomial check covers
  // it for the §5 protocols, the exact checker handles the baselines on
  // smaller runs.
  if (system.supports_audit()) {
    const auto audit = system.audit();
    std::printf("P5.x audit: %s\n", audit.ok ? "ok" : audit.to_string().c_str());
    ok = ok && audit.ok;
    const auto fast = system.check_fast(core::Condition::kMLinearizability);
    std::printf("Theorem-7 m-linearizability: %s\n",
                fast.admissible ? "admissible" : fast.detail.c_str());
    ok = ok && fast.admissible;
  }
  return ok ? 0 : 1;
}
